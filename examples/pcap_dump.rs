//! Capture ten minutes of simulated SNTP traffic to a real `.pcap` file —
//! open it in Wireshark, or point the same tcpdump-derived tooling the
//! paper's §3.1 pipeline used at it.
//!
//! ```text
//! cargo run --release --example pcap_dump
//! wireshark sntp_capture.pcap        # or: tcpdump -r sntp_capture.pcap
//! ```

use std::fs::File;
use std::io::BufWriter;

use mntp_repro::clocksim::time::SimTime;
use mntp_repro::clocksim::{OscillatorConfig, SimClock, SimRng};
use mntp_repro::netsim::pcap::{Endpoint, PcapWriter};
use mntp_repro::netsim::testbed::TestbedConfig;
use mntp_repro::netsim::Testbed;
use mntp_repro::sntp::{perform_exchange_traced, PoolConfig, ServerPool};

fn main() -> std::io::Result<()> {
    let mut testbed = Testbed::wireless(TestbedConfig::default(), 5);
    let mut pool = ServerPool::new(PoolConfig::default(), 6);
    let osc = OscillatorConfig::laptop().with_skew_ppm(20.0).build(SimRng::new(7));
    let mut clock = SimClock::new(osc, SimTime::ZERO);

    let client_ep = Endpoint::of([192, 168, 1, 23], 52_123);
    let path = "sntp_capture.pcap";
    let mut pcap = PcapWriter::new(BufWriter::new(File::create(path)?))?;

    let mut lost = 0u32;
    for i in 0..120 {
        let t = SimTime::from_secs(i * 5);
        let server_id = pool.pick();
        // Give each pool server a distinct plausible address.
        let server_ep = Endpoint::of([203, 0, 113, (server_id as u8) + 1], 123);
        let mut capture = Vec::new();
        let outcome =
            perform_exchange_traced(&mut testbed, pool.server_mut(server_id), &mut clock, t, &mut capture);
        for pkt in capture {
            let (src, dst) = if pkt.outbound { (client_ep, server_ep) } else { (server_ep, client_ep) };
            pcap.record_udp(pkt.at, src, dst, &pkt.bytes)?;
        }
        if outcome.is_err() {
            lost += 1;
        }
    }
    let packets = pcap.packets();
    pcap.finish()?;
    println!("wrote {packets} NTP packets (over {lost} lost exchanges) to {path}");
    println!("inspect with: tcpdump -r {path} | head");
    Ok(())
}
