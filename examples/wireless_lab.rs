//! The §3.2 laboratory study in miniature: how much does a wireless last
//! hop hurt SNTP, and what do the wireless hints look like while it
//! happens?
//!
//! ```text
//! cargo run --release --example wireless_lab
//! ```

use mntp_repro::clocksim::time::SimTime;
use mntp_repro::clocksim::{stats, OscillatorConfig, SimClock, SimRng};
use mntp_repro::netsim::testbed::TestbedConfig;
use mntp_repro::netsim::Testbed;
use mntp_repro::sntp::{perform_exchange, PoolConfig, ServerPool};

fn run_sntp(testbed: &mut Testbed, seed: u64, minutes: u64) -> Vec<f64> {
    let mut pool = ServerPool::new(PoolConfig::default(), seed);
    let osc = OscillatorConfig::perfect().build(SimRng::new(seed + 1));
    let mut clock = SimClock::new(osc, SimTime::ZERO);
    let mut offsets = Vec::new();
    for i in 0..minutes * 12 {
        let t = SimTime::from_secs(i as i64 * 5);
        let id = pool.pick();
        if let Ok(done) = perform_exchange(testbed, pool.server_mut(id), &mut clock, t) {
            offsets.push(done.sample.offset.as_millis_f64());
        }
    }
    offsets
}

fn main() {
    let minutes = 30;

    let mut wired = Testbed::wired(1);
    let wired_offsets = run_sntp(&mut wired, 2, minutes);
    let w = stats::Summary::of(&wired_offsets);
    println!("wired    SNTP ({} min): mean {:+.1} ms, σ {:.1} ms, worst {:+.1} ms", minutes, w.mean, w.std, w.max_abs());

    let mut wireless = Testbed::wireless(TestbedConfig::default(), 3);
    let wl_offsets = run_sntp(&mut wireless, 2, minutes);
    let l = stats::Summary::of(&wl_offsets);
    println!("wireless SNTP ({} min): mean {:+.1} ms, σ {:.1} ms, worst {:+.1} ms", minutes, l.mean, l.std, l.max_abs());

    // Show the channel's mood swings: hints sampled once a minute.
    println!("\nwireless hints over time (the monitor node is stirring the channel):");
    println!("{:>6}  {:>8}  {:>8}  {:>6}  gate", "t(s)", "rssi", "noise", "snr");
    let mut tb = Testbed::wireless(TestbedConfig::default(), 3);
    for i in 0..minutes {
        let t = SimTime::from_secs(i as i64 * 60);
        let h = tb.hints(t).expect("wireless testbed has hints");
        let pass = h.rssi_dbm > -75.0 && h.noise_dbm < -70.0 && h.snr_margin_db() >= 20.0;
        println!(
            "{:>6}  {:>8.1}  {:>8.1}  {:>6.1}  {}",
            t.as_secs_f64(),
            h.rssi_dbm,
            h.noise_dbm,
            h.snr_margin_db(),
            if pass { "open" } else { "DEFER" }
        );
    }
}
