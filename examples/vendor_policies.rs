//! The §2 vendor behaviours: how far does a phone's clock wander under
//! Android's and Windows Mobile's real SNTP policies?
//!
//! ```text
//! cargo run --release --example vendor_policies
//! ```

use mntp_repro::clocksim::time::SimTime;
use mntp_repro::clocksim::{ClockControl, OscillatorConfig, SimClock, SimRng};
use mntp_repro::netsim::Testbed;
use mntp_repro::sntp::vendor::{VendorAction, VendorClient, VendorPolicy};
use mntp_repro::sntp::{perform_exchange, PoolConfig, ServerPool};

fn simulate(label: &str, policy: VendorPolicy, days: u64, seed: u64) {
    let mut tb = Testbed::wired(seed);
    let mut pool = ServerPool::new(PoolConfig::default(), seed + 1);
    let osc = OscillatorConfig::phone().build(SimRng::new(seed + 2));
    let mut clock = SimClock::new(osc, SimTime::ZERO);
    let mut client = VendorClient::new(policy, clock.now(SimTime::ZERO));

    let mut worst: f64 = 0.0;
    let mut polls = 0u64;
    let mut t_secs = 0i64;
    while t_secs <= (days * 86_400) as i64 {
        let t = SimTime::from_secs(t_secs);
        if client.on_tick(clock.now(t)) == VendorAction::SendRequest {
            polls += 1;
            let id = pool.pick();
            match perform_exchange(&mut tb, pool.server_mut(id), &mut clock, t) {
                Ok(done) => {
                    if let Some(cmd) = client.on_success(clock.now(t), &done.sample) {
                        cmd.apply(&mut clock, t);
                    }
                }
                Err(_) => client.on_failure(clock.now(t)),
            }
        }
        worst = worst.max(clock.true_error(t).as_millis_f64().abs());
        t_secs += 300;
    }
    println!(
        "{label:<42} polls={polls:<4} worst clock error = {:.0} ms ({} updates applied, {} suppressed)",
        worst, client.updates_applied, client.updates_suppressed
    );
}

fn main() {
    let days = 5;
    println!("simulating {days} days on a phone-grade crystal (≈18 ppm fast)…\n");
    simulate("Android KitKat (daily, 5 s threshold)", VendorPolicy::android_kitkat(), days, 1);
    simulate("Windows Mobile (weekly, no retries)", VendorPolicy::windows_mobile(), days, 2);
    simulate("hourly poll, no threshold", VendorPolicy::measurement(3600), days, 3);
    println!(
        "\nThe 5-second Android threshold means the clock must drift >5 s before it is\n\
         ever corrected — §2's explanation for why mobile clocks are so poorly synced."
    );
}
