//! SNTP vs MNTP vs full NTP (`ntpd-sim`), each disciplining its own
//! clock over identical wireless conditions — the benchmarking the paper
//! lists as future work.
//!
//! ```text
//! cargo run --release --example three_way
//! ```

use mntp_repro::experiments::extended;

fn main() {
    println!("running SNTP / MNTP / NTP head-to-head (2 simulated hours each)…\n");
    let r = extended::three_way(42, 2 * 3600);
    print!("{}", extended::render_three_way(&r));
    println!(
        "\nTakeaways: naive SNTP stepping wrecks the clock on every wireless spike;\n\
         MNTP holds NTP-grade accuracy at a fraction of NTP's network traffic."
    );
}
