//! Quickstart: synchronize a drifting clock over a hostile wireless
//! channel with MNTP, and see what plain SNTP would have reported.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mntp_repro::clocksim::time::SimTime;
use mntp_repro::clocksim::{stats, OscillatorConfig, SimClock, SimRng};
use mntp_repro::mntp::{run_baseline, MntpConfig};
use mntp_repro::netsim::testbed::TestbedConfig;
use mntp_repro::netsim::Testbed;
use mntp_repro::sntp::{perform_exchange, PoolConfig, ServerPool};

fn main() {
    let seed = 7u64;

    // A laboratory wireless testbed: WAP + monitor node stirring the
    // channel (paper §3.2), and a pool of simulated NTP servers.
    let mut testbed = Testbed::wireless(TestbedConfig::default(), seed);
    let mut pool = ServerPool::new(PoolConfig::default(), seed + 1);

    // The device clock: a laptop crystal running 30 ppm fast.
    let osc = OscillatorConfig::laptop().with_skew_ppm(30.0).build(SimRng::new(seed + 2));
    let mut clock = SimClock::new(osc, SimTime::ZERO);

    // --- Plain SNTP: poll every 5 s for 15 minutes, trust every reply ---
    let mut sntp_offsets = Vec::new();
    for i in 0..180 {
        let t = SimTime::from_secs(i * 5);
        let server = pool.pick();
        if let Ok(done) = perform_exchange(&mut testbed, pool.server_mut(server), &mut clock, t) {
            sntp_offsets.push(done.sample.offset.as_millis_f64());
        }
    }
    let sntp = stats::Summary::of(&sntp_offsets);
    println!("SNTP  : {} samples, mean offset {:+.1} ms, worst {:+.1} ms", sntp.n, sntp.mean, sntp.max_abs());

    // --- MNTP: same channel, same pool, gate + trend filter ---
    let mut testbed = Testbed::wireless(TestbedConfig::default(), seed);
    let mut pool = ServerPool::new(PoolConfig::default(), seed + 1);
    let osc = OscillatorConfig::laptop().with_skew_ppm(30.0).build(SimRng::new(seed + 2));
    let mut clock = SimClock::new(osc, SimTime::ZERO);
    let run = run_baseline(MntpConfig::baseline(5.0), &mut testbed, &mut pool, &mut clock, 900, 5.0);
    let accepted = run.accepted_offsets();
    let acc = stats::Summary::of(&accepted);
    println!(
        "MNTP  : {} accepted / {} rejected / {} deferred, mean offset {:+.1} ms, worst {:+.1} ms",
        acc.n,
        run.rejected_offsets().len(),
        run.deferrals(),
        acc.mean,
        acc.max_abs()
    );
    println!(
        "\nMNTP's worst accepted offset is {:.1}x smaller than SNTP's worst sample.",
        sntp.max_abs() / acc.max_abs().max(0.1)
    );
}
