//! The MNTP tuner (§5.3): record a trace on the wireless testbed, then
//! grid-search the four Algorithm 1 parameters and print a Table-2-style
//! ranking.
//!
//! ```text
//! cargo run --release --example tuner_sweep
//! ```

use mntp_repro::clocksim::time::SimTime;
use mntp_repro::clocksim::{OscillatorConfig, SimClock, SimRng};
use mntp_repro::mntp::MntpConfig;
use mntp_repro::netsim::testbed::TestbedConfig;
use mntp_repro::netsim::Testbed;
use mntp_repro::sntp::{PoolConfig, ServerPool};
use mntp_repro::tuner::{grid_search, record_trace, ParamGrid};

fn main() {
    // 1. Logger: two simulated hours of multi-source offsets + hints.
    println!("recording a 2-hour trace (3 sources every 5 s)…");
    let mut tb = Testbed::wireless(TestbedConfig::default(), 11);
    let mut pool = ServerPool::new(PoolConfig::default(), 12);
    let osc = OscillatorConfig::laptop().with_skew_ppm(25.0).build(SimRng::new(13));
    let mut clock = SimClock::new(osc, SimTime::ZERO);
    let trace = record_trace(&mut tb, &mut pool, &mut clock, 2 * 3600, 5.0, 3);
    println!("  {} rows, {:.0} s\n", trace.rows.len(), trace.duration_secs());

    // 2. Searcher: sweep a small grid.
    let grid = ParamGrid {
        warmup_period_min: vec![10.0, 20.0, 40.0],
        warmup_wait_min: vec![0.25, 1.0],
        regular_wait_min: vec![5.0, 15.0],
        reset_period_min: vec![120.0],
    };
    let results = grid_search(&MntpConfig::default(), &grid, &trace);

    println!("{:>3}  {:>7} {:>7} {:>7} {:>6}  {:>9}  {:>8}", "#", "warmup", "w.wait", "r.wait", "reset", "RMSE(ms)", "requests");
    for (i, r) in results.iter().enumerate() {
        println!(
            "{:>3}  {:>7.1} {:>7.2} {:>7.1} {:>6.0}  {:>9.2}  {:>8}",
            i + 1,
            r.params.0,
            r.params.1,
            r.params.2,
            r.params.3,
            r.rmse_ms,
            r.requests
        );
    }
    let best = &results[0];
    println!(
        "\nbest: warmup {} min / wait {} min / regular {} min → RMSE {:.2} ms with {} requests",
        best.params.0, best.params.1, best.params.2, best.rmse_ms, best.requests
    );
}
