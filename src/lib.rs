//! Umbrella crate for the MNTP reproduction workspace.
//!
//! Re-exports every member crate so the root-level `examples/` and `tests/`
//! can reach the whole system through one dependency. Library users should
//! depend on the individual crates directly.

pub use clocksim;
pub use experiments;
pub use loganalysis;
pub use mntp;
pub use netsim;
pub use ntp_wire;
pub use ntpd_sim;
pub use sntp;
pub use tuner;
