//! Tests of the property-test harness itself: shrinking must converge on
//! a minimal counterexample, and identical seeds must reproduce
//! identical case streams.

use clocksim::rng::SimRng;
use devtools::prop::{self, Config, Gen};

fn cfg(seed: u64) -> Config {
    Config { cases: 256, max_shrink_steps: 4096, seed: Some(seed) }
}

#[test]
fn shrinks_int_to_minimal_counterexample() {
    // The property "v < 100" fails for any v >= 100; the unique minimal
    // failing value in [0, 10000) is exactly 100.
    let gen = prop::ints(0..10_000);
    let cex = prop::find_counterexample(&cfg(7), "int_min", &gen, |v| {
        devtools::prop_assert!(v < 100);
        Ok(())
    })
    .expect("property must be falsified");
    assert_eq!(cex.value, 100, "shrinker stopped early at {}", cex.value);
}

#[test]
fn shrinks_negative_toward_zero() {
    // Fails for v <= -50; minimal (closest to zero) failing value is -50.
    let gen = prop::ints(-10_000..10_000);
    let cex = prop::find_counterexample(&cfg(11), "neg_min", &gen, |v| {
        devtools::prop_assert!(v > -50);
        Ok(())
    })
    .expect("property must be falsified");
    assert_eq!(cex.value, -50);
}

#[test]
fn shrinks_vec_to_minimal_length() {
    // Fails whenever the vector has >= 3 elements; minimal is length 3,
    // and element-wise shrinking should drive every element to 0.
    let gen = prop::vecs(prop::ints(0..1_000), 0..40);
    let cex = prop::find_counterexample(&cfg(13), "vec_min", &gen, |v| {
        devtools::prop_assert!(v.len() < 3);
        Ok(())
    })
    .expect("property must be falsified");
    assert_eq!(cex.value.len(), 3);
    assert!(cex.value.iter().all(|&x| x == 0), "elements not minimized: {:?}", cex.value);
}

#[test]
fn shrinks_through_tuples_independently() {
    // Only the first component matters; the second should shrink to 0.
    let gen = (prop::ints(0..1_000), prop::ints(0..1_000));
    let cex = prop::find_counterexample(&cfg(17), "tuple_min", &gen, |(a, _b)| {
        devtools::prop_assert!(a < 10);
        Ok(())
    })
    .expect("property must be falsified");
    assert_eq!(cex.value, (10, 0));
}

#[test]
fn shrinks_panicking_properties_too() {
    // Panics (not just prop_assert failures) must be caught and shrunk.
    let gen = prop::ints(0..10_000);
    let cex = prop::find_counterexample(&cfg(19), "panic_min", &gen, |v| {
        assert!(v < 250, "boom");
        Ok(())
    })
    .expect("property must be falsified");
    assert_eq!(cex.value, 250);
    assert!(cex.message.contains("boom"), "panic message lost: {}", cex.message);
}

#[test]
fn identical_seeds_reproduce_identical_cases() {
    let gen = (
        prop::floats(-100.0..100.0),
        prop::vecs(prop::options(prop::ints(-50..50)), 0..10),
        prop::strings(0..20),
    );
    let draw = |seed: u64| -> Vec<String> {
        let mut rng = SimRng::new(seed);
        (0..100).map(|_| format!("{:?}", gen.generate(&mut rng))).collect()
    };
    assert_eq!(draw(42), draw(42));
    assert_ne!(draw(42), draw(43), "distinct seeds should explore distinct cases");
}

#[test]
fn identical_seeds_find_identical_counterexamples() {
    let gen = prop::vecs(prop::ints(-1_000..1_000), 0..30);
    let find = || {
        prop::find_counterexample(&cfg(23), "same_cex", &gen, |v| {
            devtools::prop_assert!(v.iter().sum::<i64>() < 500);
            Ok(())
        })
        .expect("property must be falsified")
    };
    let a = find();
    let b = find();
    assert_eq!(a.value, b.value);
    assert_eq!(a.case, b.case);
    assert_eq!(a.shrink_steps, b.shrink_steps);
}

#[test]
fn passing_property_finds_nothing() {
    let gen = prop::ints(0..100);
    assert!(prop::find_counterexample(&cfg(29), "tautology", &gen, |v| {
        devtools::prop_assert!(v >= 0);
        Ok(())
    })
    .is_none());
}

// The macro surface: a passing props! block compiles and runs.
devtools::props! {
    /// Generated ints respect their half-open range.
    fn ints_respect_range(v in prop::ints(5..25)) {
        devtools::prop_assert!((5..25).contains(&v));
    }

    /// Options shrink Some -> None before shrinking the payload.
    fn option_gen_total(o in prop::options(prop::floats(0.0..1.0))) {
        if let Some(x) = o {
            devtools::prop_assert!((0.0..1.0).contains(&x));
        }
    }

    /// Strings stay within their char-length bounds and contain no newline.
    fn strings_bounded(s in prop::strings(0..81)) {
        devtools::prop_assert!(s.chars().count() <= 80);
        devtools::prop_assert!(!s.contains('\n'));
    }
}
