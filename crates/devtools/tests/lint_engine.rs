//! The lint engine's own test suite: tokenizer edge cases, rule
//! matching, test-region exemption, pragma semantics, config parsing,
//! and the fixture corpus under `lint_fixtures/` (each fixture is a
//! deliberately-dirty file asserting every lint fires exactly where
//! expected and pragmas suppress it).

use std::collections::BTreeMap;

use devtools::lint::config::{self, Config};
use devtools::lint::rules::scan_file;
use devtools::lint::tokens::{tokenize, TokenKind};
use devtools::lint::{analyze_sources, lint_source, Outcome};

// ---------------------------------------------------------------- tokenizer

fn kinds(src: &str) -> Vec<(TokenKind, String)> {
    tokenize(src).into_iter().map(|t| (t.kind, t.text)).collect()
}

#[test]
fn tokenizer_nested_block_comment_is_one_token() {
    let toks = kinds("a /* x /* y */ z */ b");
    assert_eq!(toks.len(), 3);
    assert_eq!(toks[0], (TokenKind::Ident, "a".into()));
    assert_eq!(toks[1].0, TokenKind::BlockComment);
    assert_eq!(toks[1].1, "/* x /* y */ z */");
    assert_eq!(toks[2], (TokenKind::Ident, "b".into()));
}

#[test]
fn tokenizer_raw_strings_with_fencing() {
    let toks = kinds(r####"let s = r#"inner "quote" HashMap"# ;"####);
    let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert!(strs[0].1.contains("HashMap"));
    // No Ident token for HashMap — it was swallowed by the raw string.
    assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
}

#[test]
fn tokenizer_double_fenced_raw_string_keeps_inner_fence() {
    let toks = kinds(r#####"r##"outer r#"in"# SystemTime"## x"#####);
    assert_eq!(toks[0].0, TokenKind::Str);
    assert!(toks[0].1.contains("SystemTime"));
    assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
}

#[test]
fn tokenizer_byte_and_raw_byte_strings() {
    let toks = kinds(r##"b"HashSet" br#"RandomState"# tail"##);
    assert_eq!(toks[0].0, TokenKind::Str);
    assert_eq!(toks[1].0, TokenKind::Str);
    assert_eq!(toks[2], (TokenKind::Ident, "tail".into()));
}

#[test]
fn tokenizer_char_vs_lifetime() {
    // 'a' is a char; 'a (no closing tick) is a lifetime; '\'' escapes.
    let toks = kinds(r"'a' <'a> '\'' '\n' 'static");
    let k: Vec<TokenKind> = toks.iter().map(|(k, _)| *k).collect();
    assert_eq!(
        k,
        vec![
            TokenKind::Char,     // 'a'
            TokenKind::Punct,    // <
            TokenKind::Lifetime, // 'a
            TokenKind::Punct,    // >
            TokenKind::Char,     // '\''
            TokenKind::Char,     // '\n'
            TokenKind::Lifetime, // 'static
        ]
    );
}

#[test]
fn tokenizer_quote_char_literal_does_not_open_a_string() {
    // If '"' were mis-lexed, the rest of the line would be swallowed.
    let toks = kinds(r#"let c = '"'; let m = HashMap::new();"#);
    assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
}

#[test]
fn tokenizer_path_separator_is_one_token() {
    let toks = kinds("std::thread::spawn");
    let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
    assert_eq!(texts, vec!["std", "::", "thread", "::", "spawn"]);
}

#[test]
fn tokenizer_numbers_do_not_eat_ranges_or_method_calls() {
    let texts: Vec<String> = tokenize("0..10 1.5f64 1.max(2)")
        .into_iter()
        .map(|t| t.text)
        .collect();
    assert_eq!(texts, vec!["0", ".", ".", "10", "1.5f64", "1", ".", "max", "(", "2", ")"]);
}

#[test]
fn tokenizer_positions_are_one_based_lines_and_cols() {
    let toks = tokenize("ab\n  cd");
    assert_eq!((toks[0].line, toks[0].col), (1, 1));
    assert_eq!((toks[1].line, toks[1].col), (2, 3));
}

#[test]
fn tokenizer_line_comment_runs_to_newline_only() {
    let toks = kinds("x // HashMap here\ny");
    assert_eq!(toks[0].1, "x");
    assert_eq!(toks[1].0, TokenKind::LineComment);
    assert_eq!(toks[2].1, "y");
}

// ---------------------------------------------------------------- matching

fn scan_all(src: &str) -> Vec<(String, u32)> {
    scan_file(src, |_| true).findings.into_iter().map(|f| (f.lint.to_string(), f.line)).collect()
}

#[test]
fn slice_index_flags_expressions_not_types_attrs_or_macros() {
    let clean = r"
#[derive(Clone)]
struct S { a: [u8; 4] }
fn f(x: &[u8]) -> Vec<u8> {
    let v = vec![1, 2];
    let [p, q] = [3, 4];
    let arr: [[u8; 2]; 2] = [[0; 2]; 2];
    v
}
";
    assert!(
        !scan_all(clean).iter().any(|(l, _)| l == "no-slice-index"),
        "false positives: {:?}",
        scan_all(clean)
    );
    let dirty = "fn f(v: &[u8]) -> u8 { v[0] + v.as_ref()[1] }";
    let hits: Vec<_> =
        scan_all(dirty).into_iter().filter(|(l, _)| l == "no-slice-index").collect();
    assert_eq!(hits.len(), 2);
}

#[test]
fn cfg_test_modules_are_exempt_from_panic_lints_only() {
    let src = r#"
fn hot(o: Option<u32>) -> u32 { o.unwrap() }
#[cfg(test)]
mod tests {
    fn helper(o: Option<u32>) -> u32 { o.unwrap() }
    #[test]
    fn t() {
        let m = std::collections::HashMap::new();
        helper(None);
    }
}
"#;
    let found = scan_all(src);
    let unwraps: Vec<_> = found.iter().filter(|(l, _)| l == "no-unwrap").collect();
    assert_eq!(unwraps.len(), 1, "only the non-test unwrap: {found:?}");
    assert_eq!(unwraps[0].1, 2);
    // Determinism lints still apply inside the test module.
    assert!(found.iter().any(|(l, line)| l == "no-unordered-map" && *line == 8));
}

#[test]
fn cfg_not_test_is_not_a_test_region() {
    let src = r#"
#[cfg(not(test))]
fn live(o: Option<u32>) -> u32 { o.unwrap() }
"#;
    assert!(scan_all(src).iter().any(|(l, _)| l == "no-unwrap"));
}

#[test]
fn test_attribute_on_fn_is_exempt() {
    let src = r#"
#[test]
fn t(o: Option<u32>) { o.unwrap(); }
"#;
    assert!(!scan_all(src).iter().any(|(l, _)| l == "no-unwrap"));
}

// ---------------------------------------------------------------- pragmas

fn lint_str(rel: &str, src: &str, cfg: &Config) -> Outcome {
    let mut out = Outcome::default();
    lint_source(rel, src, cfg, &mut out);
    out
}

fn hotpath_cfg() -> Config {
    let mut cfg = Config::fallback();
    cfg.panic_paths = vec!["hot.rs".into()];
    cfg
}

#[test]
fn pragma_suppresses_same_line_and_next_line() {
    let src = "// lint:allow(no-unordered-map) — reason one\nlet m = HashMap::new();\nlet n = HashMap::new();\n";
    let out = lint_str("x.rs", src, &Config::fallback());
    let maps: Vec<_> = out.findings.iter().filter(|f| f.lint == "no-unordered-map").collect();
    assert_eq!(maps.len(), 1, "line 3 is uncovered: {:?}", out.findings);
    assert_eq!(maps[0].line, 3);
    assert_eq!(out.allows.len(), 1);
    assert_eq!(out.allows[0].reason, "reason one");
}

#[test]
fn stacked_pragmas_cover_the_statement_below() {
    let src = "// lint:allow(no-unordered-map) — a\n// lint:allow(no-wallclock) — b\nlet m = HashMap::new(); let t = SystemTime::now();\n";
    let out = lint_str("x.rs", src, &Config::fallback());
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert_eq!(out.allows.len(), 2);
}

#[test]
fn pragma_without_reason_is_a_finding() {
    let src = "// lint:allow(no-unordered-map)\nlet m = HashMap::new();\n";
    let out = lint_str("x.rs", src, &Config::fallback());
    assert!(out.findings.iter().any(|f| f.lint == "bad-pragma"));
    assert!(!out.findings.iter().any(|f| f.lint == "no-unordered-map"));
}

#[test]
fn unknown_and_unused_pragmas_are_findings() {
    let src = "// lint:allow(no-such-lint) — typo\nlet a = 1;\n// lint:allow(no-wallclock) — dead\nlet b = 2;\n";
    let out = lint_str("x.rs", src, &Config::fallback());
    assert!(out.findings.iter().any(|f| f.lint == "unknown-pragma" && f.line == 1));
    assert!(out.findings.iter().any(|f| f.lint == "unused-pragma" && f.line == 3));
    assert!(out.allows.is_empty());
}

#[test]
fn prose_describing_the_syntax_is_not_a_pragma() {
    let src = "// pragmas look like `lint:allow(<name>) — <reason>`\nlet a = 1;\n";
    let out = lint_str("x.rs", src, &Config::fallback());
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

// ---------------------------------------------------------------- config

#[test]
fn config_parses_sections_arrays_and_comments() {
    let text = r#"
# comment
[workspace]
roots = ["crates", "tests"]  # trailing comment
exclude = [
    "crates/devtools/tests/lint_fixtures",
]

[skip]
no-wallclock = ["crates/devtools/src/bench.rs"]

[panic]
paths = ["crates/sntp/src"]
"#;
    let cfg = config::parse(text).expect("parses");
    assert_eq!(cfg.roots, vec!["crates", "tests"]);
    assert_eq!(cfg.exclude, vec!["crates/devtools/tests/lint_fixtures"]);
    assert_eq!(cfg.skip["no-wallclock"], vec!["crates/devtools/src/bench.rs"]);
    assert_eq!(cfg.panic_paths, vec!["crates/sntp/src"]);
}

#[test]
fn config_rejects_malformed_lines() {
    assert!(config::parse("[workspace\n").is_err());
    assert!(config::parse("[skip]\nnot a kv line\n").is_err());
    assert!(config::parse("[skip]\nx = [\"unterminated\"\n").is_err());
}

#[test]
fn config_scoping_prefix_semantics() {
    let mut cfg = Config::fallback();
    cfg.skip.insert("no-wallclock".into(), vec!["crates/devtools".into()]);
    cfg.panic_paths = vec!["crates/sntp/src".into()];
    assert!(!cfg.lint_enabled("no-wallclock", false, "crates/devtools/src/bench.rs"));
    assert!(cfg.lint_enabled("no-wallclock", false, "crates/devtools2/src/lib.rs"));
    assert!(cfg.lint_enabled("no-unwrap", true, "crates/sntp/src/pool.rs"));
    assert!(!cfg.lint_enabled("no-unwrap", true, "crates/core/src/filter.rs"));
    // Bin targets own their exit codes.
    assert!(!cfg.lint_enabled("no-process", false, "crates/tuner/src/bin/mntp-tuner.rs"));
    assert!(cfg.lint_enabled("no-process", false, "crates/tuner/src/lib.rs"));
}

// ---------------------------------------------------------------- fixtures

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/lint_fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn lines_of(out: &Outcome, lint: &str) -> Vec<u32> {
    out.findings.iter().filter(|f| f.lint == lint).map(|f| f.line).collect()
}

#[test]
fn fixture_determinism_fires_on_every_site() {
    let out = lint_str("fx/determinism.rs", &fixture("determinism.rs"), &Config::fallback());
    assert_eq!(lines_of(&out, "no-unordered-map"), vec![2, 5, 5, 6, 7]);
    assert_eq!(lines_of(&out, "no-wallclock"), vec![3, 3, 8, 9]);
    assert_eq!(lines_of(&out, "no-env"), vec![10]);
    assert_eq!(out.findings.len(), 10, "{:?}", out.findings);
}

#[test]
fn fixture_concurrency_fires_on_every_site() {
    let out = lint_str("fx/concurrency.rs", &fixture("concurrency.rs"), &Config::fallback());
    assert_eq!(lines_of(&out, "no-thread-spawn"), vec![3, 4]);
    assert_eq!(lines_of(&out, "no-static-mut"), vec![6]);
    assert_eq!(lines_of(&out, "no-unsafe"), vec![7, 9]);
    assert_eq!(out.findings.len(), 5, "{:?}", out.findings);
}

#[test]
fn fixture_panic_fires_outside_tests_only() {
    let out = lint_str("hot.rs", &fixture("panic.rs"), &hotpath_cfg());
    assert_eq!(lines_of(&out, "no-unwrap"), vec![4, 5]);
    assert_eq!(lines_of(&out, "no-panic"), vec![7, 10]);
    assert_eq!(lines_of(&out, "no-slice-index"), vec![13, 17]);
    assert_eq!(out.findings.len(), 6, "{:?}", out.findings);
}

#[test]
fn fixture_panic_is_silent_outside_hot_paths() {
    let out = lint_str("cold.rs", &fixture("panic.rs"), &Config::fallback());
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn fixture_hermeticity_fires_on_every_site() {
    let out = lint_str("fx/hermeticity.rs", &fixture("hermeticity.rs"), &Config::fallback());
    // Line 4 fires twice: both the `process::` and `Command::new` patterns.
    assert_eq!(lines_of(&out, "no-process"), vec![3, 4, 4]);
    // std::net:: and UdpSocket both fire on line 5; TcpListener on 6.
    assert_eq!(lines_of(&out, "no-socket"), vec![5, 5, 6]);
    assert_eq!(out.findings.len(), 6, "{:?}", out.findings);
}

#[test]
fn fixture_hermeticity_process_exempt_in_bins() {
    let out =
        lint_str("crates/x/src/bin/tool.rs", &fixture("hermeticity.rs"), &Config::fallback());
    assert!(lines_of(&out, "no-process").is_empty());
    assert_eq!(lines_of(&out, "no-socket").len(), 3);
}

#[test]
fn fixture_pragmas_suppress_and_audit() {
    let out = lint_str("fx/pragmas.rs", &fixture("pragmas.rs"), &Config::fallback());
    // Suppressed: HashMap on 4 (standalone), HashSet on 5 (trailing),
    // HashMap on 7 (reasonless pragma on 6 — still suppresses, but is a
    // bad-pragma finding), HashMap + SystemTime on 15 (stacked pair).
    assert!(lines_of(&out, "no-unordered-map").is_empty(), "{:?}", out.findings);
    assert!(lines_of(&out, "no-wallclock").is_empty(), "{:?}", out.findings);
    assert_eq!(lines_of(&out, "bad-pragma"), vec![6]);
    assert_eq!(lines_of(&out, "unknown-pragma"), vec![8]);
    assert_eq!(lines_of(&out, "unused-pragma"), vec![10]);
    // The audit records every *used* pragma (even the reasonless one).
    let audited: Vec<u32> = out.allows.iter().map(|a| a.line).collect();
    assert_eq!(audited, vec![3, 5, 6, 12, 13]);
}

#[test]
fn fixture_tokenizer_tricky_only_real_code_fires() {
    let out = lint_str("fx/tricky.rs", &fixture("tokenizer_tricky.rs"), &Config::fallback());
    assert_eq!(lines_of(&out, "no-unordered-map"), vec![14, 19], "{:?}", out.findings);
    assert_eq!(out.findings.len(), 2, "{:?}", out.findings);
}

// ---------------------------------------------------------------- report

#[test]
fn report_is_sorted_and_counts_suppressions() {
    let mut out = Outcome::default();
    let cfg = Config::fallback();
    lint_source("b.rs", "// lint:allow(no-unordered-map) — b\nlet m = HashMap::new();\n", &cfg, &mut out);
    lint_source("a.rs", "// lint:allow(no-wallclock) — a\nlet t = SystemTime::now();\n", &cfg, &mut out);
    out.allows.sort_by(|x, y| (&x.file, x.line).cmp(&(&y.file, y.line)));
    let rep = devtools::lint::report(&out);
    assert!(rep.starts_with("# lint:allow audit"));
    assert!(rep.contains("# 2 suppression(s) across 2 file(s)"));
    let a = rep.find("a.rs:1: no-wallclock — a").expect("a.rs line");
    let b = rep.find("b.rs:1: no-unordered-map — b").expect("b.rs line");
    assert!(a < b, "sorted by file");
}

// ------------------------------------------------------- config strictness

#[test]
fn config_rejects_unknown_section_with_line_number() {
    let err = config::parse("[workspace]\nroots = [\"crates\"]\n\n[typo]\nx = []\n").unwrap_err();
    assert!(err.contains("lint.toml:4"), "{err}");
    assert!(err.contains("unknown section `[typo]`"), "{err}");
}

#[test]
fn config_rejects_duplicate_keys_with_line_number() {
    let err = config::parse("[workspace]\nroots = [\"a\"]\nroots = [\"b\"]\n").unwrap_err();
    assert!(err.contains("lint.toml:3"), "{err}");
    assert!(err.contains("duplicate key `roots`"), "{err}");
}

#[test]
fn config_rejects_unknown_keys_and_key_before_section() {
    let err = config::parse("[workspace]\nrots = [\"a\"]\n").unwrap_err();
    assert!(err.contains("lint.toml:2") && err.contains("unknown key `rots`"), "{err}");
    let err = config::parse("roots = [\"a\"]\n").unwrap_err();
    assert!(err.contains("lint.toml:1") && err.contains("before any [section]"), "{err}");
}

#[test]
fn config_rejects_skip_keys_naming_no_lint() {
    let err = config::parse("[skip]\nno-typo = [\"src\"]\n").unwrap_err();
    assert!(err.contains("lint.toml:2") && err.contains("names no known lint"), "{err}");
}

#[test]
fn config_parses_interproc_artifact_paths() {
    let cfg = config::parse("[interproc]\nartifact_paths = [\"crates/experiments/src\"]\n")
        .expect("parses");
    assert_eq!(cfg.artifact_paths, vec!["crates/experiments/src"]);
}

// ------------------------------------------------------------- call graph

fn cg_sources(names: &[(&str, &str)]) -> Vec<(String, String)> {
    names
        .iter()
        .map(|(rel, file)| ((*rel).to_string(), fixture(&format!("callgraph/{file}"))))
        .collect()
}

#[test]
fn callgraph_cross_module_panic_chain_is_reported_with_full_chain() {
    let mut cfg = Config::fallback();
    cfg.panic_paths = vec!["fxchain/chain_entry.rs".into()];
    let sources = cg_sources(&[
        ("fxchain/chain_entry.rs", "chain_entry.rs"),
        ("fxchain/chain_mid.rs", "chain_mid.rs"),
        ("fxchain/chain_deep.rs", "chain_deep.rs"),
    ]);
    let a = analyze_sources(&sources, &cfg, &BTreeMap::new());
    let hits: Vec<_> =
        a.outcome.findings.iter().filter(|f| f.lint == "panic-reachability").collect();
    assert_eq!(hits.len(), 1, "{:?}", a.outcome.findings);
    let f = hits[0];
    assert_eq!((f.file.as_str(), f.line, f.col), ("fxchain/chain_entry.rs", 6, 8));
    assert!(
        f.message.contains("fxchain::chain_entry::poll_once (fxchain/chain_entry.rs:6)"),
        "{}",
        f.message
    );
    assert!(
        f.message.contains("-> fxchain::chain_mid::advance (fxchain/chain_mid.rs:4)"),
        "{}",
        f.message
    );
    assert!(
        f.message.contains("-> fxchain::chain_deep::commit (fxchain/chain_deep.rs:4)"),
        "{}",
        f.message
    );
    assert!(f.message.contains("no-slice-index site at fxchain/chain_deep.rs:5"), "{}", f.message);
    // The seed file is outside the hot set, so the reachability finding
    // is the only finding, and both chain hops are exact edges.
    assert_eq!(a.outcome.findings.len(), 1, "{:?}", a.outcome.findings);
    let (exact, approx, _) = a.graph.edge_counts();
    assert_eq!((exact, approx), (2, 0));
}

#[test]
fn callgraph_par_captured_rng_fires_only_on_captured_draw() {
    let sources = cg_sources(&[("fxpar/par_rng.rs", "par_rng.rs")]);
    let a = analyze_sources(&sources, &Config::fallback(), &BTreeMap::new());
    let hits: Vec<_> = a.outcome.findings.iter().filter(|f| f.lint == "par-captured-rng").collect();
    assert_eq!(hits.len(), 1, "{:?}", a.outcome.findings);
    let f = hits[0];
    assert_eq!((f.file.as_str(), f.line), ("fxpar/par_rng.rs", 5));
    assert!(f.message.contains("`rng.next_u64()`"), "{}", f.message);
    assert!(f.message.contains("par_map"), "{}", f.message);
    // The per-item forked variant stays silent.
    assert_eq!(a.outcome.findings.len(), 1, "{:?}", a.outcome.findings);
}

#[test]
fn callgraph_map_iteration_taints_artifact_entry_point() {
    let mut cfg = Config::fallback();
    cfg.artifact_paths = vec!["fxart/taint_emit.rs".into()];
    let sources = cg_sources(&[
        ("fxart/taint_emit.rs", "taint_emit.rs"),
        ("fxart/taint_maps.rs", "taint_maps.rs"),
    ]);
    let a = analyze_sources(&sources, &cfg, &BTreeMap::new());
    let hits: Vec<_> = a.outcome.findings.iter().filter(|f| f.lint == "map-order-taint").collect();
    assert_eq!(hits.len(), 1, "{:?}", a.outcome.findings);
    let f = hits[0];
    assert_eq!((f.file.as_str(), f.line, f.col), ("fxart/taint_emit.rs", 4, 8));
    assert!(f.message.contains("fxart::taint_maps::render_rows"), "{}", f.message);
    assert!(f.message.contains("no-unordered-map site at fxart/taint_maps.rs:4"), "{}", f.message);
    // The local token lint fires too — a pragma there would justify the
    // local use but must not silence the artifact-path taint.
    assert_eq!(lines_of(&a.outcome, "no-unordered-map"), vec![4]);
}

#[test]
fn callgraph_wallclock_taint_fires_on_exact_cross_crate_edge() {
    let mut crates = BTreeMap::new();
    crates.insert("fxwa".to_string(), "fxwa".to_string());
    crates.insert("fxwb".to_string(), "fxwb".to_string());
    let sources =
        cg_sources(&[("fxwa/wall_a.rs", "wall_a.rs"), ("fxwb/wall_b.rs", "wall_b.rs")]);
    let a = analyze_sources(&sources, &Config::fallback(), &crates);
    let hits: Vec<_> = a.outcome.findings.iter().filter(|f| f.lint == "wallclock-taint").collect();
    assert_eq!(hits.len(), 1, "{:?}", a.outcome.findings);
    let f = hits[0];
    assert_eq!((f.file.as_str(), f.line), ("fxwa/wall_a.rs", 6));
    assert!(f.message.contains("fxwb::wall_b::now_epoch_ms"), "{}", f.message);
    assert!(f.message.contains("no-wallclock site at fxwb/wall_b.rs:4"), "{}", f.message);
    // The reader's own token finding still fires inside its crate.
    assert_eq!(lines_of(&a.outcome, "no-wallclock"), vec![4]);

    // Skip-listing the reader makes it an audited boundary (like the
    // bench harness): no token finding, no seed, no taint.
    let mut cfg = Config::fallback();
    cfg.skip.insert("no-wallclock".into(), vec!["fxwb/wall_b.rs".into()]);
    let a2 = analyze_sources(&sources, &cfg, &crates);
    assert!(a2.outcome.findings.is_empty(), "{:?}", a2.outcome.findings);
}
