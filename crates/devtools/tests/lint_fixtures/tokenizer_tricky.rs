// Fixture: mentions that must NOT fire (data, not code), plus two that must.
fn f<'a>(x: &'a str) -> char {
    let s = "HashMap::new() SystemTime::now() std::thread::spawn";
    let r = r#"Instant::now() "quoted" panic!() unsafe"#;
    let deep = r##"fenced r#"inner"# HashSet"##;
    let b = b"HashSet";
    let rb = br#"RandomState"#;
    /* HashMap in a block comment /* nested unsafe */ still one comment */
    let c: char = '"';
    let tick = '\'';
    let newline = '\n';
    let lt: core::marker::PhantomData<&'a u32> = core::marker::PhantomData;
    // Real code again — the matcher must be back in sync and fire here:
    let m = std::collections::HashMap::<u32, u32>::new();
    c
}
macro_rules! mk {
    () => {
        std::collections::HashSet::new()
    };
}
