// Fixture: hermeticity violations. Never compiled — scanned by lint_engine.rs.
fn f() {
    std::process::exit(1);
    let c = std::process::Command::new("ls");
    let s = std::net::UdpSocket::bind("0.0.0.0:0");
    let t = TcpListener::bind("0.0.0.0:0");
}
