// Fixture: panic-policy violations. The scanning test configures this
// file as a hot path; the cfg(test) module at the bottom must be exempt.
fn f(v: &[u32], o: Option<u32>) -> u32 {
    let a = o.unwrap();
    let b = o.expect("set");
    if v.is_empty() {
        panic!("empty");
    }
    match a {
        0 => unreachable!(),
        _ => {}
    }
    v[0] + a + b
}
mod not_a_test {
    pub fn g(v: &[u32]) -> u32 {
        v[1]
    }
}
#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let v = vec![1, 2];
        assert_eq!(v[0], 1);
        Option::<u32>::None.unwrap();
        panic!("test code may panic");
    }
}
