//! Cross-crate wall-clock caller: fed as `fxwa/wall_a.rs`. The callee
//! crate (`fxwb`) reads the wall clock, so the exact cross-crate edge
//! on line 6 is the finding site.

pub fn sample_offset() -> f64 {
    fxwb::wall_b::now_epoch_ms() as f64
}
