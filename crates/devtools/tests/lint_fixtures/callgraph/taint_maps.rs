//! Hasher-ordered iteration reachable from the artifact entry point.

pub fn render_rows(names: &[String]) -> String {
    let mut counts = std::collections::HashMap::new();
    for n in names {
        *counts.entry(n.clone()).or_insert(0usize) += 1;
    }
    let mut out = String::new();
    for (k, v) in &counts {
        out.push_str(k);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out
}
