//! Chain tail: the actual panic site (slice indexing on line 5).

/// The first-element read is the no-slice-index seed the chain surfaces.
pub fn commit(samples: &[f64]) -> f64 {
    samples[0] * 2.0
}
