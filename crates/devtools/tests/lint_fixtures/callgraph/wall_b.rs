//! Wall-clock reader in its own crate (fed as `fxwb/wall_b.rs`).

pub fn now_epoch_ms() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}
