//! Artifact-emitting entry point for the map-order-taint fixture: fed
//! as `fxart/taint_emit.rs` with `artifact_paths` naming this file.

pub fn write_summary_csv(names: &[String]) -> String {
    crate::taint_maps::render_rows(names)
}
