//! Par-closure fixture: one captured-RNG draw (the finding, line 5) and
//! one correctly forked per-item stream (must stay silent).

pub fn jitter_all(rng: &mut SimRng, xs: Vec<u64>) -> Vec<u64> {
    par_map(xs, |x| x.wrapping_add(rng.next_u64()))
}

pub fn forked_ok(rng: &mut SimRng, xs: Vec<u64>) -> Vec<u64> {
    let streams: Vec<SimRng> = xs.iter().map(|&x| rng.fork(x)).collect();
    par_map(streams, |mut r| r.next_u64())
}
