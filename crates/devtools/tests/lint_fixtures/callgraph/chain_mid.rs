//! Middle hop of the cross-module panic chain.

/// Forwards into the deep module; carries no panic of its own.
pub fn advance(samples: &[f64]) -> f64 {
    crate::chain_deep::commit(samples)
}
