//! Interprocedural fixture: the hot entry point. Fed to the engine as
//! `fxchain/chain_entry.rs` with `[panic] paths` naming this file; the
//! panic it reaches lives two modules away (chain_mid → chain_deep).

/// Entry point: itself panic-free — the finding anchors here anyway.
pub fn poll_once(samples: &[f64]) -> f64 {
    crate::chain_mid::advance(samples)
}
