// Fixture: concurrency violations. Never compiled — scanned by lint_engine.rs.
fn f() {
    std::thread::spawn(|| {});
    std::thread::scope(|s| {});
}
static mut COUNTER: u32 = 0;
unsafe fn g() {}
fn h() {
    unsafe { core::hint::unreachable_unchecked() }
}
