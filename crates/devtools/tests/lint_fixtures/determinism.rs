// Fixture: determinism violations. Never compiled — scanned by lint_engine.rs.
use std::collections::HashMap;
use std::time::{Instant, SystemTime};
fn f() {
    let m: HashMap<u32, u32> = HashMap::new();
    let s = std::collections::HashSet::<u32>::new();
    let h = std::collections::hash_map::RandomState::new();
    let t = SystemTime::now();
    let i = Instant::now();
    let v = std::env::var("HOME");
}
