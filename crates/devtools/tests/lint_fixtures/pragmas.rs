// Fixture: pragma handling. Never compiled — scanned by lint_engine.rs.
fn f() {
    // lint:allow(no-unordered-map) — fixture demonstrates a justified standalone suppression
    let m = std::collections::HashMap::<u32, u32>::new();
    let s = std::collections::HashSet::<u32>::new(); // lint:allow(no-unordered-map) — trailing-form suppression
    // lint:allow(no-unordered-map)
    let t = std::collections::HashMap::<u32, u32>::new();
    // lint:allow(no-such-lint) — the named lint does not exist
    let x = 1;
    // lint:allow(no-wallclock) — nothing below uses a wall clock, so this pragma is dead
    let y = 2;
    // lint:allow(no-unordered-map) — first of a stacked pair
    // lint:allow(no-wallclock) — second of a stacked pair
    let z = std::collections::HashMap::new(); let w = SystemTime::now();
}
