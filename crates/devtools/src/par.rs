//! A deterministic work-stealing thread pool for the simulation fleet.
//!
//! Discrete-event time-sync experiments are embarrassingly parallel
//! across independent seeded trials: every figure, ablation arm, tuner
//! grid point, and multi-seed average owns its own `SimRng` stream and
//! touches no shared mutable state. This module supplies the in-tree
//! substrate that fans those trials out over OS threads (the workspace
//! is hermetic — no rayon) while keeping one hard guarantee:
//!
//! > **Bit-identical output.** [`Pool::map`] preserves input order and
//! > every task is a pure function of its input, so the assembled output
//! > is byte-for-byte the same `Vec` the serial loop would produce, for
//! > any worker count and any interleaving.
//!
//! ## Topology
//!
//! Work is indexed `0..n`. Each worker owns a deque seeded with a
//! contiguous chunk of indices; a global injector holds the remainder
//! when `n` does not divide evenly. Owners pop from the *front* of
//! their deque (ascending indices — the same locality the serial loop
//! has); an idle worker first drains the injector, then steals the
//! *back half* of a victim's deque, scanning victims in a fixed
//! rotation from its own id. One slow item therefore delays only
//! itself: the remaining indices migrate to whoever is idle, unlike
//! one-shot chunking where a slow chunk idles its whole thread.
//!
//! ## Worker count
//!
//! [`Pool::from_env`] honors the `MNTP_JOBS` environment variable and
//! falls back to [`std::thread::available_parallelism`]. `jobs = 1` (or
//! a single item) runs the serial loop inline on the caller's thread —
//! no threads are spawned, so `MNTP_JOBS=1` *is* the serial baseline
//! the equivalence tests compare against.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Recover a guard even when another worker panicked while holding the
/// lock: every mutex in this module protects plain index/item storage
/// that stays structurally valid across a poisoned lock, and the
/// worker's own panic still propagates through [`Pool::execute`]'s join.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The pool's single panic site: index bookkeeping broke. `execute`
/// hands out each index in `0..n` exactly once, so the checked
/// accessors that funnel here are unreachable unless the dispatch
/// logic itself is wrong.
#[cold]
#[inline(never)]
fn pool_invariant(what: &str) -> ! {
    // lint:allow(no-panic) — the pool's one audited invariant failure: execute() hands out each index in 0..n exactly once, so the checked accessors funneling here are unreachable
    panic!("devtools::par invariant violated: {what}")
}

/// A work-stealing pool handle: just a worker count plus the dispatch
/// machinery. Workers are scoped `std::thread`s spawned per call (the
/// tasks may borrow from the caller's stack), so a `Pool` is cheap to
/// construct and carries no OS resources while idle.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool with exactly `jobs` workers (clamped to at least 1).
    pub fn with_jobs(jobs: usize) -> Pool {
        Pool { jobs: jobs.max(1) }
    }

    /// A pool sized from the environment: `MNTP_JOBS` if set to a
    /// positive integer, otherwise [`std::thread::available_parallelism`].
    pub fn from_env() -> Pool {
        Pool::with_jobs(jobs_from_env())
    }

    /// The worker count this pool dispatches over.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Order-preserving parallel map: `map(items, f)` returns exactly
    /// `items.into_iter().map(f).collect()`, computed by up to
    /// [`Pool::jobs`] workers. Panics in `f` propagate to the caller.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if self.jobs == 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.execute(n, |i| {
            match slots.get(i).and_then(|s| lock_clean(s).take()) {
                Some(item) => f(item),
                None => pool_invariant("map: slot out of bounds or taken twice"),
            }
        })
    }

    /// Order-preserving map over borrowed items.
    pub fn map_ref<'a, T, R, F>(&self, items: &'a [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        if self.jobs == 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        self.execute(items.len(), |i| match items.get(i) {
            Some(item) => f(item),
            None => pool_invariant("map_ref: index out of bounds"),
        })
    }

    /// Run a set of *heterogeneous* one-shot tasks (each its own boxed
    /// closure) and return their results in task order. This is the
    /// fan-out used by `repro`, where every figure pipeline is a
    /// different closure type.
    pub fn invoke<'scope, R: Send>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> R + Send + 'scope>>,
    ) -> Vec<R> {
        let n = tasks.len();
        if self.jobs == 1 || n <= 1 {
            return tasks.into_iter().map(|t| t()).collect();
        }
        let slots: Vec<Mutex<Option<Box<dyn FnOnce() -> R + Send + 'scope>>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.execute(n, |i| {
            match slots.get(i).and_then(|s| lock_clean(s).take()) {
                Some(task) => task(),
                None => pool_invariant("invoke: slot out of bounds or taken twice"),
            }
        })
    }

    /// Run two closures, potentially in parallel, returning both results.
    pub fn join<A, B, FA, FB>(&self, fa: FA, fb: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        if self.jobs == 1 {
            return (fa(), fb());
        }
        std::thread::scope(|s| {
            let hb = s.spawn(fb);
            let a = fa();
            match hb.join() {
                Ok(b) => (a, b),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        })
    }

    /// The work-stealing engine: evaluate `task(i)` for every
    /// `i in 0..n` and return results in index order. `task` must be
    /// safe to call from any worker, once per index.
    fn execute<R, F>(&self, n: usize, task: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.jobs.min(n);
        // Seed each worker's deque with a contiguous chunk; the
        // remainder (n % workers indices) goes to the global injector.
        let chunk = n / workers;
        let mut deques: Vec<Mutex<VecDeque<usize>>> = Vec::with_capacity(workers);
        for w in 0..workers {
            deques.push(Mutex::new((w * chunk..(w + 1) * chunk).collect()));
        }
        let injector: Mutex<VecDeque<usize>> = Mutex::new((workers * chunk..n).collect());
        let task = &task;
        let deques = &deques;
        let injector = &injector;

        let mut per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    s.spawn(move || {
                        let mut out: Vec<(usize, R)> = Vec::new();
                        let Some(own) = deques.get(w) else {
                            pool_invariant("execute: worker id out of range")
                        };
                        loop {
                            // 1. Own deque, front (ascending-index locality).
                            let mine = lock_clean(own).pop_front();
                            if let Some(i) = mine {
                                out.push((i, task(i)));
                                continue;
                            }
                            // 2. Global injector.
                            let injected = lock_clean(injector).pop_front();
                            if let Some(i) = injected {
                                out.push((i, task(i)));
                                continue;
                            }
                            // 3. Steal the back half of a victim's deque,
                            // scanning a fixed rotation from our own id.
                            let mut stolen: Option<usize> = None;
                            for v in 1..workers {
                                let Some(vm) = deques.get((w + v) % workers) else {
                                    pool_invariant("execute: victim id out of range")
                                };
                                let mut vd = lock_clean(vm);
                                let take = vd.len().div_ceil(2);
                                if take == 0 {
                                    continue;
                                }
                                let at = vd.len() - take;
                                let mut batch: Vec<usize> = vd.split_off(at).into();
                                drop(vd);
                                stolen = Some(batch.remove(0));
                                if !batch.is_empty() {
                                    lock_clean(own).extend(batch);
                                }
                                break;
                            }
                            match stolen {
                                Some(i) => out.push((i, task(i))),
                                // Nothing anywhere: tasks cannot spawn
                                // tasks here, so the fleet is drained.
                                None => break,
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(bucket) => bucket,
                    // Re-raise the worker's own payload so callers see
                    // the original panic, not a pool-flavored wrapper.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });

        // Reassemble in input order: output is independent of which
        // worker ran what, which is the bit-identical guarantee.
        let mut assembled: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for bucket in per_worker.drain(..) {
            for (i, r) in bucket {
                match assembled.get_mut(i) {
                    Some(slot @ None) => *slot = Some(r),
                    _ => pool_invariant("execute: index out of range or computed twice"),
                }
            }
        }
        assembled
            .into_iter()
            .map(|r| r.unwrap_or_else(|| pool_invariant("execute: index never computed")))
            .collect()
    }
}

/// Resolve the worker count from `MNTP_JOBS`, falling back to
/// [`std::thread::available_parallelism`] (and 1 if even that fails).
pub fn jobs_from_env() -> usize {
    if let Ok(v) = std::env::var("MNTP_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("warning: ignoring invalid MNTP_JOBS={v:?} (want a positive integer)");
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// [`Pool::map`] on [`Pool::from_env`]: the one-liner most call sites
/// want.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    Pool::from_env().map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order_and_values() {
        for jobs in [1, 2, 3, 8, 32] {
            let pool = Pool::with_jobs(jobs);
            let out = pool.map((0..100u64).collect(), |x| x * x);
            assert_eq!(out, (0..100u64).map(|x| x * x).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn map_matches_serial_with_uneven_work() {
        // Heavily skewed task costs: stealing must still cover every
        // index exactly once, and order must survive.
        let serial: Vec<u64> = (0..57u64).map(busy).collect();
        for jobs in [2, 5, 16] {
            let pool = Pool::with_jobs(jobs);
            assert_eq!(pool.map((0..57u64).collect(), busy), serial, "jobs={jobs}");
        }
    }

    fn busy(x: u64) -> u64 {
        // Index 0 is ~10_000x the work of the rest — the pathological
        // case for one-shot chunking.
        let spins = if x == 0 { 200_000 } else { 20 };
        let mut acc = x;
        for i in 0..spins {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        x * 3 + 1
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let pool = Pool::with_jobs(7);
        let out = pool.map((0..501usize).collect(), |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 501);
        assert_eq!(out, (0..501).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::with_jobs(4);
        assert_eq!(pool.map(Vec::<u8>::new(), |x| x), Vec::<u8>::new());
        assert_eq!(pool.map(vec![9u8], |x| x + 1), vec![10]);
    }

    #[test]
    fn more_workers_than_items() {
        let pool = Pool::with_jobs(64);
        assert_eq!(pool.map((0..5u32).collect(), |x| x + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn map_ref_borrows() {
        let items: Vec<String> = (0..20).map(|i| format!("s{i}")).collect();
        let pool = Pool::with_jobs(4);
        let out = pool.map_ref(&items, |s| s.len());
        assert_eq!(out, items.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn invoke_heterogeneous_tasks_in_order() {
        let pool = Pool::with_jobs(3);
        let x = 41u64;
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = vec![
            Box::new(move || x + 1),
            Box::new(|| busy(7)),
            Box::new(|| 0),
        ];
        assert_eq!(pool.invoke(tasks), vec![42, 22, 0]);
    }

    #[test]
    fn join_returns_both() {
        for jobs in [1, 2] {
            let pool = Pool::with_jobs(jobs);
            let (a, b) = pool.join(|| busy(3), || "right");
            assert_eq!((a, b), (10, "right"));
        }
    }

    #[test]
    fn with_jobs_clamps_to_one() {
        assert_eq!(Pool::with_jobs(0).jobs(), 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let pool = Pool::with_jobs(2);
        pool.map((0..10u32).collect(), |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::prop;
    use crate::{prop_assert_eq, props};

    props! {
        /// The pool's contract: for any input and any worker count, the
        /// output is exactly the serial map.
        fn par_map_equals_serial_map(
            items in prop::vecs(prop::ints(-1000..1000), 0..80),
            jobs in prop::ints(1..9)
        ) {
            let serial: Vec<i64> = items.iter().map(|&x| x * 7 - 3).collect();
            let pool = Pool::with_jobs(jobs as usize);
            let out = pool.map(items.clone(), |x| x * 7 - 3);
            prop_assert_eq!(out, serial);
        }
    }
}
