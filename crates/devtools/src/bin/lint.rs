//! The workspace determinism & panic-policy linter.
//!
//! ```text
//! cargo run --release -p devtools --bin lint            # gate: exit 1 on findings
//! cargo run --release -p devtools --bin lint -- --report  # print the allowlist audit
//! cargo run --release -p devtools --bin lint -- --graph   # dump the workspace call graph
//! cargo run --release -p devtools --bin lint -- --format json
//! cargo run --release -p devtools --bin lint -- --root DIR
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use devtools::lint;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut report = false;
    let mut quiet = false;
    let mut dump_graph = false;
    let mut format = "text".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--report" => report = true,
            "--quiet" => quiet = true,
            "--graph" => dump_graph = true,
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "json" => format = f,
                Some(f) => {
                    eprintln!("--format must be `text` or `json`, got `{f}`");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--format requires an argument (text|json)");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: lint [--root DIR] [--report] [--graph] [--format text|json] [--quiet]");
                return ExitCode::from(2);
            }
        }
    }

    let analysis = match lint::analyze(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };
    let out = &analysis.outcome;

    if dump_graph {
        print!("{}", lint::graph::render(&analysis.graph));
        if !out.clean() {
            eprintln!("lint: {} finding(s) — graph reflects the dirty tree", out.findings.len());
            return ExitCode::from(1);
        }
        return ExitCode::SUCCESS;
    }

    if report {
        print!("{}", lint::report(out));
        if !out.clean() {
            eprintln!("lint: {} finding(s) — report reflects the dirty tree", out.findings.len());
            return ExitCode::from(1);
        }
        return ExitCode::SUCCESS;
    }

    if format == "json" {
        println!("[");
        for (i, f) in out.findings.iter().enumerate() {
            let comma = if i + 1 < out.findings.len() { "," } else { "" };
            println!(
                "  {{\"file\":\"{}\",\"line\":{},\"col\":{},\"lint\":\"{}\",\"message\":\"{}\"}}{}",
                json_escape(&f.file),
                f.line,
                f.col,
                json_escape(&f.lint),
                json_escape(&f.message),
                comma,
            );
        }
        println!("]");
    } else {
        for f in &out.findings {
            println!("{f}");
        }
    }
    if !quiet {
        let (exact, approx, unres) = analysis.graph.edge_counts();
        eprintln!(
            "lint: {} file(s), {} finding(s), {} suppression(s); graph: {} fn(s), {} exact + {} approx edge(s), {} unresolved name(s)",
            out.files_scanned,
            out.findings.len(),
            out.allows.len(),
            analysis.graph.nodes.len(),
            exact,
            approx,
            unres,
        );
    }
    if out.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
