//! The workspace determinism & panic-policy linter.
//!
//! ```text
//! cargo run --release -p devtools --bin lint            # gate: exit 1 on findings
//! cargo run --release -p devtools --bin lint -- --report  # print the allowlist audit
//! cargo run --release -p devtools --bin lint -- --root DIR
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use devtools::lint;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut report = false;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--report" => report = true,
            "--quiet" => quiet = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: lint [--root DIR] [--report] [--quiet]");
                return ExitCode::from(2);
            }
        }
    }

    let out = match lint::run(&root) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };

    if report {
        print!("{}", lint::report(&out));
        if !out.clean() {
            eprintln!("lint: {} finding(s) — report reflects the dirty tree", out.findings.len());
            return ExitCode::from(1);
        }
        return ExitCode::SUCCESS;
    }

    for f in &out.findings {
        println!("{f}");
    }
    if !quiet {
        eprintln!(
            "lint: {} file(s), {} finding(s), {} suppression(s)",
            out.files_scanned,
            out.findings.len(),
            out.allows.len()
        );
    }
    if out.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
