//! Deterministic, mergeable one-pass summaries for streaming analytics.
//!
//! The full-scale log-analysis pipeline (DESIGN.md §13) never holds a
//! whole day of measurements in memory: every statistic the reports need
//! is folded into one of the fixed-size summaries in this module as the
//! records stream past, and per-chunk summaries are merged into a global
//! one afterwards. Two summaries are provided:
//!
//! - [`Moments`] — exact streaming count / sum / min / max (mean derived).
//! - [`QuantileSketch`] — a deterministic Munro–Paterson/MRL-style
//!   compactor with bounded rank error: sorted buffers of `k` values are
//!   kept per weight level (weight `2^level`), and when two buffers meet
//!   at a level they are merge-sorted and halved by keeping every other
//!   element, alternating the starting offset per level so odd/even
//!   positions are not systematically favoured.
//!
//! # Determinism & shard-merge contract
//!
//! Both summaries are pure functions of their *push and merge sequence*:
//! no randomness, no time, no addresses. The pipeline therefore defines
//! one canonical sequence — records are pushed chunk by chunk, and chunk
//! summaries are merged in a single flat fold in ascending
//! `(server, chunk)` order — and every `(shards, jobs)` decomposition
//! computes exactly that sequence, parallelising only the (pure)
//! production of chunk summaries. Merging is deliberately *not* treated
//! as associative: a two-level merge tree is a different sequence and may
//! emit different (still in-bounds) digits, which is why shards never
//! pre-merge their chunks. See `tests` for the 1-vs-8-shard invariance
//! property.
//!
//! # Rank convention
//!
//! All exact percentile helpers in the workspace that operate on sorted
//! samples use *nearest-rank*: `percentile_nearest_rank(sorted, q)`
//! returns `sorted[round(q * (n-1))]`. This is the single shared
//! implementation behind `loganalysis::interarrival`,
//! `experiments::fleet`, and [`crate::bench::Stats`]. (It lives here in
//! `devtools` rather than `clocksim::stats` — which keeps its separate,
//! linear-interpolated convention for the simulator tables — because the
//! sketch query below quantises to the same convention in the exact
//! regime.)

/// Nearest-rank percentile over an already-sorted slice.
///
/// `q` is a fraction in `[0, 1]`; the result is the element at index
/// `round(q * (n-1))` (clamped), i.e. an actual sample value, never an
/// interpolation. Returns `0.0` for empty input.
pub fn percentile_nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let idx = ((q.clamp(0.0, 1.0) * (n - 1) as f64).round() as usize).min(n - 1);
    sorted.get(idx).copied().unwrap_or(0.0)
}

/// Exact streaming count / sum / min / max. Mean is `sum / count`.
///
/// Floating-point addition is not associative, so the pipeline's
/// flat-fold merge order (see module docs) is what pins the emitted
/// digits; `Moments` itself just adds in whatever order it is driven.
#[derive(Clone, Debug, Default)]
pub struct Moments {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// Empty summary.
    pub fn new() -> Moments {
        Moments { count: 0, sum: 0.0, min: 0.0, max: 0.0 }
    }

    /// Fold one sample in.
    pub fn push(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            if x < self.min {
                self.min = x;
            }
            if x > self.max {
                self.max = x;
            }
        }
        self.count += 1;
        self.sum += x;
    }

    /// Fold another summary in (sum is added after self's, so merge order
    /// matters for the low-order digits — keep it canonical).
    pub fn merge(&mut self, other: &Moments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample; `0.0` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample; `0.0` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Resident bytes of this summary (constant).
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Moments>()
    }
}

/// Deterministic mergeable quantile sketch with bounded rank error.
///
/// Structure: an unsorted weight-1 staging buffer of up to `k` values,
/// plus at most one sorted `k`-value buffer per weight level (`2^level`).
/// When the staging buffer fills it is sorted and inserted at level 0;
/// when a level already holds a buffer the two are merge-sorted into `2k`
/// values and *compacted* — every other value is kept, starting from an
/// offset that alternates per level — producing one `k`-value buffer one
/// level up. This is the classic Munro–Paterson collapse; with `L`
/// occupied levels the worst-case rank error of any query is
/// `L / (2k) * count` (each collapse at level `i` perturbs ranks by at
/// most `2^i`, and level `i` collapses at most `count / (k * 2^(i+1))`
/// times), which [`QuantileSketch::rank_error_bound`] reports.
///
/// Memory is `O(k log(count / k))` — 19 levels ≈ 40 KiB at `k = 256` for
/// the paper's 209M-record regime — independent of the value
/// distribution.
#[derive(Clone, Debug)]
pub struct QuantileSketch {
    k: usize,
    /// Weight-1 staging buffer (unsorted), `len < k` between operations.
    base: Vec<f64>,
    /// A full sorted weight-1 buffer parked until a sibling arrives —
    /// the 2^0 digit of the binary counter formed by `levels`.
    pending_w1: Vec<f64>,
    /// `levels[i]`: sorted `k`-value buffer of weight `2^(i+1)`, or empty.
    levels: Vec<Vec<f64>>,
    /// Per-level compaction offset flags (alternate odd/even survivors).
    flips: Vec<bool>,
    moments: Moments,
}

/// Default buffer width: rank error ≲ 2% at the full 209M-record scale.
pub const DEFAULT_K: usize = 256;

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new(DEFAULT_K)
    }
}

impl QuantileSketch {
    /// Empty sketch with buffer width `k` (values per level). `k` is
    /// clamped to at least 8.
    pub fn new(k: usize) -> QuantileSketch {
        let k = k.max(8);
        QuantileSketch {
            k,
            base: Vec::new(),
            pending_w1: Vec::new(),
            levels: Vec::new(),
            flips: Vec::new(),
            moments: Moments::new(),
        }
    }

    /// Buffer width this sketch was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Fold one sample in.
    pub fn push(&mut self, x: f64) {
        self.moments.push(x);
        self.base.push(x);
        if self.base.len() >= self.k {
            self.spill_base();
        }
    }

    /// Fold another sketch in. Both sketches must share the same `k`
    /// (merging summaries of different resolution has no well-defined
    /// error bound); the other's staging values are re-staged here and
    /// its level buffers are inserted level by level, so the result is a
    /// pure function of the two operands.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.moments.count() == 0 {
            return;
        }
        debug_assert_eq!(self.k, other.k, "merging sketches of different k");
        for &x in &other.base {
            self.base.push(x);
            if self.base.len() >= self.k {
                self.spill_base();
            }
        }
        if !other.pending_w1.is_empty() {
            self.insert_level_weight1(other.pending_w1.clone());
        }
        for (level, buf) in other.levels.iter().enumerate() {
            if !buf.is_empty() {
                self.insert_level(buf.clone(), level);
            }
        }
        self.moments.merge(&other.moments);
    }

    fn spill_base(&mut self) {
        let mut buf = std::mem::take(&mut self.base);
        // Unstable sort is safe for determinism: `total_cmp` is a total
        // order whose ties are bit-identical values, so any permutation
        // sorts to the same array — and it skips the stable sort's
        // scratch allocation on the hot spill path.
        buf.sort_unstable_by(|a, b| a.total_cmp(b));
        // A full staging buffer has weight-1 values; pairwise compaction
        // with another weight-1 buffer happens inside `insert_level`.
        self.insert_level_weight1(buf);
    }

    /// Insert a sorted buffer of `k` weight-1 values. Level slot 0 holds
    /// weight-2 buffers, so two weight-1 buffers compact straight into it.
    fn insert_level_weight1(&mut self, buf: Vec<f64>) {
        if self.pending_w1.is_empty() {
            self.pending_w1 = buf;
        } else {
            let a = std::mem::take(&mut self.pending_w1);
            let merged = self.compact(a, buf, 0);
            self.insert_level(merged, 0);
        }
    }

    /// Insert a sorted `k`-value buffer of weight `2^(level+1)` at `level`,
    /// carrying compactions upward like a binary counter.
    fn insert_level(&mut self, mut buf: Vec<f64>, mut level: usize) {
        loop {
            if self.levels.len() <= level {
                self.levels.resize(level + 1, Vec::new());
                self.flips.resize(level + 1, false);
            }
            let Some(slot) = self.levels.get_mut(level) else { return };
            if slot.is_empty() {
                *slot = buf;
                return;
            }
            let existing = std::mem::take(slot);
            buf = self.compact(existing, buf, level + 1);
            level += 1;
        }
    }

    /// Merge two sorted `k`-value buffers and keep every other survivor,
    /// alternating the starting offset per level.
    fn compact(&mut self, a: Vec<f64>, b: Vec<f64>, flip_slot: usize) -> Vec<f64> {
        if self.flips.len() <= flip_slot {
            self.flips.resize(flip_slot + 1, false);
        }
        let offset = usize::from(self.flips.get(flip_slot).copied().unwrap_or(false));
        if let Some(f) = self.flips.get_mut(flip_slot) {
            *f = !*f;
        }
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while let (Some(&x), Some(&y)) = (a.get(i), b.get(j)) {
            if x.total_cmp(&y).is_le() {
                merged.push(x);
                i += 1;
            } else {
                merged.push(y);
                j += 1;
            }
        }
        merged.extend_from_slice(a.get(i..).unwrap_or(&[]));
        merged.extend_from_slice(b.get(j..).unwrap_or(&[]));
        merged.into_iter().skip(offset).step_by(2).collect()
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// True if no sample has been folded in.
    pub fn is_empty(&self) -> bool {
        self.moments.count() == 0
    }

    /// Exact minimum of all samples (tracked outside the compactor).
    pub fn min(&self) -> f64 {
        self.moments.min()
    }

    /// Exact maximum of all samples (tracked outside the compactor).
    pub fn max(&self) -> f64 {
        self.moments.max()
    }

    /// Exact streaming mean of all samples.
    pub fn mean(&self) -> f64 {
        self.moments.mean()
    }

    /// Exact count/sum/min/max companion summary.
    pub fn moments(&self) -> &Moments {
        &self.moments
    }

    /// Quantile estimate: the smallest retained value whose cumulative
    /// weight reaches `ceil(q * count)` (weighted nearest-rank). `q <= 0`
    /// returns the exact minimum and `q >= 1` the exact maximum; `0.0`
    /// when empty. The returned value is always an actual sample, and its
    /// rank differs from the exact `q`-rank by at most
    /// [`QuantileSketch::rank_error_bound`].
    pub fn query(&self, q: f64) -> f64 {
        if self.moments.count() == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.moments.min();
        }
        if q >= 1.0 {
            return self.moments.max();
        }
        let mut weighted: Vec<(f64, u64)> = Vec::new();
        for &x in &self.base {
            weighted.push((x, 1));
        }
        for &x in &self.pending_w1 {
            weighted.push((x, 1));
        }
        for (level, buf) in self.levels.iter().enumerate() {
            let w = 1u64 << (level + 1);
            for &x in buf {
                weighted.push((x, w));
            }
        }
        weighted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: u64 = weighted.iter().map(|&(_, w)| w).sum();
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for &(x, w) in &weighted {
            cum += w;
            if cum >= target {
                return x;
            }
        }
        self.moments.max()
    }

    /// Worst-case rank error of [`QuantileSketch::query`], as a fraction
    /// of `count`: `L / (2k)` with `L` the number of occupied weight
    /// levels. Zero while everything still fits in the staging buffers
    /// (the sketch is exact until then).
    pub fn rank_error_bound(&self) -> f64 {
        let occupied = self.levels.iter().filter(|l| !l.is_empty()).count();
        if occupied == 0 && self.pending_w1.is_empty() {
            return 0.0;
        }
        // Count levels from weight 2^0 (the pending weight-1 slot) up.
        let l = self.levels.len() + 1;
        l as f64 / (2.0 * self.k as f64)
    }

    /// Resident bytes of this sketch's state: staging plus one `k`-value
    /// buffer per allocated level. Deterministic (computed from the
    /// logical structure, not allocator internals) so it can appear in
    /// committed artifacts.
    pub fn state_bytes(&self) -> usize {
        let buffers = 2 + self.levels.len(); // base + pending_w1 + levels
        std::mem::size_of::<QuantileSketch>() + buffers * self.k * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksim::SimRng;

    fn exact_rank_error(sorted: &[f64], q: f64, got: f64) -> usize {
        let n = sorted.len();
        let target = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        // Range of indices holding `got` (it is always a real sample).
        let lo = sorted.partition_point(|&x| x.total_cmp(&got).is_lt());
        let hi = sorted.partition_point(|&x| x.total_cmp(&got).is_le());
        assert!(lo < hi, "query returned a non-sample value {got}");
        if target < lo {
            lo - target
        } else if target >= hi {
            target - (hi - 1)
        } else {
            0
        }
    }

    fn adversarial_streams(n: usize) -> Vec<(&'static str, Vec<f64>)> {
        let mut rng = SimRng::new(0xD1CE);
        let mut random: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
        let organ: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { i as f64 } else { (n - i) as f64 }).collect();
        let clustered: Vec<f64> = (0..n).map(|i| (i % 7) as f64 + if i % 97 == 0 { 1e6 } else { 0.0 }).collect();
        let sorted: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let reversed: Vec<f64> = (0..n).rev().map(|i| i as f64).collect();
        let constant: Vec<f64> = vec![3.25; n];
        rng.shuffle(&mut random);
        vec![
            ("sorted", sorted),
            ("reversed", reversed),
            ("constant", constant),
            ("organ-pipe", organ),
            ("clustered", clustered),
            ("random", random),
        ]
    }

    #[test]
    fn exact_in_small_regime() {
        let mut sk = QuantileSketch::new(64);
        let xs: Vec<f64> = vec![5.0, 1.0, 9.0, 3.0, 7.0];
        for &x in &xs {
            sk.push(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(sk.query(0.0), 1.0);
        assert_eq!(sk.query(0.5), 5.0);
        assert_eq!(sk.query(1.0), 9.0);
        assert_eq!(sk.count(), 5);
        assert_eq!(sk.rank_error_bound(), 0.0);
        assert!((sk.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rank_error_within_bound_on_adversarial_distributions() {
        for n in [10_000usize, 60_000] {
            for (name, xs) in adversarial_streams(n) {
                let mut sk = QuantileSketch::new(256);
                for &x in &xs {
                    sk.push(x);
                }
                let mut sorted = xs.clone();
                sorted.sort_by(|a, b| a.total_cmp(b));
                let bound = (sk.rank_error_bound() * n as f64).ceil() as usize + 1;
                for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
                    let got = sk.query(q);
                    let err = exact_rank_error(&sorted, q, got);
                    assert!(
                        err <= bound,
                        "{name} n={n} q={q}: rank error {err} > bound {bound} (got {got})"
                    );
                }
            }
        }
    }

    #[test]
    fn merge_matches_flat_fold_regardless_of_parallelism() {
        // Chunk summaries are pure; the canonical result is the flat fold
        // in chunk order. Computing the chunks serially or on a pool must
        // not change a single emitted digit.
        let chunks: Vec<Vec<f64>> = (0..16)
            .map(|c| {
                let mut rng = SimRng::new(0xC0FFEE ^ c as u64);
                (0..5_000).map(|_| rng.lognormal(3.0, 1.2)).collect()
            })
            .collect();
        let sketch_chunk = |xs: &Vec<f64>| {
            let mut sk = QuantileSketch::new(128);
            for &x in xs {
                sk.push(x);
            }
            sk
        };
        let serial: Vec<QuantileSketch> = chunks.iter().map(sketch_chunk).collect();
        let pooled: Vec<QuantileSketch> = crate::par::Pool::with_jobs(8).map_ref(&chunks, sketch_chunk);
        let fold = |summaries: &[QuantileSketch]| {
            let mut acc = QuantileSketch::new(128);
            for s in summaries {
                acc.merge(s);
            }
            [0.01, 0.25, 0.5, 0.75, 0.99].map(|q| format!("{:.6}", acc.query(q))).join(" ")
        };
        assert_eq!(fold(&serial), fold(&pooled));
    }

    #[test]
    fn merged_sketch_stays_within_bound() {
        let n = 40_000usize;
        let xs: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 1000.0).collect();
        let mut shards: Vec<QuantileSketch> = (0..8).map(|_| QuantileSketch::new(256)).collect();
        for (i, &x) in xs.iter().enumerate() {
            if let Some(s) = shards.get_mut((i / (n / 8)).min(7)) {
                s.push(x);
            }
        }
        let mut acc = QuantileSketch::new(256);
        for s in &shards {
            acc.merge(s);
        }
        assert_eq!(acc.count(), n as u64);
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let bound = (acc.rank_error_bound() * n as f64).ceil() as usize + 1;
        for q in [0.05, 0.5, 0.95] {
            let err = exact_rank_error(&sorted, q, acc.query(q));
            assert!(err <= bound, "q={q}: {err} > {bound}");
        }
    }

    #[test]
    fn moments_merge_is_exact() {
        let mut a = Moments::new();
        let mut b = Moments::new();
        for i in 0..100 {
            a.push(i as f64);
        }
        for i in 100..250 {
            b.push(i as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 250);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 249.0);
        assert!((a.mean() - 124.5).abs() < 1e-9);
    }

    #[test]
    fn state_bytes_grow_logarithmically() {
        let mut sk = QuantileSketch::new(64);
        for i in 0..1_000_000u64 {
            sk.push((i % 1000) as f64);
        }
        // ~log2(1e6/64) = 14 levels of 64 f64s — tens of KiB, not MiBs.
        assert!(sk.state_bytes() < 64 * 1024, "state {}", sk.state_bytes());
        assert!(sk.rank_error_bound() < 0.2);
    }

    #[test]
    fn nearest_rank_convention() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_nearest_rank(&sorted, 0.0), 1.0);
        assert_eq!(percentile_nearest_rank(&sorted, 0.5), 3.0);
        assert_eq!(percentile_nearest_rank(&sorted, 0.9), 5.0);
        assert_eq!(percentile_nearest_rank(&sorted, 1.0), 5.0);
        assert_eq!(percentile_nearest_rank(&[], 0.5), 0.0);
    }
}
