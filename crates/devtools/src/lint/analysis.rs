//! Interprocedural analyses over the workspace call graph.
//!
//! Three passes (DESIGN.md §8):
//!
//! - **panic-reachability** — token-level panic sites (`panic!`,
//!   `.unwrap()`, slice indexing, …) anywhere in the workspace seed a
//!   "may panic" set; the set propagates backwards over call edges
//!   (exact *and* approximate — conservative), and every `[panic]`-path
//!   entry point that can transitively reach a seed is reported with
//!   its full call chain. Pragma'd seed sites are audited invariants
//!   and do not seed.
//! - **map-order-taint** — `HashMap`/`HashSet` mentions seed an
//!   "unordered" set (pragma'd or not — a pragma justifies local use,
//!   not downstream artifact stability); functions on artifact-emitting
//!   paths (`[interproc] artifact_paths`) that can reach a seed are
//!   reported with the chain.
//! - **wallclock-taint** — `SystemTime`/`Instant` mentions seed a
//!   wall-clock set, except in `[skip] no-wallclock` files (audited
//!   sink boundaries — the bench harness); taint propagates within a
//!   crate, and any cross-crate call into a tainted function is
//!   reported at the call site.
//!
//! Plus the purely local **par-captured-rng** check, whose input (draws
//! on captured receivers inside `devtools::par` closures) the item
//! extractor collects per function.
//!
//! Test nodes are invisible to all four analyses.

use super::config::{path_has_prefix, Config};
use super::graph::{EdgeKind, Graph};
use super::Finding;

/// A token-level site seeding an analysis, with the lint that found it.
#[derive(Clone, Debug)]
pub struct SeedSite {
    /// Root-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The token lint that matched (`no-unwrap`, `no-unordered-map`, …).
    pub lint: &'static str,
}

/// All seeds collected during the token pass.
#[derive(Clone, Debug, Default)]
pub struct Seeds {
    /// Unsuppressed panic-pattern sites outside test regions, any file.
    pub panic: Vec<SeedSite>,
    /// `HashMap`/`HashSet` sites (including pragma-suppressed ones).
    pub unordered: Vec<SeedSite>,
    /// Wall-clock sites outside `[skip] no-wallclock` files.
    pub wallclock: Vec<SeedSite>,
}

/// Run every interprocedural analysis; returns findings (unsorted —
/// the caller merges and sorts with the token findings).
pub fn run(graph: &Graph, seeds: &Seeds, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    panic_reachability(graph, &seeds.panic, cfg, &mut out);
    par_captured_rng(graph, &mut out);
    reach_taint(
        graph,
        &seeds.unordered,
        &cfg.artifact_paths,
        "map-order-taint",
        "artifact-emitting entry point can reach hasher-ordered iteration",
        &mut out,
    );
    wallclock_taint(graph, &seeds.wallclock, &mut out);
    out
}

/// Attach each seed to the innermost function containing it. Seeds
/// outside any function body (module-level consts) cannot be reached by
/// a call and are dropped here by construction.
fn attach(graph: &Graph, seeds: &[SeedSite]) -> Vec<Vec<&'static str>> {
    let mut per_node: Vec<Vec<(u32, u32, &'static str)>> = vec![Vec::new(); graph.nodes.len()];
    for s in seeds {
        if let Some(i) = graph.node_at(&s.file, s.line) {
            if !graph.nodes[i].is_test {
                per_node[i].push((s.line, s.col, s.lint));
            }
        }
    }
    // Keep deterministic first-site-per-node info via sorted order.
    per_node
        .into_iter()
        .map(|mut v| {
            v.sort();
            v.into_iter().map(|(_, _, l)| l).collect()
        })
        .collect()
}

/// First seed site (line, col, lint) attached to a node, for chain tails.
fn first_seed<'a>(graph: &Graph, node: usize, seeds: &'a [SeedSite]) -> Option<&'a SeedSite> {
    let n = &graph.nodes[node];
    seeds
        .iter()
        .filter(|s| s.file == n.file && s.line >= n.body.0 && s.line <= n.body.1)
        .min_by_key(|s| (s.line, s.col))
}

/// Backwards fixpoint: `reaches[n]` = n is seeded or calls (transitively,
/// over exact + approx edges, skipping test nodes) a seeded function.
fn can_reach(graph: &Graph, seeded: &[bool]) -> Vec<bool> {
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); graph.nodes.len()];
    for (from, edges) in graph.edges.iter().enumerate() {
        if graph.nodes[from].is_test {
            continue;
        }
        for e in edges {
            if !graph.nodes[e.to].is_test {
                radj[e.to].push(from);
            }
        }
    }
    let mut reach = seeded.to_vec();
    let mut work: Vec<usize> = (0..graph.nodes.len()).filter(|&i| reach[i]).collect();
    while let Some(n) = work.pop() {
        for &caller in &radj[n] {
            if !reach[caller] {
                reach[caller] = true;
                work.push(caller);
            }
        }
    }
    reach
}

/// BFS the shortest call chain from `entry` to any seeded node, moving
/// only through nodes that can reach a seed. Returns node indices
/// `entry → … → seeded`.
fn shortest_chain(
    graph: &Graph,
    entry: usize,
    reach: &[bool],
    seeded: &[bool],
) -> Option<Vec<usize>> {
    let mut prev: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut visited = vec![false; graph.nodes.len()];
    let mut queue = std::collections::VecDeque::new();
    visited[entry] = true;
    queue.push_back(entry);
    while let Some(n) = queue.pop_front() {
        if seeded[n] && n != entry {
            let mut chain = vec![n];
            let mut cur = n;
            while let Some(p) = prev[cur] {
                chain.push(p);
                cur = p;
            }
            chain.reverse();
            return Some(chain);
        }
        for e in &graph.edges[n] {
            if !visited[e.to] && reach[e.to] && !graph.nodes[e.to].is_test {
                visited[e.to] = true;
                prev[e.to] = Some(n);
                queue.push_back(e.to);
            }
        }
    }
    None
}

/// Render `a → b → c` with the seed site appended.
fn chain_text(graph: &Graph, chain: &[usize], seed: Option<&SeedSite>) -> String {
    let mut s = String::new();
    for (i, &n) in chain.iter().enumerate() {
        if i > 0 {
            s.push_str(" -> ");
        }
        let node = &graph.nodes[n];
        s.push_str(&node.display());
        s.push_str(&format!(" ({}:{})", node.file, node.line));
    }
    if let Some(seed) = seed {
        s.push_str(&format!(" ; {} site at {}:{}", seed.lint, seed.file, seed.line));
    }
    s
}

/// Is this node an entry point for the given path-prefix policy set?
fn is_entry(graph: &Graph, n: usize, paths: &[String]) -> bool {
    !graph.nodes[n].is_test
        && paths.iter().any(|p| path_has_prefix(&graph.nodes[n].file, p))
}

fn panic_reachability(graph: &Graph, seeds: &[SeedSite], cfg: &Config, out: &mut Vec<Finding>) {
    if seeds.is_empty() || cfg.panic_paths.is_empty() {
        return;
    }
    let attached = attach(graph, seeds);
    let seeded: Vec<bool> = attached.iter().map(|v| !v.is_empty()).collect();
    let reach = can_reach(graph, &seeded);
    for n in 0..graph.nodes.len() {
        if !is_entry(graph, n, &cfg.panic_paths) {
            continue;
        }
        if seeded[n] {
            continue; // entry-local sites are the token lints' findings
        }
        if !reach[n] {
            continue;
        }
        let Some(chain) = shortest_chain(graph, n, &reach, &seeded) else { continue };
        let tail = *chain.last().unwrap_or(&n);
        let seed = first_seed(graph, tail, seeds);
        let node = &graph.nodes[n];
        out.push(Finding {
            file: node.file.clone(),
            line: node.line,
            col: node.col,
            lint: "panic-reachability".to_string(),
            message: format!(
                "hot entry point `{}` can transitively reach a panic: {}",
                node.display(),
                chain_text(graph, &chain, seed),
            ),
        });
    }
}

fn par_captured_rng(graph: &Graph, out: &mut Vec<Finding>) {
    for n in &graph.nodes {
        if n.is_test {
            continue;
        }
        for c in &n.rng_captures {
            out.push(Finding {
                file: n.file.clone(),
                line: c.line,
                col: c.col,
                lint: "par-captured-rng".to_string(),
                message: format!(
                    "`{}.{}()` draws from a captured RNG inside a closure passed to `{}`; \
                     fork one RNG per item outside the parallel region",
                    c.receiver, c.method, c.par_call,
                ),
            });
        }
    }
}

/// Shared shape of map-order taint: entry points under `entry_paths`
/// that can transitively reach a seeded function.
fn reach_taint(
    graph: &Graph,
    seeds: &[SeedSite],
    entry_paths: &[String],
    lint: &str,
    what: &str,
    out: &mut Vec<Finding>,
) {
    if seeds.is_empty() || entry_paths.is_empty() {
        return;
    }
    let attached = attach(graph, seeds);
    let seeded: Vec<bool> = attached.iter().map(|v| !v.is_empty()).collect();
    let reach = can_reach(graph, &seeded);
    for n in 0..graph.nodes.len() {
        if !is_entry(graph, n, entry_paths) || seeded[n] || !reach[n] {
            continue;
        }
        let Some(chain) = shortest_chain(graph, n, &reach, &seeded) else { continue };
        let tail = *chain.last().unwrap_or(&n);
        let seed = first_seed(graph, tail, seeds);
        let node = &graph.nodes[n];
        out.push(Finding {
            file: node.file.clone(),
            line: node.line,
            col: node.col,
            lint: lint.to_string(),
            message: format!("{what}: {}", chain_text(graph, &chain, seed)),
        });
    }
}

fn wallclock_taint(graph: &Graph, seeds: &[SeedSite], out: &mut Vec<Finding>) {
    if seeds.is_empty() {
        return;
    }
    let attached = attach(graph, seeds);
    let seeded: Vec<bool> = attached.iter().map(|v| !v.is_empty()).collect();

    // Propagate only within a crate: taint stops at crate boundaries,
    // where the crossing itself is the finding.
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); graph.nodes.len()];
    for (from, edges) in graph.edges.iter().enumerate() {
        if graph.nodes[from].is_test {
            continue;
        }
        for e in edges {
            if !graph.nodes[e.to].is_test && graph.nodes[from].krate == graph.nodes[e.to].krate {
                radj[e.to].push(from);
            }
        }
    }
    let mut taint = seeded.clone();
    let mut work: Vec<usize> = (0..graph.nodes.len()).filter(|&i| taint[i]).collect();
    while let Some(n) = work.pop() {
        for &caller in &radj[n] {
            if !taint[caller] {
                taint[caller] = true;
                work.push(caller);
            }
        }
    }

    let mut sites = std::collections::BTreeSet::new();
    for (from, edges) in graph.edges.iter().enumerate() {
        let caller = &graph.nodes[from];
        if caller.is_test {
            continue;
        }
        for e in edges {
            let callee = &graph.nodes[e.to];
            if callee.is_test || caller.krate == callee.krate || !taint[e.to] {
                continue;
            }
            // Approximate edges are too weak to convict a cross-crate
            // boundary on their own; exact edges carry the finding.
            if e.kind != EdgeKind::Exact {
                continue;
            }
            if !sites.insert((caller.file.clone(), e.line, e.col, e.to)) {
                continue;
            }
            let seed = first_seed(graph, e.to, seeds)
                .map(|s| format!(" ({} site at {}:{})", s.lint, s.file, s.line))
                .unwrap_or_default();
            out.push(Finding {
                file: caller.file.clone(),
                line: e.line,
                col: e.col,
                lint: "wallclock-taint".to_string(),
                message: format!(
                    "cross-crate call into `{}` reaches a wall-clock read{}; \
                     pass timestamps in rather than reading clocks downstream",
                    callee.display(),
                    seed,
                ),
            });
        }
    }
}
