//! Deterministic file discovery for the lint engine.
//!
//! Walks the configured roots depth-first with directory entries sorted
//! by name, so the finding order — and therefore the `--report` artifact
//! — is identical on every platform and filesystem.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use super::config::{path_has_prefix, Config};

/// Collect every `.rs` file under the configured roots, as sorted
/// root-relative `/`-separated paths.
pub fn rust_files(root: &Path, cfg: &Config) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for r in &cfg.roots {
        let dir = root.join(r);
        if dir.is_dir() {
            walk_dir(root, &dir, cfg, &mut out)?;
        } else if dir.is_file() && r.ends_with(".rs") {
            out.push(r.clone());
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn walk_dir(root: &Path, dir: &Path, cfg: &Config, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let rel = relative(root, &path);
        if cfg.exclude.iter().any(|x| path_has_prefix(&rel, x)) {
            continue;
        }
        if path.is_dir() {
            // `target/` never appears under the configured roots, but be
            // defensive about stray build output anyway.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk_dir(root, &path, cfg, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Root-relative `/`-separated path (findings and config both use it).
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
