//! Workspace call-graph assembly.
//!
//! Takes every file's [`items::FileItems`] and builds one graph whose
//! nodes are function definitions and whose edges are call sites,
//! classified by how the callee was resolved (DESIGN.md §8):
//!
//! - **exact** (`=`) — absolute/relative paths resolved through the
//!   crate map, `use` declarations (including renames, groups, and one
//!   level of re-export), `crate`/`self`/`super`/`Self` keywords, and
//!   `Type::method` against the workspace's `impl` blocks;
//! - **approx** (`~`) — method calls matched by name (with receiver
//!   type hints narrowing when available) and trait-dispatch fan-out to
//!   every implementation; callers must treat these as "may call";
//! - **unresolved** (`?`) — call sites whose callee lives outside the
//!   workspace (std, mostly) or defeats the resolver; recorded per
//!   node, never silently dropped.
//!
//! Type and trait names are assumed workspace-unique (they are, and a
//! collision only widens the approximation — still conservative).

use std::collections::{BTreeMap, BTreeSet};

use super::items::{CallKind, FileItems, RngCapture};

/// Edge classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Callee identified through path/type resolution.
    Exact,
    /// Callee matched by name or trait fan-out; treat as "may call".
    Approx,
}

/// One call edge, with the first call site's position for diagnostics.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Callee node index.
    pub to: usize,
    /// Resolution confidence.
    pub kind: EdgeKind,
    /// 1-based line of the (first) call site.
    pub line: u32,
    /// 1-based column of the (first) call site.
    pub col: u32,
}

/// One function definition in the workspace.
#[derive(Clone, Debug)]
pub struct Node {
    /// Root-relative file path.
    pub file: String,
    /// 1-based line of the `fn` name.
    pub line: u32,
    /// Column of the `fn` name.
    pub col: u32,
    /// Crate key (`sntp`, `mntp`, or a `bin:`/`test:` pseudo-crate).
    pub krate: String,
    /// Module path inside the crate (file modules + inline `mod`s).
    pub module: Vec<String>,
    /// Enclosing `impl`/`trait` type, when any.
    pub impl_type: Option<String>,
    /// Function name.
    pub name: String,
    /// Inside a `#[cfg(test)]`/`#[test]` region — excluded from analyses.
    pub is_test: bool,
    /// Inclusive line extent of the definition.
    pub body: (u32, u32),
    /// Captured-RNG draws in par closures (determinism-taint input).
    pub rng_captures: Vec<RngCapture>,
}

impl Node {
    /// Canonical display path: `krate::module::Type::name`.
    pub fn display(&self) -> String {
        let mut s = self.krate.clone();
        for m in &self.module {
            s.push_str("::");
            s.push_str(m);
        }
        if let Some(t) = &self.impl_type {
            s.push_str("::");
            s.push_str(t);
        }
        s.push_str("::");
        s.push_str(&self.name);
        s
    }
}

/// The assembled workspace graph.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// All function nodes, in deterministic (file, position) order.
    pub nodes: Vec<Node>,
    /// Outgoing edges per node, deduped by callee, insertion-ordered.
    pub edges: Vec<Vec<Edge>>,
    /// Unresolved callee names per node, sorted and deduped. Method
    /// names carry a leading `.`.
    pub unresolved: Vec<Vec<String>>,
}

impl Graph {
    /// (exact, approx, unresolved-name) totals.
    pub fn edge_counts(&self) -> (usize, usize, usize) {
        let exact = self.edges.iter().flatten().filter(|e| e.kind == EdgeKind::Exact).count();
        let approx = self.edges.iter().flatten().filter(|e| e.kind == EdgeKind::Approx).count();
        let unres = self.unresolved.iter().map(Vec::len).sum();
        (exact, approx, unres)
    }

    /// Node index for a (file, line) position — the innermost function
    /// whose extent contains the line.
    pub fn node_at(&self, file: &str, line: u32) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.file == file && line >= n.body.0 && line <= n.body.1 {
                let tighter = best.map_or(true, |b| {
                    let bb = &self.nodes[b];
                    (n.body.1 - n.body.0) < (bb.body.1 - bb.body.0)
                });
                if tighter {
                    best = Some(i);
                }
            }
        }
        best
    }
}

/// std container/type names whose methods never resolve into the
/// workspace: a typed receiver hint naming one of these makes the call
/// site unresolved instead of name-approximate, cutting `vec.push(..)`
/// -style noise without losing workspace edges.
fn is_std_type(t: &str) -> bool {
    matches!(
        t,
        "Vec" | "VecDeque"
            | "String"
            | "str"
            | "BTreeMap"
            | "BTreeSet"
            | "BinaryHeap"
            | "Option"
            | "Result"
            | "Box"
            | "Rc"
            | "Arc"
            | "RefCell"
            | "Cell"
            | "Mutex"
            | "RwLock"
            | "PathBuf"
            | "Path"
            | "File"
            | "Duration"
            | "Range"
            | "Ordering"
            | "Cow"
            | "OsString"
            | "OsStr"
            | "Formatter"
            | "Write"
            | "Read"
            | "BufWriter"
            | "BufReader"
            | "Sender"
            | "Receiver"
            | "u8"
            | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "usize"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "isize"
            | "f32"
            | "f64"
            | "bool"
            | "char"
    )
}

/// Derive (crate key, module path) for a root-relative file path.
/// `crate_names` maps `crates/<dir>` dir names to package idents
/// (`core` → `mntp`); bins, tests, and examples become pseudo-crates
/// (their `crate::` is file-local, and nothing imports them).
pub fn file_crate_module(rel: &str, crate_names: &BTreeMap<String, String>) -> (String, Vec<String>) {
    let parts: Vec<&str> = rel.split('/').collect();
    let stem = |s: &str| s.trim_end_matches(".rs").to_string();
    let module_of = |rest: &[&str]| -> Vec<String> {
        let mut m: Vec<String> = rest.iter().map(|p| stem(p)).collect();
        match m.last().map(String::as_str) {
            Some("mod") => {
                m.pop();
            }
            Some("lib") if m.len() == 1 => {
                m.pop();
            }
            _ => {}
        }
        m
    };
    if parts.len() >= 3 && parts[0] == "crates" {
        let dir = parts[1];
        let name = crate_names.get(dir).cloned().unwrap_or_else(|| dir.replace('-', "_"));
        match parts[2] {
            "src" => {
                let rest = &parts[3..];
                if rest == ["main.rs"] || rest.first() == Some(&"bin") {
                    let last = rest.last().copied().unwrap_or("main.rs");
                    return (format!("bin:{}/{}", dir, stem(last)), Vec::new());
                }
                return (name, module_of(rest));
            }
            "tests" | "examples" | "benches" => {
                let last = parts.last().copied().unwrap_or("x.rs");
                return (format!("test:{}/{}", dir, stem(last)), Vec::new());
            }
            _ => {}
        }
    }
    if parts.first() == Some(&"src") {
        let root_name =
            crate_names.get("").cloned().unwrap_or_else(|| "mntp_repro".to_string());
        let rest = &parts[1..];
        if rest == ["main.rs"] || rest.first() == Some(&"bin") {
            let last = rest.last().copied().unwrap_or("main.rs");
            return (format!("bin:root/{}", stem(last)), Vec::new());
        }
        return (root_name, module_of(rest));
    }
    if matches!(parts.first(), Some(&"tests") | Some(&"examples")) {
        let last = parts.last().copied().unwrap_or("x.rs");
        return (format!("test:root/{}", stem(last)), Vec::new());
    }
    // Fixture-style layouts (`fx/helper.rs`): first component is the
    // crate, the rest are modules.
    if parts.len() >= 2 {
        return (parts[0].to_string(), module_of(&parts[1..]));
    }
    ("file".to_string(), module_of(&parts))
}

struct FileCtx {
    krate: String,
    module: Vec<String>,
}

/// Build the workspace graph from per-file items. `files` must be in
/// deterministic order (the walker's sorted order); `crate_names` maps
/// `crates/*` dir names (and `""` for the root package) to crate idents.
pub fn build(files: &[(String, FileItems)], crate_names: &BTreeMap<String, String>) -> Graph {
    let crate_idents: BTreeSet<&str> = crate_names.values().map(String::as_str).collect();

    // Pass 1: nodes + per-file context.
    let mut g = Graph::default();
    let mut ctxs: Vec<FileCtx> = Vec::new();
    let mut node_of: Vec<Vec<usize>> = Vec::new(); // file idx → its node indices (parallel to items.fns)
    for (rel, items) in files.iter() {
        let (krate, module) = file_crate_module(rel, crate_names);
        let mut own = Vec::with_capacity(items.fns.len());
        for f in &items.fns {
            let mut m = module.clone();
            m.extend(f.module.iter().cloned());
            own.push(g.nodes.len());
            g.nodes.push(Node {
                file: rel.clone(),
                line: f.line,
                col: f.col,
                krate: krate.clone(),
                module: m,
                impl_type: f.impl_type.clone(),
                name: f.name.clone(),
                is_test: f.is_test,
                body: f.body_lines,
                rng_captures: f.rng_captures.clone(),
            });
        }
        ctxs.push(FileCtx { krate, module });
        node_of.push(own);
    }

    // Pass 2: indexes.
    // free functions: (krate, joined module, name) → nodes
    let mut free: BTreeMap<(String, String, String), Vec<usize>> = BTreeMap::new();
    // impl-block functions (methods + assoc fns): (type, name) → nodes
    let mut by_type: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    // trait-keyed methods (dispatch fan-out): (trait, name) → nodes
    let mut by_trait: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    // fallback name indexes
    let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    // (krate, joined module) → file idx, for one-level re-export chasing
    let mut module_file: BTreeMap<(String, String), usize> = BTreeMap::new();

    for (file_idx, (_, items)) in files.iter().enumerate() {
        let ctx = &ctxs[file_idx];
        module_file.insert((ctx.krate.clone(), ctx.module.join("::")), file_idx);
        for (k, f) in items.fns.iter().enumerate() {
            let idx = node_of[file_idx][k];
            let node = &g.nodes[idx];
            match &node.impl_type {
                Some(t) => {
                    by_type.entry((t.clone(), f.name.clone())).or_default().push(idx);
                    methods_by_name.entry(f.name.clone()).or_default().push(idx);
                    if let Some(tr) = &f.impl_trait {
                        by_trait.entry((tr.clone(), f.name.clone())).or_default().push(idx);
                    }
                }
                None => {
                    free.entry((
                        node.krate.clone(),
                        node.module.join("::"),
                        f.name.clone(),
                    ))
                    .or_default()
                    .push(idx);
                    free_by_name.entry(f.name.clone()).or_default().push(idx);
                }
            }
        }
    }

    // Resolve `use`-style paths to absolute (krate, module-segments).
    let abs_use = |ctx: &FileCtx, path: &[String]| -> Option<(String, Vec<String>)> {
        let mut i = 0usize;
        let (krate, mut module): (String, Vec<String>) = match path.first().map(String::as_str) {
            Some("crate") => {
                i = 1;
                (ctx.krate.clone(), Vec::new())
            }
            Some("self") => {
                i = 1;
                (ctx.krate.clone(), ctx.module.clone())
            }
            Some("super") => {
                let mut m = ctx.module.clone();
                while path.get(i).map(String::as_str) == Some("super") {
                    m.pop();
                    i += 1;
                }
                (ctx.krate.clone(), m)
            }
            Some(first) if crate_idents.contains(first) => {
                i = 1;
                (first.to_string(), Vec::new())
            }
            _ => return None, // std / external — not a workspace path
        };
        module.extend(path[i..].iter().cloned());
        Some((krate, module))
    };

    // Pass 3: resolve each call site.
    g.edges = vec![Vec::new(); g.nodes.len()];
    g.unresolved = vec![Vec::new(); g.nodes.len()];
    for (file_idx, (_, items)) in files.iter().enumerate() {
        let ctx = &ctxs[file_idx];
        for (k, f) in items.fns.iter().enumerate() {
            let caller = node_of[file_idx][k];
            let full_module = {
                let mut m = ctx.module.clone();
                m.extend(f.module.iter().cloned());
                m
            };
            let mut unres: BTreeSet<String> = BTreeSet::new();
            for call in &f.calls {
                let mut targets: Vec<(usize, EdgeKind)> = Vec::new();
                match &call.kind {
                    CallKind::Path(segs) => {
                        let name = segs.last().cloned().unwrap_or_default();
                        // CamelCase terminal segment = tuple-struct or
                        // enum-variant constructor, not a function call.
                        if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                            continue;
                        }
                        resolve_path(
                            segs,
                            &name,
                            ctx,
                            &full_module,
                            f.impl_type.as_deref(),
                            items,
                            files,
                            &ctxs,
                            &abs_use,
                            &free,
                            &by_type,
                            &by_trait,
                            &free_by_name,
                            &module_file,
                            &mut targets,
                            &mut unres,
                        );
                    }
                    CallKind::Method { name, recv_type } => {
                        resolve_method(
                            name,
                            recv_type.as_deref(),
                            f.impl_type.as_deref(),
                            &by_type,
                            &by_trait,
                            &methods_by_name,
                            &mut targets,
                            &mut unres,
                        );
                    }
                }
                for (to, kind) in targets {
                    if to == caller {
                        continue; // self-recursion adds nothing
                    }
                    let known = g.edges[caller].iter_mut().find(|e| e.to == to);
                    match known {
                        Some(e) => {
                            // Keep the strongest classification.
                            if kind == EdgeKind::Exact {
                                e.kind = EdgeKind::Exact;
                            }
                        }
                        None => g.edges[caller].push(Edge {
                            to,
                            kind,
                            line: call.line,
                            col: call.col,
                        }),
                    }
                }
            }
            g.unresolved[caller] = unres.into_iter().collect();
        }
    }
    g
}

/// Resolve a path call (`a::b::f(..)` or bare `f(..)`).
#[allow(clippy::too_many_arguments)]
fn resolve_path(
    segs: &[String],
    name: &str,
    ctx: &FileCtx,
    full_module: &[String],
    impl_type: Option<&str>,
    items: &FileItems,
    files: &[(String, FileItems)],
    ctxs: &[FileCtx],
    abs_use: &dyn Fn(&FileCtx, &[String]) -> Option<(String, Vec<String>)>,
    free: &BTreeMap<(String, String, String), Vec<usize>>,
    by_type: &BTreeMap<(String, String), Vec<usize>>,
    by_trait: &BTreeMap<(String, String), Vec<usize>>,
    free_by_name: &BTreeMap<String, Vec<usize>>,
    module_file: &BTreeMap<(String, String), usize>,
    targets: &mut Vec<(usize, EdgeKind)>,
    unres: &mut BTreeSet<String>,
) {
    let lookup_free = |krate: &str, module: &[String], name: &str| -> Option<&Vec<usize>> {
        free.get(&(krate.to_string(), module.join("::"), name.to_string()))
    };

    if segs.len() == 1 {
        // Bare call: same module (inline or file scope) first.
        if let Some(v) = lookup_free(&ctx.krate, full_module, name) {
            targets.extend(v.iter().map(|&i| (i, EdgeKind::Exact)));
            return;
        }
        if full_module != ctx.module {
            if let Some(v) = lookup_free(&ctx.krate, &ctx.module, name) {
                targets.extend(v.iter().map(|&i| (i, EdgeKind::Exact)));
                return;
            }
        }
        // `use` alias naming the function directly.
        for u in &items.uses {
            if u.alias == name {
                if let Some((k, m)) = abs_use(ctx, &u.path) {
                    if let Some((module, fname)) = m.split_last_with_name() {
                        if let Some(v) = lookup_free(&k, module, fname) {
                            targets.extend(v.iter().map(|&i| (i, EdgeKind::Exact)));
                            return;
                        }
                    }
                }
            }
        }
        // Glob imports.
        for gpath in &items.globs {
            if let Some((k, m)) = abs_use(ctx, gpath) {
                if let Some(v) = lookup_free(&k, &m, name) {
                    targets.extend(v.iter().map(|&i| (i, EdgeKind::Exact)));
                    return;
                }
            }
        }
        // Unique snake_case free fn anywhere → name-approximate.
        if let Some(v) = free_by_name.get(name) {
            if v.len() == 1 {
                targets.push((v[0], EdgeKind::Approx));
                return;
            }
        }
        unres.insert(name.to_string());
        return;
    }

    // Multi-segment path. `Self::f` first.
    let prefix = &segs[..segs.len() - 1];
    if prefix.len() == 1 && prefix[0] == "Self" {
        if let Some(t) = impl_type {
            if let Some(v) = by_type.get(&(t.to_string(), name.to_string())) {
                targets.extend(v.iter().map(|&i| (i, EdgeKind::Exact)));
                return;
            }
        }
    }

    // Candidate absolute prefixes.
    let mut cands: Vec<(String, Vec<String>)> = Vec::new();
    if let Some(c) = abs_use(ctx, prefix) {
        cands.push(c);
    }
    // Alias expansion of the first segment.
    if !matches!(prefix[0].as_str(), "crate" | "self" | "super" | "Self") {
        for u in &items.uses {
            if u.alias == prefix[0] {
                if let Some((k, m)) = abs_use(ctx, &u.path) {
                    let mut full = m;
                    full.extend(prefix[1..].iter().cloned());
                    cands.push((k, full));
                }
            }
        }
        // Module-relative submodule path.
        let mut rel = full_module.to_vec();
        rel.extend(prefix.iter().cloned());
        cands.push((ctx.krate.clone(), rel));
        if full_module != ctx.module {
            let mut rel = ctx.module.to_vec();
            rel.extend(prefix.iter().cloned());
            cands.push((ctx.krate.clone(), rel));
        }
    }

    for (k, m) in &cands {
        if let Some(v) = lookup_free(k, m, name) {
            targets.extend(v.iter().map(|&i| (i, EdgeKind::Exact)));
        }
    }
    if !targets.is_empty() {
        return;
    }

    // One level of re-export: `k::m::name` where module `m` has
    // `pub use <path>` binding `name`.
    for (k, m) in &cands {
        if let Some(&fi) = module_file.get(&(k.clone(), m.join("::"))) {
            let fctx = &ctxs[fi];
            for u in &files[fi].1.uses {
                if u.alias == name {
                    if let Some((k2, m2)) = abs_use(fctx, &u.path) {
                        if let Some((module, fname)) = m2.split_last_with_name() {
                            if let Some(v) = lookup_free(&k2, module, fname) {
                                targets.extend(v.iter().map(|&i| (i, EdgeKind::Exact)));
                            }
                        }
                    }
                }
            }
        }
    }
    if !targets.is_empty() {
        return;
    }

    // `Type::assoc_fn` / `Trait::method` by bare type name.
    let t = prefix.last().map(String::as_str).unwrap_or_default();
    if let Some(v) = by_type.get(&(t.to_string(), name.to_string())) {
        targets.extend(v.iter().map(|&i| (i, EdgeKind::Exact)));
        return;
    }
    if let Some(v) = by_trait.get(&(t.to_string(), name.to_string())) {
        targets.extend(v.iter().map(|&i| (i, EdgeKind::Approx)));
        return;
    }

    // Unique snake_case free fn anywhere.
    if let Some(v) = free_by_name.get(name) {
        if v.len() == 1 {
            targets.push((v[0], EdgeKind::Approx));
            return;
        }
    }
    unres.insert(segs.join("::"));
}

/// Resolve a method call (`recv.name(..)`).
fn resolve_method(
    name: &str,
    recv_type: Option<&str>,
    impl_type: Option<&str>,
    by_type: &BTreeMap<(String, String), Vec<usize>>,
    by_trait: &BTreeMap<(String, String), Vec<usize>>,
    methods_by_name: &BTreeMap<String, Vec<usize>>,
    targets: &mut Vec<(usize, EdgeKind)>,
    unres: &mut BTreeSet<String>,
) {
    let t = match recv_type {
        Some("Self") => impl_type,
        other => other,
    };
    if let Some(t) = t {
        if let Some(v) = by_type.get(&(t.to_string(), name.to_string())) {
            targets.extend(v.iter().map(|&i| (i, EdgeKind::Exact)));
            return;
        }
        if let Some(v) = by_trait.get(&(t.to_string(), name.to_string())) {
            // Trait-typed receiver: fan out to every implementation.
            targets.extend(v.iter().map(|&i| (i, EdgeKind::Approx)));
            return;
        }
        if is_std_type(t) {
            unres.insert(format!(".{name}"));
            return;
        }
        // Known workspace type without this method, or an opaque
        // generic — fall through to the name approximation.
    }
    match methods_by_name.get(name) {
        Some(v) if !v.is_empty() => {
            targets.extend(v.iter().map(|&i| (i, EdgeKind::Approx)));
        }
        _ => {
            unres.insert(format!(".{name}"));
        }
    }
}

/// Split `[a, b, f]` into (`[a, b]`, `f`) — tiny helper so use-path
/// resolution reads naturally.
trait SplitLastName {
    fn split_last_with_name(&self) -> Option<(&[String], &str)>;
}

impl SplitLastName for Vec<String> {
    fn split_last_with_name(&self) -> Option<(&[String], &str)> {
        self.split_last().map(|(last, init)| (init, last.as_str()))
    }
}

/// Render the graph as the committed `results/lint_callgraph.txt`
/// artifact: deterministic, sorted by node display path. Test nodes and
/// edges into them are omitted (analyses skip them too).
pub fn render(g: &Graph) -> String {
    let mut order: Vec<usize> = (0..g.nodes.len()).filter(|&i| !g.nodes[i].is_test).collect();
    order.sort_by(|&a, &b| {
        let (na, nb) = (&g.nodes[a], &g.nodes[b]);
        (na.display(), &na.file, na.line).cmp(&(nb.display(), &nb.file, nb.line))
    });
    let (exact, approx, unres) = g.edge_counts();
    let mut s = String::new();
    s.push_str("# workspace call graph — regenerate with `cargo run -p devtools --bin lint -- --graph`\n");
    s.push_str("# `=` exact edge, `~` name/trait-approximate edge, `?` unresolved callees (std or external)\n");
    s.push_str(&format!(
        "# {} nodes ({} test nodes omitted), {} exact edges, {} approx edges, {} unresolved names\n",
        order.len(),
        g.nodes.len() - order.len(),
        exact,
        approx,
        unres,
    ));
    for &i in &order {
        let n = &g.nodes[i];
        s.push_str(&format!("{} {}:{}\n", n.display(), n.file, n.line));
        let mut callees: Vec<&Edge> = g.edges[i].iter().filter(|e| !g.nodes[e.to].is_test).collect();
        callees.sort_by_key(|e| (g.nodes[e.to].display(), e.to));
        for e in callees {
            let mark = match e.kind {
                EdgeKind::Exact => '=',
                EdgeKind::Approx => '~',
            };
            s.push_str(&format!("  {} {}\n", mark, g.nodes[e.to].display()));
        }
        if !g.unresolved[i].is_empty() {
            s.push_str(&format!("  ? {}\n", g.unresolved[i].join(" ")));
        }
    }
    s
}
