//! A lightweight Rust tokenizer for the lint engine.
//!
//! This is not a full lexer — it only needs to be exact about the
//! boundaries that decide whether text is *code* or *data*: line
//! comments, nested block comments, string literals, raw strings with
//! arbitrary `#` fencing, byte strings, char literals (distinguished
//! from lifetimes), and numbers. Everything else is an identifier or a
//! punctuation token. `::` is fused into one token because every path
//! pattern the rule matcher uses is written with it.
//!
//! Positions are 1-based `(line, col)` of the token's first byte, so
//! findings print as editor-clickable `file:line:col`.

/// Token classification — only as fine as the matcher needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, `r#type`).
    Ident,
    /// A lifetime such as `'a` (the tick and the name, one token).
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// String / raw string / byte string literal, quotes included.
    Str,
    /// Char or byte-char literal, quotes included.
    Char,
    /// `// …` comment, text included (pragmas are read from these).
    LineComment,
    /// `/* … */` comment, possibly nested.
    BlockComment,
    /// Any other punctuation; `::` is a single two-byte token.
    Punct,
}

/// One token with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the first byte.
    pub col: u32,
}

impl Token {
    /// True for tokens the pattern matcher should consider (comments are
    /// handled separately, as pragma carriers).
    pub fn is_significant(&self) -> bool {
        !matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src`. Never fails: unterminated literals are swallowed to
/// end-of-file as a single token, which is the forgiving thing for a
/// linter to do.
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut c = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(b) = c.peek(0) {
        let (line, col, start) = (c.line, c.col, c.pos);
        let kind = match b {
            _ if b.is_ascii_whitespace() => {
                c.bump();
                continue;
            }
            b'/' if c.peek(1) == Some(b'/') => {
                while let Some(n) = c.peek(0) {
                    if n == b'\n' {
                        break;
                    }
                    c.bump();
                }
                TokenKind::LineComment
            }
            b'/' if c.peek(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (c.peek(0), c.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            c.bump();
                            c.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            c.bump();
                            c.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                eat_string(&mut c);
                TokenKind::Str
            }
            b'\'' => eat_tick(&mut c),
            b'r' | b'b' if raw_string_hashes(&c).is_some() => {
                let hashes = raw_string_hashes(&c).unwrap();
                eat_raw_string(&mut c, hashes);
                TokenKind::Str
            }
            b'b' if c.peek(1) == Some(b'"') => {
                c.bump();
                eat_string(&mut c);
                TokenKind::Str
            }
            b'b' if c.peek(1) == Some(b'\'') => {
                c.bump();
                eat_char(&mut c);
                TokenKind::Char
            }
            b'r' if c.peek(1) == Some(b'#') && c.peek(2).is_some_and(is_ident_start) => {
                // Raw identifier `r#ident`.
                c.bump();
                c.bump();
                while c.peek(0).is_some_and(is_ident_continue) {
                    c.bump();
                }
                TokenKind::Ident
            }
            _ if is_ident_start(b) => {
                while c.peek(0).is_some_and(is_ident_continue) {
                    c.bump();
                }
                TokenKind::Ident
            }
            _ if b.is_ascii_digit() => {
                eat_number(&mut c);
                TokenKind::Num
            }
            b':' if c.peek(1) == Some(b':') => {
                c.bump();
                c.bump();
                TokenKind::Punct
            }
            _ => {
                c.bump();
                TokenKind::Punct
            }
        };
        let text = src[start..c.pos].to_string();
        out.push(Token { kind, text, line, col });
    }
    out
}

/// If the cursor sits on the start of a raw (byte) string — `r"`, `r#"`,
/// `br##"` … — return the number of `#`s fencing it.
fn raw_string_hashes(c: &Cursor<'_>) -> Option<usize> {
    let mut i = 1; // past the `r` / `b`
    if c.peek(0) == Some(b'b') {
        if c.peek(1) != Some(b'r') {
            return None;
        }
        i = 2;
    }
    let mut hashes = 0;
    while c.peek(i) == Some(b'#') {
        hashes += 1;
        i += 1;
    }
    if c.peek(i) == Some(b'"') {
        Some(hashes)
    } else {
        None
    }
}

fn eat_raw_string(c: &mut Cursor<'_>, hashes: usize) {
    // Consume prefix up to and including the opening quote.
    while c.peek(0) != Some(b'"') {
        if c.bump().is_none() {
            return;
        }
    }
    c.bump();
    // Scan for `"` followed by exactly `hashes` hashes.
    'scan: while let Some(b) = c.bump() {
        if b == b'"' {
            for i in 0..hashes {
                if c.peek(i) != Some(b'#') {
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                c.bump();
            }
            return;
        }
    }
}

fn eat_string(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    while let Some(b) = c.bump() {
        match b {
            b'\\' => {
                c.bump();
            }
            b'"' => return,
            _ => {}
        }
    }
}

fn eat_char(c: &mut Cursor<'_>) {
    c.bump(); // opening tick
    while let Some(b) = c.bump() {
        match b {
            b'\\' => {
                c.bump();
            }
            b'\'' => return,
            _ => {}
        }
    }
}

/// Disambiguate `'` between a char literal and a lifetime.
///
/// After the tick: an escape (`'\n'`) or any single char followed by a
/// closing tick (`'x'`) is a char literal; an identifier *not* closed by
/// a tick (`'static`, `'a`) is a lifetime. `'_'` (the reserved
/// placeholder lifetime) tokenizes as a char literal here, which is
/// harmless for matching purposes.
fn eat_tick(c: &mut Cursor<'_>) -> TokenKind {
    match (c.peek(1), c.peek(2)) {
        (Some(b'\\'), _) => {
            eat_char(c);
            TokenKind::Char
        }
        (Some(n), Some(b'\'')) if n != b'\'' => {
            eat_char(c);
            TokenKind::Char
        }
        (Some(n), _) if is_ident_start(n) => {
            c.bump(); // tick
            while c.peek(0).is_some_and(is_ident_continue) {
                c.bump();
            }
            TokenKind::Lifetime
        }
        _ => {
            // Stray tick (macro-generated code edge cases): single punct.
            c.bump();
            TokenKind::Punct
        }
    }
}

fn eat_number(c: &mut Cursor<'_>) {
    // Consume digits, underscores, hex/bin/oct letters, suffixes, and a
    // decimal point when (and only when) a digit follows it, so ranges
    // like `0..10` and method calls like `1.max(2)` stay separate tokens.
    while let Some(b) = c.peek(0) {
        if b.is_ascii_alphanumeric() || b == b'_' {
            c.bump();
        } else if b == b'.' && c.peek(1).is_some_and(|n| n.is_ascii_digit()) {
            c.bump();
        } else {
            break;
        }
    }
}
