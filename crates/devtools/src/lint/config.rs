//! `lint.toml` — per-path lint policy.
//!
//! A deliberately small TOML subset (the workspace is hermetic, so no
//! TOML crate): `[section]` headers, `key = ["a", "b"]` string arrays
//! (single- or multi-line), and `#` comments. That is everything the
//! policy file needs:
//!
//! ```toml
//! [workspace]
//! roots   = ["crates", "src", "tests", "examples"]
//! exclude = ["crates/devtools/tests/lint_fixtures"]
//!
//! [skip]
//! # lint-name = [path prefixes where the lint does not run]
//! no-wallclock = ["crates/devtools/src/bench.rs"]
//!
//! [panic]
//! # panic-policy lints run ONLY under these paths (the hot-path set)
//! paths = ["crates/sntp/src", "crates/core/src/engine.rs"]
//! ```
//!
//! All paths are `/`-separated and relative to the repo root; a prefix
//! matches the path itself or anything below it.

use std::collections::BTreeMap;

/// Parsed policy.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Directories (relative to root) the walker descends into.
    pub roots: Vec<String>,
    /// Path prefixes excluded from walking entirely (fixture corpora).
    pub exclude: Vec<String>,
    /// lint name → path prefixes where that lint is skipped.
    pub skip: BTreeMap<String, Vec<String>>,
    /// Path prefixes where the panic-policy class applies.
    pub panic_paths: Vec<String>,
    /// Path prefixes whose functions are artifact-emitting entry points
    /// for the map-order-taint analysis (`[interproc] artifact_paths`).
    pub artifact_paths: Vec<String>,
}

impl Config {
    /// Policy used when no `lint.toml` exists: walk the conventional
    /// roots, apply every lint everywhere, panic policy nowhere.
    pub fn fallback() -> Config {
        Config {
            roots: vec!["crates".into(), "src".into(), "tests".into(), "examples".into()],
            ..Config::default()
        }
    }

    /// Does `lint` apply to `path` (a `/`-separated root-relative path)?
    pub fn lint_enabled(&self, lint: &str, is_panic_class: bool, path: &str) -> bool {
        if is_panic_class && !self.panic_paths.iter().any(|p| path_has_prefix(path, p)) {
            return false;
        }
        if let Some(prefixes) = self.skip.get(lint) {
            if prefixes.iter().any(|p| path_has_prefix(path, p)) {
                return false;
            }
        }
        // Bin targets own their process: exit codes are their interface.
        if lint == "no-process" && (path.contains("/bin/") || path.ends_with("main.rs")) {
            return false;
        }
        true
    }
}

/// True when `path` equals `prefix` or lives below it.
pub fn path_has_prefix(path: &str, prefix: &str) -> bool {
    path == prefix
        || (path.len() > prefix.len()
            && path.starts_with(prefix)
            && path.as_bytes()[prefix.len()] == b'/')
}

/// Sections the policy file may contain.
const SECTIONS: &[&str] = &["workspace", "skip", "panic", "interproc"];

/// Parse the config text. The parser is strict: unknown section names,
/// unknown keys, duplicate keys, and `[skip]` entries naming no known
/// lint are all line-numbered errors — a typo'd policy must fail loud,
/// not silently lint less.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut section = String::new();
    let mut seen: std::collections::BTreeSet<(String, String)> = std::collections::BTreeSet::new();
    let mut lines = text.lines().enumerate();
    while let Some((lineno, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(format!("lint.toml:{}: unterminated section header", lineno + 1));
            };
            section = name.trim().to_string();
            if !SECTIONS.contains(&section.as_str()) {
                return Err(format!(
                    "lint.toml:{}: unknown section `[{}]` (expected one of: {})",
                    lineno + 1,
                    section,
                    SECTIONS.join(", "),
                ));
            }
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(format!("lint.toml:{}: expected `key = [..]`", lineno + 1));
        };
        let key = line[..eq].trim().to_string();
        if section.is_empty() {
            return Err(format!("lint.toml:{}: `{key}` appears before any [section]", lineno + 1));
        }
        if !seen.insert((section.clone(), key.clone())) {
            return Err(format!(
                "lint.toml:{}: duplicate key `{key}` in section `[{section}]`",
                lineno + 1,
            ));
        }
        let mut value = line[eq + 1..].trim().to_string();
        // Multi-line arrays: keep consuming until the bracket closes.
        while !value.contains(']') {
            let Some((_, cont)) = lines.next() else {
                return Err(format!("lint.toml:{}: unterminated array", lineno + 1));
            };
            value.push(' ');
            value.push_str(strip_comment(cont).trim());
        }
        let items = parse_string_array(&value)
            .map_err(|e| format!("lint.toml:{}: {e}", lineno + 1))?;
        match (section.as_str(), key.as_str()) {
            ("workspace", "roots") => cfg.roots = items,
            ("workspace", "exclude") => cfg.exclude = items,
            ("panic", "paths") => cfg.panic_paths = items,
            ("interproc", "artifact_paths") => cfg.artifact_paths = items,
            ("skip", lint) => {
                if super::rules::lint_by_name(lint).is_none() {
                    return Err(format!(
                        "lint.toml:{}: `[skip]` key `{lint}` names no known lint",
                        lineno + 1,
                    ));
                }
                cfg.skip.insert(lint.to_string(), items);
            }
            (s, k) => {
                return Err(format!("lint.toml:{}: unknown key `{k}` in section `[{s}]`", lineno + 1));
            }
        }
    }
    if cfg.roots.is_empty() {
        cfg.roots = Config::fallback().roots;
    }
    Ok(cfg)
}

/// Remove a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `["a", "b"]` into its items.
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected a string array, got `{v}`"))?;
    let mut out = Vec::new();
    for piece in inner.split(',') {
        let p = piece.trim();
        if p.is_empty() {
            continue; // trailing comma
        }
        let s = p
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("expected a quoted string, got `{p}`"))?;
        out.push(s.to_string());
    }
    Ok(out)
}
