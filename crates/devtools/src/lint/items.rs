//! Item extraction for the interprocedural pass.
//!
//! Walks one file's token stream and recovers the items the call-graph
//! builder needs: `fn` definitions (with their enclosing `impl`/`mod`
//! context, parameter-type hints, and brace-matched body extents), `use`
//! declarations (aliases, renames, groups, globs), and the call sites
//! inside every body. This is deliberately *not* a parser — it is a
//! single forward scan with a scope stack, exact about the few
//! boundaries that matter (brace matching, signature extents) and
//! honest about everything it approximates (see DESIGN.md §8: exact /
//! name-approximate / unresolved).
//!
//! Approximations made here, by construction:
//! - Parameter and `let`-binding type hints keep only the first type
//!   ident after `:` (so `&mut Vec<Foo>` hints `Vec`), or the `Type` of
//!   a `let x = Type::new(..)` / `Type { .. }` initializer.
//! - Turbofish call sites (`f::<T>()`) and `<T as Trait>::f()` are not
//!   recognized as calls (they end up neither exact nor unresolved —
//!   the token before `(` is `>`); every other `path(` / `.method(`
//!   site is recorded.
//! - Closure bodies are scanned as part of their enclosing function.

use super::tokens::{Token, TokenKind};

/// One `use` declaration, flattened: `use a::{b, c as d};` yields two
/// entries with aliases `b` and `d`.
#[derive(Clone, Debug)]
pub struct UseDecl {
    /// The name this import binds in the file's scope.
    pub alias: String,
    /// Path segments as written (leading `crate`/`self`/`super` kept).
    pub path: Vec<String>,
}

/// How a call site names its callee.
#[derive(Clone, Debug)]
pub enum CallKind {
    /// `a::b::c(..)` or bare `c(..)` — segments as written.
    Path(Vec<String>),
    /// `recv.name(..)` — with a receiver type hint when one binding or
    /// parameter annotation supplies it (`None` for chained receivers).
    Method { name: String, recv_type: Option<String> },
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Shape and name of the callee.
    pub kind: CallKind,
    /// 1-based line of the callee name token.
    pub line: u32,
    /// 1-based column of the callee name token.
    pub col: u32,
}

/// A randomness draw on a receiver *captured* by a closure passed to one
/// of the `devtools::par` entry points — the determinism-taint smell.
#[derive(Clone, Debug)]
pub struct RngCapture {
    /// The captured receiver identifier.
    pub receiver: String,
    /// The draw method called on it (`gauss`, `fork`, …).
    pub method: String,
    /// The par entry point the closure was passed to (`par_map`, …).
    pub par_call: String,
    /// 1-based line of the draw.
    pub line: u32,
    /// 1-based column of the draw.
    pub col: u32,
}

/// One extracted function definition.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Inline-`mod` path inside the file (the file's own module path is
    /// prepended by the graph builder).
    pub module: Vec<String>,
    /// Enclosing `impl`/`trait` type name, when inside one.
    pub impl_type: Option<String>,
    /// Trait being implemented (`impl Trait for Type`) or declared
    /// (`trait Trait { fn with_default_body() {..} }`) — used to index
    /// methods under the trait name for dynamic-dispatch edges.
    pub impl_trait: Option<String>,
    /// 1-based position of the `fn` name token.
    pub line: u32,
    /// Column of the `fn` name token.
    pub col: u32,
    /// Inclusive line extent of the whole definition (signature + body).
    pub body_lines: (u32, u32),
    /// True when the definition sits inside a `#[cfg(test)]`/`#[test]`
    /// region — excluded from every interprocedural analysis.
    pub is_test: bool,
    /// Call sites found in the body.
    pub calls: Vec<CallSite>,
    /// Captured-RNG draws inside par closures.
    pub rng_captures: Vec<RngCapture>,
}

/// Everything extracted from one file.
#[derive(Clone, Debug, Default)]
pub struct FileItems {
    /// `use` declarations (file scope — inline-mod uses are lumped in).
    pub uses: Vec<UseDecl>,
    /// Glob imports: the path before `::*`.
    pub globs: Vec<Vec<String>>,
    /// Function definitions.
    pub fns: Vec<FnItem>,
}

/// Methods of `clocksim::rng::SimRng` that consume generator state. A
/// draw on a *captured* receiver inside a par closure makes output
/// depend on scheduling; `fork` is included because forking per item
/// inside the closure still advances the shared parent stream.
pub const RNG_DRAW_METHODS: &[&str] = &[
    "next_u64",
    "uniform",
    "uniform_range",
    "below",
    "int_range",
    "chance",
    "gauss",
    "normal",
    "lognormal",
    "exponential",
    "pareto",
    "index",
    "shuffle",
    "fork",
];

/// The `devtools::par` entry points whose closure arguments run on pool
/// workers. `Pool::map` is matched only through a pool-typed receiver
/// hint (plain `.map(` is Option/Iterator noise).
const PAR_ENTRY_POINTS: &[&str] = &["par_map", "map_ref", "invoke", "join"];

/// Rust keywords that can directly precede `(` without being calls.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "else"
            | "let"
            | "in"
            | "as"
            | "move"
            | "ref"
            | "mut"
            | "pub"
            | "where"
            | "fn"
            | "impl"
            | "dyn"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "unsafe"
            | "extern"
            | "crate"
            | "self"
            | "Self"
            | "super"
            | "await"
            | "async"
    )
}

/// Obvious std constructors whose `Name(` sites are never workspace
/// calls; dropping them keeps the unresolved lists readable without
/// hiding anything a human would call an edge.
fn is_std_constructor(s: &str) -> bool {
    matches!(s, "Some" | "None" | "Ok" | "Err")
}

struct Scope {
    kind: ScopeKind,
}

enum ScopeKind {
    /// `mod name {`.
    Mod,
    /// `impl Type {` / `trait Name {` — the type-name context.
    Impl,
    /// A function body: index into `out.fns`.
    Fn(usize),
    /// Any other `{` (blocks, match arms, struct literals…).
    Other,
}

/// Per-function binding table: variable name → first type ident hint.
type Bindings = std::collections::BTreeMap<String, String>;

/// Extract items from a file's tokens. `in_test` answers whether a line
/// sits inside a `#[cfg(test)]`/`#[test]` region (the caller owns that
/// computation — `rules::test_regions` already does it).
pub fn extract(tokens: &[Token], in_test: impl Fn(u32) -> bool) -> FileItems {
    let sig: Vec<&Token> = tokens.iter().filter(|t| t.is_significant()).collect();
    let mut out = FileItems::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut mod_path: Vec<String> = Vec::new();
    let mut impl_stack: Vec<(String, Option<String>)> = Vec::new();
    // Active function scopes (innermost last) with their binding tables.
    let mut fn_stack: Vec<(usize, Bindings)> = Vec::new();

    let mut i = 0usize;
    while i < sig.len() {
        let t = sig[i];
        match t.text.as_str() {
            "use" if t.kind == TokenKind::Ident => {
                i = parse_use(&sig, i, &mut out);
                continue;
            }
            "mod" if t.kind == TokenKind::Ident => {
                // `mod name {` opens an inline module; `mod name;` is a
                // file-module declaration (path handled by the walker).
                if let (Some(name), Some(next)) = (sig.get(i + 1), sig.get(i + 2)) {
                    if name.kind == TokenKind::Ident && next.text == "{" {
                        mod_path.push(name.text.clone());
                        scopes.push(Scope { kind: ScopeKind::Mod });
                        i += 3;
                        continue;
                    }
                }
                i += 1;
                continue;
            }
            "impl" | "trait" if t.kind == TokenKind::Ident => {
                if let Some((type_name, trait_name, brace)) =
                    parse_impl_header(&sig, i, t.text == "trait")
                {
                    impl_stack.push((type_name, trait_name));
                    scopes.push(Scope { kind: ScopeKind::Impl });
                    i = brace + 1;
                    continue;
                }
                i += 1;
                continue;
            }
            "fn" if t.kind == TokenKind::Ident => {
                if let Some(parsed) = parse_fn(&sig, i) {
                    let ParsedFn { name, name_line, name_col, bindings, body_open } = parsed;
                    match body_open {
                        Some(open) => {
                            let item = FnItem {
                                name,
                                module: mod_path.clone(),
                                impl_type: impl_stack.last().map(|x| x.0.clone()),
                                impl_trait: impl_stack.last().and_then(|x| x.1.clone()),
                                line: name_line,
                                col: name_col,
                                body_lines: (t.line, t.line), // end patched at pop
                                is_test: in_test(name_line),
                                calls: Vec::new(),
                                rng_captures: Vec::new(),
                            };
                            out.fns.push(item);
                            let idx = out.fns.len() - 1;
                            scopes.push(Scope { kind: ScopeKind::Fn(idx) });
                            fn_stack.push((idx, bindings));
                            i = open + 1;
                        }
                        None => {
                            // Trait method declaration (`fn f(..);`) —
                            // no body, no node.
                            i += 1;
                        }
                    }
                    continue;
                }
                i += 1;
                continue;
            }
            "let" if t.kind == TokenKind::Ident => {
                if let Some((idx, bindings)) = fn_stack.last_mut() {
                    let _ = idx;
                    record_let_hint(&sig, i, bindings);
                }
                i += 1;
                continue;
            }
            "{" => {
                scopes.push(Scope { kind: ScopeKind::Other });
                i += 1;
                continue;
            }
            "}" => {
                if let Some(s) = scopes.pop() {
                    match s.kind {
                        ScopeKind::Mod => {
                            mod_path.pop();
                        }
                        ScopeKind::Impl => {
                            impl_stack.pop();
                        }
                        ScopeKind::Fn(idx) => {
                            if let Some(f) = out.fns.get_mut(idx) {
                                f.body_lines.1 = t.line;
                            }
                            fn_stack.pop();
                        }
                        ScopeKind::Other => {}
                    }
                }
                i += 1;
                continue;
            }
            _ => {}
        }

        // Call-site detection, only inside a function body.
        if let Some((fn_idx, _)) = fn_stack.last() {
            let fn_idx = *fn_idx;
            if t.kind == TokenKind::Ident
                && sig.get(i + 1).is_some_and(|n| n.text == "(")
                && !is_keyword(&t.text)
                && !is_std_constructor(&t.text)
            {
                let prev = i.checked_sub(1).map(|p| sig[p].text.as_str());
                if prev == Some(".") {
                    // `recv.name(` — method call.
                    let recv = i.checked_sub(2).map(|p| sig[p]);
                    let (recv_ident, recv_type) = receiver_hint(recv, &fn_stack, &impl_stack);
                    let name = t.text.clone();
                    // Par entry point? Scan its closure arguments for
                    // captured-RNG draws.
                    let par_hit = PAR_ENTRY_POINTS.contains(&name.as_str())
                        || (name == "map"
                            && (recv_type.as_deref() == Some("Pool")
                                || recv_ident.as_deref().is_some_and(|r| r.contains("pool"))));
                    if par_hit {
                        scan_par_closures(&sig, i + 1, &name, &fn_stack, &mut out, fn_idx);
                    }
                    if let Some(f) = out.fns.get_mut(fn_idx) {
                        f.calls.push(CallSite {
                            kind: CallKind::Method { name, recv_type },
                            line: t.line,
                            col: t.col,
                        });
                    }
                } else if prev != Some("fn") && prev != Some("!") {
                    // Path call: walk the `::`-joined segments backwards.
                    let mut segs = vec![t.text.clone()];
                    let mut j = i;
                    while j >= 2 && sig[j - 1].text == "::" && sig[j - 2].kind == TokenKind::Ident {
                        segs.insert(0, sig[j - 2].text.clone());
                        j -= 2;
                    }
                    // A macro path (`path::macro!(..)`) never reaches
                    // here (the `!` sits before `(`, not after an ident).
                    let free_par = segs.len() >= 2
                        && segs[segs.len() - 2] == "par"
                        && segs[segs.len() - 1] == "par_map"
                        || (segs.len() == 1 && segs[0] == "par_map");
                    if free_par {
                        scan_par_closures(&sig, i + 1, "par_map", &fn_stack, &mut out, fn_idx);
                    }
                    if let Some(f) = out.fns.get_mut(fn_idx) {
                        f.calls.push(CallSite { kind: CallKind::Path(segs), line: t.line, col: t.col });
                    }
                }
            }
        }
        i += 1;
    }
    out
}

struct ParsedFn {
    name: String,
    name_line: u32,
    name_col: u32,
    bindings: Bindings,
    /// Significant-token index of the body's `{`, or None for `fn f(..);`.
    body_open: Option<usize>,
}

/// Parse a `fn` signature starting at the `fn` token index. Returns the
/// name, parameter-type hints, and the body-brace index.
fn parse_fn(sig: &[&Token], at: usize) -> Option<ParsedFn> {
    let name_tok = sig.get(at + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    // Find the parameter list's `(` (skipping generics `<...>`).
    let mut i = at + 2;
    if sig.get(i).is_some_and(|t| t.text == "<") {
        let mut depth = 0usize;
        while i < sig.len() {
            match sig[i].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    if !sig.get(i).is_some_and(|t| t.text == "(") {
        return None;
    }
    // Walk the parameter list, collecting `name: Type` hints.
    let mut bindings = Bindings::new();
    let open = i;
    let mut depth = 0usize;
    let mut piece_start = open + 1;
    i = open;
    while i < sig.len() {
        match sig[i].text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => {
                depth = depth.saturating_sub(1);
                if depth == 0 && sig[i].text == ")" {
                    record_param_hint(&sig[piece_start..i], &mut bindings);
                    break;
                }
            }
            "," if depth == 1 => {
                record_param_hint(&sig[piece_start..i], &mut bindings);
                piece_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    // After the params: return type / where clause, then `{` or `;`.
    let mut depth = 0usize;
    while i < sig.len() {
        match sig[i].text.as_str() {
            "{" if depth == 0 => {
                return Some(ParsedFn {
                    name: name_tok.text.clone(),
                    name_line: name_tok.line,
                    name_col: name_tok.col,
                    bindings,
                    body_open: Some(i),
                });
            }
            ";" if depth == 0 => {
                return Some(ParsedFn {
                    name: name_tok.text.clone(),
                    name_line: name_tok.line,
                    name_col: name_tok.col,
                    bindings,
                    body_open: None,
                });
            }
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => depth = depth.saturating_sub(1),
            // `-> impl Fn(..)` never contains a stray top-level `{`.
            _ => {}
        }
        i += 1;
    }
    None
}

/// `name: &mut Type<..>` → `name ↦ Type` (first type ident after `:`,
/// skipping reference/mutability/dyn/impl noise).
fn record_param_hint(piece: &[&Token], bindings: &mut Bindings) {
    let name = piece
        .iter()
        .find(|t| t.kind == TokenKind::Ident && !matches!(t.text.as_str(), "mut" | "ref"));
    let colon = piece.iter().position(|t| t.text == ":");
    if let (Some(name), Some(colon)) = (name, colon) {
        let ty = piece[colon + 1..].iter().find(|t| {
            t.kind == TokenKind::Ident && !matches!(t.text.as_str(), "mut" | "dyn" | "impl")
        });
        if let Some(ty) = ty {
            bindings.insert(name.text.clone(), ty.text.clone());
        }
    }
}

/// `let [mut] name: Type = ..` or `let [mut] name = Type::new(..)` /
/// `Type { .. }` → binding hint. Anything fancier is left unhinted.
fn record_let_hint(sig: &[&Token], at: usize, bindings: &mut Bindings) {
    let mut i = at + 1;
    if sig.get(i).is_some_and(|t| t.text == "mut") {
        i += 1;
    }
    let Some(name) = sig.get(i).filter(|t| t.kind == TokenKind::Ident) else { return };
    match sig.get(i + 1).map(|t| t.text.as_str()) {
        Some(":") => {
            if let Some(ty) = sig[i + 2..].iter().take(6).find(|t| {
                t.kind == TokenKind::Ident && !matches!(t.text.as_str(), "mut" | "dyn" | "impl")
            }) {
                bindings.insert(name.text.clone(), ty.text.clone());
            }
        }
        Some("=") => {
            let init = sig.get(i + 2);
            let follow = sig.get(i + 3).map(|t| t.text.as_str());
            if let Some(init) = init {
                let looks_type = init.kind == TokenKind::Ident
                    && init.text.chars().next().is_some_and(|c| c.is_ascii_uppercase());
                if looks_type && matches!(follow, Some("::") | Some("{")) {
                    bindings.insert(name.text.clone(), init.text.clone());
                }
            }
        }
        _ => {}
    }
}

/// Parse an `impl`/`trait` header; returns the implemented type's name
/// (for `impl Trait for Type`, the `Type`), the trait name when there is
/// one (for a `trait` declaration, the trait itself), and the `{` index.
fn parse_impl_header(
    sig: &[&Token],
    at: usize,
    is_trait_decl: bool,
) -> Option<(String, Option<String>, usize)> {
    let mut i = at + 1;
    let mut depth = 0usize;
    let mut last_ident_at_top: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut saw_where = false;
    // `trait Name: Bound {` — bounds after `:` are not the name.
    let mut saw_colon = false;
    while i < sig.len() {
        let tx = sig[i].text.as_str();
        match tx {
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => depth = depth.saturating_sub(1),
            "{" if depth == 0 => {
                let name = after_for.clone().or(last_ident_at_top.clone())?;
                let trait_name = if is_trait_decl {
                    Some(name.clone())
                } else if saw_for {
                    last_ident_at_top
                } else {
                    None
                };
                return Some((name, trait_name, i));
            }
            ";" if depth == 0 => return None, // `trait Foo: Bar;`-ish — no body
            "for" if depth == 0 => saw_for = true,
            "where" if depth == 0 => saw_where = true,
            ":" if depth == 0 && is_trait_decl => saw_colon = true,
            _ if depth == 0
                && !saw_where
                && !saw_colon
                && sig[i].kind == TokenKind::Ident
                && !is_keyword(tx) =>
            {
                if saw_for {
                    // Idents after `for` — later path segments overwrite
                    // (the last one is the type name).
                    after_for = Some(tx.to_string());
                } else {
                    last_ident_at_top = Some(tx.to_string());
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parse `use …;` starting at the `use` token; returns the index after
/// the terminating `;`.
fn parse_use(sig: &[&Token], at: usize, out: &mut FileItems) -> usize {
    let mut end = at + 1;
    let mut depth = 0usize;
    while end < sig.len() {
        match sig[end].text.as_str() {
            "{" => depth += 1,
            "}" => depth = depth.saturating_sub(1),
            ";" if depth == 0 => break,
            _ => {}
        }
        end += 1;
    }
    let body = &sig[at + 1..end.min(sig.len())];
    flatten_use(body, &mut Vec::new(), out);
    end + 1
}

/// Recursively flatten a use tree: `a::{b, c::d as e, f::*}`.
fn flatten_use(toks: &[&Token], prefix: &mut Vec<String>, out: &mut FileItems) {
    // Split the top level on commas.
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut pieces: Vec<&[&Token]> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => depth = depth.saturating_sub(1),
            "," if depth == 0 => {
                pieces.push(&toks[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    pieces.push(&toks[start..]);

    for piece in pieces {
        if piece.is_empty() {
            continue;
        }
        // Walk segments until `{`, `*`, or `as`.
        let mut segs: Vec<String> = Vec::new();
        let mut i = 0usize;
        let mut handled = false;
        while i < piece.len() {
            let tx = piece[i].text.as_str();
            match tx {
                "::" => {}
                "{" => {
                    // Group: recurse with prefix + segs over the inner
                    // tokens (up to the matching `}`).
                    let mut d = 1usize;
                    let inner_start = i + 1;
                    let mut j = inner_start;
                    while j < piece.len() && d > 0 {
                        match piece[j].text.as_str() {
                            "{" => d += 1,
                            "}" => d -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                    let inner_end = j.saturating_sub(1);
                    let mut p = prefix.clone();
                    p.extend(segs.iter().cloned());
                    flatten_use(&piece[inner_start..inner_end], &mut p, out);
                    handled = true;
                    break;
                }
                "*" => {
                    let mut p = prefix.clone();
                    p.extend(segs.iter().cloned());
                    out.globs.push(p);
                    handled = true;
                    break;
                }
                "as" => {
                    if let Some(alias) = piece.get(i + 1) {
                        let mut p = prefix.clone();
                        p.extend(segs.iter().cloned());
                        out.uses.push(UseDecl { alias: alias.text.clone(), path: p });
                    }
                    handled = true;
                    break;
                }
                _ if piece[i].kind == TokenKind::Ident => segs.push(tx.to_string()),
                _ => {}
            }
            i += 1;
        }
        if !handled && !segs.is_empty() {
            let mut p = prefix.clone();
            p.extend(segs.iter().cloned());
            let alias = segs.last().cloned().unwrap_or_default();
            out.uses.push(UseDecl { alias, path: p });
        }
    }
}

/// Receiver hint for `recv.name(` given the token before the dot: the
/// receiver identifier (if simple) and a type hint from bindings or the
/// enclosing impl (`self`).
fn receiver_hint(
    recv: Option<&Token>,
    fn_stack: &[(usize, Bindings)],
    impl_stack: &[(String, Option<String>)],
) -> (Option<String>, Option<String>) {
    let Some(r) = recv else { return (None, None) };
    if r.kind != TokenKind::Ident {
        return (None, None); // chained `)`/`]` receiver — no hint
    }
    if r.text == "self" {
        return (Some("self".to_string()), impl_stack.last().map(|x| x.0.clone()));
    }
    let ty = fn_stack
        .iter()
        .rev()
        .find_map(|(_, bindings)| bindings.get(&r.text))
        .cloned();
    (Some(r.text.clone()), ty)
}

/// Scan the argument list of a par entry-point call (starting at the
/// `(` token index) for closures drawing from captured RNGs.
fn scan_par_closures(
    sig: &[&Token],
    open: usize,
    par_call: &str,
    fn_stack: &[(usize, Bindings)],
    out: &mut FileItems,
    fn_idx: usize,
) {
    debug_assert!(sig.get(open).is_some_and(|t| t.text == "("));
    // Find the matching `)` of the argument list.
    let mut depth = 0usize;
    let mut close = open;
    while close < sig.len() {
        match sig[close].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        close += 1;
    }
    let args = &sig[open + 1..close.min(sig.len())];

    // Find closures: `|params| …` where `|` follows `(`, `,`, or `move`.
    let mut i = 0usize;
    while i < args.len() {
        let starts_closure = args[i].text == "|"
            && (i == 0
                || matches!(args[i - 1].text.as_str(), "(" | "," | "move" | "{" | "&" | "=>"));
        if !starts_closure {
            i += 1;
            continue;
        }
        // Parameter list up to the closing `|` (may be empty: `||`).
        let mut bound: Vec<String> = Vec::new();
        let mut j = i + 1;
        while j < args.len() && args[j].text != "|" {
            if args[j].kind == TokenKind::Ident && !matches!(args[j].text.as_str(), "mut" | "ref") {
                // `|a, (b, c)|` — every ident in the pattern binds.
                bound.push(args[j].text.clone());
            }
            j += 1;
        }
        if j >= args.len() {
            break;
        }
        // Closure body extent: a `{ .. }` block, or the expression up to
        // the next top-level `,` / end of args.
        let body_start = j + 1;
        let mut body_end = body_start;
        if args.get(body_start).is_some_and(|t| t.text == "{") {
            let mut d = 0usize;
            while body_end < args.len() {
                match args[body_end].text.as_str() {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => {
                        d = d.saturating_sub(1);
                        if d == 0 {
                            body_end += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                body_end += 1;
            }
        } else {
            let mut d = 0usize;
            while body_end < args.len() {
                match args[body_end].text.as_str() {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => {
                        if d == 0 {
                            break;
                        }
                        d -= 1;
                    }
                    "," if d == 0 => break,
                    _ => {}
                }
                body_end += 1;
            }
        }
        let body = &args[body_start..body_end.min(args.len())];

        // `let` bindings inside the closure body also bind locally.
        let mut local = bound.clone();
        for (k, w) in body.iter().enumerate() {
            if w.text == "let" {
                let mut m = k + 1;
                if body.get(m).is_some_and(|t| t.text == "mut") {
                    m += 1;
                }
                if let Some(n) = body.get(m).filter(|t| t.kind == TokenKind::Ident) {
                    local.push(n.text.clone());
                }
            }
        }

        // Draw sites: `ident . draw (` with a receiver not bound here.
        for k in 0..body.len() {
            let is_draw = body[k].kind == TokenKind::Ident
                && RNG_DRAW_METHODS.contains(&body[k].text.as_str())
                && body.get(k + 1).is_some_and(|t| t.text == "(")
                && k >= 1
                && body[k - 1].text == ".";
            if !is_draw {
                continue;
            }
            let Some(recv) = (k >= 2).then(|| body[k - 2]).filter(|t| t.kind == TokenKind::Ident)
            else {
                continue;
            };
            if local.iter().any(|b| b == &recv.text) {
                continue; // per-item RNG bound inside the closure — fine
            }
            // Weak names need corroboration: `index`/`shuffle` on a
            // receiver with no RNG-ish evidence stays quiet.
            let hint = fn_stack
                .iter()
                .rev()
                .find_map(|(_, bindings)| bindings.get(&recv.text))
                .cloned();
            let weak = matches!(body[k].text.as_str(), "index");
            let rngish = hint.as_deref() == Some("SimRng")
                || recv.text.to_ascii_lowercase().contains("rng")
                || !weak;
            if hint.is_some() && hint.as_deref() != Some("SimRng") {
                continue; // typed receiver that is not an RNG
            }
            if !rngish {
                continue;
            }
            if let Some(f) = out.fns.get_mut(fn_idx) {
                f.rng_captures.push(RngCapture {
                    receiver: recv.text.clone(),
                    method: body[k].text.clone(),
                    par_call: par_call.to_string(),
                    line: body[k].line,
                    col: body[k].col,
                });
            }
        }
        i = body_end.max(i + 1);
    }
}
