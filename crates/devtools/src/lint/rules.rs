//! Lint definitions and the token-stream matcher.
//!
//! Each lint is a set of *path patterns*: short sequences of token texts
//! (`["SystemTime"]`, `["thread", "::", "spawn"]`, `[".", "unwrap", "("]`)
//! matched against consecutive significant tokens. Two lints are
//! structural rather than pattern-based: `no-slice-index` (a `[` directly
//! following an expression tail) and `no-static-mut` (covered by a
//! pattern, but listed here for completeness).
//!
//! Panic-policy lints apply only inside configured hot paths and skip
//! `#[cfg(test)]` / `#[test]` regions — test code may unwrap freely.

use super::tokens::{tokenize, Token, TokenKind};

/// Lint classes, mirroring DESIGN.md §8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Bit-identical replay: no wall clocks, unordered maps, or env reads.
    Determinism,
    /// All parallelism flows through `devtools::par`; no `unsafe`.
    Concurrency,
    /// Hot-path crates return `Result` instead of panicking.
    Panic,
    /// No subprocesses or real sockets outside designated modules.
    Hermeticity,
}

/// One lint: a name (used in pragmas and config), its class, and the
/// message printed with every finding.
pub struct Lint {
    /// Stable kebab-case name, e.g. `no-unordered-map`.
    pub name: &'static str,
    /// Class the lint belongs to.
    pub class: Class,
    /// One-line rationale printed with findings.
    pub message: &'static str,
    /// Token-text sequences that trigger the lint.
    pub patterns: &'static [&'static [&'static str]],
}

/// The full lint table. Order is the order findings are reported in for
/// ties on position.
pub const LINTS: &[Lint] = &[
    Lint {
        name: "no-wallclock",
        class: Class::Determinism,
        message: "wall-clock time source; simulated code must use SimTime/SimClock",
        patterns: &[&["SystemTime"], &["Instant"]],
    },
    Lint {
        name: "no-unordered-map",
        class: Class::Determinism,
        message: "iteration order is hasher/platform luck; use BTreeMap/BTreeSet",
        patterns: &[&["HashMap"], &["HashSet"], &["RandomState"]],
    },
    Lint {
        name: "no-env",
        class: Class::Determinism,
        message: "environment-dependent behavior poisons replay; thread configuration explicitly",
        patterns: &[
            &["env", "::", "var"],
            &["env", "::", "var_os"],
            &["env", "::", "vars"],
            &["env", "::", "vars_os"],
            &["env", "::", "temp_dir"],
        ],
    },
    Lint {
        name: "no-thread-spawn",
        class: Class::Concurrency,
        message: "raw threads bypass the deterministic pool; use devtools::par",
        patterns: &[&["thread", "::", "spawn"], &["thread", "::", "scope"], &["thread", "::", "Builder"]],
    },
    Lint {
        name: "no-static-mut",
        class: Class::Concurrency,
        message: "mutable global state is a data race and a replay hazard",
        patterns: &[&["static", "mut"]],
    },
    Lint {
        name: "no-unsafe",
        class: Class::Concurrency,
        message: "unsafe outside the audited allowlist (crates carry #![forbid(unsafe_code)])",
        patterns: &[&["unsafe"]],
    },
    Lint {
        name: "no-panic",
        class: Class::Panic,
        message: "hot-path code must return Result or carry a documented invariant",
        patterns: &[
            &["panic", "!"],
            &["unreachable", "!"],
            &["todo", "!"],
            &["unimplemented", "!"],
        ],
    },
    Lint {
        name: "no-unwrap",
        class: Class::Panic,
        message: "hot-path code must handle the None/Err arm or document the invariant",
        patterns: &[&[".", "unwrap", "("], &[".", "expect", "("]],
    },
    Lint {
        name: "no-slice-index",
        class: Class::Panic,
        message: "indexing can panic on the hot path; use get()/get_mut() or document bounds",
        patterns: &[], // structural; see `find_slice_indexing`
    },
    Lint {
        name: "no-process",
        class: Class::Hermeticity,
        message: "process control belongs to bin targets, not library code",
        patterns: &[&["process", "::"], &["Command", "::", "new"]],
    },
    Lint {
        name: "no-socket",
        class: Class::Hermeticity,
        message: "real network I/O outside the designated sntp I/O module breaks hermetic runs",
        patterns: &[
            &["UdpSocket"],
            &["TcpStream"],
            &["TcpListener"],
            &["std", "::", "net", "::"],
        ],
    },
    // ---- interprocedural lints (findings produced by lint::analysis
    // over the workspace call graph; listed here so pragmas validate,
    // config `[skip]` keys resolve, and the report can classify them).
    Lint {
        name: "panic-reachability",
        class: Class::Panic,
        message: "hot entry point can transitively reach a panic through the call graph",
        patterns: &[], // interprocedural; see lint::analysis
    },
    Lint {
        name: "par-captured-rng",
        class: Class::Determinism,
        message: "SimRng draw inside a par closure captures shared generator state",
        patterns: &[], // interprocedural; see lint::analysis
    },
    Lint {
        name: "map-order-taint",
        class: Class::Determinism,
        message: "artifact-emitting path can reach hasher-ordered iteration",
        patterns: &[], // interprocedural; see lint::analysis
    },
    Lint {
        name: "wallclock-taint",
        class: Class::Determinism,
        message: "wall-clock read leaks across a crate boundary",
        patterns: &[], // interprocedural; see lint::analysis
    },
];

/// Look up a lint by name (pragma validation).
pub fn lint_by_name(name: &str) -> Option<&'static Lint> {
    LINTS.iter().find(|l| l.name == name)
}

/// One rule violation at a source position.
#[derive(Clone, Debug)]
pub struct RawFinding {
    /// Lint name.
    pub lint: &'static str,
    /// Message (the lint's message, possibly specialized).
    pub message: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A `// lint:allow(<name>) — <reason>` pragma site.
#[derive(Clone, Debug)]
pub struct Pragma {
    /// The lint the pragma suppresses.
    pub lint: String,
    /// The stated reason (may be empty — which is itself a finding).
    pub reason: String,
    /// 1-based line of the pragma comment.
    pub line: u32,
    /// 1-based column of the pragma comment.
    pub col: u32,
    /// Set when the pragma suppressed at least one finding.
    pub used: bool,
}

/// A site that seeds an interprocedural analysis (`lint::analysis`),
/// collected even where the lint itself is not reported.
#[derive(Clone, Debug)]
pub struct SeedRec {
    /// The token lint whose pattern matched.
    pub lint: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Everything the matcher extracts from one file.
pub struct FileScan {
    /// Unsuppressed findings (pragma application already done).
    pub findings: Vec<RawFinding>,
    /// All pragmas, with `used` resolved for token findings and seeds
    /// (interprocedural findings resolve theirs in `lint::analyze`).
    pub pragmas: Vec<Pragma>,
    /// Interprocedural seeds (outside test regions; panic-class seeds
    /// have pragma suppression already applied).
    pub seeds: Vec<SeedRec>,
    /// `#[cfg(test)]`/`#[test]` line ranges, for item extraction.
    pub test_lines: Vec<(u32, u32)>,
}

/// How a lint's raw sites feed the interprocedural analyses.
enum SeedPolicy {
    /// Seeds panic-reachability. Collected even where the lint is
    /// disabled (non-hot files); a pragma removes the seed (the site is
    /// an audited invariant).
    Panic,
    /// Seeds a determinism-taint analysis. Collected only where the
    /// lint is enabled (`[skip]` paths are audited boundaries); a
    /// pragma keeps the seed — it justifies local use, not downstream
    /// artifact stability.
    Taint,
}

fn seed_policy(name: &str) -> Option<SeedPolicy> {
    match name {
        "no-panic" | "no-unwrap" | "no-slice-index" => Some(SeedPolicy::Panic),
        "no-unordered-map" | "no-wallclock" => Some(SeedPolicy::Taint),
        _ => None,
    }
}

/// Inclusive line ranges covered by `#[cfg(test)]` items or `#[test]`
/// functions — regions where panic-policy lints do not apply.
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let sig: Vec<&Token> = tokens.iter().filter(|t| t.is_significant()).collect();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        // `#` `[` cfg `(` test … `]`   or   `#` `[` test `]`
        let is_attr = sig[i].text == "#" && i + 1 < sig.len() && sig[i + 1].text == "[";
        if !is_attr {
            i += 1;
            continue;
        }
        let attr_start = i;
        // Find the attribute's closing bracket (attributes never nest
        // deeply; track depth anyway).
        let mut j = i + 1;
        let mut depth = 0usize;
        let mut saw_test = false;
        let mut saw_not = false;
        while j < sig.len() {
            match sig[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                // `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` — but
                // not `#[cfg(not(test))]`, which marks NON-test code.
                "test" => saw_test = true,
                "not" => saw_not = true,
                _ => {}
            }
            j += 1;
        }
        let is_test_attr = saw_test && !saw_not;
        if !is_test_attr || j >= sig.len() {
            i = attr_start + 1;
            continue;
        }
        // Skip any further attributes, then brace-match the item body.
        let mut k = j + 1;
        while k + 1 < sig.len() && sig[k].text == "#" && sig[k + 1].text == "[" {
            let mut d = 0usize;
            k += 1;
            while k < sig.len() {
                match sig[k].text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d = d.saturating_sub(1);
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        // Find the item's opening brace; a `;` first means a brace-less
        // item (`#[cfg(test)] use …;`) — cover just through that line.
        let mut open = None;
        let mut m = k;
        while m < sig.len() {
            match sig[m].text.as_str() {
                "{" => {
                    open = Some(m);
                    break;
                }
                ";" => break,
                "=" => break, // `#[cfg(test)] const X: … = …;` — rare; treat as brace-less
                _ => {}
            }
            m += 1;
        }
        let end = match open {
            Some(o) => {
                let mut d = 0usize;
                let mut e = o;
                while e < sig.len() {
                    match sig[e].text.as_str() {
                        "{" => d += 1,
                        "}" => {
                            d = d.saturating_sub(1);
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    e += 1;
                }
                e.min(sig.len() - 1)
            }
            None => m.min(sig.len() - 1),
        };
        regions.push((sig[attr_start].line, sig[end].line));
        i = end + 1;
    }
    regions
}

/// Is `line` inside any of the (inclusive) regions?
pub fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Parse pragmas out of the comment tokens. Syntax (in a line comment):
/// `lint:allow(<name>) — <reason>` — the reason separator may be an em
/// dash, hyphen, or colon. The pragma covers its own line and the line
/// directly below it.
fn extract_pragmas(tokens: &[Token]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let Some(at) = t.text.find("lint:allow(") else { continue };
        let rest = &t.text[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let name = rest[..close].trim().to_string();
        // Only lint-name-shaped text is a pragma; this keeps prose that
        // *describes* the syntax (`lint:allow(<name>)`) out of the audit.
        if name.is_empty() || !name.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-') {
            continue;
        }
        let reason = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':'])
            .trim()
            .to_string();
        out.push(Pragma { lint: name, reason, line: t.line, col: t.col, used: false });
    }
    out
}

/// Structural detection of indexing expressions: a `[` whose previous
/// significant token ends an expression (identifier, `)`, or `]`).
/// Attributes (`#[…]`), array types/literals, and slice patterns all
/// have a non-expression token before the bracket.
fn find_slice_indexing(sig: &[&Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for w in sig.windows(2) {
        let (prev, cur) = (w[0], w[1]);
        if cur.text != "[" {
            continue;
        }
        let indexes = match prev.kind {
            TokenKind::Ident => !matches!(
                prev.text.as_str(),
                // Keywords that can directly precede an array/slice
                // expression or pattern without forming an index.
                "mut" | "ref" | "in" | "return" | "break" | "else" | "match" | "if" | "as"
                    | "box" | "move" | "static" | "const" | "dyn" | "impl" | "where" | "let"
                    | "for"
            ),
            TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
            _ => false,
        };
        if indexes {
            out.push((cur.line, cur.col));
        }
    }
    out
}

/// Match every lint against one file's source (tokenizes internally;
/// the workspace pass uses [`scan_tokens`] to share the token stream
/// with item extraction).
pub fn scan_file(src: &str, enabled: impl Fn(&'static Lint) -> bool) -> FileScan {
    scan_tokens(&tokenize(src), enabled)
}

/// Match every lint against one file's token stream.
///
/// `enabled` decides per-lint applicability (path-based skips and the
/// hot-path scoping for panic lints are resolved by the caller).
/// Panic-class patterns are scanned even where disabled — their sites
/// seed the panic-reachability analysis.
pub fn scan_tokens(tokens: &[Token], enabled: impl Fn(&'static Lint) -> bool) -> FileScan {
    let mut pragmas = extract_pragmas(tokens);
    let sig: Vec<&Token> = tokens.iter().filter(|t| t.is_significant()).collect();
    let tests = test_regions(tokens);

    let mut raw: Vec<RawFinding> = Vec::new();
    let mut seeds: Vec<SeedRec> = Vec::new();
    for lint in LINTS {
        let on = enabled(lint);
        let policy = seed_policy(lint.name);
        let scan_off = matches!(policy, Some(SeedPolicy::Panic));
        if !on && !scan_off {
            continue;
        }
        let skip_tests = lint.class == Class::Panic;
        let sites: Vec<(u32, u32)> = if lint.name == "no-slice-index" {
            find_slice_indexing(&sig)
        } else {
            let mut v = Vec::new();
            for pat in lint.patterns {
                for start in 0..sig.len() {
                    if start + pat.len() > sig.len() {
                        break;
                    }
                    if pat.iter().zip(&sig[start..]).all(|(p, t)| *p == t.text) {
                        v.push((sig[start].line, sig[start].col));
                    }
                }
            }
            v
        };
        for (line, col) in sites {
            if skip_tests && in_regions(&tests, line) {
                continue;
            }
            if on {
                raw.push(RawFinding { lint: lint.name, message: lint.message, line, col });
            }
            // Seeds never come from test regions (test nodes are
            // invisible to the analyses anyway).
            if policy.is_some() && !in_regions(&tests, line) {
                seeds.push(SeedRec { lint: lint.name, line, col });
            }
        }
    }

    // Pragma application: a pragma suppresses matching findings on its
    // own line and on the next non-pragma line, so several standalone
    // pragma comments can stack above one statement.
    let pragma_lines: Vec<u32> = pragmas.iter().map(|p| p.line).collect();
    let covered = |p_line: u32, f_line: u32| -> bool {
        if p_line == f_line {
            return true;
        }
        let mut next = p_line + 1;
        while pragma_lines.contains(&next) {
            next += 1;
        }
        next == f_line
    };
    raw.retain(|f| {
        let mut suppressed = false;
        for p in pragmas.iter_mut() {
            if p.lint == f.lint && covered(p.line, f.line) {
                p.used = true;
                suppressed = true;
            }
        }
        !suppressed
    });
    // Pragmas apply to seeds too: a pragma'd panic site is an audited
    // invariant and stops seeding; a pragma'd taint site keeps seeding
    // (the pragma justifies the local use, not what flows downstream).
    // Either way the pragma counts as used.
    seeds.retain(|s| {
        let mut drop = false;
        for p in pragmas.iter_mut() {
            if p.lint == s.lint && covered(p.line, s.line) {
                p.used = true;
                if matches!(seed_policy(s.lint), Some(SeedPolicy::Panic)) {
                    drop = true;
                }
            }
        }
        !drop
    });

    raw.sort_by_key(|f| (f.line, f.col));
    seeds.sort_by_key(|s| (s.line, s.col));
    FileScan { findings: raw, pragmas, seeds, test_lines: tests }
}
