//! The workspace's determinism & panic-policy linter.
//!
//! A zero-dependency static-analysis pass over every Rust file in the
//! repository, enforcing the invariant classes that the reproduction's
//! headline claims rest on (DESIGN.md §8):
//!
//! - **determinism** — no wall clocks, no hasher-ordered containers, no
//!   environment-dependent branching in artifact-producing code;
//! - **concurrency** — all parallelism flows through [`crate::par`];
//!   no `static mut`, no un-audited `unsafe`;
//! - **panic policy** — the hot-path crates return `Result` or carry a
//!   documented invariant instead of `unwrap`/`expect`/`panic!`/indexing;
//! - **hermeticity** — no subprocesses outside bin targets, no real
//!   sockets outside the designated I/O module.
//!
//! Per-site opt-outs use `// lint:allow(<name>) — <reason>` pragmas
//! (covering that line and the next); per-path policy lives in
//! `lint.toml` at the repo root. [`report`] renders the audit artifact
//! committed as `results/lint_allowlist.txt`.

pub mod config;
pub mod rules;
pub mod tokens;
pub mod walk;

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

pub use config::Config;
pub use rules::{lint_by_name, Class, Lint, LINTS};

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Root-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Lint name (or the meta lints `bad-pragma` / `unknown-pragma` /
    /// `unused-pragma`).
    pub lint: String,
    /// Human explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: {}: {}", self.file, self.line, self.col, self.lint, self.message)
    }
}

/// One `lint:allow` site, for the audit report.
#[derive(Clone, Debug)]
pub struct AllowSite {
    /// Root-relative path.
    pub file: String,
    /// 1-based line of the pragma.
    pub line: u32,
    /// Lint being suppressed.
    pub lint: String,
    /// The stated reason.
    pub reason: String,
}

/// Result of linting a set of files.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Unsuppressed violations, sorted by (file, line, col, lint).
    pub findings: Vec<Finding>,
    /// Every pragma that suppressed at least one finding.
    pub allows: Vec<AllowSite>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Outcome {
    /// True when the tree is clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Load `lint.toml` from `root` (falling back to defaults when absent)
/// and lint every configured file.
pub fn run(root: &Path) -> io::Result<Outcome> {
    let cfg = load_config(root)?;
    let files = walk::rust_files(root, &cfg)?;
    let mut out = Outcome::default();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        lint_source(&rel, &src, &cfg, &mut out);
        out.files_scanned += 1;
    }
    out.findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, &a.lint).cmp(&(&b.file, b.line, b.col, &b.lint))
    });
    out.allows.sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    Ok(out)
}

/// Read and parse `root/lint.toml`, or fall back to the built-in policy.
pub fn load_config(root: &Path) -> io::Result<Config> {
    let path = root.join("lint.toml");
    if !path.exists() {
        return Ok(Config::fallback());
    }
    let text = fs::read_to_string(&path)?;
    config::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Lint one file's source text into `out`. Public so tests (and the
/// fixture suite) can lint strings without touching the filesystem.
pub fn lint_source(rel: &str, src: &str, cfg: &Config, out: &mut Outcome) {
    let scan = rules::scan_file(src, |lint| {
        cfg.lint_enabled(lint.name, lint.class == Class::Panic, rel)
    });
    for f in scan.findings {
        out.findings.push(Finding {
            file: rel.to_string(),
            line: f.line,
            col: f.col,
            lint: f.lint.to_string(),
            message: f.message.to_string(),
        });
    }
    for p in scan.pragmas {
        if lint_by_name(&p.lint).is_none() {
            out.findings.push(Finding {
                file: rel.to_string(),
                line: p.line,
                col: p.col,
                lint: "unknown-pragma".to_string(),
                message: format!("pragma names no known lint: `{}`", p.lint),
            });
            continue;
        }
        if p.reason.is_empty() {
            out.findings.push(Finding {
                file: rel.to_string(),
                line: p.line,
                col: p.col,
                lint: "bad-pragma".to_string(),
                message: format!("lint:allow({}) needs a reason: `// lint:allow({}) — why`", p.lint, p.lint),
            });
        }
        if !p.used {
            out.findings.push(Finding {
                file: rel.to_string(),
                line: p.line,
                col: p.col,
                lint: "unused-pragma".to_string(),
                message: format!("lint:allow({}) suppresses nothing here; remove it", p.lint),
            });
            continue;
        }
        out.allows.push(AllowSite {
            file: rel.to_string(),
            line: p.line,
            lint: p.lint,
            reason: p.reason,
        });
    }
}

/// Render the sorted `lint:allow` audit (the `--report` artifact). Every
/// line is `file:line: lint — reason`, preceded by a count header, so
/// allowlist growth shows up in review diffs.
pub fn report(out: &Outcome) -> String {
    let mut s = String::new();
    s.push_str("# lint:allow audit — regenerate with `cargo run -p devtools --bin lint -- --report`\n");
    let files: std::collections::BTreeSet<&str> =
        out.allows.iter().map(|a| a.file.as_str()).collect();
    s.push_str(&format!(
        "# {} suppression(s) across {} file(s)\n",
        out.allows.len(),
        files.len()
    ));
    for a in &out.allows {
        s.push_str(&format!("{}:{}: {} — {}\n", a.file, a.line, a.lint, a.reason));
    }
    s
}
