//! The workspace's determinism & panic-policy linter.
//!
//! A zero-dependency static-analysis pass over every Rust file in the
//! repository, enforcing the invariant classes that the reproduction's
//! headline claims rest on (DESIGN.md §8):
//!
//! - **determinism** — no wall clocks, no hasher-ordered containers, no
//!   environment-dependent branching in artifact-producing code;
//! - **concurrency** — all parallelism flows through [`crate::par`];
//!   no `static mut`, no un-audited `unsafe`;
//! - **panic policy** — the hot-path crates return `Result` or carry a
//!   documented invariant instead of `unwrap`/`expect`/`panic!`/indexing;
//! - **hermeticity** — no subprocesses outside bin targets, no real
//!   sockets outside the designated I/O module.
//!
//! Per-site opt-outs use `// lint:allow(<name>) — <reason>` pragmas
//! (covering that line and the next); per-path policy lives in
//! `lint.toml` at the repo root. [`report`] renders the audit artifact
//! committed as `results/lint_allowlist.txt`.

pub mod analysis;
pub mod config;
pub mod graph;
pub mod items;
pub mod rules;
pub mod tokens;
pub mod walk;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

pub use config::Config;
pub use rules::{lint_by_name, Class, Lint, LINTS};

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Root-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Lint name (or the meta lints `bad-pragma` / `unknown-pragma` /
    /// `unused-pragma`).
    pub lint: String,
    /// Human explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: {}: {}", self.file, self.line, self.col, self.lint, self.message)
    }
}

/// One `lint:allow` site, for the audit report.
#[derive(Clone, Debug)]
pub struct AllowSite {
    /// Root-relative path.
    pub file: String,
    /// 1-based line of the pragma.
    pub line: u32,
    /// Lint being suppressed.
    pub lint: String,
    /// The stated reason.
    pub reason: String,
}

/// Result of linting a set of files.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Unsuppressed violations, sorted by (file, line, col, lint).
    pub findings: Vec<Finding>,
    /// Every pragma that suppressed at least one finding.
    pub allows: Vec<AllowSite>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Outcome {
    /// True when the tree is clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Full result of the workspace pass: the lint outcome plus the call
/// graph the interprocedural analyses ran over (for `--graph`).
pub struct Analysis {
    /// Findings, allows, and counts.
    pub outcome: Outcome,
    /// The assembled workspace call graph.
    pub graph: graph::Graph,
}

/// Load `lint.toml` from `root` (falling back to defaults when absent)
/// and lint every configured file — token rules plus the workspace
/// interprocedural pass.
pub fn run(root: &Path) -> io::Result<Outcome> {
    analyze(root).map(|a| a.outcome)
}

/// Like [`run`], but also returns the call graph.
pub fn analyze(root: &Path) -> io::Result<Analysis> {
    let cfg = load_config(root)?;
    let files = walk::rust_files(root, &cfg)?;
    let mut sources = Vec::with_capacity(files.len());
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        sources.push((rel, src));
    }
    Ok(analyze_sources(&sources, &cfg, &crate_name_map(root)))
}

/// Map `crates/<dir>` names (plus `""` for the root package) to crate
/// idents by scraping each `Cargo.toml`'s `name = "…"` — the resolver
/// needs `crates/core` → `mntp`, `crates/ntp-wire` → `ntp_wire`, etc.
pub fn crate_name_map(root: &Path) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    let scrape = |path: &Path| -> Option<String> {
        let text = fs::read_to_string(path).ok()?;
        let mut in_package = false;
        for line in text.lines() {
            let l = line.trim();
            if l.starts_with('[') {
                in_package = l == "[package]";
                continue;
            }
            if in_package {
                if let Some(rest) = l.strip_prefix("name") {
                    let rest = rest.trim_start().strip_prefix('=')?.trim();
                    return Some(rest.trim_matches('"').replace('-', "_"));
                }
            }
        }
        None
    };
    if let Some(name) = scrape(&root.join("Cargo.toml")) {
        map.insert(String::new(), name);
    }
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.file_name()).collect();
        dirs.sort();
        for dir in dirs {
            let dir = dir.to_string_lossy().to_string();
            if let Some(name) = scrape(&root.join("crates").join(&dir).join("Cargo.toml")) {
                map.insert(dir, name);
            }
        }
    }
    map
}

/// The whole pipeline over in-memory sources: token rules per file,
/// item extraction, graph assembly, interprocedural analyses, then
/// pragma resolution (a pragma is "used" when it suppresses a token
/// finding, a panic seed, or an interprocedural finding).
pub fn analyze_sources(
    sources: &[(String, String)],
    cfg: &Config,
    crate_names: &BTreeMap<String, String>,
) -> Analysis {
    let mut out = Outcome::default();
    let mut seeds = analysis::Seeds::default();
    let mut file_items: Vec<(String, items::FileItems)> = Vec::with_capacity(sources.len());
    let mut pragmas_by_file: Vec<(String, Vec<rules::Pragma>)> = Vec::with_capacity(sources.len());

    for (rel, src) in sources {
        let toks = tokens::tokenize(src);
        let scan = rules::scan_tokens(&toks, |lint| {
            cfg.lint_enabled(lint.name, lint.class == Class::Panic, rel)
        });
        for f in scan.findings {
            out.findings.push(Finding {
                file: rel.clone(),
                line: f.line,
                col: f.col,
                lint: f.lint.to_string(),
                message: f.message.to_string(),
            });
        }
        for s in scan.seeds {
            let site = analysis::SeedSite { file: rel.clone(), line: s.line, col: s.col, lint: s.lint };
            match s.lint {
                "no-panic" | "no-unwrap" | "no-slice-index" => seeds.panic.push(site),
                "no-unordered-map" => seeds.unordered.push(site),
                "no-wallclock" => seeds.wallclock.push(site),
                _ => {}
            }
        }
        let tests = scan.test_lines;
        file_items.push((rel.clone(), items::extract(&toks, |line| rules::in_regions(&tests, line))));
        pragmas_by_file.push((rel.clone(), scan.pragmas));
        out.files_scanned += 1;
    }

    let g = graph::build(&file_items, crate_names);
    let mut interproc = analysis::run(&g, &seeds, cfg);

    // Pragma application for interprocedural findings: same coverage
    // rule as token findings (own line + next non-pragma line).
    interproc.retain(|f| {
        let Some((_, pragmas)) = pragmas_by_file.iter_mut().find(|(rel, _)| rel == &f.file)
        else {
            return true;
        };
        let pragma_lines: Vec<u32> = pragmas.iter().map(|p| p.line).collect();
        let mut suppressed = false;
        for p in pragmas.iter_mut() {
            let covered = p.line == f.line || {
                let mut next = p.line + 1;
                while pragma_lines.contains(&next) {
                    next += 1;
                }
                next == f.line
            };
            if p.lint == f.lint && covered {
                p.used = true;
                suppressed = true;
            }
        }
        !suppressed
    });
    out.findings.extend(interproc);

    // Pragma meta-findings and the allow audit, now that every analysis
    // has had its chance to mark pragmas used.
    for (rel, pragmas) in pragmas_by_file {
        resolve_pragmas(&rel, pragmas, &mut out);
    }

    out.findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, &a.lint).cmp(&(&b.file, b.line, b.col, &b.lint))
    });
    out.allows.sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    Analysis { outcome: out, graph: g }
}

/// Turn a file's pragmas into meta-findings (`unknown-pragma`,
/// `bad-pragma`, `unused-pragma`) or audit entries.
fn resolve_pragmas(rel: &str, pragmas: Vec<rules::Pragma>, out: &mut Outcome) {
    for p in pragmas {
        if lint_by_name(&p.lint).is_none() {
            out.findings.push(Finding {
                file: rel.to_string(),
                line: p.line,
                col: p.col,
                lint: "unknown-pragma".to_string(),
                message: format!("pragma names no known lint: `{}`", p.lint),
            });
            continue;
        }
        if p.reason.is_empty() {
            out.findings.push(Finding {
                file: rel.to_string(),
                line: p.line,
                col: p.col,
                lint: "bad-pragma".to_string(),
                message: format!("lint:allow({}) needs a reason: `// lint:allow({}) — why`", p.lint, p.lint),
            });
        }
        if !p.used {
            out.findings.push(Finding {
                file: rel.to_string(),
                line: p.line,
                col: p.col,
                lint: "unused-pragma".to_string(),
                message: format!("lint:allow({}) suppresses nothing here; remove it", p.lint),
            });
            continue;
        }
        out.allows.push(AllowSite {
            file: rel.to_string(),
            line: p.line,
            lint: p.lint,
            reason: p.reason,
        });
    }
}

/// Read and parse `root/lint.toml`, or fall back to the built-in policy.
pub fn load_config(root: &Path) -> io::Result<Config> {
    let path = root.join("lint.toml");
    if !path.exists() {
        return Ok(Config::fallback());
    }
    let text = fs::read_to_string(&path)?;
    config::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Lint one file's source text into `out` — token rules plus the
/// interprocedural analyses over the file's own (single-file) call
/// graph. Public so tests (and the fixture suite) can lint strings
/// without touching the filesystem; multi-file fixtures go through
/// [`analyze_sources`].
pub fn lint_source(rel: &str, src: &str, cfg: &Config, out: &mut Outcome) {
    let a = analyze_sources(&[(rel.to_string(), src.to_string())], cfg, &BTreeMap::new());
    out.findings.extend(a.outcome.findings);
    out.allows.extend(a.outcome.allows);
}

/// Render the sorted `lint:allow` audit (the `--report` artifact). Every
/// line is `file:line: lint — reason`, preceded by a count header, so
/// allowlist growth shows up in review diffs.
pub fn report(out: &Outcome) -> String {
    let mut s = String::new();
    s.push_str("# lint:allow audit — regenerate with `cargo run -p devtools --bin lint -- --report`\n");
    let files: std::collections::BTreeSet<&str> =
        out.allows.iter().map(|a| a.file.as_str()).collect();
    s.push_str(&format!(
        "# {} suppression(s) across {} file(s)\n",
        out.allows.len(),
        files.len()
    ));
    for a in &out.allows {
        s.push_str(&format!("{}:{}: {} — {}\n", a.file, a.line, a.lint, a.reason));
    }
    s
}
