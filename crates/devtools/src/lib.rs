//! In-tree development harnesses for the MNTP workspace.
//!
//! Four subsystems, all dependency-free beyond `clocksim` (for the
//! deterministic RNG):
//!
//! - [`prop`] — a shrinking property-test harness (the workspace's
//!   replacement for `proptest`): generators over [`clocksim::SimRng`],
//!   greedy counterexample shrinking, and the [`props!`],
//!   [`prop_assert!`], [`prop_assert_eq!`] macros.
//! - [`bench`] — a benchmark runner (the workspace's replacement for
//!   `criterion`): warmup, iteration calibration, mean/p50/p99 stats,
//!   and machine-readable JSON reports under `results/bench/`.
//! - [`par`] — a work-stealing thread pool (the workspace's replacement
//!   for `rayon`): per-worker deques plus a global injector over scoped
//!   `std::thread`s, exposing an order-preserving [`par::Pool::map`]
//!   whose output is bit-identical to the serial loop.
//! - [`sketch`] — deterministic mergeable one-pass summaries (the
//!   workspace's replacement for a streaming-quantiles crate): a
//!   Munro–Paterson-style quantile sketch with bounded rank error plus
//!   exact streaming moments, and the shared nearest-rank percentile
//!   convention used by every exact report path.
//! - [`lint`] — the determinism & panic-policy linter (the workspace's
//!   replacement for clippy plugins): a Rust tokenizer plus path-pattern
//!   matcher enforcing the invariants of DESIGN.md §8, exposed as the
//!   `lint` bin and wired into `scripts/ci.sh` as a blocking gate.
//!
//! Keeping these in-tree is what makes the workspace hermetic: a cold
//! cache plus `cargo build --release --offline` is enough to build,
//! test, and benchmark everything.

pub mod bench;
pub mod lint;
pub mod par;
pub mod prop;
pub mod sketch;

pub use par::{par_map, Pool};
pub use prop::{Config, Counterexample, Gen, PropFail, PropResult};
pub use sketch::{percentile_nearest_rank, Moments, QuantileSketch};
