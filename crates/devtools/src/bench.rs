//! A criterion-free micro/figure/ablation benchmark harness.
//!
//! Each suite is a plain `[[bin]]` target: it registers benchmarks, the
//! harness warms each one up, calibrates how many iterations fit in one
//! sample, collects timing samples, and writes machine-readable JSON
//! (mean / p50 / p99 / min / max / stddev per benchmark) to
//! `results/bench/BENCH_<suite>.json`, printing a human summary as it
//! goes.
//!
//! ```no_run
//! use devtools::bench::Suite;
//! use std::hint::black_box;
//!
//! let mut suite = Suite::from_args("micro");
//! suite.bench("sum_1k", |b| b.iter(|| (0..1000u64).map(black_box).sum::<u64>()));
//! suite.finish().expect("write bench json");
//! ```
//!
//! CLI of every suite binary: `[FILTER] [--quick] [--out DIR]` —
//! `FILTER` keeps only benchmarks whose name contains the substring,
//! `--quick` cuts warmup/samples for smoke runs (env `BENCH_QUICK=1`
//! does the same), `--out` redirects the JSON (env `BENCH_OUT`).

use std::hint::black_box;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

/// Timing policy for one suite.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Minimum wall-clock spent warming up (and calibrating) each bench.
    pub warmup: Duration,
    /// Target wall-clock per sample; iterations-per-sample is calibrated
    /// so one sample takes roughly this long.
    pub sample_target: Duration,
    /// Samples collected per benchmark.
    pub samples: usize,
    /// Directory the JSON report is written into.
    pub out_dir: PathBuf,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup: Duration::from_millis(200),
            sample_target: Duration::from_millis(50),
            samples: 30,
            out_dir: PathBuf::from("results/bench"),
        }
    }
}

impl BenchConfig {
    /// The reduced-fidelity profile used by `--quick` / `BENCH_QUICK`.
    pub fn quick() -> Self {
        BenchConfig {
            warmup: Duration::from_millis(10),
            sample_target: Duration::from_millis(5),
            samples: 5,
            ..Default::default()
        }
    }
}

/// Summary statistics over one benchmark's samples (all per-iteration
/// nanoseconds).
#[derive(Clone, Debug)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: f64,
    /// 99th percentile (nearest-rank).
    pub p99_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Population standard deviation.
    pub stddev_ns: f64,
}

impl Stats {
    /// Summarize raw per-iteration samples (nanoseconds). Sorting, the
    /// nearest-rank percentiles, and the population stddev live here so
    /// they can be unit-tested away from any clock.
    pub fn from_samples(mut ns: Vec<f64>) -> Stats {
        assert!(!ns.is_empty());
        ns.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = ns.len();
        let mean = ns.iter().sum::<f64>() / n as f64;
        let var = ns.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let pct = |p: f64| crate::sketch::percentile_nearest_rank(&ns, p / 100.0);
        Stats {
            mean_ns: mean,
            p50_ns: pct(50.0),
            p99_ns: pct(99.0),
            min_ns: ns[0],
            max_ns: ns[n - 1],
            stddev_ns: var.sqrt(),
        }
    }
}

/// One finished benchmark: identity, calibration, and statistics.
#[derive(Clone, Debug)]
pub struct Record {
    /// Benchmark name (unique within the suite).
    pub name: String,
    /// Iterations folded into each timing sample.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
    /// The summary statistics.
    pub stats: Stats,
}

/// How many iterations to fold into one timing sample so the sample
/// lasts roughly `sample_target_secs`, given the warmup's estimate of
/// seconds-per-iteration. Never returns 0: even a pathologically slow
/// iteration is still timed once per sample.
pub fn calibrate_iters(sample_target_secs: f64, est_per_iter_secs: f64) -> u64 {
    ((sample_target_secs / est_per_iter_secs) as u64).max(1)
}

/// Passed to each benchmark closure; call [`Bencher::iter`] exactly once
/// with the code under test.
pub struct Bencher {
    cfg: BenchConfig,
    samples_override: Option<usize>,
    result: Option<(u64, usize, Stats)>,
}

impl Bencher {
    /// Measure the closure: warm up, calibrate iterations-per-sample so a
    /// sample lasts roughly `sample_target`, then time the samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        loop {
            black_box(f());
            warmup_iters += 1;
            if warmup_start.elapsed() >= self.cfg.warmup {
                break;
            }
        }
        let est_per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let per_sample = calibrate_iters(self.cfg.sample_target.as_secs_f64(), est_per_iter);
        let n_samples = self.samples_override.unwrap_or(self.cfg.samples);
        let mut samples_ns = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        self.result = Some((per_sample, n_samples, Stats::from_samples(samples_ns)));
    }
}

/// A named collection of benchmarks producing one JSON report.
pub struct Suite {
    name: String,
    cfg: BenchConfig,
    filter: Option<String>,
    samples_override: Option<usize>,
    records: Vec<Record>,
}

impl Suite {
    /// Build a suite with an explicit configuration.
    pub fn new(name: &str, cfg: BenchConfig) -> Suite {
        Suite { name: name.to_string(), cfg, filter: None, samples_override: None, records: Vec::new() }
    }

    /// Build a suite configured from `std::env::args()` and the
    /// `BENCH_QUICK` / `BENCH_OUT` environment variables.
    pub fn from_args(name: &str) -> Suite {
        let mut cfg = if std::env::var_os("BENCH_QUICK").is_some() {
            BenchConfig::quick()
        } else {
            BenchConfig::default()
        };
        if let Some(dir) = std::env::var_os("BENCH_OUT") {
            cfg.out_dir = PathBuf::from(dir);
        }
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => {
                    let out_dir = cfg.out_dir.clone();
                    cfg = BenchConfig::quick();
                    cfg.out_dir = out_dir;
                }
                "--out" => {
                    let dir = args.next().unwrap_or_else(|| {
                        eprintln!("--out requires a directory argument");
                        // lint:allow(no-process) — usage-error exit for the bench-suite CLI entry point shared by every [[bin]] target
                        std::process::exit(2);
                    });
                    cfg.out_dir = PathBuf::from(dir);
                }
                other if !other.starts_with('-') => filter = Some(other.to_string()),
                other => {
                    eprintln!("unknown argument: {other}");
                    // lint:allow(no-process) — usage-error exit for the bench-suite CLI entry point shared by every [[bin]] target
                    std::process::exit(2);
                }
            }
        }
        let mut s = Suite::new(name, cfg);
        s.filter = filter;
        s
    }

    /// Override the sample count for benchmarks registered from now on
    /// (used by the whole-simulation figure benches, where one iteration
    /// is an entire run).
    pub fn set_samples(&mut self, n: usize) {
        self.samples_override = Some(n);
    }

    /// Restore the configured sample count.
    pub fn reset_samples(&mut self) {
        self.samples_override = None;
    }

    /// Register and immediately run one benchmark.
    pub fn bench<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            cfg: self.cfg.clone(),
            samples_override: self.samples_override,
            result: None,
        };
        f(&mut b);
        let (iters_per_sample, samples, stats) =
            b.result.unwrap_or_else(|| panic!("bench '{name}' never called Bencher::iter"));
        println!(
            "{:<40} mean {:>12}  p50 {:>12}  p99 {:>12}  ({} samples x {} iters)",
            format!("{}/{}", self.name, name),
            fmt_ns(stats.mean_ns),
            fmt_ns(stats.p50_ns),
            fmt_ns(stats.p99_ns),
            samples,
            iters_per_sample,
        );
        self.records.push(Record { name: name.to_string(), iters_per_sample, samples, stats });
    }

    /// Write `BENCH_<suite>.json` into the output directory and return
    /// its path. If a filter excluded every benchmark, nothing is
    /// written (so a typo'd filter can't clobber a previous report).
    pub fn finish(self) -> std::io::Result<PathBuf> {
        let path = self.cfg.out_dir.join(format!("BENCH_{}.json", self.name));
        if self.records.is_empty() {
            if let Some(filter) = &self.filter {
                eprintln!("no benchmarks matched filter {filter:?}; not writing {}", path.display());
                return Ok(path);
            }
        }
        std::fs::create_dir_all(&self.cfg.out_dir)?;
        let mut f = std::fs::File::create(&path)?;
        f.write_all(render_json(&self.name, &self.records).as_bytes())?;
        println!("wrote {}", path.display());
        Ok(path)
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON numbers must be finite; stats over real timings always are, but
/// guard anyway so a pathological clock can't produce invalid JSON.
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

fn render_json(suite: &str, records: &[Record]) -> String {
    let created = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"suite\": \"{}\",\n", json_escape(suite)));
    out.push_str(&format!("  \"created_unix\": {created},\n"));
    out.push_str("  \"benches\": [\n");
    for (i, r) in records.iter().enumerate() {
        let s = &r.stats;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters_per_sample\": {}, \"samples\": {}, \
             \"mean_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"min_ns\": {}, \"max_ns\": {}, \"stddev_ns\": {}}}{}\n",
            json_escape(&r.name),
            r.iters_per_sample,
            r.samples,
            json_num(s.mean_ns),
            json_num(s.p50_ns),
            json_num(s.p99_ns),
            json_num(s.min_ns),
            json_num(s.max_ns),
            json_num(s.stddev_ns),
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Verify the JSON writer on a fixed record (used by unit tests; public
/// so integration tests can reuse it).
pub fn render_json_for_test(suite: &str, records: &[Record]) -> String {
    render_json(suite, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_percentiles() {
        let ns: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Stats::from_samples(ns);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
        assert_eq!(s.p50_ns, 51.0); // nearest-rank on 0-indexed 99*0.5 = 49.5 -> 50
        assert_eq!(s.p99_ns, 99.0);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.max_ns, 100.0);
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let rec = Record {
            name: "a\"b\\c".to_string(),
            iters_per_sample: 10,
            samples: 3,
            stats: Stats {
                mean_ns: 1.0,
                p50_ns: 1.0,
                p99_ns: 2.0,
                min_ns: 0.5,
                max_ns: 2.0,
                stddev_ns: 0.1,
            },
        };
        let j = render_json("unit", &[rec]);
        assert!(j.contains("\"suite\": \"unit\""));
        assert!(j.contains("a\\\"b\\\\c"));
        assert!(j.contains("\"p99_ns\": 2.000"));
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn bencher_measures_something() {
        let mut suite = Suite::new(
            "selftest",
            BenchConfig {
                warmup: Duration::from_millis(1),
                sample_target: Duration::from_micros(200),
                samples: 3,
                out_dir: PathBuf::from("results/bench"),
            },
        );
        suite.bench("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(suite.records.len(), 1);
        assert!(suite.records[0].stats.mean_ns > 0.0);
    }

    #[test]
    fn p50_index_comment_is_right() {
        // Documents the nearest-rank convention used above.
        let ns: Vec<f64> = (0..4).map(|i| i as f64).collect();
        let s = Stats::from_samples(ns);
        assert_eq!(s.p50_ns, 2.0); // (3 * 0.5).round() = 2
    }

    #[test]
    fn stats_singleton_sample() {
        let s = Stats::from_samples(vec![42.0]);
        assert_eq!(s.mean_ns, 42.0);
        assert_eq!(s.p50_ns, 42.0);
        assert_eq!(s.p99_ns, 42.0);
        assert_eq!(s.min_ns, 42.0);
        assert_eq!(s.max_ns, 42.0);
        assert_eq!(s.stddev_ns, 0.0);
    }

    #[test]
    fn stats_even_length_percentiles() {
        // Even-length sets have no exact middle; nearest-rank rounds the
        // fractional index, so [10,20] -> p50 at round(0.5) = index 1.
        let s = Stats::from_samples(vec![20.0, 10.0]);
        assert_eq!(s.p50_ns, 20.0);
        assert_eq!(s.p99_ns, 20.0);
        assert_eq!(s.mean_ns, 15.0);
        assert_eq!(s.stddev_ns, 5.0);

        // Six samples: p50 index = round(5 * 0.5) = 3 (fourth-smallest),
        // p99 index = round(5 * 0.99) = 5 (the max).
        let s = Stats::from_samples(vec![6.0, 1.0, 5.0, 2.0, 4.0, 3.0]);
        assert_eq!(s.p50_ns, 4.0);
        assert_eq!(s.p99_ns, 6.0);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.max_ns, 6.0);
    }

    #[test]
    fn stats_sorts_unsorted_input() {
        let s = Stats::from_samples(vec![3.0, 1.0, 2.0]);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.p50_ns, 2.0);
        assert_eq!(s.max_ns, 3.0);
    }

    #[test]
    fn calibration_targets_sample_duration() {
        // 50 ms target at 1 us/iter -> 50_000 iterations per sample.
        assert_eq!(calibrate_iters(0.05, 1e-6), 50_000);
        // Iterations slower than the target still run once per sample.
        assert_eq!(calibrate_iters(0.05, 0.2), 1);
        // Exactly at the target: one iteration fills the sample.
        assert_eq!(calibrate_iters(0.05, 0.05), 1);
    }
}

/// Where a suite's report lands, for tools that read it back.
pub fn report_path(out_dir: &Path, suite: &str) -> PathBuf {
    out_dir.join(format!("BENCH_{suite}.json"))
}

/// One benchmark read back from a report written by [`Suite::finish`].
#[derive(Clone, Debug, PartialEq)]
pub struct ReportEntry {
    /// Benchmark name.
    pub name: String,
    /// Mean per-iteration nanoseconds.
    pub mean_ns: f64,
    /// Median per-iteration nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile per-iteration nanoseconds.
    pub p99_ns: f64,
}

fn json_field_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn json_field_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Parse a report produced by [`Suite::finish`]. This reads only the
/// line-per-bench format `render_json` writes — it is not a general
/// JSON parser, which keeps the workspace registry-free.
pub fn parse_report(text: &str) -> Vec<ReportEntry> {
    text.lines()
        .filter_map(|line| {
            Some(ReportEntry {
                name: json_field_str(line, "name")?,
                mean_ns: json_field_num(line, "mean_ns")?,
                p50_ns: json_field_num(line, "p50_ns")?,
                p99_ns: json_field_num(line, "p99_ns")?,
            })
        })
        .collect()
}

/// The outcome of comparing one benchmark across two reports.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Benchmark name.
    pub name: String,
    /// Baseline mean, ns.
    pub baseline_ns: f64,
    /// Current mean, ns.
    pub current_ns: f64,
    /// `current / baseline` — above 1.0 is slower than baseline.
    pub ratio: f64,
}

impl Delta {
    /// Slower than baseline by more than `tolerance` (e.g. `0.3` allows
    /// +30% before flagging)?
    pub fn regressed(&self, tolerance: f64) -> bool {
        self.ratio > 1.0 + tolerance
    }
}

/// Compare two parsed reports by benchmark name (mean ns). Benchmarks
/// present in only one report are skipped — renames should not fail the
/// gate; the baseline refresh workflow covers them.
pub fn compare_reports(baseline: &[ReportEntry], current: &[ReportEntry]) -> Vec<Delta> {
    current
        .iter()
        .filter_map(|c| {
            let b = baseline.iter().find(|b| b.name == c.name)?;
            if b.mean_ns <= 0.0 {
                return None;
            }
            Some(Delta {
                name: c.name.clone(),
                baseline_ns: b.mean_ns,
                current_ns: c.mean_ns,
                ratio: c.mean_ns / b.mean_ns,
            })
        })
        .collect()
}

#[cfg(test)]
mod compare_tests {
    use super::*;

    fn entry(name: &str, mean: f64) -> ReportEntry {
        ReportEntry { name: name.into(), mean_ns: mean, p50_ns: mean, p99_ns: mean }
    }

    #[test]
    fn report_roundtrips_through_parser() {
        let records = vec![
            Record {
                name: "alpha".into(),
                iters_per_sample: 100,
                samples: 30,
                stats: Stats::from_samples(vec![10.0, 20.0, 30.0]),
            },
            Record {
                name: "beta \"quoted\"".into(),
                iters_per_sample: 1,
                samples: 5,
                stats: Stats::from_samples(vec![1e6]),
            },
        ];
        let parsed = parse_report(&render_json("micro", &records));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "alpha");
        assert!((parsed[0].mean_ns - 20.0).abs() < 1e-9);
        assert_eq!(parsed[0].p50_ns, 20.0);
        assert_eq!(parsed[0].p99_ns, 30.0);
        assert_eq!(parsed[1].name, "beta \"quoted\"");
        assert_eq!(parsed[1].mean_ns, 1e6);
    }

    #[test]
    fn compare_flags_only_regressions_beyond_tolerance() {
        let baseline = vec![entry("a", 100.0), entry("b", 100.0), entry("gone", 50.0)];
        let current = vec![entry("a", 125.0), entry("b", 80.0), entry("new", 10.0)];
        let deltas = compare_reports(&baseline, &current);
        // "gone" and "new" are skipped; a regressed 25%, b improved.
        assert_eq!(deltas.len(), 2);
        let a = deltas.iter().find(|d| d.name == "a").unwrap();
        let b = deltas.iter().find(|d| d.name == "b").unwrap();
        assert!(a.regressed(0.2));
        assert!(!a.regressed(0.3));
        assert!(!b.regressed(0.0));
        assert!((a.ratio - 1.25).abs() < 1e-9);
    }

    #[test]
    fn parser_ignores_non_bench_lines() {
        let text = "{\n  \"suite\": \"micro\",\n  \"created_unix\": 1,\n  \"benches\": [\n  ]\n}\n";
        assert!(parse_report(text).is_empty());
    }
}
