//! A minimal shrinking property-test harness.
//!
//! In-tree replacement for the subset of `proptest` this workspace used,
//! built on the deterministic [`SimRng`] generator so that property-test
//! case generation is bit-for-bit reproducible across platforms — the
//! same guarantee the simulators themselves make.
//!
//! A property is an ordinary function from generated values to
//! [`PropResult`]; the [`crate::props!`] macro wraps one or more of them
//! into `#[test]` functions:
//!
//! ```
//! devtools::props! {
//!     /// Reversing twice is the identity.
//!     fn reverse_involutive(xs in devtools::prop::vecs(devtools::prop::ints(-50..50), 0..20)) {
//!         let mut ys = xs.clone();
//!         ys.reverse();
//!         ys.reverse();
//!         devtools::prop_assert_eq!(xs, ys);
//!     }
//! }
//! ```
//!
//! On failure the runner greedily shrinks the counterexample (structural
//! shrinks first — shorter vectors, values closer to zero — then
//! element-wise ones) and panics with the minimal failing case, the seed,
//! and the case index. Failures caused by panics inside the property are
//! caught and shrunk the same way as `prop_assert!` failures; expect the
//! default panic hook to print intermediate panics while shrinking runs.
//!
//! Environment knobs:
//! - `DEVTOOLS_SEED=<u64>` — override the per-test seed (printed in every
//!   failure report) to replay a failure.
//! - `DEVTOOLS_CASES=<u32>` — override the number of cases per property.

use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use clocksim::rng::SimRng;

/// A failed property check: carries the assertion message.
#[derive(Debug, Clone)]
pub struct PropFail {
    /// Human-readable description of what failed.
    pub message: String,
}

impl PropFail {
    /// Build a failure from any message.
    pub fn new(message: impl Into<String>) -> Self {
        PropFail { message: message.into() }
    }
}

/// What a property body returns: `Ok(())` to accept the case.
pub type PropResult = Result<(), PropFail>;

/// A value generator with optional shrinking.
///
/// `generate` draws one value from the deterministic RNG; `shrink`
/// proposes strictly-"smaller" candidates for a failing value (closer to
/// zero, shorter, fewer `Some`s). The default `shrink` proposes nothing,
/// which is always sound.
pub trait Gen {
    /// The type of generated values.
    type Value: Clone + Debug;
    /// Draw one value.
    fn generate(&self, rng: &mut SimRng) -> Self::Value;
    /// Propose smaller candidate values for a failing case.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

// ---------------------------------------------------------------------------
// Integer generators
// ---------------------------------------------------------------------------

fn shrink_integer(v: i128, lo: i128, hi: i128) -> Vec<i128> {
    let target = 0i128.clamp(lo, hi);
    if v == target {
        return Vec::new();
    }
    let mut out = vec![target];
    let mid = target + (v - target) / 2;
    if mid != target && mid != v {
        out.push(mid);
    }
    let step = if v > target { v - 1 } else { v + 1 };
    if step != target && step != mid && step != v {
        out.push(step);
    }
    out
}

/// Uniform `i64` in an inclusive range; shrinks toward the in-range value
/// closest to zero.
#[derive(Clone, Debug)]
pub struct I64Gen {
    lo: i64,
    hi: i64,
}

impl Gen for I64Gen {
    type Value = i64;
    fn generate(&self, rng: &mut SimRng) -> i64 {
        rng.int_range(self.lo, self.hi)
    }
    fn shrink(&self, v: &i64) -> Vec<i64> {
        shrink_integer(*v as i128, self.lo as i128, self.hi as i128)
            .into_iter()
            .map(|x| x as i64)
            .collect()
    }
}

/// `i64` from a half-open range, `ints(0..100)`.
pub fn ints(r: Range<i64>) -> I64Gen {
    assert!(r.start < r.end, "empty range");
    I64Gen { lo: r.start, hi: r.end - 1 }
}

/// `i64` from an inclusive range.
pub fn ints_incl(lo: i64, hi: i64) -> I64Gen {
    assert!(lo <= hi, "empty range");
    I64Gen { lo, hi }
}

/// Uniform `usize` in a half-open range; shrinks toward the low bound.
#[derive(Clone, Debug)]
pub struct UsizeGen {
    lo: usize,
    hi: usize,
}

impl Gen for UsizeGen {
    type Value = usize;
    fn generate(&self, rng: &mut SimRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
    fn shrink(&self, v: &usize) -> Vec<usize> {
        shrink_integer(*v as i128, self.lo as i128, self.hi as i128)
            .into_iter()
            .map(|x| x as usize)
            .collect()
    }
}

/// `usize` from a half-open range, `sizes(1..60)`.
pub fn sizes(r: Range<usize>) -> UsizeGen {
    assert!(r.start < r.end, "empty range");
    UsizeGen { lo: r.start, hi: r.end - 1 }
}

macro_rules! full_range_gen {
    ($(#[$meta:meta])* $name:ident, $ctor:ident, $ty:ty) => {
        $(#[$meta])*
        #[derive(Clone, Debug)]
        pub struct $name;

        impl Gen for $name {
            type Value = $ty;
            fn generate(&self, rng: &mut SimRng) -> $ty {
                rng.next_u64() as $ty
            }
            fn shrink(&self, v: &$ty) -> Vec<$ty> {
                shrink_integer(*v as i128, <$ty>::MIN as i128, <$ty>::MAX as i128)
                    .into_iter()
                    .map(|x| x as $ty)
                    .collect()
            }
        }

        /// Any value of the type, uniformly; shrinks toward zero.
        pub fn $ctor() -> $name {
            $name
        }
    };
}

full_range_gen!(
    /// Uniform over all of `u8`.
    U8Gen, any_u8, u8);
full_range_gen!(
    /// Uniform over all of `i8`.
    I8Gen, any_i8, i8);
full_range_gen!(
    /// Uniform over all of `u32`.
    U32Gen, any_u32, u32);
full_range_gen!(
    /// Uniform over all of `u64`.
    U64Gen, any_u64, u64);

// ---------------------------------------------------------------------------
// Float generator
// ---------------------------------------------------------------------------

/// Uniform `f64` in a half-open range; shrinks toward the in-range value
/// closest to zero.
#[derive(Clone, Debug)]
pub struct F64Gen {
    lo: f64,
    hi: f64,
}

impl Gen for F64Gen {
    type Value = f64;
    fn generate(&self, rng: &mut SimRng) -> f64 {
        rng.uniform_range(self.lo, self.hi)
    }
    fn shrink(&self, v: &f64) -> Vec<f64> {
        let target = if self.lo <= 0.0 && 0.0 < self.hi { 0.0 } else { self.lo };
        let dist = (v - target).abs();
        if dist <= 1e-9 * (1.0 + target.abs()) {
            return Vec::new();
        }
        let mut out = vec![target];
        let mid = target + (v - target) / 2.0;
        if mid != *v && mid != target {
            out.push(mid);
        }
        out
    }
}

/// `f64` from a half-open range, `floats(-200.0..200.0)`.
pub fn floats(r: Range<f64>) -> F64Gen {
    assert!(r.start < r.end, "empty range");
    assert!(r.start.is_finite() && r.end.is_finite(), "non-finite bounds");
    F64Gen { lo: r.start, hi: r.end }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

/// Vector of values from an element generator, length uniform in a range.
///
/// Shrinks structurally first (halves, then single-element removals) and
/// element-wise second, never below the minimum length.
#[derive(Clone, Debug)]
pub struct VecGen<G> {
    elem: G,
    min: usize,
    max: usize,
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;
    fn generate(&self, rng: &mut SimRng) -> Vec<G::Value> {
        let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
    fn shrink(&self, v: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        let n = v.len();
        if n > self.min {
            let half = (n / 2).max(self.min);
            if half < n {
                out.push(v[..half].to_vec());
                out.push(v[n - half..].to_vec());
            }
            for i in 0..n.min(16) {
                let mut w = v.clone();
                w.remove(i);
                out.push(w);
            }
        }
        for i in 0..n.min(16) {
            for cand in self.elem.shrink(&v[i]).into_iter().take(3) {
                let mut w = v.clone();
                w[i] = cand;
                out.push(w);
            }
        }
        out
    }
}

/// Vector with length from a half-open range, `vecs(gen, 0..20)`.
pub fn vecs<G: Gen>(elem: G, len: Range<usize>) -> VecGen<G> {
    assert!(len.start < len.end, "empty length range");
    VecGen { elem, min: len.start, max: len.end - 1 }
}

/// Vector with an exact length.
pub fn vecs_exact<G: Gen>(elem: G, len: usize) -> VecGen<G> {
    VecGen { elem, min: len, max: len }
}

/// `Option` of an inner generator (some ~70% of the time); shrinks
/// `Some(x)` to `None` first, then shrinks `x`.
#[derive(Clone, Debug)]
pub struct OptionGen<G> {
    inner: G,
}

impl<G: Gen> Gen for OptionGen<G> {
    type Value = Option<G::Value>;
    fn generate(&self, rng: &mut SimRng) -> Option<G::Value> {
        if rng.chance(0.7) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
    fn shrink(&self, v: &Option<G::Value>) -> Vec<Option<G::Value>> {
        match v {
            None => Vec::new(),
            Some(x) => {
                let mut out = vec![None];
                out.extend(self.inner.shrink(x).into_iter().map(Some));
                out
            }
        }
    }
}

/// `Option` of an inner generator.
pub fn options<G: Gen>(inner: G) -> OptionGen<G> {
    OptionGen { inner }
}

/// Arbitrary strings (mostly printable ASCII with occasional multi-byte
/// characters, never `\n`), length in characters from a half-open range.
///
/// Shrinks by dropping characters and simplifying survivors to `'a'`.
#[derive(Clone, Debug)]
pub struct StringGen {
    min: usize,
    max: usize,
}

const EXOTIC_CHARS: &[char] = &['é', 'ß', '中', '🦀', '\u{200b}', '\t'];

impl Gen for StringGen {
    type Value = String;
    fn generate(&self, rng: &mut SimRng) -> String {
        let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
        (0..len)
            .map(|_| {
                if rng.chance(0.9) {
                    (0x20 + rng.below(0x5f) as u8) as char
                } else {
                    EXOTIC_CHARS[rng.index(EXOTIC_CHARS.len())]
                }
            })
            .collect()
    }
    fn shrink(&self, v: &String) -> Vec<String> {
        let chars: Vec<char> = v.chars().collect();
        let n = chars.len();
        let mut out = Vec::new();
        if n > self.min {
            let half = (n / 2).max(self.min);
            if half < n {
                out.push(chars[..half].iter().collect());
                out.push(chars[n - half..].iter().collect());
            }
            for i in 0..n.min(16) {
                let mut w = chars.clone();
                w.remove(i);
                out.push(w.into_iter().collect());
            }
        }
        for i in 0..n.min(16) {
            if chars[i] != 'a' {
                let mut w = chars.clone();
                w[i] = 'a';
                out.push(w.into_iter().collect());
            }
        }
        out
    }
}

/// Strings with length (in chars) from a half-open range, `strings(0..81)`.
pub fn strings(len: Range<usize>) -> StringGen {
    assert!(len.start < len.end, "empty length range");
    StringGen { min: len.start, max: len.end - 1 }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_gen {
    ( $( $G:ident : $idx:tt ),+ ) => {
        impl<$($G: Gen),+> Gen for ($($G,)+) {
            type Value = ($($G::Value,)+);
            fn generate(&self, rng: &mut SimRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&v.$idx) {
                        let mut w = v.clone();
                        w.$idx = cand;
                        out.push(w);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_gen!(A: 0);
impl_tuple_gen!(A: 0, B: 1);
impl_tuple_gen!(A: 0, B: 1, C: 2);
impl_tuple_gen!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_gen!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_gen!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_gen!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_gen!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
impl_tuple_gen!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
impl_tuple_gen!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Runner configuration; the defaults match `run`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Cases to generate per property (`DEVTOOLS_CASES` overrides).
    pub cases: u32,
    /// Cap on property evaluations spent shrinking one counterexample.
    pub max_shrink_steps: u32,
    /// Fixed seed; `None` derives one from the property name
    /// (`DEVTOOLS_SEED` overrides).
    pub seed: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 128, max_shrink_steps: 4096, seed: None }
    }
}

/// A shrunk failing case, as found by [`find_counterexample`].
#[derive(Clone, Debug)]
pub struct Counterexample<V> {
    /// The minimal failing value the shrinker converged on.
    pub value: V,
    /// The failure message the minimal value produces.
    pub message: String,
    /// The seed that reproduces the run.
    pub seed: u64,
    /// Zero-based index of the originally failing case.
    pub case: u32,
    /// Property evaluations spent shrinking.
    pub shrink_steps: u32,
}

/// FNV-1a, used to derive a stable per-property default seed from its
/// name so distinct properties explore distinct case streams.
fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

fn call<V: Clone>(prop: &impl Fn(V) -> PropResult, v: &V) -> PropResult {
    match catch_unwind(AssertUnwindSafe(|| prop(v.clone()))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "property panicked".to_string()
            };
            Err(PropFail::new(format!("panic: {msg}")))
        }
    }
}

/// Run `cases` generated inputs through `prop` and return the shrunk
/// counterexample of the first failure, or `None` if every case passes.
pub fn find_counterexample<G: Gen>(
    cfg: &Config,
    name: &str,
    gen: &G,
    prop: impl Fn(G::Value) -> PropResult,
) -> Option<Counterexample<G::Value>> {
    let cases = env_u64("DEVTOOLS_CASES").map(|n| n as u32).unwrap_or(cfg.cases);
    let seed = cfg.seed.or_else(|| env_u64("DEVTOOLS_SEED")).unwrap_or_else(|| fnv1a(name));
    let mut rng = SimRng::new(seed);
    for case in 0..cases {
        let v = gen.generate(&mut rng);
        let Err(first_fail) = call(&prop, &v) else { continue };

        // Greedy shrink: take the first candidate that still fails,
        // restart from it, stop when no candidate fails (or on budget).
        let mut cur = v;
        let mut message = first_fail.message;
        let mut steps = 0u32;
        'shrinking: while steps < cfg.max_shrink_steps {
            for cand in gen.shrink(&cur) {
                steps += 1;
                if let Err(f) = call(&prop, &cand) {
                    cur = cand;
                    message = f.message;
                    continue 'shrinking;
                }
                if steps >= cfg.max_shrink_steps {
                    break 'shrinking;
                }
            }
            break;
        }
        return Some(Counterexample { value: cur, message, seed, case, shrink_steps: steps });
    }
    None
}

/// Run a property with explicit configuration, panicking (test failure)
/// on the shrunk counterexample.
pub fn run_with<G: Gen>(
    cfg: &Config,
    name: &str,
    gen: &G,
    prop: impl Fn(G::Value) -> PropResult,
) {
    if let Some(cex) = find_counterexample(cfg, name, gen, prop) {
        panic!(
            "property '{name}' falsified at case {case} (seed {seed}, {steps} shrink steps)\n\
             minimal counterexample: {value:#?}\n{message}\n\
             replay with: DEVTOOLS_SEED={seed} cargo test {name}",
            case = cex.case,
            seed = cex.seed,
            steps = cex.shrink_steps,
            value = cex.value,
            message = cex.message,
        );
    }
}

/// Run a property with the default [`Config`].
pub fn run<G: Gen>(name: &str, gen: &G, prop: impl Fn(G::Value) -> PropResult) {
    run_with(&Config::default(), name, gen, prop)
}

/// Declare `#[test]` property functions. Each argument is drawn from the
/// generator expression after `in`; the body uses [`crate::prop_assert!`]
/// and friends (or plain panics/`unwrap`) to reject a case.
#[macro_export]
macro_rules! props {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $gen:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __gen = ($($gen,)+);
                $crate::prop::run(stringify!($name), &__gen, |($($arg,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Reject the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::prop::PropFail::new(format!($($fmt)+)));
        }
    };
}

/// Reject the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::prop::PropFail::new(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
}
