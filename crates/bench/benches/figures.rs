//! One benchmark per paper table/figure pipeline.
//!
//! These measure how long each reproduction pipeline takes at a reduced
//! horizon (the statistics themselves come from the `repro` binary at
//! full horizons). Sample counts are kept small: each iteration runs a
//! complete simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use experiments::{fig1, fig2, fig4, fig5, fig6, fig7, fig8, fig9and10, table1};
use mntp::MntpConfig;
use tuner::{emulate, grid_search, ParamGrid};

fn small(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g
}

fn bench_table1(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("table1_scale50k", |b| b.iter(|| table1::run(black_box(1), 50_000)));
    g.finish();
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("fig1_scale20k", |b| b.iter(|| fig1::run(black_box(1), 20_000)));
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("fig2_scale20k", |b| b.iter(|| fig2::run(black_box(1), 20_000)));
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("fig4_10min", |b| b.iter(|| fig4::run(black_box(1), 600)));
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("fig5_10min", |b| b.iter(|| fig5::run(black_box(1), 600)));
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("fig6_10min", |b| b.iter(|| fig6::run(black_box(1), 600)));
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("fig7_10min", |b| b.iter(|| fig7::run(black_box(1), 600)));
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("fig8_10min", |b| b.iter(|| fig8::run(black_box(1), 600)));
    g.finish();
}

fn bench_fig9_10(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("fig9_10min", |b| b.iter(|| fig9and10::run(black_box(1), 600, true)));
    g.bench_function("fig10_10min", |b| b.iter(|| fig9and10::run(black_box(1), 600, false)));
    g.finish();
}

/// Figure 12 is the 4-hour run; bench a 20-minute slice of the same
/// pipeline.
fn bench_fig12_slice(c: &mut Criterion) {
    let mut g = small(c);
    g.bench_function("fig12_20min_slice", |b| b.iter(|| fig8::run(black_box(1), 1200)));
    g.finish();
}

/// Table 2 / Figure 11: trace recording is the expensive half; the
/// emulator and grid search are the interesting half. Bench them
/// separately over a synthetic trace.
fn bench_table2(c: &mut Criterion) {
    use netsim::testbed::TestbedConfig;
    use netsim::Testbed;
    use experiments::harness::{default_pool, ClockMode};

    let mut tb = Testbed::wireless(TestbedConfig::default(), 9);
    let mut pool = default_pool(10);
    let mut clock = ClockMode::free_running_default().build(11);
    let trace = tuner::record_trace(&mut tb, &mut pool, &mut clock, 1800, 5.0, 3);

    let mut g = small(c);
    g.bench_function("table2_emulate_one_config", |b| {
        let cfg = MntpConfig::from_tuner_minutes(10.0, 0.25, 5.0, 240.0);
        b.iter(|| emulate(black_box(&cfg), black_box(&trace)))
    });
    g.bench_function("table2_grid_search_24", |b| {
        let grid = ParamGrid::paper_table2();
        b.iter(|| grid_search(&MntpConfig::default(), black_box(&grid), black_box(&trace)))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_table1,
    bench_fig1,
    bench_fig2,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9_10,
    bench_fig12_slice,
    bench_table2
);
criterion_main!(figures);
