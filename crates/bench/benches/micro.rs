//! Hot-path microbenchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clocksim::fit::{fit_line, fit_poly};
use clocksim::rng::SimRng;
use clocksim::time::{SimDuration, SimTime};
use mntp::TrendFilter;
use netsim::kernel::Sim;
use netsim::wifi::{WifiChannel, WifiConfig};
use ntp_wire::{sntp_profile, Exchange, NtpPacket, NtpTimestamp};
use ntpd_sim::select::{select_survivors, PeerCandidate};

fn bench_packet_codec(c: &mut Criterion) {
    let packet = sntp_profile::client_request(NtpTimestamp::from_parts(1000, 42));
    let bytes = packet.serialize();
    c.bench_function("packet_serialize", |b| {
        b.iter(|| black_box(&packet).serialize())
    });
    c.bench_function("packet_parse", |b| {
        b.iter(|| NtpPacket::parse(black_box(&bytes)).unwrap())
    });
}

fn bench_clock_algebra(c: &mut Criterion) {
    let e = Exchange {
        t1: NtpTimestamp::from_parts(100, 0),
        t2: NtpTimestamp::from_parts(100, 1 << 30),
        t3: NtpTimestamp::from_parts(100, 1 << 31),
        t4: NtpTimestamp::from_parts(101, 0),
    };
    c.bench_function("exchange_offset_delay", |b| {
        b.iter(|| (black_box(&e).offset(), black_box(&e).delay()))
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng_next_u64", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| rng.next_u64())
    });
    c.bench_function("rng_gauss", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| rng.gauss())
    });
    c.bench_function("rng_pareto", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| rng.pareto(40.0, 1.5))
    });
}

fn bench_fits(c: &mut Criterion) {
    let points: Vec<(f64, f64)> =
        (0..512).map(|i| (i as f64, 0.03 * i as f64 + ((i * 7 % 13) as f64 - 6.0))).collect();
    c.bench_function("fit_line_512", |b| b.iter(|| fit_line(black_box(&points)).unwrap()));
    c.bench_function("fit_poly2_512", |b| b.iter(|| fit_poly(black_box(&points), 2).unwrap()));
}

fn bench_trend_filter(c: &mut Criterion) {
    c.bench_function("trend_filter_offer_stream", |b| {
        b.iter(|| {
            let mut f = TrendFilter::new(1.0, true);
            for i in 0..256 {
                let t = i as f64 * 5.0;
                let spike = if i % 17 == 16 { 200.0 } else { 0.0 };
                f.offer(t, -0.03 * t + spike);
            }
            f.counts()
        })
    });
}

fn bench_select(c: &mut Criterion) {
    let cands: Vec<PeerCandidate> = (0..16)
        .map(|i| PeerCandidate {
            peer_id: i,
            offset: if i == 7 { 0.5 } else { 0.001 * i as f64 },
            root_distance: 0.02,
            jitter: 0.001,
        })
        .collect();
    c.bench_function("marzullo_select_16", |b| {
        b.iter(|| select_survivors(black_box(&cands)))
    });
}

fn bench_des_kernel(c: &mut Criterion) {
    c.bench_function("des_kernel_10k_events", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new();
            let mut world = 0u64;
            fn tick(w: &mut u64, sim: &mut Sim<u64>) {
                *w += 1;
                if !(*w).is_multiple_of(10) {
                    sim.schedule_in(SimDuration::from_millis(1), tick);
                }
            }
            for i in 0..1000 {
                sim.schedule_at(SimTime::from_millis(i), tick);
            }
            sim.run_to_completion(&mut world);
            world
        })
    });
}

fn bench_wifi_channel(c: &mut Criterion) {
    c.bench_function("wifi_transmit_down", |b| {
        let mut ch = WifiChannel::new(WifiConfig::default(), SimRng::new(4));
        ch.set_utilization_now(0.6);
        let mut t = 0i64;
        b.iter(|| {
            t += 100;
            ch.transmit_down(SimTime::from_millis(t))
        })
    });
    c.bench_function("wifi_hints", |b| {
        let mut ch = WifiChannel::new(WifiConfig::default(), SimRng::new(5));
        let mut t = 0i64;
        b.iter(|| {
            t += 100;
            ch.hints(SimTime::from_millis(t))
        })
    });
}

fn bench_exchange(c: &mut Criterion) {
    use sntp::{perform_exchange, PoolConfig, ServerPool};
    c.bench_function("full_exchange_wired", |b| {
        let mut tb = netsim::Testbed::wired(6);
        let mut pool = ServerPool::new(PoolConfig::default(), 7);
        let osc = clocksim::OscillatorConfig::laptop().build(SimRng::new(8));
        let mut clock = clocksim::SimClock::new(osc, SimTime::ZERO);
        let mut t = 0i64;
        b.iter(|| {
            t += 5;
            let id = pool.pick();
            perform_exchange(&mut tb, pool.server_mut(id), &mut clock, SimTime::from_secs(t))
        })
    });
}

criterion_group!(
    micro,
    bench_packet_codec,
    bench_clock_algebra,
    bench_rng,
    bench_fits,
    bench_trend_filter,
    bench_select,
    bench_des_kernel,
    bench_wifi_channel,
    bench_exchange
);
criterion_main!(micro);
