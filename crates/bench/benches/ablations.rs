//! Runtime cost of MNTP's mechanisms (the quality side of these
//! ablations is produced by `repro -- ablations`).
//!
//! Covers the DESIGN.md §6 list: gate-only / filter-only, threshold
//! sensitivity, drift re-estimation, warmup source count, and the
//! trend-fit degree.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use clocksim::fit::{fit_line, fit_poly};
use experiments::ablations::{run_arm, Mechanisms};

fn group(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g
}

fn bench_mechanism_combinations(c: &mut Criterion) {
    let mut g = group(c);
    for (name, m) in [
        ("full", Mechanisms::full()),
        ("gate_only", Mechanisms { filter: false, ..Mechanisms::full() }),
        ("filter_only", Mechanisms { gate: false, ..Mechanisms::full() }),
        ("neither", Mechanisms { gate: false, filter: false, ..Mechanisms::full() }),
    ] {
        g.bench_function(format!("mechanisms_{name}_10min"), |b| {
            b.iter(|| run_arm(name, black_box(m), 1, 600))
        });
    }
    g.finish();
}

fn bench_threshold_sensitivity(c: &mut Criterion) {
    let mut g = group(c);
    for snr in [10.0, 15.0, 20.0, 25.0] {
        let m = Mechanisms { snr_margin_db: snr, ..Mechanisms::full() };
        g.bench_function(format!("snr_margin_{snr}dB_10min"), |b| {
            b.iter(|| run_arm("thr", black_box(m), 2, 600))
        });
    }
    g.finish();
}

fn bench_reestimation(c: &mut Criterion) {
    let mut g = group(c);
    for (name, re) in [("reestimate_on", true), ("reestimate_off", false)] {
        let m = Mechanisms { reestimate: re, ..Mechanisms::full() };
        g.bench_function(format!("{name}_10min"), |b| {
            b.iter(|| run_arm(name, black_box(m), 3, 600))
        });
    }
    g.finish();
}

/// Warmup source count: cost of 1/3/5-source warmup rounds in the full
/// Algorithm 1.
fn bench_warmup_sources(c: &mut Criterion) {
    use experiments::harness::{default_pool, ClockMode};
    use mntp::{run_full, MntpConfig};
    use netsim::testbed::TestbedConfig;
    use netsim::Testbed;

    let mut g = group(c);
    for sources in [1usize, 3, 5] {
        g.bench_function(format!("warmup_sources_{sources}_10min"), |b| {
            b.iter(|| {
                let cfg = MntpConfig {
                    warmup_period_secs: 300.0,
                    warmup_wait_secs: 10.0,
                    regular_wait_secs: 30.0,
                    warmup_sources: sources,
                    ..Default::default()
                };
                let mut tb = Testbed::wireless(TestbedConfig::default(), 4);
                let mut pool = default_pool(5);
                let mut clock = ClockMode::free_running_default().build(6);
                run_full(cfg, &mut tb, &mut pool, &mut clock, 600, 1.0)
            })
        });
    }
    g.finish();
}

/// Trend-fit degree (the paper chose degree 1; degree 0 ignores drift,
/// degree 2 chases curvature).
fn bench_fit_degree(c: &mut Criterion) {
    let points: Vec<(f64, f64)> =
        (0..256).map(|i| (i as f64 * 15.0, -0.03 * (i as f64 * 15.0) + ((i * 11 % 7) as f64 - 3.0))).collect();
    let mut g = group(c);
    g.bench_function("fit_degree_0", |b| b.iter(|| fit_poly(black_box(&points), 0)));
    g.bench_function("fit_degree_1", |b| b.iter(|| fit_line(black_box(&points))));
    g.bench_function("fit_degree_2", |b| b.iter(|| fit_poly(black_box(&points), 2)));
    g.finish();
}

criterion_group!(
    ablations,
    bench_mechanism_combinations,
    bench_threshold_sensitivity,
    bench_reestimation,
    bench_warmup_sources,
    bench_fit_degree
);
criterion_main!(ablations);
