//! Bench-only crate: see `src/bin/` for the benchmark suite binaries,
//! built on the in-tree `devtools::bench` harness (JSON reports land in
//! `results/bench/`).
//!
//! * `figures` — one benchmark per paper table/figure pipeline (at
//!   reduced horizons; the `repro` binary produces the full-horizon
//!   numbers).
//! * `micro` — hot-path microbenchmarks: packet codec, clock algebra,
//!   RNG, least-squares fits, the trend filter, NTP mitigation stages,
//!   the DES kernel, and the channel models.
//! * `ablations` — runtime cost of each MNTP mechanism combination
//!   (the corresponding *quality* numbers come from
//!   `experiments::ablations` via the `repro` binary).
