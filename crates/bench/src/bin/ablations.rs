//! Runtime cost of MNTP's mechanisms (the quality side of these
//! ablations is produced by `repro -- ablations`).
//!
//! Covers the DESIGN.md §6 list: gate-only / filter-only, threshold
//! sensitivity, drift re-estimation, warmup source count, and the
//! trend-fit degree.
//!
//! `cargo run --release -p mntp-bench --bin ablations [FILTER] [--quick]`
//! writes `results/bench/BENCH_ablations.json`.

use devtools::bench::Suite;
use std::hint::black_box;

use clocksim::fit::{fit_line, fit_poly};
use experiments::ablations::{run_arm, Mechanisms};

fn bench_mechanism_combinations(s: &mut Suite) {
    for (name, m) in [
        ("full", Mechanisms::full()),
        ("gate_only", Mechanisms { filter: false, ..Mechanisms::full() }),
        ("filter_only", Mechanisms { gate: false, ..Mechanisms::full() }),
        ("neither", Mechanisms { gate: false, filter: false, ..Mechanisms::full() }),
    ] {
        s.bench(&format!("mechanisms_{name}_10min"), |b| {
            b.iter(|| run_arm(name, black_box(m), 1, 600))
        });
    }
}

fn bench_threshold_sensitivity(s: &mut Suite) {
    for snr in [10.0, 15.0, 20.0, 25.0] {
        let m = Mechanisms { snr_margin_db: snr, ..Mechanisms::full() };
        s.bench(&format!("snr_margin_{snr}dB_10min"), |b| {
            b.iter(|| run_arm("thr", black_box(m), 2, 600))
        });
    }
}

fn bench_reestimation(s: &mut Suite) {
    for (name, re) in [("reestimate_on", true), ("reestimate_off", false)] {
        let m = Mechanisms { reestimate: re, ..Mechanisms::full() };
        s.bench(&format!("{name}_10min"), |b| b.iter(|| run_arm(name, black_box(m), 3, 600)));
    }
}

/// Warmup source count: cost of 1/3/5-source warmup rounds in the full
/// Algorithm 1.
fn bench_warmup_sources(s: &mut Suite) {
    use experiments::harness::{default_pool, ClockMode};
    use mntp::{run_full, MntpConfig};
    use netsim::testbed::TestbedConfig;
    use netsim::Testbed;

    for sources in [1usize, 3, 5] {
        s.bench(&format!("warmup_sources_{sources}_10min"), |b| {
            b.iter(|| {
                let cfg = MntpConfig {
                    warmup_period_secs: 300.0,
                    warmup_wait_secs: 10.0,
                    regular_wait_secs: 30.0,
                    warmup_sources: sources,
                    ..Default::default()
                };
                let mut tb = Testbed::wireless(TestbedConfig::default(), 4);
                let mut pool = default_pool(5);
                let mut clock = ClockMode::free_running_default().build(6);
                run_full(cfg, &mut tb, &mut pool, &mut clock, 600, 1.0)
            })
        });
    }
}

/// Trend-fit degree (the paper chose degree 1; degree 0 ignores drift,
/// degree 2 chases curvature).
fn bench_fit_degree(s: &mut Suite) {
    let points: Vec<(f64, f64)> = (0..256)
        .map(|i| (i as f64 * 15.0, -0.03 * (i as f64 * 15.0) + ((i * 11 % 7) as f64 - 3.0)))
        .collect();
    s.bench("fit_degree_0", |b| b.iter(|| fit_poly(black_box(&points), 0)));
    s.bench("fit_degree_1", |b| b.iter(|| fit_line(black_box(&points))));
    s.bench("fit_degree_2", |b| b.iter(|| fit_poly(black_box(&points), 2)));
}

fn main() {
    let mut s = Suite::from_args("ablations");
    // Whole-simulation arms: small sample counts, like the old criterion
    // `sample_size(10)` groups.
    s.set_samples(10);
    bench_mechanism_combinations(&mut s);
    bench_threshold_sensitivity(&mut s);
    bench_reestimation(&mut s);
    bench_warmup_sources(&mut s);
    // The fit benches are cheap micro-ops; give them full samples.
    s.reset_samples();
    bench_fit_degree(&mut s);
    s.finish().expect("write bench report");
}
