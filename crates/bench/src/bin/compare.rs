//! `compare` — diff a bench report against the committed baseline.
//!
//! ```text
//! cargo run --release -p mntp-bench --bin micro
//! cargo run --release -p mntp-bench --bin compare            # vs results/bench/baseline.json
//! cargo run --release -p mntp-bench --bin compare -- \
//!     results/bench/baseline.json results/bench/BENCH_micro.json --tolerance 0.5
//! ```
//!
//! Exits 1 if any benchmark's mean regressed beyond the tolerance
//! (default +30% — microbenchmarks on shared hardware are noisy; tighten
//! it on quiet machines). Benchmarks present in only one report are
//! listed but never fail the gate, so adding or renaming a bench does
//! not require touching the baseline in the same change.

use devtools::bench::{compare_reports, parse_report};

const DEFAULT_BASELINE: &str = "results/bench/baseline.json";
const DEFAULT_CURRENT: &str = "results/bench/BENCH_micro.json";
const DEFAULT_TOLERANCE: f64 = 0.3;

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tolerance" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("--tolerance requires a fraction (0.3 = +30%)");
                    std::process::exit(2);
                });
                tolerance = v.parse().unwrap_or_else(|_| {
                    eprintln!("invalid tolerance {v:?}");
                    std::process::exit(2);
                });
            }
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let baseline_path = paths.first().map(String::as_str).unwrap_or(DEFAULT_BASELINE);
    let current_path = paths.get(1).map(String::as_str).unwrap_or(DEFAULT_CURRENT);

    let read = |path: &str| -> Vec<devtools::bench::ReportEntry> {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: could not read {path}: {e}");
            std::process::exit(2);
        });
        let entries = parse_report(&text);
        if entries.is_empty() {
            eprintln!("error: no benchmarks found in {path}");
            std::process::exit(2);
        }
        entries
    };
    let baseline = read(baseline_path);
    let current = read(current_path);

    for c in &current {
        if !baseline.iter().any(|b| b.name == c.name) {
            println!("{:<40} (not in baseline)", c.name);
        }
    }
    let deltas = compare_reports(&baseline, &current);
    let mut regressions = 0usize;
    for d in &deltas {
        let pct = (d.ratio - 1.0) * 100.0;
        let mark = if d.regressed(tolerance) {
            regressions += 1;
            "REGRESSED"
        } else if d.ratio < 1.0 {
            "faster"
        } else {
            "ok"
        };
        println!(
            "{:<40} {:>12.1} ns -> {:>12.1} ns  {:>+7.1}%  {mark}",
            d.name, d.baseline_ns, d.current_ns, pct
        );
    }
    println!(
        "\n{} benchmark(s) compared against {baseline_path}, tolerance +{:.0}%",
        deltas.len(),
        tolerance * 100.0
    );
    if regressions > 0 {
        eprintln!("error: {regressions} benchmark(s) regressed beyond tolerance");
        std::process::exit(1);
    }
}
