//! Hot-path microbenchmarks.
//!
//! `cargo run --release -p mntp-bench --bin micro [FILTER] [--quick]`
//! writes `results/bench/BENCH_micro.json`.

use devtools::bench::Suite;
use std::hint::black_box;

use clocksim::fit::{fit_line, fit_poly};
use clocksim::rng::SimRng;
use clocksim::time::{SimDuration, SimTime};
use mntp::TrendFilter;
use netsim::kernel::Sim;
use netsim::wifi::{WifiChannel, WifiConfig};
use ntp_wire::{sntp_profile, Exchange, NtpPacket, NtpTimestamp};
use ntpd_sim::select::{select_survivors, PeerCandidate};

fn bench_packet_codec(s: &mut Suite) {
    let packet = sntp_profile::client_request(NtpTimestamp::from_parts(1000, 42));
    let bytes = packet.serialize();
    s.bench("packet_serialize", |b| b.iter(|| black_box(&packet).serialize()));
    s.bench("packet_parse", |b| b.iter(|| NtpPacket::parse(black_box(&bytes)).unwrap()));
}

fn bench_clock_algebra(s: &mut Suite) {
    let e = Exchange {
        t1: NtpTimestamp::from_parts(100, 0),
        t2: NtpTimestamp::from_parts(100, 1 << 30),
        t3: NtpTimestamp::from_parts(100, 1 << 31),
        t4: NtpTimestamp::from_parts(101, 0),
    };
    s.bench("exchange_offset_delay", |b| {
        b.iter(|| (black_box(&e).offset(), black_box(&e).delay()))
    });
}

fn bench_rng(s: &mut Suite) {
    s.bench("rng_next_u64", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| rng.next_u64())
    });
    s.bench("rng_gauss", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| rng.gauss())
    });
    s.bench("rng_pareto", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| rng.pareto(40.0, 1.5))
    });
}

fn bench_fits(s: &mut Suite) {
    let points: Vec<(f64, f64)> =
        (0..512).map(|i| (i as f64, 0.03 * i as f64 + ((i * 7 % 13) as f64 - 6.0))).collect();
    s.bench("fit_line_512", |b| b.iter(|| fit_line(black_box(&points)).unwrap()));
    s.bench("fit_poly2_512", |b| b.iter(|| fit_poly(black_box(&points), 2).unwrap()));
}

fn bench_trend_filter(s: &mut Suite) {
    s.bench("trend_filter_offer_stream", |b| {
        b.iter(|| {
            let mut f = TrendFilter::new(1.0, true);
            for i in 0..256 {
                let t = i as f64 * 5.0;
                let spike = if i % 17 == 16 { 200.0 } else { 0.0 };
                f.offer(t, -0.03 * t + spike);
            }
            f.counts()
        })
    });
}

fn bench_select(s: &mut Suite) {
    let cands: Vec<PeerCandidate> = (0..16)
        .map(|i| PeerCandidate {
            peer_id: i,
            offset: if i == 7 { 0.5 } else { 0.001 * i as f64 },
            root_distance: 0.02,
            jitter: 0.001,
        })
        .collect();
    s.bench("marzullo_select_16", |b| b.iter(|| select_survivors(black_box(&cands))));
}

fn bench_des_kernel(s: &mut Suite) {
    s.bench("des_kernel_10k_events", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new();
            let mut world = 0u64;
            fn tick(w: &mut u64, sim: &mut Sim<u64>) {
                *w += 1;
                if !(*w).is_multiple_of(10) {
                    sim.schedule_in(SimDuration::from_millis(1), tick);
                }
            }
            for i in 0..1000 {
                sim.schedule_at(SimTime::from_millis(i), tick);
            }
            sim.run_to_completion(&mut world);
            world
        })
    });
    // Same workload on the fn-pointer fast path: no Box, no vtable, and
    // the periodic pattern recycles slab slots instead of growing.
    s.bench("des_kernel_10k_events_fn", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new();
            let mut world = 0u64;
            fn tick(w: &mut u64, sim: &mut Sim<u64>) {
                *w += 1;
                if !(*w).is_multiple_of(10) {
                    sim.schedule_fn_in(SimDuration::from_millis(1), tick);
                }
            }
            for i in 0..1000 {
                sim.schedule_fn_at(SimTime::from_millis(i), tick);
            }
            sim.run_to_completion(&mut world);
            world
        })
    });
}

fn bench_par_pool(s: &mut Suite) {
    use devtools::par::Pool;
    // Dispatch overhead: near-trivial tasks, so the measurement is the
    // pool machinery (deque setup, thread spawn, steal, reassembly) and
    // not the work. jobs=1 is the inline serial path (the floor).
    let items: Vec<u64> = (0..256).collect();
    s.bench("par_map_256_trivial_jobs1", |b| {
        let pool = Pool::with_jobs(1);
        b.iter(|| pool.map(items.clone(), |x| x.wrapping_mul(2654435761)))
    });
    s.bench("par_map_256_trivial_jobs4", |b| {
        let pool = Pool::with_jobs(4);
        b.iter(|| pool.map(items.clone(), |x| x.wrapping_mul(2654435761)))
    });
    // Per-dispatch cost amortized over real work: each task spins long
    // enough that the pool overhead should disappear into the noise.
    s.bench("par_map_8_busy_jobs4", |b| {
        let pool = Pool::with_jobs(4);
        let work: Vec<u64> = (0..8).collect();
        b.iter(|| {
            pool.map(work.clone(), |seed| {
                let mut x = seed.wrapping_add(1);
                for _ in 0..20_000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                }
                x
            })
        })
    });
}

fn bench_wifi_channel(s: &mut Suite) {
    s.bench("wifi_transmit_down", |b| {
        let mut ch = WifiChannel::new(WifiConfig::default(), SimRng::new(4));
        ch.set_utilization_now(0.6);
        let mut t = 0i64;
        b.iter(|| {
            t += 100;
            ch.transmit_down(SimTime::from_millis(t))
        })
    });
    s.bench("wifi_hints", |b| {
        let mut ch = WifiChannel::new(WifiConfig::default(), SimRng::new(5));
        let mut t = 0i64;
        b.iter(|| {
            t += 100;
            ch.hints(SimTime::from_millis(t))
        })
    });
}

fn bench_exchange(s: &mut Suite) {
    use sntp::{perform_exchange, PoolConfig, ServerPool};
    s.bench("full_exchange_wired", |b| {
        let mut tb = netsim::Testbed::wired(6);
        let mut pool = ServerPool::new(PoolConfig::default(), 7);
        let osc = clocksim::OscillatorConfig::laptop().build(SimRng::new(8));
        let mut clock = clocksim::SimClock::new(osc, SimTime::ZERO);
        let mut t = 0i64;
        b.iter(|| {
            t += 5;
            let id = pool.pick();
            perform_exchange(&mut tb, pool.server_mut(id), &mut clock, SimTime::from_secs(t))
        })
    });
}

fn bench_scheduler_backends(s: &mut Suite) {
    use netsim::kernel::SchedulerKind;
    // Same self-rescheduling poll-timer workload on both queue backends:
    // 4096 concurrent timers rescheduling at mixed 64 ms – 8 s cadences
    // until ~20k events have fired — the bounded-horizon, deep-queue
    // shape the fleet presents (one poll timer per client), where the
    // heap pays log(pending) per op. The heap variant is the reference
    // for the speedup claim.
    for (name, kind) in [
        ("timing_wheel_poll_timers_4k", SchedulerKind::Wheel),
        ("binary_heap_poll_timers_4k", SchedulerKind::Heap),
    ] {
        s.bench(name, move |b| {
            b.iter(|| {
                let mut sim: Sim<u64> = Sim::with_scheduler(kind);
                let mut world = 0u64;
                fn tick(w: &mut u64, sim: &mut Sim<u64>) {
                    *w += 1;
                    if *w < 20_000 {
                        let d = 64i64 << (*w % 8);
                        sim.schedule_fn_in(SimDuration::from_millis(d), tick);
                    }
                }
                for i in 0..4096 {
                    sim.schedule_fn_at(SimTime::from_millis(i), tick);
                }
                sim.run_to_completion(&mut world);
                world
            })
        });
    }
}

fn bench_fleet_kernel(s: &mut Suite) {
    use mntp::{run_fleet, Discipline, FleetClient, FleetRunConfig, SntpDiscipline};
    use netsim::fleet::{FleetConfig, FleetNet};
    use sntp::fleet::RequestShape;
    use sntp::{PickLane, PoolConfig, ServerPool};

    fn naive_clients(n: usize) -> Vec<FleetClient> {
        (0..n)
            .map(|i| FleetClient {
                discipline: Box::new(SntpDiscipline::naive().self_paced(5.0))
                    as Box<dyn Discipline>,
                clock: {
                    let osc =
                        clocksim::OscillatorConfig::laptop().build(SimRng::new(100 + i as u64));
                    clocksim::SimClock::new(osc, SimTime::ZERO)
                },
                select: PickLane::new(4, 200 + i as u64),
                shape: RequestShape::Sntp,
            })
            .collect()
    }

    // Fleet hot path at N=1k: one iteration builds 1000 naive SNTP
    // clients and steps them through 5 s of shared-world time against a
    // persistent world (≈2000 exchanges + 6000 client-ticks per iter).
    s.bench("fleet_kernel_1k_clients_5s", |b| {
        let fcfg = FleetConfig { clients: 1000, servers: 4, ..FleetConfig::default() };
        let mut net = FleetNet::new(&fcfg, 30);
        let mut pool = ServerPool::new(PoolConfig { size: 4, ..PoolConfig::default() }, 31);
        let cfg = FleetRunConfig {
            start_secs: 0.0,
            duration_secs: 5,
            tick_secs: 1.0,
            sample_period_secs: 5.0,
            collect_arrivals: false,
            steady_cutoff_secs: None,
        };
        b.iter(|| {
            let mut clients = naive_clients(1000);
            run_fleet(&mut clients, &mut net, &mut pool, &cfg).polls_sent
        })
    });
    // Same shape at N=100k with 8 kernel shards: the cache-linear
    // ChannelBank tick and the epoch-barrier runner under the load the
    // scale experiments use (steady-state sampling, serial worker).
    s.bench("fleet_kernel_100k_clients", |b| {
        let fcfg =
            FleetConfig { clients: 100_000, servers: 4, shards: 8, ..FleetConfig::default() };
        let mut net = FleetNet::new(&fcfg, 32);
        let mut pool = ServerPool::new(PoolConfig { size: 4, ..PoolConfig::default() }, 33);
        let cfg = FleetRunConfig {
            start_secs: 0.0,
            duration_secs: 2,
            tick_secs: 1.0,
            sample_period_secs: 2.0,
            collect_arrivals: false,
            steady_cutoff_secs: Some(1.0),
        };
        b.iter(|| {
            let mut clients = naive_clients(100_000);
            run_fleet(&mut clients, &mut net, &mut pool, &cfg).polls_sent
        })
    });
}

fn bench_chaos_fleet(s: &mut Suite) {
    use devtools::par::Pool;
    use mntp::{
        run_fleet_chaos_on, ChaosSession, Discipline, FleetClient, FleetRunConfig, SntpDiscipline,
    };
    use netsim::chaos::{ChaosEvent, ClientRange, FleetFaultPlan};
    use netsim::fleet::{FleetConfig, FleetNet};
    use netsim::ServerSet;
    use sntp::fleet::RequestShape;
    use sntp::{PickLane, PoolConfig, ServerPool};

    const N: usize = 10_000;
    fn clients() -> Vec<FleetClient> {
        (0..N)
            .map(|i| FleetClient {
                discipline: Box::new(SntpDiscipline::naive().self_paced(5.0))
                    as Box<dyn Discipline>,
                clock: {
                    let osc =
                        clocksim::OscillatorConfig::laptop().build(SimRng::new(400 + i as u64));
                    clocksim::SimClock::new(osc, SimTime::ZERO)
                },
                select: PickLane::new(4, 500 + i as u64),
                shape: RequestShape::Sntp,
            })
            .collect()
    }
    // The chaos runner's per-tick overhead: the same 10k-client step
    // with an empty plan vs one whose windows fire mid-run (a storm,
    // an outage, and a step wave all active). The pair bounds what the
    // fault-injection layer costs the un-faulted hot path (<5% is the
    // acceptance bar; the latch scan is O(windows) per client-tick).
    let plans: [(&str, fn() -> FleetFaultPlan); 2] = [
        ("chaosfleet_10k_step_noplan", FleetFaultPlan::none as fn() -> FleetFaultPlan),
        ("chaosfleet_10k_step", || {
            FleetFaultPlan::new(9)
                .window(
                    1.0,
                    4.0,
                    ChaosEvent::RegionalLossStorm {
                        region: ClientRange::new(0, (N / 4) as u32),
                        loss_prob: 0.5,
                    },
                )
                .window(1.0, 4.0, ChaosEvent::ServerOutage { servers: ServerSet::One(0) })
                .window(
                    2.0,
                    3.0,
                    ChaosEvent::ClockStepWave {
                        region: ClientRange::new(0, (N / 4) as u32),
                        offset_ms: -80.0,
                    },
                )
        }),
    ];
    for (name, mk_plan) in plans {
        s.bench(name, move |b| {
            let fcfg = FleetConfig { clients: N, servers: 4, shards: 8, ..FleetConfig::default() };
            let mut net = FleetNet::new(&fcfg, 40);
            let mut pool = ServerPool::new(PoolConfig { size: 4, ..PoolConfig::default() }, 41);
            let par = Pool::with_jobs(1);
            let cfg = FleetRunConfig {
                start_secs: 0.0,
                duration_secs: 5,
                tick_secs: 1.0,
                sample_period_secs: 5.0,
                collect_arrivals: false,
                steady_cutoff_secs: Some(1.0),
            };
            b.iter(|| {
                let mut cl = clients();
                let mut session = ChaosSession::new(mk_plan(), &mut net, Vec::new(), 0);
                run_fleet_chaos_on(&par, &mut cl, &mut net, &mut pool, &cfg, &mut session)
                    .polls_sent
            })
        });
    }
}

fn bench_server_core(s: &mut Suite) {
    use devtools::par::Pool;
    use sntp::server_core::{CoreConfig, ReplyRing, RequestRing, ServerCore};

    const BATCH: usize = 4096;
    fn fill_batch_n(n: usize) -> RequestRing {
        let mut reqs = RequestRing::with_capacity(n);
        for i in 0..n as u64 {
            let at = SimTime::from_millis(10_000 + i as i64);
            let wire = sntp_profile::client_request(at.to_ntp()).serialize();
            reqs.push(i, at, &wire);
        }
        reqs
    }
    fn fill_batch() -> RequestRing {
        fill_batch_n(BATCH)
    }
    let cfg = CoreConfig {
        min_poll_interval: Some(SimDuration::from_secs(16)),
        table_capacity: BATCH,
        ..CoreConfig::default()
    };
    // Stage 1 in isolation: zero-copy parse + wire-shape classification
    // over a full ring, no table or reply work.
    s.bench("server_core_classify_4k", |b| {
        let reqs = fill_batch();
        let mut core = ServerCore::new(cfg);
        b.iter(|| core.classify_batch(&reqs))
    });
    // The headline single-core number: full classify → rate-limit →
    // emit over a 4096-request batch (pkt/s = 4096 / mean). Arrivals
    // advance 32 s per iteration so the limiter keeps taking the served
    // path instead of collapsing into the cheaper KoD write.
    s.bench("server_core_parse_reply_4k", |b| {
        let mut reqs = fill_batch();
        let mut core = ServerCore::new(cfg);
        let mut out = ReplyRing::new();
        b.iter(|| {
            reqs.advance_arrivals(SimDuration::from_secs(32));
            core.process_batch(&reqs, &mut out);
            out.len()
        })
    });
    // Stage 2 ablated: rate limiting off, so the delta against the
    // bench above is the table bookkeeping cost.
    s.bench("server_core_parse_reply_4k_nolimit", |b| {
        let mut reqs = fill_batch();
        let mut core = ServerCore::new(CoreConfig { min_poll_interval: None, ..cfg });
        let mut out = ReplyRing::new();
        b.iter(|| {
            reqs.advance_arrivals(SimDuration::from_secs(32));
            core.process_batch(&reqs, &mut out);
            out.len()
        })
    });
    // Sharded scale-out at a batch size where shard work dwarfs the
    // pool's per-dispatch cost (~90 us, see par_map_256_trivial_jobs4):
    // a 64k-request batch serially vs 8 shards over 4 workers. Output is
    // byte-identical either way (the property tests pin that; this pair
    // measures what the parallelism buys).
    const BIG: usize = 65_536;
    s.bench("server_core_parse_reply_64k", |b| {
        let mut reqs = fill_batch_n(BIG);
        let mut core = ServerCore::new(CoreConfig { table_capacity: BIG, ..cfg });
        let mut out = ReplyRing::new();
        b.iter(|| {
            reqs.advance_arrivals(SimDuration::from_secs(32));
            core.process_batch(&reqs, &mut out);
            out.len()
        })
    });
    s.bench("server_core_parse_reply_64k_sharded8", |b| {
        let mut reqs = fill_batch_n(BIG);
        let mut core =
            ServerCore::new(CoreConfig { shards: 8, table_capacity: BIG, ..cfg });
        let pool = Pool::with_jobs(4);
        let mut out = ReplyRing::new();
        b.iter(|| {
            reqs.advance_arrivals(SimDuration::from_secs(32));
            core.process_batch_on(&reqs, &mut out, &pool);
            out.len()
        })
    });
}

fn bench_lint(s: &mut Suite) {
    use devtools::lint;
    use std::path::Path;

    // The workspace sources are loaded once up front so both benches
    // measure pure analysis over in-memory text, not disk I/O. The
    // token-only pass (tokenize + per-line rules, what lint v1 did) is
    // the reference; the interprocedural pass runs the whole pipeline —
    // tokenize, item extraction, call-graph assembly, reachability and
    // taint — and is budgeted at < 2x the token pass in review.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives at crates/bench");
    let cfg = lint::load_config(root).expect("lint.toml parses");
    let files = lint::walk::rust_files(root, &cfg).expect("workspace walk");
    let sources: Vec<(String, String)> = files
        .into_iter()
        .map(|rel| {
            let src = std::fs::read_to_string(root.join(&rel)).expect("read workspace source");
            (rel, src)
        })
        .collect();
    let crates = lint::crate_name_map(root);

    s.bench("lint_workspace_tokens", |b| {
        b.iter(|| {
            let mut findings = 0usize;
            for (rel, src) in &sources {
                let toks = lint::tokens::tokenize(src);
                let scan = lint::rules::scan_tokens(&toks, |l| {
                    cfg.lint_enabled(l.name, l.class == lint::Class::Panic, rel)
                });
                findings += scan.findings.len();
            }
            findings
        })
    });
    s.bench("lint_workspace_interproc", |b| {
        b.iter(|| {
            let a = lint::analyze_sources(black_box(&sources), &cfg, &crates);
            (a.outcome.findings.len(), a.graph.nodes.len())
        })
    });
}

fn bench_streaming_analytics(s: &mut Suite) {
    use loganalysis::model::SERVERS;
    use loganalysis::owd::{extract_owds, OwdFilter};
    use loganalysis::stream::ChunkSummary;
    use loganalysis::synth::{
        chunk_plan, generate_server_log, stream_chunk, StreamSynthConfig, SynthConfig,
    };

    // Equal-N throughput pair: one iteration generates AND analyzes the
    // same Table 1 slice (AG1 at 1/610 scale ≈ 16.4k records) through
    // each path. The streaming path never materializes a log; the batch
    // path builds the ServerLog and runs the legacy whole-log analyzers.
    // mean_ns / N is the ns-per-record figure EXPERIMENTS.md quotes.
    let ag1 = SERVERS.iter().find(|sv| sv.id == "AG1").expect("AG1 in Table 1");
    let scale = 610;
    let scfg = StreamSynthConfig { scale, duration_secs: 86_400, chunk_records: 1 << 14 };
    let n = chunk_plan(ag1, &scfg).total_records;
    s.bench("fullscale_records_per_sec", |b| {
        let filter = OwdFilter::default();
        b.iter(|| {
            let plan = chunk_plan(ag1, &scfg);
            let mut sum = ChunkSummary::default();
            for c in 0..plan.chunks {
                let mut s = ChunkSummary::default();
                stream_chunk(ag1, 0, &scfg, 2016, c, &mut |r| s.push(r, &filter));
                sum.merge_adjacent(&s);
            }
            assert_eq!(sum.records, n);
            sum.records
        })
    });
    // Analysis seam alone (generation factored out): the same records
    // pushed through the composite sink from a pre-built log.
    s.bench("stream_sink_push_records_per_sec", |b| {
        let filter = OwdFilter::default();
        let log = generate_server_log(ag1, &SynthConfig { scale, duration_secs: 86_400 }, 2016);
        b.iter(|| {
            let mut sum = ChunkSummary::default();
            for r in &log.records {
                sum.push(r, &filter);
            }
            sum.records
        })
    });
    s.bench("fullscale_batch_records_per_sec", |b| {
        let filter = OwdFilter::default();
        let cfg = SynthConfig { scale, duration_secs: 86_400 };
        b.iter(|| {
            let log = generate_server_log(ag1, &cfg, 2016);
            let owds = extract_owds(&log, &filter);
            let kept: usize = owds.values().map(|c| c.samples_ms.len()).sum();
            let inter = loganalysis::global_interarrival(&log);
            let share = loganalysis::protocol::sntp_share(&log);
            black_box((kept, inter, share));
            log.records.len()
        })
    });
}

fn main() {
    let mut s = Suite::from_args("micro");
    bench_packet_codec(&mut s);
    bench_clock_algebra(&mut s);
    bench_rng(&mut s);
    bench_fits(&mut s);
    bench_trend_filter(&mut s);
    bench_select(&mut s);
    bench_des_kernel(&mut s);
    bench_scheduler_backends(&mut s);
    bench_par_pool(&mut s);
    bench_wifi_channel(&mut s);
    bench_exchange(&mut s);
    bench_fleet_kernel(&mut s);
    bench_chaos_fleet(&mut s);
    bench_server_core(&mut s);
    bench_streaming_analytics(&mut s);
    bench_lint(&mut s);
    s.finish().expect("write bench report");
}
