//! One benchmark per paper table/figure pipeline.
//!
//! These measure how long each reproduction pipeline takes at a reduced
//! horizon (the statistics themselves come from the `repro` binary at
//! full horizons). Sample counts are kept small: each iteration runs a
//! complete simulation.
//!
//! `cargo run --release -p mntp-bench --bin figures [FILTER] [--quick]`
//! writes `results/bench/BENCH_figures.json`.

use devtools::bench::Suite;
use std::hint::black_box;

use experiments::{fig1, fig2, fig4, fig5, fig6, fig7, fig8, fig9and10, table1};
use mntp::MntpConfig;
use tuner::{emulate, grid_search, ParamGrid};

fn bench_pipelines(s: &mut Suite) {
    s.bench("table1_scale50k", |b| b.iter(|| table1::run(black_box(1), 50_000)));
    s.bench("fig1_scale20k", |b| b.iter(|| fig1::run(black_box(1), 20_000)));
    s.bench("fig2_scale20k", |b| b.iter(|| fig2::run(black_box(1), 20_000)));
    s.bench("fig4_10min", |b| b.iter(|| fig4::run(black_box(1), 600)));
    s.bench("fig5_10min", |b| b.iter(|| fig5::run(black_box(1), 600)));
    s.bench("fig6_10min", |b| b.iter(|| fig6::run(black_box(1), 600)));
    s.bench("fig7_10min", |b| b.iter(|| fig7::run(black_box(1), 600)));
    s.bench("fig8_10min", |b| b.iter(|| fig8::run(black_box(1), 600)));
    s.bench("fig9_10min", |b| b.iter(|| fig9and10::run(black_box(1), 600, true)));
    s.bench("fig10_10min", |b| b.iter(|| fig9and10::run(black_box(1), 600, false)));
    // Figure 12 is the 4-hour run; bench a 20-minute slice of the same
    // pipeline.
    s.bench("fig12_20min_slice", |b| b.iter(|| fig8::run(black_box(1), 1200)));
}

/// Table 2 / Figure 11: trace recording is the expensive half; the
/// emulator and grid search are the interesting half. Bench them
/// separately over a synthetic trace.
fn bench_table2(s: &mut Suite) {
    use experiments::harness::{default_pool, ClockMode};
    use netsim::testbed::TestbedConfig;
    use netsim::Testbed;

    let mut tb = Testbed::wireless(TestbedConfig::default(), 9);
    let mut pool = default_pool(10);
    let mut clock = ClockMode::free_running_default().build(11);
    let trace = tuner::record_trace(&mut tb, &mut pool, &mut clock, 1800, 5.0, 3);

    s.bench("table2_emulate_one_config", |b| {
        let cfg = MntpConfig::from_tuner_minutes(10.0, 0.25, 5.0, 240.0);
        b.iter(|| emulate(black_box(&cfg), black_box(&trace)))
    });
    s.bench("table2_grid_search_24", |b| {
        let grid = ParamGrid::paper_table2();
        b.iter(|| grid_search(&MntpConfig::default(), black_box(&grid), black_box(&trace)))
    });
}

fn main() {
    let mut s = Suite::from_args("figures");
    // Each iteration is a whole simulation run: keep sample counts small,
    // matching the old criterion `sample_size(10)` groups.
    s.set_samples(10);
    bench_pipelines(&mut s);
    bench_table2(&mut s);
    s.finish().expect("write bench report");
}
