//! The 48-byte NTP packet header (RFC 5905 §7.3) and its codec.
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |LI | VN  |Mode |    Stratum     |     Poll      |  Precision   |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                         Root Delay                            |
//! |                       Root Dispersion                         |
//! |                          Reference ID                         |
//! |                     Reference Timestamp (64)                  |
//! |                      Origin Timestamp (64)                    |
//! |                      Receive Timestamp (64)                   |
//! |                      Transmit Timestamp (64)                  |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! ```

use crate::error::WireError;
use crate::refid::RefId;
use crate::timestamp::{NtpShort, NtpTimestamp};

/// Length in bytes of the fixed NTP header (no extension fields / MAC).
pub const PACKET_LEN: usize = 48;

/// Leap-indicator field (warns of an impending leap second).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
#[repr(u8)]
pub enum LeapIndicator {
    /// No warning.
    #[default]
    NoWarning = 0,
    /// Last minute of the day has 61 seconds.
    Leap61 = 1,
    /// Last minute of the day has 59 seconds.
    Leap59 = 2,
    /// Clock unsynchronized.
    Unknown = 3,
}

impl LeapIndicator {
    /// Decode from the two-bit field value.
    pub const fn from_bits(v: u8) -> Self {
        match v & 0b11 {
            0 => LeapIndicator::NoWarning,
            1 => LeapIndicator::Leap61,
            2 => LeapIndicator::Leap59,
            _ => LeapIndicator::Unknown,
        }
    }
}

/// Protocol version. SNTP clients in the wild use 3 (RFC 1769) or 4
/// (RFC 4330); NTPv4 is 4.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Version(pub u8);

impl Version {
    /// NTP version 3.
    pub const V3: Version = Version(3);
    /// NTP version 4 (the default everywhere in this workspace).
    pub const V4: Version = Version(4);
}

impl Default for Version {
    fn default() -> Self {
        Version::V4
    }
}

/// Association mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[repr(u8)]
pub enum Mode {
    /// Symmetric active (peer).
    SymmetricActive = 1,
    /// Symmetric passive (peer).
    SymmetricPassive = 2,
    /// Client request.
    Client = 3,
    /// Server reply.
    Server = 4,
    /// Broadcast server.
    Broadcast = 5,
    /// NTP control message.
    Control = 6,
    /// Reserved / private use.
    Private = 7,
}

impl Mode {
    /// Decode from the three-bit field value. `0` is reserved and rejected.
    pub const fn from_bits(v: u8) -> Result<Self, WireError> {
        match v & 0b111 {
            1 => Ok(Mode::SymmetricActive),
            2 => Ok(Mode::SymmetricPassive),
            3 => Ok(Mode::Client),
            4 => Ok(Mode::Server),
            5 => Ok(Mode::Broadcast),
            6 => Ok(Mode::Control),
            7 => Ok(Mode::Private),
            other => Err(WireError::BadMode(other)),
        }
    }
}

/// A decoded NTP packet header.
///
/// The struct stores every header field losslessly, so
/// `NtpPacket::parse(p.serialize()) == p` for all valid packets — the
/// property tests in this module check exactly that.
///
/// ```
/// use ntp_wire::{NtpPacket, NtpTimestamp, packet::Mode};
///
/// let request = ntp_wire::sntp_profile::client_request(NtpTimestamp::from_parts(1000, 0));
/// let bytes = request.serialize();
/// assert_eq!(bytes.len(), ntp_wire::PACKET_LEN);
/// let parsed = NtpPacket::parse(&bytes).unwrap();
/// assert_eq!(parsed.mode, Mode::Client);
/// assert!(parsed.is_sntp_client_shape());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NtpPacket {
    /// Leap indicator.
    pub leap: LeapIndicator,
    /// Protocol version (1..=4 accepted).
    pub version: Version,
    /// Association mode.
    pub mode: Mode,
    /// Stratum (0 = kiss-o'-death / unspecified, 1 = primary, 2.. = secondary).
    pub stratum: u8,
    /// Log₂ of the poll interval in seconds, as advertised by the sender.
    pub poll: i8,
    /// Log₂ of the clock precision in seconds (e.g. −20 ≈ 1 µs).
    pub precision: i8,
    /// Total round-trip delay to the reference clock.
    pub root_delay: NtpShort,
    /// Total dispersion to the reference clock.
    pub root_dispersion: NtpShort,
    /// Reference identifier.
    pub reference_id: RefId,
    /// Time the system clock was last set or corrected.
    pub reference_ts: NtpTimestamp,
    /// T1: client transmit time, echoed by the server.
    pub origin_ts: NtpTimestamp,
    /// T2: time the request arrived at the server.
    pub receive_ts: NtpTimestamp,
    /// T3: time the reply left the server.
    pub transmit_ts: NtpTimestamp,
}

impl Default for NtpPacket {
    fn default() -> Self {
        NtpPacket {
            leap: LeapIndicator::NoWarning,
            version: Version::V4,
            mode: Mode::Client,
            stratum: 0,
            poll: 0,
            precision: 0,
            root_delay: NtpShort::ZERO,
            root_dispersion: NtpShort::ZERO,
            reference_id: RefId::NONE,
            reference_ts: NtpTimestamp::ZERO,
            origin_ts: NtpTimestamp::ZERO,
            receive_ts: NtpTimestamp::ZERO,
            transmit_ts: NtpTimestamp::ZERO,
        }
    }
}

/// Write a big-endian `u32` at a fixed offset. Every call site passes a
/// compile-time offset into a ≥48-byte buffer; an out-of-range write is
/// a no-op rather than a panic (panic-free hot-path policy).
#[inline]
pub(crate) fn put_u32_be(buf: &mut [u8], at: usize, v: u32) {
    if let Some(dst) = buf.get_mut(at..at + 4) {
        dst.copy_from_slice(&v.to_be_bytes());
    }
}

/// Write a big-endian `u64` at a fixed offset (see [`put_u32_be`]).
#[inline]
pub(crate) fn put_u64_be(buf: &mut [u8], at: usize, v: u64) {
    if let Some(dst) = buf.get_mut(at..at + 8) {
        dst.copy_from_slice(&v.to_be_bytes());
    }
}

/// Read a big-endian `u32` from a fixed offset. Call sites pass
/// compile-time offsets into length-checked buffers; an out-of-range
/// read yields zero rather than a panic (panic-free hot-path policy).
#[inline]
pub(crate) fn get_u32_be(buf: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    if let Some(src) = buf.get(at..at + 4) {
        b.copy_from_slice(src);
    }
    u32::from_be_bytes(b)
}

/// Read a big-endian `u64` from a fixed offset (see [`get_u32_be`]).
#[inline]
pub(crate) fn get_u64_be(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    if let Some(src) = buf.get(at..at + 8) {
        b.copy_from_slice(src);
    }
    u64::from_be_bytes(b)
}

impl NtpPacket {
    /// Serialize into a fresh 48-byte vector — a thin wrapper over
    /// [`NtpPacket::to_bytes`] for callers that want an owned buffer.
    /// Hot paths should use [`NtpPacket::serialize_into`] (write into a
    /// preallocated arena) or [`NtpPacket::to_bytes`] (stack array)
    /// instead; both are allocation-free.
    pub fn serialize(&self) -> Vec<u8> {
        self.to_bytes().to_vec()
    }

    /// Encode into a fixed 48-byte array on the stack (no heap).
    #[inline]
    pub fn to_bytes(&self) -> [u8; PACKET_LEN] {
        let mut buf = [0u8; PACKET_LEN];
        self.write_bytes(&mut buf);
        buf
    }

    /// Encode into the first 48 bytes of a caller-provided buffer
    /// without allocating; bytes past [`PACKET_LEN`] are untouched.
    /// Fails (writing nothing) when the buffer is too short.
    #[inline]
    pub fn serialize_into(&self, buf: &mut [u8]) -> Result<(), WireError> {
        let have = buf.len();
        let head: Option<&mut [u8; PACKET_LEN]> =
            buf.get_mut(..PACKET_LEN).and_then(|s| s.try_into().ok());
        match head {
            Some(arr) => {
                self.write_bytes(arr);
                Ok(())
            }
            None => Err(WireError::Truncated { have, need: PACKET_LEN }),
        }
    }

    /// Encode into a caller-provided 48-byte buffer (no allocation).
    pub fn write_bytes(&self, buf: &mut [u8; PACKET_LEN]) {
        let [b0, b1, b2, b3, ..] = buf;
        *b0 = ((self.leap as u8) << 6) | ((self.version.0 & 0b111) << 3) | self.mode as u8;
        *b1 = self.stratum;
        *b2 = self.poll as u8;
        *b3 = self.precision as u8;
        put_u32_be(buf, 4, self.root_delay.to_bits());
        put_u32_be(buf, 8, self.root_dispersion.to_bits());
        put_u32_be(buf, 12, self.reference_id.0);
        put_u64_be(buf, 16, self.reference_ts.to_bits());
        put_u64_be(buf, 24, self.origin_ts.to_bits());
        put_u64_be(buf, 32, self.receive_ts.to_bits());
        put_u64_be(buf, 40, self.transmit_ts.to_bits());
    }

    /// Parse from a byte slice. Trailing bytes (extension fields, MAC) are
    /// ignored, mirroring how a minimal SNTP client treats them.
    pub fn parse(data: &[u8]) -> Result<Self, WireError> {
        let &[first, stratum, poll, precision, ..] = data else {
            return Err(WireError::Truncated { have: data.len(), need: PACKET_LEN });
        };
        if data.len() < PACKET_LEN {
            return Err(WireError::Truncated { have: data.len(), need: PACKET_LEN });
        }
        let leap = LeapIndicator::from_bits(first >> 6);
        let version = (first >> 3) & 0b111;
        if !(1..=4).contains(&version) {
            return Err(WireError::BadVersion(version));
        }
        let mode = Mode::from_bits(first & 0b111)?;
        Ok(NtpPacket {
            leap,
            version: Version(version),
            mode,
            stratum,
            poll: poll as i8,
            precision: precision as i8,
            root_delay: NtpShort::from_bits(get_u32_be(data, 4)),
            root_dispersion: NtpShort::from_bits(get_u32_be(data, 8)),
            reference_id: RefId(get_u32_be(data, 12)),
            reference_ts: NtpTimestamp::from_bits(get_u64_be(data, 16)),
            origin_ts: NtpTimestamp::from_bits(get_u64_be(data, 24)),
            receive_ts: NtpTimestamp::from_bits(get_u64_be(data, 32)),
            transmit_ts: NtpTimestamp::from_bits(get_u64_be(data, 40)),
        })
    }

    /// True when every field other than the first octet is zero — the wire
    /// signature of an RFC 4330 SNTP client request, and the heuristic the
    /// paper (§3.1) uses to tell SNTP clients from NTP clients in logs.
    pub fn is_sntp_client_shape(&self) -> bool {
        self.mode == Mode::Client
            && self.stratum == 0
            && self.poll == 0
            && self.precision == 0
            && self.root_delay == NtpShort::ZERO
            && self.root_dispersion == NtpShort::ZERO
            && self.reference_id == RefId::NONE
            && self.reference_ts.is_zero()
            && self.origin_ts.is_zero()
            && self.receive_ts.is_zero()
    }

    /// True when the packet is a kiss-o'-death (stratum 0 server reply).
    pub fn is_kiss_of_death(&self) -> bool {
        self.mode == Mode::Server && self.stratum == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NtpPacket {
        NtpPacket {
            leap: LeapIndicator::NoWarning,
            version: Version::V4,
            mode: Mode::Server,
            stratum: 2,
            poll: 6,
            precision: -20,
            root_delay: NtpShort::from_millis(12),
            root_dispersion: NtpShort::from_millis(3),
            reference_id: RefId::ipv4(192, 0, 2, 1),
            reference_ts: NtpTimestamp::from_parts(1000, 0),
            origin_ts: NtpTimestamp::from_parts(1001, 42),
            receive_ts: NtpTimestamp::from_parts(1001, 99),
            transmit_ts: NtpTimestamp::from_parts(1001, 123),
        }
    }

    #[test]
    fn roundtrip_sample() {
        let p = sample();
        let bytes = p.serialize();
        assert_eq!(bytes.len(), PACKET_LEN);
        let q = NtpPacket::parse(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn first_octet_layout() {
        let p = NtpPacket { leap: LeapIndicator::Unknown, version: Version::V3, mode: Mode::Client, ..Default::default() };
        let bytes = p.serialize();
        // LI=3 (11), VN=3 (011), Mode=3 (011) -> 0b11_011_011 = 0xDB
        assert_eq!(bytes[0], 0xDB);
    }

    #[test]
    fn truncated_rejected() {
        let p = sample();
        let bytes = p.serialize();
        let err = NtpPacket::parse(&bytes[..47]).unwrap_err();
        assert_eq!(err, WireError::Truncated { have: 47, need: 48 });
    }

    #[test]
    fn trailing_bytes_ignored() {
        let p = sample();
        let mut bytes = p.serialize();
        bytes.extend_from_slice(&[0u8; 20]); // fake extension field
        assert_eq!(NtpPacket::parse(&bytes).unwrap(), p);
    }

    #[test]
    fn version_zero_rejected() {
        let mut bytes = sample().serialize();
        bytes[0] &= !(0b111 << 3); // version = 0
        assert!(matches!(NtpPacket::parse(&bytes), Err(WireError::BadVersion(0))));
    }

    #[test]
    fn mode_zero_rejected() {
        let mut bytes = sample().serialize();
        bytes[0] &= !0b111; // mode = 0
        assert!(matches!(NtpPacket::parse(&bytes), Err(WireError::BadMode(0))));
    }

    #[test]
    fn sntp_client_shape_detection() {
        let req = NtpPacket { transmit_ts: NtpTimestamp::from_parts(7, 7), ..Default::default() };
        assert!(req.is_sntp_client_shape());
        let ntp_req = NtpPacket { poll: 6, precision: -20, ..req };
        assert!(!ntp_req.is_sntp_client_shape());
    }

    #[test]
    fn kiss_of_death_detection() {
        let kod = NtpPacket {
            mode: Mode::Server,
            stratum: 0,
            reference_id: RefId::KISS_RATE,
            ..Default::default()
        };
        assert!(kod.is_kiss_of_death());
        assert_eq!(kod.reference_id.as_kiss_code(), Some(*b"RATE"));
    }

    #[test]
    fn all_leap_indicator_bits_decode() {
        assert_eq!(LeapIndicator::from_bits(0), LeapIndicator::NoWarning);
        assert_eq!(LeapIndicator::from_bits(1), LeapIndicator::Leap61);
        assert_eq!(LeapIndicator::from_bits(2), LeapIndicator::Leap59);
        assert_eq!(LeapIndicator::from_bits(3), LeapIndicator::Unknown);
        assert_eq!(LeapIndicator::from_bits(7), LeapIndicator::Unknown); // masked
    }

    /// Fixed-vector guard for the slice-based codec: every field placed
    /// with a recognizable bit pattern, expected bytes written out by
    /// hand from the RFC 5905 layout. Any change to field order, widths,
    /// or endianness trips this.
    #[test]
    fn fixed_vector_byte_layout() {
        let p = NtpPacket {
            leap: LeapIndicator::Leap59, // LI = 2
            version: Version::V4,        // VN = 4
            mode: Mode::Server,          // Mode = 4
            stratum: 0x02,
            poll: 0x06,
            precision: -20, // 0xEC
            root_delay: NtpShort::from_bits(0x0001_0203),
            root_dispersion: NtpShort::from_bits(0x0405_0607),
            reference_id: RefId(0x4750_5300), // "GPS\0"
            reference_ts: NtpTimestamp::from_bits(0x1112_1314_1516_1718),
            origin_ts: NtpTimestamp::from_bits(0x2122_2324_2526_2728),
            receive_ts: NtpTimestamp::from_bits(0x3132_3334_3536_3738),
            transmit_ts: NtpTimestamp::from_bits(0x4142_4344_4546_4748),
        };
        #[rustfmt::skip]
        let expected: [u8; PACKET_LEN] = [
            0xA4, 0x02, 0x06, 0xEC,                         // LI|VN|Mode, stratum, poll, precision
            0x00, 0x01, 0x02, 0x03,                         // root delay
            0x04, 0x05, 0x06, 0x07,                         // root dispersion
            0x47, 0x50, 0x53, 0x00,                         // reference id
            0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18, // reference ts
            0x21, 0x22, 0x23, 0x24, 0x25, 0x26, 0x27, 0x28, // origin ts
            0x31, 0x32, 0x33, 0x34, 0x35, 0x36, 0x37, 0x38, // receive ts
            0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, // transmit ts
        ];
        assert_eq!(p.serialize(), expected);
        assert_eq!(NtpPacket::parse(&expected).unwrap(), p);
    }

    #[test]
    fn write_bytes_matches_serialize() {
        let mut buf = [0u8; PACKET_LEN];
        sample().write_bytes(&mut buf);
        assert_eq!(buf.to_vec(), sample().serialize());
    }

    #[test]
    fn serialize_into_matches_serialize_and_spares_the_tail() {
        let p = sample();
        // Exactly 48 bytes.
        let mut exact = [0u8; PACKET_LEN];
        p.serialize_into(&mut exact).unwrap();
        assert_eq!(exact.to_vec(), p.serialize());
        // A longer arena slot: the 16 trailing bytes must survive.
        let mut arena = [0xAAu8; PACKET_LEN + 16];
        p.serialize_into(&mut arena).unwrap();
        assert_eq!(arena[..PACKET_LEN].to_vec(), p.serialize());
        assert_eq!(arena[PACKET_LEN..], [0xAAu8; 16]);
    }

    #[test]
    fn serialize_into_short_buffer_rejected_untouched() {
        let p = sample();
        let mut short = [0x55u8; PACKET_LEN - 1];
        let err = p.serialize_into(&mut short).unwrap_err();
        assert_eq!(err, WireError::Truncated { have: PACKET_LEN - 1, need: PACKET_LEN });
        assert_eq!(short, [0x55u8; PACKET_LEN - 1], "failed write must not scribble");
    }

    #[test]
    fn to_bytes_matches_serialize() {
        let p = sample();
        assert_eq!(p.to_bytes().to_vec(), p.serialize());
    }

    #[test]
    fn all_modes_roundtrip() {
        for m in [
            Mode::SymmetricActive,
            Mode::SymmetricPassive,
            Mode::Client,
            Mode::Server,
            Mode::Broadcast,
            Mode::Control,
            Mode::Private,
        ] {
            assert_eq!(Mode::from_bits(m as u8).unwrap(), m);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use devtools::prop::{self, Gen};
    use devtools::{prop_assert, prop_assert_eq, props};

    type PacketParts = (i64, i64, i64, u8, i8, i8, u32, u32, u32, (u64, u64, u64, u64));

    /// Every valid header field, as primitives the shrinker understands.
    fn arb_packet_parts() -> impl Gen<Value = PacketParts> {
        (
            prop::ints(0..4),      // leap indicator bits
            prop::ints_incl(1, 4), // version
            prop::ints_incl(1, 7), // mode bits
            prop::any_u8(),
            prop::any_i8(),
            prop::any_i8(),
            prop::any_u32(),
            prop::any_u32(),
            prop::any_u32(),
            (prop::any_u64(), prop::any_u64(), prop::any_u64(), prop::any_u64()),
        )
    }

    fn packet_from(parts: PacketParts) -> NtpPacket {
        let (li, vn, mode, stratum, poll, prec, rd, rdisp, refid, ts) = parts;
        NtpPacket {
            leap: LeapIndicator::from_bits(li as u8),
            version: Version(vn as u8),
            mode: Mode::from_bits(mode as u8).unwrap(),
            stratum,
            poll,
            precision: prec,
            root_delay: NtpShort::from_bits(rd),
            root_dispersion: NtpShort::from_bits(rdisp),
            reference_id: RefId(refid),
            reference_ts: NtpTimestamp::from_bits(ts.0),
            origin_ts: NtpTimestamp::from_bits(ts.1),
            receive_ts: NtpTimestamp::from_bits(ts.2),
            transmit_ts: NtpTimestamp::from_bits(ts.3),
        }
    }

    props! {
        fn parse_serialize_roundtrip(parts in arb_packet_parts()) {
            let p = packet_from(parts);
            let bytes = p.serialize();
            prop_assert_eq!(bytes.len(), PACKET_LEN);
            let q = NtpPacket::parse(&bytes).unwrap();
            prop_assert_eq!(p, q);
        }

        fn parse_never_panics(data in prop::vecs(prop::any_u8(), 0..128)) {
            let _ = NtpPacket::parse(&data);
        }

        fn valid_len_parse_fails_only_on_version_or_mode(data in prop::vecs_exact(prop::any_u8(), PACKET_LEN)) {
            match NtpPacket::parse(&data) {
                Ok(_) => {}
                Err(WireError::BadVersion(_)) | Err(WireError::BadMode(_)) => {}
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
    }
}
