//! The 48-byte NTP packet header (RFC 5905 §7.3) and its codec.
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |LI | VN  |Mode |    Stratum     |     Poll      |  Precision   |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                         Root Delay                            |
//! |                       Root Dispersion                         |
//! |                          Reference ID                         |
//! |                     Reference Timestamp (64)                  |
//! |                      Origin Timestamp (64)                    |
//! |                      Receive Timestamp (64)                   |
//! |                      Transmit Timestamp (64)                  |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! ```

use bytes::{Buf, BufMut};

use crate::error::WireError;
use crate::refid::RefId;
use crate::timestamp::{NtpShort, NtpTimestamp};

/// Length in bytes of the fixed NTP header (no extension fields / MAC).
pub const PACKET_LEN: usize = 48;

/// Leap-indicator field (warns of an impending leap second).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
#[repr(u8)]
pub enum LeapIndicator {
    /// No warning.
    #[default]
    NoWarning = 0,
    /// Last minute of the day has 61 seconds.
    Leap61 = 1,
    /// Last minute of the day has 59 seconds.
    Leap59 = 2,
    /// Clock unsynchronized.
    Unknown = 3,
}

impl LeapIndicator {
    /// Decode from the two-bit field value.
    pub const fn from_bits(v: u8) -> Self {
        match v & 0b11 {
            0 => LeapIndicator::NoWarning,
            1 => LeapIndicator::Leap61,
            2 => LeapIndicator::Leap59,
            _ => LeapIndicator::Unknown,
        }
    }
}

/// Protocol version. SNTP clients in the wild use 3 (RFC 1769) or 4
/// (RFC 4330); NTPv4 is 4.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Version(pub u8);

impl Version {
    /// NTP version 3.
    pub const V3: Version = Version(3);
    /// NTP version 4 (the default everywhere in this workspace).
    pub const V4: Version = Version(4);
}

impl Default for Version {
    fn default() -> Self {
        Version::V4
    }
}

/// Association mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[repr(u8)]
pub enum Mode {
    /// Symmetric active (peer).
    SymmetricActive = 1,
    /// Symmetric passive (peer).
    SymmetricPassive = 2,
    /// Client request.
    Client = 3,
    /// Server reply.
    Server = 4,
    /// Broadcast server.
    Broadcast = 5,
    /// NTP control message.
    Control = 6,
    /// Reserved / private use.
    Private = 7,
}

impl Mode {
    /// Decode from the three-bit field value. `0` is reserved and rejected.
    pub const fn from_bits(v: u8) -> Result<Self, WireError> {
        match v & 0b111 {
            1 => Ok(Mode::SymmetricActive),
            2 => Ok(Mode::SymmetricPassive),
            3 => Ok(Mode::Client),
            4 => Ok(Mode::Server),
            5 => Ok(Mode::Broadcast),
            6 => Ok(Mode::Control),
            7 => Ok(Mode::Private),
            other => Err(WireError::BadMode(other)),
        }
    }
}

/// A decoded NTP packet header.
///
/// The struct stores every header field losslessly, so
/// `NtpPacket::parse(p.serialize()) == p` for all valid packets — the
/// property tests in this module check exactly that.
///
/// ```
/// use ntp_wire::{NtpPacket, NtpTimestamp, packet::Mode};
///
/// let request = ntp_wire::sntp_profile::client_request(NtpTimestamp::from_parts(1000, 0));
/// let bytes = request.serialize();
/// assert_eq!(bytes.len(), ntp_wire::PACKET_LEN);
/// let parsed = NtpPacket::parse(&bytes).unwrap();
/// assert_eq!(parsed.mode, Mode::Client);
/// assert!(parsed.is_sntp_client_shape());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NtpPacket {
    /// Leap indicator.
    pub leap: LeapIndicator,
    /// Protocol version (1..=4 accepted).
    pub version: Version,
    /// Association mode.
    pub mode: Mode,
    /// Stratum (0 = kiss-o'-death / unspecified, 1 = primary, 2.. = secondary).
    pub stratum: u8,
    /// Log₂ of the poll interval in seconds, as advertised by the sender.
    pub poll: i8,
    /// Log₂ of the clock precision in seconds (e.g. −20 ≈ 1 µs).
    pub precision: i8,
    /// Total round-trip delay to the reference clock.
    pub root_delay: NtpShort,
    /// Total dispersion to the reference clock.
    pub root_dispersion: NtpShort,
    /// Reference identifier.
    pub reference_id: RefId,
    /// Time the system clock was last set or corrected.
    pub reference_ts: NtpTimestamp,
    /// T1: client transmit time, echoed by the server.
    pub origin_ts: NtpTimestamp,
    /// T2: time the request arrived at the server.
    pub receive_ts: NtpTimestamp,
    /// T3: time the reply left the server.
    pub transmit_ts: NtpTimestamp,
}

impl Default for NtpPacket {
    fn default() -> Self {
        NtpPacket {
            leap: LeapIndicator::NoWarning,
            version: Version::V4,
            mode: Mode::Client,
            stratum: 0,
            poll: 0,
            precision: 0,
            root_delay: NtpShort::ZERO,
            root_dispersion: NtpShort::ZERO,
            reference_id: RefId::NONE,
            reference_ts: NtpTimestamp::ZERO,
            origin_ts: NtpTimestamp::ZERO,
            receive_ts: NtpTimestamp::ZERO,
            transmit_ts: NtpTimestamp::ZERO,
        }
    }
}

impl NtpPacket {
    /// Serialize into a fresh 48-byte vector.
    pub fn serialize(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(PACKET_LEN);
        self.write(&mut buf);
        buf
    }

    /// Serialize into any [`BufMut`].
    pub fn write<B: BufMut>(&self, buf: &mut B) {
        let first = ((self.leap as u8) << 6) | ((self.version.0 & 0b111) << 3) | self.mode as u8;
        buf.put_u8(first);
        buf.put_u8(self.stratum);
        buf.put_i8(self.poll);
        buf.put_i8(self.precision);
        buf.put_u32(self.root_delay.to_bits());
        buf.put_u32(self.root_dispersion.to_bits());
        buf.put_u32(self.reference_id.0);
        buf.put_u64(self.reference_ts.to_bits());
        buf.put_u64(self.origin_ts.to_bits());
        buf.put_u64(self.receive_ts.to_bits());
        buf.put_u64(self.transmit_ts.to_bits());
    }

    /// Parse from a byte slice. Trailing bytes (extension fields, MAC) are
    /// ignored, mirroring how a minimal SNTP client treats them.
    pub fn parse(mut data: &[u8]) -> Result<Self, WireError> {
        if data.len() < PACKET_LEN {
            return Err(WireError::Truncated { have: data.len(), need: PACKET_LEN });
        }
        let buf = &mut data;
        let first = buf.get_u8();
        let leap = LeapIndicator::from_bits(first >> 6);
        let version = (first >> 3) & 0b111;
        if !(1..=4).contains(&version) {
            return Err(WireError::BadVersion(version));
        }
        let mode = Mode::from_bits(first & 0b111)?;
        Ok(NtpPacket {
            leap,
            version: Version(version),
            mode,
            stratum: buf.get_u8(),
            poll: buf.get_i8(),
            precision: buf.get_i8(),
            root_delay: NtpShort::from_bits(buf.get_u32()),
            root_dispersion: NtpShort::from_bits(buf.get_u32()),
            reference_id: RefId(buf.get_u32()),
            reference_ts: NtpTimestamp::from_bits(buf.get_u64()),
            origin_ts: NtpTimestamp::from_bits(buf.get_u64()),
            receive_ts: NtpTimestamp::from_bits(buf.get_u64()),
            transmit_ts: NtpTimestamp::from_bits(buf.get_u64()),
        })
    }

    /// True when every field other than the first octet is zero — the wire
    /// signature of an RFC 4330 SNTP client request, and the heuristic the
    /// paper (§3.1) uses to tell SNTP clients from NTP clients in logs.
    pub fn is_sntp_client_shape(&self) -> bool {
        self.mode == Mode::Client
            && self.stratum == 0
            && self.poll == 0
            && self.precision == 0
            && self.root_delay == NtpShort::ZERO
            && self.root_dispersion == NtpShort::ZERO
            && self.reference_id == RefId::NONE
            && self.reference_ts.is_zero()
            && self.origin_ts.is_zero()
            && self.receive_ts.is_zero()
    }

    /// True when the packet is a kiss-o'-death (stratum 0 server reply).
    pub fn is_kiss_of_death(&self) -> bool {
        self.mode == Mode::Server && self.stratum == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NtpPacket {
        NtpPacket {
            leap: LeapIndicator::NoWarning,
            version: Version::V4,
            mode: Mode::Server,
            stratum: 2,
            poll: 6,
            precision: -20,
            root_delay: NtpShort::from_millis(12),
            root_dispersion: NtpShort::from_millis(3),
            reference_id: RefId::ipv4(192, 0, 2, 1),
            reference_ts: NtpTimestamp::from_parts(1000, 0),
            origin_ts: NtpTimestamp::from_parts(1001, 42),
            receive_ts: NtpTimestamp::from_parts(1001, 99),
            transmit_ts: NtpTimestamp::from_parts(1001, 123),
        }
    }

    #[test]
    fn roundtrip_sample() {
        let p = sample();
        let bytes = p.serialize();
        assert_eq!(bytes.len(), PACKET_LEN);
        let q = NtpPacket::parse(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn first_octet_layout() {
        let p = NtpPacket { leap: LeapIndicator::Unknown, version: Version::V3, mode: Mode::Client, ..Default::default() };
        let bytes = p.serialize();
        // LI=3 (11), VN=3 (011), Mode=3 (011) -> 0b11_011_011 = 0xDB
        assert_eq!(bytes[0], 0xDB);
    }

    #[test]
    fn truncated_rejected() {
        let p = sample();
        let bytes = p.serialize();
        let err = NtpPacket::parse(&bytes[..47]).unwrap_err();
        assert_eq!(err, WireError::Truncated { have: 47, need: 48 });
    }

    #[test]
    fn trailing_bytes_ignored() {
        let p = sample();
        let mut bytes = p.serialize();
        bytes.extend_from_slice(&[0u8; 20]); // fake extension field
        assert_eq!(NtpPacket::parse(&bytes).unwrap(), p);
    }

    #[test]
    fn version_zero_rejected() {
        let mut bytes = sample().serialize();
        bytes[0] &= !(0b111 << 3); // version = 0
        assert!(matches!(NtpPacket::parse(&bytes), Err(WireError::BadVersion(0))));
    }

    #[test]
    fn mode_zero_rejected() {
        let mut bytes = sample().serialize();
        bytes[0] &= !0b111; // mode = 0
        assert!(matches!(NtpPacket::parse(&bytes), Err(WireError::BadMode(0))));
    }

    #[test]
    fn sntp_client_shape_detection() {
        let req = NtpPacket { transmit_ts: NtpTimestamp::from_parts(7, 7), ..Default::default() };
        assert!(req.is_sntp_client_shape());
        let ntp_req = NtpPacket { poll: 6, precision: -20, ..req };
        assert!(!ntp_req.is_sntp_client_shape());
    }

    #[test]
    fn kiss_of_death_detection() {
        let kod = NtpPacket {
            mode: Mode::Server,
            stratum: 0,
            reference_id: RefId::KISS_RATE,
            ..Default::default()
        };
        assert!(kod.is_kiss_of_death());
        assert_eq!(kod.reference_id.as_kiss_code(), Some(*b"RATE"));
    }

    #[test]
    fn all_leap_indicator_bits_decode() {
        assert_eq!(LeapIndicator::from_bits(0), LeapIndicator::NoWarning);
        assert_eq!(LeapIndicator::from_bits(1), LeapIndicator::Leap61);
        assert_eq!(LeapIndicator::from_bits(2), LeapIndicator::Leap59);
        assert_eq!(LeapIndicator::from_bits(3), LeapIndicator::Unknown);
        assert_eq!(LeapIndicator::from_bits(7), LeapIndicator::Unknown); // masked
    }

    #[test]
    fn all_modes_roundtrip() {
        for m in [
            Mode::SymmetricActive,
            Mode::SymmetricPassive,
            Mode::Client,
            Mode::Server,
            Mode::Broadcast,
            Mode::Control,
            Mode::Private,
        ] {
            assert_eq!(Mode::from_bits(m as u8).unwrap(), m);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_packet() -> impl Strategy<Value = NtpPacket> {
        (
            0u8..4,
            1u8..=4,
            1u8..=7,
            any::<u8>(),
            any::<i8>(),
            any::<i8>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<(u64, u64, u64, u64)>(),
        )
            .prop_map(|(li, vn, mode, stratum, poll, prec, rd, rdisp, refid, ts)| NtpPacket {
                leap: LeapIndicator::from_bits(li),
                version: Version(vn),
                mode: Mode::from_bits(mode).unwrap(),
                stratum,
                poll,
                precision: prec,
                root_delay: NtpShort::from_bits(rd),
                root_dispersion: NtpShort::from_bits(rdisp),
                reference_id: RefId(refid),
                reference_ts: NtpTimestamp::from_bits(ts.0),
                origin_ts: NtpTimestamp::from_bits(ts.1),
                receive_ts: NtpTimestamp::from_bits(ts.2),
                transmit_ts: NtpTimestamp::from_bits(ts.3),
            })
    }

    proptest! {
        #[test]
        fn parse_serialize_roundtrip(p in arb_packet()) {
            let bytes = p.serialize();
            prop_assert_eq!(bytes.len(), PACKET_LEN);
            let q = NtpPacket::parse(&bytes).unwrap();
            prop_assert_eq!(p, q);
        }

        #[test]
        fn parse_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = NtpPacket::parse(&data);
        }

        #[test]
        fn valid_len_parse_fails_only_on_version_or_mode(data in proptest::collection::vec(any::<u8>(), PACKET_LEN..=PACKET_LEN)) {
            match NtpPacket::parse(&data) {
                Ok(_) => {}
                Err(WireError::BadVersion(_)) | Err(WireError::BadMode(_)) => {}
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
    }
}
