//! Zero-copy borrowed view over a 48-byte NTP packet header.
//!
//! [`PacketView`] validates the same three structural invariants as
//! [`NtpPacket::parse`] (length ≥ 48, version 1..=4, non-zero mode) but
//! borrows the bytes instead of decoding them into an owned struct: field
//! accessors read straight out of the datagram, and raw timestamp bytes can
//! be copied into a reply without a decode/encode round trip. This is the
//! parse half of the server-core fast path — a batch of arena-resident
//! request bytes is classified and answered without materializing a single
//! [`NtpPacket`].
//!
//! The equivalence contract (pinned by property tests here and in
//! `devtools::prop` suites downstream):
//!
//! * `PacketView::new(data)` errs exactly when `NtpPacket::parse(data)`
//!   errs, with the same [`WireError`] variant;
//! * when both succeed, [`PacketView::to_packet`] equals the parsed packet
//!   field for field.

use crate::error::WireError;
use crate::packet::{get_u32_be, get_u64_be, LeapIndicator, Mode, NtpPacket, Version, PACKET_LEN};
use crate::refid::RefId;
use crate::timestamp::{NtpShort, NtpTimestamp};

/// A validated, borrowed 48-byte NTP header.
///
/// Construction performs the structural checks once; every accessor after
/// that is a branch-free fixed-offset load. Trailing bytes (extension
/// fields, MAC) are outside the view, mirroring how [`NtpPacket::parse`]
/// ignores them.
///
/// ```
/// use ntp_wire::{NtpPacket, NtpTimestamp, PacketView};
///
/// let req = ntp_wire::sntp_profile::client_request(NtpTimestamp::from_parts(1000, 7));
/// let bytes = req.serialize();
/// let view = PacketView::new(&bytes).unwrap();
/// assert!(view.is_sntp_client_shape());
/// assert_eq!(view.to_packet(), req);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PacketView<'a> {
    bytes: &'a [u8; PACKET_LEN],
}

impl<'a> PacketView<'a> {
    /// Validate `data` as an NTP header and borrow its first 48 bytes.
    ///
    /// Error semantics are identical to [`NtpPacket::parse`]: `Truncated`
    /// below 48 bytes, `BadVersion` outside 1..=4, `BadMode` for the
    /// reserved mode 0. Trailing bytes are ignored.
    #[inline]
    pub fn new(data: &'a [u8]) -> Result<Self, WireError> {
        let Some(head) = data.get(..PACKET_LEN) else {
            return Err(WireError::Truncated { have: data.len(), need: PACKET_LEN });
        };
        let Ok(bytes) = <&[u8; PACKET_LEN]>::try_from(head) else {
            // Unreachable: `head` is exactly PACKET_LEN long. Kept as an
            // error return (not a panic) so the fast path stays total.
            return Err(WireError::Truncated { have: data.len(), need: PACKET_LEN });
        };
        let &[first, ..] = bytes;
        let version = (first >> 3) & 0b111;
        if !(1..=4).contains(&version) {
            return Err(WireError::BadVersion(version));
        }
        if first & 0b111 == 0 {
            return Err(WireError::BadMode(0));
        }
        Ok(PacketView { bytes })
    }

    /// The validated 48 header bytes.
    #[inline]
    pub fn as_bytes(&self) -> &'a [u8; PACKET_LEN] {
        self.bytes
    }

    /// The LI/VN/Mode octet (a fixed-array destructure, not an index —
    /// the accessors below stay structurally panic-free).
    #[inline]
    fn first_octet(&self) -> u8 {
        let &[first, ..] = self.bytes;
        first
    }

    /// Leap indicator (top two bits of the first octet).
    #[inline]
    pub fn leap(&self) -> LeapIndicator {
        LeapIndicator::from_bits(self.first_octet() >> 6)
    }

    /// Protocol version (validated to 1..=4 at construction).
    #[inline]
    pub fn version(&self) -> Version {
        Version((self.first_octet() >> 3) & 0b111)
    }

    /// Association mode (validated non-zero at construction).
    #[inline]
    pub fn mode(&self) -> Mode {
        match Mode::from_bits(self.first_octet() & 0b111) {
            Ok(m) => m,
            // Unreachable: mode 0 was rejected in `new`. `Client` keeps
            // the accessor total without a panic path.
            Err(_) => Mode::Client,
        }
    }

    /// Raw mode bits (1..=7) without the enum round trip — the cheapest
    /// classify key for the batched pipeline.
    #[inline]
    pub fn mode_bits(&self) -> u8 {
        self.first_octet() & 0b111
    }

    /// Stratum octet.
    #[inline]
    pub fn stratum(&self) -> u8 {
        let &[_, stratum, ..] = self.bytes;
        stratum
    }

    /// Advertised log₂ poll interval.
    #[inline]
    pub fn poll(&self) -> i8 {
        let &[_, _, poll, ..] = self.bytes;
        poll as i8
    }

    /// Advertised log₂ clock precision.
    #[inline]
    pub fn precision(&self) -> i8 {
        let &[_, _, _, precision, ..] = self.bytes;
        precision as i8
    }

    /// Root delay field.
    #[inline]
    pub fn root_delay(&self) -> NtpShort {
        NtpShort::from_bits(get_u32_be(self.bytes, 4))
    }

    /// Root dispersion field.
    #[inline]
    pub fn root_dispersion(&self) -> NtpShort {
        NtpShort::from_bits(get_u32_be(self.bytes, 8))
    }

    /// Reference identifier.
    #[inline]
    pub fn reference_id(&self) -> RefId {
        RefId(get_u32_be(self.bytes, 12))
    }

    /// Reference timestamp.
    #[inline]
    pub fn reference_ts(&self) -> NtpTimestamp {
        NtpTimestamp::from_bits(get_u64_be(self.bytes, 16))
    }

    /// Origin timestamp (T1 echo).
    #[inline]
    pub fn origin_ts(&self) -> NtpTimestamp {
        NtpTimestamp::from_bits(get_u64_be(self.bytes, 24))
    }

    /// Receive timestamp (T2).
    #[inline]
    pub fn receive_ts(&self) -> NtpTimestamp {
        NtpTimestamp::from_bits(get_u64_be(self.bytes, 32))
    }

    /// Transmit timestamp (T3 — in a client request, the client send time
    /// the server must echo back as the reply's origin).
    #[inline]
    pub fn transmit_ts(&self) -> NtpTimestamp {
        NtpTimestamp::from_bits(get_u64_be(self.bytes, 40))
    }

    /// The eight transmit-timestamp bytes, still big-endian — copy these
    /// straight into a reply's origin field (offset 24) for a zero-decode
    /// origin echo.
    #[inline]
    pub fn transmit_ts_raw(&self) -> &'a [u8; 8] {
        match self.bytes.last_chunk::<8>() {
            Some(arr) => arr,
            // Unreachable: a [u8; 48] always has a last 8-byte chunk.
            None => &[0u8; 8],
        }
    }

    /// Byte-level version of [`NtpPacket::is_sntp_client_shape`]: mode 3
    /// and bytes 1..40 all zero (everything between the first octet and
    /// the transmit timestamp). One comparison chain, no field decoding.
    #[inline]
    pub fn is_sntp_client_shape(&self) -> bool {
        self.mode_bits() == Mode::Client as u8
            && self.bytes.get(1..40).is_some_and(|mid| mid.iter().all(|&b| b == 0))
    }

    /// Decode into an owned [`NtpPacket`]. Field-for-field identical to
    /// `NtpPacket::parse(self.as_bytes())`, which by construction cannot
    /// fail here.
    pub fn to_packet(&self) -> NtpPacket {
        NtpPacket {
            leap: self.leap(),
            version: self.version(),
            mode: self.mode(),
            stratum: self.stratum(),
            poll: self.poll(),
            precision: self.precision(),
            root_delay: self.root_delay(),
            root_dispersion: self.root_dispersion(),
            reference_id: self.reference_id(),
            reference_ts: self.reference_ts(),
            origin_ts: self.origin_ts(),
            receive_ts: self.receive_ts(),
            transmit_ts: self.transmit_ts(),
        }
    }
}

impl NtpPacket {
    /// Borrow-parse: validate `data` and return a zero-copy [`PacketView`]
    /// instead of decoding into an owned packet. Same error semantics as
    /// [`NtpPacket::parse`]; the hot-path entry point for the server core.
    #[inline]
    pub fn parse_ref(data: &[u8]) -> Result<PacketView<'_>, WireError> {
        PacketView::new(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sntp_profile;

    fn sample() -> NtpPacket {
        NtpPacket {
            leap: LeapIndicator::Leap61,
            version: Version::V3,
            mode: Mode::Server,
            stratum: 3,
            poll: 10,
            precision: -18,
            root_delay: NtpShort::from_millis(7),
            root_dispersion: NtpShort::from_millis(2),
            reference_id: RefId::ipv4(10, 0, 0, 1),
            reference_ts: NtpTimestamp::from_parts(900, 1),
            origin_ts: NtpTimestamp::from_parts(901, 2),
            receive_ts: NtpTimestamp::from_parts(901, 3),
            transmit_ts: NtpTimestamp::from_parts(901, 4),
        }
    }

    #[test]
    fn view_fields_match_parse() {
        let bytes = sample().serialize();
        let view = PacketView::new(&bytes).unwrap();
        let parsed = NtpPacket::parse(&bytes).unwrap();
        assert_eq!(view.to_packet(), parsed);
        assert_eq!(view.leap(), parsed.leap);
        assert_eq!(view.version(), parsed.version);
        assert_eq!(view.mode(), parsed.mode);
        assert_eq!(view.stratum(), parsed.stratum);
        assert_eq!(view.poll(), parsed.poll);
        assert_eq!(view.precision(), parsed.precision);
        assert_eq!(view.transmit_ts(), parsed.transmit_ts);
    }

    #[test]
    fn parse_ref_is_the_view_constructor() {
        let bytes = sample().serialize();
        let view = NtpPacket::parse_ref(&bytes).unwrap();
        assert_eq!(view.to_packet(), sample());
    }

    #[test]
    fn truncated_rejected_like_parse() {
        let bytes = sample().serialize();
        let err = PacketView::new(&bytes[..47]).unwrap_err();
        assert_eq!(err, WireError::Truncated { have: 47, need: 48 });
        assert_eq!(err, NtpPacket::parse(&bytes[..47]).unwrap_err());
    }

    #[test]
    fn bad_version_and_mode_rejected_like_parse() {
        let mut bytes = sample().serialize();
        bytes[0] &= !(0b111 << 3); // version 0
        assert!(matches!(PacketView::new(&bytes), Err(WireError::BadVersion(0))));
        let mut bytes = sample().serialize();
        bytes[0] &= !0b111; // mode 0
        assert!(matches!(PacketView::new(&bytes), Err(WireError::BadMode(0))));
    }

    #[test]
    fn trailing_bytes_ignored() {
        let mut bytes = sample().serialize();
        bytes.extend_from_slice(&[0xFF; 16]);
        let view = PacketView::new(&bytes).unwrap();
        assert_eq!(view.to_packet(), sample());
    }

    #[test]
    fn sntp_shape_matches_decoded_check() {
        let req = sntp_profile::client_request(NtpTimestamp::from_parts(55, 66));
        let bytes = req.serialize();
        let view = PacketView::new(&bytes).unwrap();
        assert!(view.is_sntp_client_shape());
        // An ntpd-style request (non-zero poll/precision) is not SNTP-shaped.
        let ntpd = NtpPacket { poll: 6, precision: -20, ..req };
        let bytes = ntpd.serialize();
        assert!(!PacketView::new(&bytes).unwrap().is_sntp_client_shape());
    }

    #[test]
    fn transmit_ts_raw_is_the_wire_bytes() {
        let p = sample();
        let bytes = p.serialize();
        let view = PacketView::new(&bytes).unwrap();
        assert_eq!(view.transmit_ts_raw(), &bytes[40..48]);
        assert_eq!(
            NtpTimestamp::from_bits(u64::from_be_bytes(*view.transmit_ts_raw())),
            p.transmit_ts
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use devtools::prop;
    use devtools::{prop_assert, prop_assert_eq, props};

    props! {
        /// The zero-copy parser agrees with `NtpPacket::parse` on
        /// arbitrary 0–128-byte inputs — same accept/reject decision,
        /// same error variant, same decoded fields — and never panics.
        fn view_agrees_with_parse(data in prop::vecs(prop::any_u8(), 0..128)) {
            match (PacketView::new(&data), NtpPacket::parse(&data)) {
                (Ok(view), Ok(packet)) => prop_assert_eq!(view.to_packet(), packet),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(
                    false,
                    "accept/reject disagreement: view={:?} parse={:?}",
                    a.map(|v| v.to_packet()),
                    b
                ),
            }
        }

        /// Byte-level SNTP shape detection matches the decoded-field check.
        fn sntp_shape_agrees(data in prop::vecs_exact(prop::any_u8(), PACKET_LEN)) {
            if let (Ok(view), Ok(packet)) = (PacketView::new(&data), NtpPacket::parse(&data)) {
                prop_assert_eq!(view.is_sntp_client_shape(), packet.is_sntp_client_shape());
            }
        }
    }
}
