//! NTP fixed-point time types.
//!
//! Three types cover everything the protocol and the simulators need:
//!
//! * [`NtpTimestamp`] — the 64-bit on-wire timestamp: unsigned seconds since
//!   the NTP era origin (1900-01-01T00:00:00Z for era 0) in the high 32 bits
//!   and a binary fraction of a second in the low 32 bits (~233 ps
//!   resolution).
//! * [`NtpShort`] — the 32-bit `16.16` format used by the root delay and
//!   root dispersion header fields.
//! * [`NtpDuration`] — a *signed* 64-bit `32.32` span, the result of
//!   subtracting two timestamps. Offsets, delays and drift corrections are
//!   all [`NtpDuration`]s.
//!
//! All arithmetic is exact integer arithmetic; floating point appears only
//! at the explicit `as_seconds_f64` / `from_seconds_f64` boundaries so that
//! protocol state never accumulates rounding error.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Nanoseconds per second, as used by the ns-based conversions.
pub const NANOS_PER_SEC: i128 = 1_000_000_000;

/// 64-bit NTP timestamp: 32-bit seconds since the era origin, 32-bit
/// fraction. Era wraparound is handled by doing all differences in
/// wrapping two's-complement arithmetic, which is correct as long as the
/// two timestamps are within ±68 years of each other (RFC 5905 §6).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NtpTimestamp(u64);

impl NtpTimestamp {
    /// The all-zeros timestamp, which the protocol uses as "unset".
    pub const ZERO: NtpTimestamp = NtpTimestamp(0);

    /// Construct from the raw 64-bit wire representation.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        NtpTimestamp(bits)
    }

    /// The raw 64-bit wire representation.
    #[inline]
    pub const fn to_bits(self) -> u64 {
        self.0
    }

    /// Construct from whole seconds (since the era origin) and a 32-bit
    /// binary fraction.
    #[inline]
    pub const fn from_parts(seconds: u32, fraction: u32) -> Self {
        NtpTimestamp(((seconds as u64) << 32) | fraction as u64)
    }

    /// Whole-seconds part.
    #[inline]
    pub const fn seconds(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Binary-fraction part.
    #[inline]
    pub const fn fraction(self) -> u32 {
        self.0 as u32
    }

    /// True if this is the unset/zero timestamp.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Convert a count of nanoseconds since the era origin into a
    /// timestamp. Input is taken modulo one era (2^32 seconds).
    pub fn from_era_nanos(nanos: i128) -> Self {
        let era_len = (1i128 << 32) * NANOS_PER_SEC;
        let n = nanos.rem_euclid(era_len);
        let secs = (n / NANOS_PER_SEC) as u64;
        let sub_nanos = (n % NANOS_PER_SEC) as u64;
        // fraction = sub_nanos * 2^32 / 1e9, rounded to nearest.
        let fraction = (((sub_nanos as u128) << 32) + (NANOS_PER_SEC as u128 / 2))
            / NANOS_PER_SEC as u128;
        // Rounding can carry into the seconds field.
        if fraction >= 1u128 << 32 {
            NtpTimestamp((secs.wrapping_add(1) & 0xFFFF_FFFF) << 32)
        } else {
            NtpTimestamp(((secs & 0xFFFF_FFFF) << 32) | fraction as u64)
        }
    }

    /// Nanoseconds since the era origin (always in `[0, 2^32 s)`).
    pub fn to_era_nanos(self) -> i128 {
        let secs = self.seconds() as i128 * NANOS_PER_SEC;
        let frac = ((self.fraction() as i128 * NANOS_PER_SEC) + (1 << 31)) >> 32;
        secs + frac
    }

    /// Seconds since the era origin as `f64` (test/diagnostic use only).
    pub fn as_seconds_f64(self) -> f64 {
        self.seconds() as f64 + self.fraction() as f64 / 4294967296.0
    }

    /// The signed difference `self - other`, correct for any pair of
    /// timestamps less than ±68 years apart, across era boundaries.
    #[inline]
    pub fn wrapping_sub(self, other: NtpTimestamp) -> NtpDuration {
        NtpDuration(self.0.wrapping_sub(other.0) as i64)
    }

    /// Add a signed duration, wrapping at era boundaries.
    #[inline]
    pub fn wrapping_add_duration(self, d: NtpDuration) -> NtpTimestamp {
        NtpTimestamp(self.0.wrapping_add(d.0 as u64))
    }
}

impl fmt::Debug for NtpTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NtpTimestamp({}.{:08x})", self.seconds(), self.fraction())
    }
}

impl fmt::Display for NtpTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_seconds_f64())
    }
}

impl Sub for NtpTimestamp {
    type Output = NtpDuration;
    fn sub(self, rhs: Self) -> NtpDuration {
        self.wrapping_sub(rhs)
    }
}

impl Add<NtpDuration> for NtpTimestamp {
    type Output = NtpTimestamp;
    fn add(self, rhs: NtpDuration) -> NtpTimestamp {
        self.wrapping_add_duration(rhs)
    }
}

impl Sub<NtpDuration> for NtpTimestamp {
    type Output = NtpTimestamp;
    fn sub(self, rhs: NtpDuration) -> NtpTimestamp {
        self.wrapping_add_duration(-rhs)
    }
}

/// Signed `32.32` fixed-point span of time. One unit of the fraction is
/// 2⁻³² s ≈ 233 ps; the representable range is ±2³¹ s ≈ ±68 years.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NtpDuration(i64);

impl NtpDuration {
    /// Zero-length duration.
    pub const ZERO: NtpDuration = NtpDuration(0);
    /// Exactly one second.
    pub const ONE_SECOND: NtpDuration = NtpDuration(1 << 32);

    /// Construct from the raw `32.32` bits.
    #[inline]
    pub const fn from_bits(bits: i64) -> Self {
        NtpDuration(bits)
    }

    /// Raw `32.32` bits.
    #[inline]
    pub const fn to_bits(self) -> i64 {
        self.0
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_seconds(s: i32) -> Self {
        NtpDuration((s as i64) << 32)
    }

    /// Construct from milliseconds (exact to fixed-point rounding).
    pub fn from_millis(ms: i64) -> Self {
        NtpDuration(((ms as i128 * (1i128 << 32) + 500) / 1000) as i64)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: i64) -> Self {
        NtpDuration(((us as i128 * (1i128 << 32) + 500_000) / 1_000_000) as i64)
    }

    /// Construct from nanoseconds.
    pub fn from_nanos(ns: i64) -> Self {
        NtpDuration(((ns as i128 * (1i128 << 32) + NANOS_PER_SEC / 2) / NANOS_PER_SEC) as i64)
    }

    /// Duration as nanoseconds, rounded to nearest.
    pub fn as_nanos(self) -> i64 {
        let wide = self.0 as i128 * NANOS_PER_SEC;
        // Round-to-nearest shift for signed values.
        ((wide + (1i128 << 31)) >> 32) as i64
    }

    /// Duration as (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.as_seconds_f64() * 1e3
    }

    /// Duration as seconds, `f64` (diagnostics / statistics only).
    pub fn as_seconds_f64(self) -> f64 {
        self.0 as f64 / 4294967296.0
    }

    /// Construct from seconds expressed as `f64`. Saturates at the
    /// representable range.
    pub fn from_seconds_f64(s: f64) -> Self {
        let bits = (s * 4294967296.0).round();
        if bits >= i64::MAX as f64 {
            NtpDuration(i64::MAX)
        } else if bits <= i64::MIN as f64 {
            NtpDuration(i64::MIN)
        } else {
            NtpDuration(bits as i64)
        }
    }

    /// Absolute value (saturating at `i64::MAX`).
    pub fn abs(self) -> Self {
        NtpDuration(self.0.saturating_abs())
    }

    /// True when the span is negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Halve the duration (used by the offset formula), rounding toward
    /// negative infinity as arithmetic shift does.
    pub const fn half(self) -> Self {
        NtpDuration(self.0 >> 1)
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Self) -> Self {
        NtpDuration(self.0.saturating_add(rhs.0))
    }

    /// Truncate to the 32-bit [`NtpShort`] format, saturating: negative
    /// spans become zero and spans over 2¹⁵ s become the maximum.
    pub fn to_short_saturating(self) -> NtpShort {
        if self.0 <= 0 {
            return NtpShort(0);
        }
        // NtpShort is 16.16; our value is 32.32 — shift right by 16.
        let v = self.0 >> 16;
        if v > u32::MAX as i64 {
            NtpShort(u32::MAX)
        } else {
            NtpShort(v as u32)
        }
    }
}

impl fmt::Debug for NtpDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NtpDuration({:.6}s)", self.as_seconds_f64())
    }
}

impl fmt::Display for NtpDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.3}ms", self.as_millis_f64())
    }
}

impl Add for NtpDuration {
    type Output = NtpDuration;
    fn add(self, rhs: Self) -> Self {
        NtpDuration(self.0.wrapping_add(rhs.0))
    }
}

impl AddAssign for NtpDuration {
    fn add_assign(&mut self, rhs: Self) {
        self.0 = self.0.wrapping_add(rhs.0);
    }
}

impl Sub for NtpDuration {
    type Output = NtpDuration;
    fn sub(self, rhs: Self) -> Self {
        NtpDuration(self.0.wrapping_sub(rhs.0))
    }
}

impl SubAssign for NtpDuration {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 = self.0.wrapping_sub(rhs.0);
    }
}

impl Neg for NtpDuration {
    type Output = NtpDuration;
    fn neg(self) -> Self {
        NtpDuration(self.0.wrapping_neg())
    }
}

impl Mul<i64> for NtpDuration {
    type Output = NtpDuration;
    fn mul(self, rhs: i64) -> Self {
        NtpDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<i64> for NtpDuration {
    type Output = NtpDuration;
    fn div(self, rhs: i64) -> Self {
        NtpDuration(self.0 / rhs)
    }
}

/// 32-bit `16.16` unsigned fixed point, used for root delay and root
/// dispersion in the packet header.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NtpShort(u32);

impl NtpShort {
    /// Zero.
    pub const ZERO: NtpShort = NtpShort(0);

    /// Construct from the raw wire bits.
    #[inline]
    pub const fn from_bits(bits: u32) -> Self {
        NtpShort(bits)
    }

    /// Raw wire bits.
    #[inline]
    pub const fn to_bits(self) -> u32 {
        self.0
    }

    /// Construct from milliseconds, saturating at the format's ~65.5 ks cap.
    pub fn from_millis(ms: u32) -> Self {
        let v = (ms as u64 * 65536 + 500) / 1000;
        NtpShort(v.min(u32::MAX as u64) as u32)
    }

    /// Value as seconds (`f64`).
    pub fn as_seconds_f64(self) -> f64 {
        self.0 as f64 / 65536.0
    }

    /// Widen to the signed `32.32` duration type.
    pub fn to_duration(self) -> NtpDuration {
        NtpDuration::from_bits((self.0 as i64) << 16)
    }
}

impl fmt::Debug for NtpShort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NtpShort({:.3}s)", self.as_seconds_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_parts_roundtrip() {
        let ts = NtpTimestamp::from_parts(0xDEADBEEF, 0x80000000);
        assert_eq!(ts.seconds(), 0xDEADBEEF);
        assert_eq!(ts.fraction(), 0x80000000);
        assert_eq!(NtpTimestamp::from_bits(ts.to_bits()), ts);
    }

    #[test]
    fn era_nanos_roundtrip_exact_seconds() {
        let ns = 1234 * NANOS_PER_SEC;
        let ts = NtpTimestamp::from_era_nanos(ns);
        assert_eq!(ts.seconds(), 1234);
        assert_eq!(ts.fraction(), 0);
        assert_eq!(ts.to_era_nanos(), ns);
    }

    #[test]
    fn era_nanos_roundtrip_subsecond() {
        let ns = 5 * NANOS_PER_SEC + 500_000_000; // 5.5 s
        let ts = NtpTimestamp::from_era_nanos(ns);
        assert_eq!(ts.seconds(), 5);
        assert_eq!(ts.fraction(), 0x8000_0000);
        assert_eq!(ts.to_era_nanos(), ns);
    }

    #[test]
    fn era_nanos_negative_wraps_into_previous_era() {
        let ts = NtpTimestamp::from_era_nanos(-NANOS_PER_SEC);
        assert_eq!(ts.seconds(), u32::MAX);
    }

    #[test]
    fn wrapping_sub_across_era_boundary() {
        let before = NtpTimestamp::from_parts(u32::MAX, 0);
        let after = NtpTimestamp::from_parts(1, 0);
        let d = after.wrapping_sub(before);
        assert_eq!(d, NtpDuration::from_seconds(2));
        let back = before.wrapping_add_duration(d);
        assert_eq!(back, after);
    }

    #[test]
    fn duration_millis_conversions() {
        let d = NtpDuration::from_millis(1500);
        assert!((d.as_seconds_f64() - 1.5).abs() < 1e-9);
        assert!((d.as_millis_f64() - 1500.0).abs() < 1e-6);
        let neg = NtpDuration::from_millis(-250);
        assert!((neg.as_millis_f64() + 250.0).abs() < 1e-6);
    }

    #[test]
    fn duration_nanos_roundtrip_within_rounding() {
        for ns in [0i64, 1, -1, 999_999_999, -999_999_999, 1_000_000_000] {
            let d = NtpDuration::from_nanos(ns);
            assert!((d.as_nanos() - ns).abs() <= 1, "ns={ns} got {}", d.as_nanos());
        }
    }

    #[test]
    fn duration_half_and_neg() {
        // half() floors, so doubling may lose the lowest bit (≈233 ps).
        let d = NtpDuration::from_millis(10);
        let twice = d.half() + d.half();
        assert!((twice - d).abs() <= NtpDuration::from_bits(1));
        let even = NtpDuration::from_bits(1 << 20);
        assert_eq!(even.half() + even.half(), even);
        assert_eq!(-(-d), d);
    }

    #[test]
    fn short_roundtrip() {
        let s = NtpShort::from_millis(125);
        assert!((s.as_seconds_f64() - 0.125).abs() < 1e-4);
        let widened = s.to_duration();
        assert!((widened.as_millis_f64() - 125.0).abs() < 0.1);
    }

    #[test]
    fn duration_to_short_saturates() {
        assert_eq!(NtpDuration::from_millis(-5).to_short_saturating(), NtpShort::ZERO);
        let huge = NtpDuration::from_seconds(100_000);
        assert_eq!(huge.to_short_saturating().to_bits(), u32::MAX);
    }

    #[test]
    fn from_seconds_f64_saturates() {
        assert_eq!(NtpDuration::from_seconds_f64(1e30).to_bits(), i64::MAX);
        assert_eq!(NtpDuration::from_seconds_f64(-1e30).to_bits(), i64::MIN);
    }

    #[test]
    fn fraction_rounding_carries_into_seconds() {
        // 1 second minus a quarter nanosecond rounds up to exactly 2^32 frac,
        // which must carry.
        let ns = NANOS_PER_SEC - 1;
        let ts = NtpTimestamp::from_era_nanos(ns);
        // Either 0.999999999 (frac just below 2^32) or carried to 1.0.
        let n = ts.to_era_nanos();
        assert!((n - ns).abs() <= 1);
    }
}
