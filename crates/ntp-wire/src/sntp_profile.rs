//! The RFC 4330 SNTP client profile.
//!
//! SNTP is not a distinct wire protocol — it is a *usage profile* of NTP:
//! a client request zeroes every header field except the first octet
//! (LI = 0, VN, Mode = 3) and, optionally, the transmit timestamp; the
//! client performs only a short list of sanity checks on the reply and
//! applies each offset sample directly, with none of NTP's filtering,
//! selection, or discipline machinery. This module provides the request
//! builder and the reply checks; the `sntp` crate builds the actual client
//! behaviour (including vendor quirks) on top.

use crate::error::WireError;
use crate::packet::{put_u32_be, put_u64_be, LeapIndicator, Mode, NtpPacket, Version, PACKET_LEN};
use crate::timestamp::NtpTimestamp;
use crate::view::PacketView;

/// Build an SNTP client request per RFC 4330 §4: all fields zero except the
/// first octet and the transmit timestamp, which carries the client's send
/// time so the server can echo it back as the origin timestamp.
pub fn client_request(transmit: NtpTimestamp) -> NtpPacket {
    NtpPacket { version: Version::V4, mode: Mode::Client, transmit_ts: transmit, ..Default::default() }
}

/// Build a server reply to `request`, given the server's receive time `t2`,
/// transmit time `t3`, and server identity fields.
pub fn server_reply(
    request: &NtpPacket,
    t2: NtpTimestamp,
    t3: NtpTimestamp,
    stratum: u8,
    reference_id: crate::refid::RefId,
    reference_ts: NtpTimestamp,
) -> NtpPacket {
    NtpPacket {
        leap: LeapIndicator::NoWarning,
        version: request.version,
        mode: Mode::Server,
        stratum,
        poll: request.poll,
        precision: -20,
        root_delay: crate::timestamp::NtpShort::from_millis(1),
        root_dispersion: crate::timestamp::NtpShort::from_millis(1),
        reference_id,
        reference_ts,
        origin_ts: request.transmit_ts,
        receive_ts: t2,
        transmit_ts: t3,
    }
}

/// Allocation-free [`server_reply`]: write the reply straight into a
/// caller-provided 48-byte slot, echoing the request's version, poll, and
/// transmit timestamp directly from the borrowed [`PacketView`] — no
/// intermediate [`NtpPacket`] is built on either side. Byte-identical to
/// `server_reply(&request.to_packet(), ...).serialize()`, pinned by a
/// property test below.
#[inline]
pub fn write_server_reply_into(
    request: &PacketView<'_>,
    t2: NtpTimestamp,
    t3: NtpTimestamp,
    stratum: u8,
    reference_id: crate::refid::RefId,
    reference_ts: NtpTimestamp,
    out: &mut [u8; PACKET_LEN],
) {
    // LI = NoWarning (0), VN echoed from the request, Mode = Server.
    // Fixed-array destructure: no bounds checks, structurally panic-free.
    let [b0, b1, b2, b3, ..] = out;
    *b0 = ((request.version().0 & 0b111) << 3) | Mode::Server as u8;
    *b1 = stratum;
    *b2 = request.poll() as u8;
    *b3 = (-20i8) as u8;
    let one_ms = crate::timestamp::NtpShort::from_millis(1).to_bits();
    put_u32_be(out, 4, one_ms); // root delay
    put_u32_be(out, 8, one_ms); // root dispersion
    put_u32_be(out, 12, reference_id.0);
    put_u64_be(out, 16, reference_ts.to_bits());
    // Origin = request transmit, copied as raw wire bytes (zero decode).
    if let Some(dst) = out.get_mut(24..32) {
        dst.copy_from_slice(request.transmit_ts_raw());
    }
    put_u64_be(out, 32, t2.to_bits());
    put_u64_be(out, 40, t3.to_bits());
}

/// Allocation-free kiss-o'-death writer: stratum-0 server reply carrying
/// `kiss` as its reference id, origin echoing the request, transmit `t3`,
/// every other field zero (the layout `SimServer` KoDs have always used:
/// default version 4, zero poll/precision, zero receive timestamp).
#[inline]
pub fn write_kod_into(
    request: &PacketView<'_>,
    kiss: crate::refid::RefId,
    t3: NtpTimestamp,
    out: &mut [u8; PACKET_LEN],
) {
    out.fill(0);
    // LI = NoWarning, VN = 4 (default — deliberately NOT echoed), Mode = Server.
    let [b0, ..] = out;
    *b0 = ((Version::V4.0 & 0b111) << 3) | Mode::Server as u8;
    put_u32_be(out, 12, kiss.0);
    if let Some(dst) = out.get_mut(24..32) {
        dst.copy_from_slice(request.transmit_ts_raw());
    }
    put_u64_be(out, 40, t3.to_bits());
}

/// What a structurally valid reply turned out to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyClass {
    /// A normal time reply that passed every RFC 4330 §5 sanity check.
    Time,
    /// A kiss-o'-death packet (stratum 0): the server is refusing
    /// service, and the four refid bytes say why (`RATE`, `DENY`,
    /// `RSTR`, …). A well-behaved client must *honor* the code — back
    /// off on `RATE`, stop using the server on `DENY`/`RSTR` (RFC 5905
    /// §7.4) — which is impossible if the packet is discarded as merely
    /// "failed a sanity check". Hence this variant instead of an error.
    KissODeath([u8; 4]),
}

/// Classify a reply: run the RFC 4330 §5 sanity checks, but recognize
/// stratum-0 kiss-o'-death packets as a *first-class outcome* carrying
/// their kiss code rather than a generic rejection. `expected_origin` is
/// the transmit timestamp the client put in its request; it is enforced
/// for KoD packets too (an off-path attacker must not be able to forge a
/// `DENY` without seeing the request).
pub fn classify_reply(
    reply: &NtpPacket,
    expected_origin: NtpTimestamp,
) -> Result<ReplyClass, WireError> {
    if reply.mode != Mode::Server && reply.mode != Mode::Broadcast {
        return Err(WireError::SanityCheck("reply mode is not server/broadcast"));
    }
    if reply.origin_ts != expected_origin {
        return Err(WireError::SanityCheck("origin timestamp mismatch (bogus or replayed)"));
    }
    if reply.is_kiss_of_death() {
        let code = reply
            .reference_id
            .as_kiss_code()
            .ok_or(WireError::SanityCheck("stratum 0 with non-ASCII kiss code"))?;
        return Ok(ReplyClass::KissODeath(code));
    }
    if reply.stratum > 15 {
        return Err(WireError::SanityCheck("stratum out of range"));
    }
    if reply.transmit_ts.is_zero() {
        return Err(WireError::SanityCheck("zero transmit timestamp"));
    }
    if reply.leap == LeapIndicator::Unknown {
        return Err(WireError::SanityCheck("server clock unsynchronized"));
    }
    Ok(ReplyClass::Time)
}

/// The RFC 4330 §5 reply sanity checks a minimal client must run before
/// trusting a reply. `expected_origin` is the transmit timestamp the client
/// put in its request. Kiss-o'-death packets are rejected here (the naive
/// profile treats them as unusable); clients that honor kiss codes use
/// [`classify_reply`] instead.
pub fn check_reply(reply: &NtpPacket, expected_origin: NtpTimestamp) -> Result<(), WireError> {
    match classify_reply(reply, expected_origin)? {
        ReplyClass::Time => Ok(()),
        ReplyClass::KissODeath(_) => Err(WireError::SanityCheck("kiss-o'-death")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refid::RefId;

    fn ts(s: u32) -> NtpTimestamp {
        NtpTimestamp::from_parts(s, 0)
    }

    fn good_pair() -> (NtpPacket, NtpPacket) {
        let req = client_request(ts(100));
        let rep = server_reply(&req, ts(101), ts(101), 2, RefId::ipv4(1, 2, 3, 4), ts(90));
        (req, rep)
    }

    #[test]
    fn request_is_sntp_shaped() {
        let req = client_request(ts(42));
        assert!(req.is_sntp_client_shape());
        assert_eq!(req.transmit_ts, ts(42));
    }

    #[test]
    fn good_reply_passes() {
        let (req, rep) = good_pair();
        assert!(check_reply(&rep, req.transmit_ts).is_ok());
    }

    #[test]
    fn origin_mismatch_rejected() {
        let (_, rep) = good_pair();
        let err = check_reply(&rep, ts(999)).unwrap_err();
        assert!(matches!(err, WireError::SanityCheck(m) if m.contains("origin")));
    }

    #[test]
    fn kod_rejected() {
        let (req, mut rep) = good_pair();
        rep.stratum = 0;
        rep.reference_id = RefId::KISS_RATE;
        assert!(check_reply(&rep, req.transmit_ts).is_err());
    }

    #[test]
    fn classify_passes_good_reply_as_time() {
        let (req, rep) = good_pair();
        assert_eq!(classify_reply(&rep, req.transmit_ts), Ok(ReplyClass::Time));
    }

    /// The standard kiss codes survive a full serialize → parse →
    /// classify round trip with their four-byte code intact.
    #[test]
    fn kiss_codes_round_trip_through_the_wire() {
        for (refid, code) in [
            (RefId::KISS_RATE, *b"RATE"),
            (RefId::KISS_DENY, *b"DENY"),
            (RefId::KISS_RSTR, *b"RSTR"),
        ] {
            let req = client_request(ts(77));
            let kod = NtpPacket {
                mode: Mode::Server,
                stratum: 0,
                reference_id: refid,
                origin_ts: req.transmit_ts,
                transmit_ts: ts(78),
                ..Default::default()
            };
            let parsed = NtpPacket::parse(&kod.serialize()).unwrap();
            assert!(parsed.is_kiss_of_death());
            assert_eq!(
                classify_reply(&parsed, req.transmit_ts),
                Ok(ReplyClass::KissODeath(code)),
                "kiss code {:?} lost in transit",
                std::str::from_utf8(&code)
            );
            // The naive profile still refuses to use it as time.
            assert!(check_reply(&parsed, req.transmit_ts).is_err());
        }
    }

    /// A forged KoD whose origin does not echo our request must not be
    /// honored — classification fails before the kiss code is exposed.
    #[test]
    fn kod_with_wrong_origin_not_classified() {
        let (_, mut rep) = good_pair();
        rep.stratum = 0;
        rep.reference_id = RefId::KISS_DENY;
        let err = classify_reply(&rep, ts(12345)).unwrap_err();
        assert!(matches!(err, WireError::SanityCheck(m) if m.contains("origin")));
    }

    /// Stratum 0 with a refid that is not printable ASCII is garbage,
    /// not a kiss code.
    #[test]
    fn stratum_zero_without_ascii_code_rejected() {
        let (req, mut rep) = good_pair();
        rep.stratum = 0;
        rep.reference_id = RefId::ipv4(1, 2, 3, 4);
        assert!(classify_reply(&rep, req.transmit_ts).is_err());
    }

    #[test]
    fn unsynchronized_server_rejected() {
        let (req, mut rep) = good_pair();
        rep.leap = LeapIndicator::Unknown;
        assert!(check_reply(&rep, req.transmit_ts).is_err());
    }

    #[test]
    fn zero_transmit_rejected() {
        let (req, mut rep) = good_pair();
        rep.transmit_ts = NtpTimestamp::ZERO;
        assert!(check_reply(&rep, req.transmit_ts).is_err());
    }

    #[test]
    fn client_mode_reply_rejected() {
        let (req, mut rep) = good_pair();
        rep.mode = Mode::Client;
        assert!(check_reply(&rep, req.transmit_ts).is_err());
    }

    #[test]
    fn stratum_16_rejected() {
        let (req, mut rep) = good_pair();
        rep.stratum = 16;
        assert!(check_reply(&rep, req.transmit_ts).is_err());
    }

    #[test]
    fn reply_echoes_origin() {
        let (req, rep) = good_pair();
        assert_eq!(rep.origin_ts, req.transmit_ts);
        assert_eq!(rep.version, req.version);
    }

    #[test]
    fn write_server_reply_into_matches_builder_path() {
        let req = client_request(ts(500));
        let req_bytes = req.serialize();
        let view = PacketView::new(&req_bytes).unwrap();
        let mut fast = [0u8; PACKET_LEN];
        write_server_reply_into(
            &view,
            ts(501),
            ts(502),
            2,
            RefId::ipv4(9, 8, 7, 6),
            ts(490),
            &mut fast,
        );
        let slow =
            server_reply(&req, ts(501), ts(502), 2, RefId::ipv4(9, 8, 7, 6), ts(490)).serialize();
        assert_eq!(fast.to_vec(), slow);
    }

    #[test]
    fn write_kod_into_matches_builder_path() {
        // The reference layout SimServer has always emitted: default
        // packet + Server mode, stratum 0, kiss refid, origin echo, t3.
        let req = client_request(ts(700));
        let req_bytes = req.serialize();
        let view = PacketView::new(&req_bytes).unwrap();
        let mut fast = [0xFFu8; PACKET_LEN]; // prove the fill(0) matters
        write_kod_into(&view, RefId::KISS_RATE, ts(701), &mut fast);
        let slow = NtpPacket {
            mode: Mode::Server,
            stratum: 0,
            reference_id: RefId::KISS_RATE,
            origin_ts: req.transmit_ts,
            transmit_ts: ts(701),
            ..Default::default()
        }
        .serialize();
        assert_eq!(fast.to_vec(), slow);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::refid::RefId;
    use devtools::prop::{self, Gen};
    use devtools::{prop_assert_eq, props};

    /// An arbitrary *valid* request header as raw parts: first octet with
    /// version 1..=4 and mode 1..=7, plus poll and transmit-ts entropy
    /// (the only request fields a reply echoes).
    fn arb_request() -> impl Gen<Value = (i64, i64, i64, u64, u64)> {
        (
            prop::ints_incl(1, 4), // version
            prop::ints_incl(1, 7), // mode bits
            prop::ints_incl(-128, 127), // poll
            prop::any_u64(),       // transmit ts bits
            prop::any_u64(),       // t2 bits (t3 derived)
        )
    }

    fn request_packet(vn: i64, mode: i64, poll: i64, tx: u64) -> NtpPacket {
        NtpPacket {
            version: crate::packet::Version(vn as u8),
            mode: crate::packet::Mode::from_bits(mode as u8).unwrap(),
            poll: poll as i8,
            transmit_ts: NtpTimestamp::from_bits(tx),
            ..Default::default()
        }
    }

    props! {
        /// The zero-copy reply writer is byte-identical to building a
        /// packet with `server_reply` and serializing it, for any valid
        /// request header and timestamps.
        fn fast_reply_matches_slow(parts in arb_request()) {
            let (vn, mode, poll, tx, t2_bits) = parts;
            let req = request_packet(vn, mode, poll, tx);
            let req_bytes = req.serialize();
            let view = PacketView::new(&req_bytes).unwrap();
            let t2 = NtpTimestamp::from_bits(t2_bits);
            let t3 = NtpTimestamp::from_bits(t2_bits.wrapping_add(1 << 20));
            let refid = RefId::ipv4(172, 16, 0, 1);
            let reference_ts = NtpTimestamp::from_bits(t2_bits.wrapping_sub(1 << 32));
            let mut fast = [0u8; PACKET_LEN];
            write_server_reply_into(&view, t2, t3, 2, refid, reference_ts, &mut fast);
            let slow = server_reply(&req, t2, t3, 2, refid, reference_ts).serialize();
            prop_assert_eq!(fast.to_vec(), slow);
        }

        /// Same for the kiss-o'-death writer against the packet-builder
        /// layout the sim server emits.
        fn fast_kod_matches_slow(parts in arb_request()) {
            let (vn, mode, poll, tx, t3_bits) = parts;
            let req = request_packet(vn, mode, poll, tx);
            let req_bytes = req.serialize();
            let view = PacketView::new(&req_bytes).unwrap();
            let t3 = NtpTimestamp::from_bits(t3_bits);
            let mut fast = [0xAAu8; PACKET_LEN];
            write_kod_into(&view, RefId::KISS_RATE, t3, &mut fast);
            let slow = NtpPacket {
                mode: crate::packet::Mode::Server,
                stratum: 0,
                reference_id: RefId::KISS_RATE,
                origin_ts: req.transmit_ts,
                transmit_ts: t3,
                ..Default::default()
            }
            .serialize();
            prop_assert_eq!(fast.to_vec(), slow);
        }
    }
}
