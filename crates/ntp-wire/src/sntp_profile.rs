//! The RFC 4330 SNTP client profile.
//!
//! SNTP is not a distinct wire protocol — it is a *usage profile* of NTP:
//! a client request zeroes every header field except the first octet
//! (LI = 0, VN, Mode = 3) and, optionally, the transmit timestamp; the
//! client performs only a short list of sanity checks on the reply and
//! applies each offset sample directly, with none of NTP's filtering,
//! selection, or discipline machinery. This module provides the request
//! builder and the reply checks; the `sntp` crate builds the actual client
//! behaviour (including vendor quirks) on top.

use crate::error::WireError;
use crate::packet::{LeapIndicator, Mode, NtpPacket, Version};
use crate::timestamp::NtpTimestamp;

/// Build an SNTP client request per RFC 4330 §4: all fields zero except the
/// first octet and the transmit timestamp, which carries the client's send
/// time so the server can echo it back as the origin timestamp.
pub fn client_request(transmit: NtpTimestamp) -> NtpPacket {
    NtpPacket { version: Version::V4, mode: Mode::Client, transmit_ts: transmit, ..Default::default() }
}

/// Build a server reply to `request`, given the server's receive time `t2`,
/// transmit time `t3`, and server identity fields.
pub fn server_reply(
    request: &NtpPacket,
    t2: NtpTimestamp,
    t3: NtpTimestamp,
    stratum: u8,
    reference_id: crate::refid::RefId,
    reference_ts: NtpTimestamp,
) -> NtpPacket {
    NtpPacket {
        leap: LeapIndicator::NoWarning,
        version: request.version,
        mode: Mode::Server,
        stratum,
        poll: request.poll,
        precision: -20,
        root_delay: crate::timestamp::NtpShort::from_millis(1),
        root_dispersion: crate::timestamp::NtpShort::from_millis(1),
        reference_id,
        reference_ts,
        origin_ts: request.transmit_ts,
        receive_ts: t2,
        transmit_ts: t3,
    }
}

/// What a structurally valid reply turned out to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyClass {
    /// A normal time reply that passed every RFC 4330 §5 sanity check.
    Time,
    /// A kiss-o'-death packet (stratum 0): the server is refusing
    /// service, and the four refid bytes say why (`RATE`, `DENY`,
    /// `RSTR`, …). A well-behaved client must *honor* the code — back
    /// off on `RATE`, stop using the server on `DENY`/`RSTR` (RFC 5905
    /// §7.4) — which is impossible if the packet is discarded as merely
    /// "failed a sanity check". Hence this variant instead of an error.
    KissODeath([u8; 4]),
}

/// Classify a reply: run the RFC 4330 §5 sanity checks, but recognize
/// stratum-0 kiss-o'-death packets as a *first-class outcome* carrying
/// their kiss code rather than a generic rejection. `expected_origin` is
/// the transmit timestamp the client put in its request; it is enforced
/// for KoD packets too (an off-path attacker must not be able to forge a
/// `DENY` without seeing the request).
pub fn classify_reply(
    reply: &NtpPacket,
    expected_origin: NtpTimestamp,
) -> Result<ReplyClass, WireError> {
    if reply.mode != Mode::Server && reply.mode != Mode::Broadcast {
        return Err(WireError::SanityCheck("reply mode is not server/broadcast"));
    }
    if reply.origin_ts != expected_origin {
        return Err(WireError::SanityCheck("origin timestamp mismatch (bogus or replayed)"));
    }
    if reply.is_kiss_of_death() {
        let code = reply
            .reference_id
            .as_kiss_code()
            .ok_or(WireError::SanityCheck("stratum 0 with non-ASCII kiss code"))?;
        return Ok(ReplyClass::KissODeath(code));
    }
    if reply.stratum > 15 {
        return Err(WireError::SanityCheck("stratum out of range"));
    }
    if reply.transmit_ts.is_zero() {
        return Err(WireError::SanityCheck("zero transmit timestamp"));
    }
    if reply.leap == LeapIndicator::Unknown {
        return Err(WireError::SanityCheck("server clock unsynchronized"));
    }
    Ok(ReplyClass::Time)
}

/// The RFC 4330 §5 reply sanity checks a minimal client must run before
/// trusting a reply. `expected_origin` is the transmit timestamp the client
/// put in its request. Kiss-o'-death packets are rejected here (the naive
/// profile treats them as unusable); clients that honor kiss codes use
/// [`classify_reply`] instead.
pub fn check_reply(reply: &NtpPacket, expected_origin: NtpTimestamp) -> Result<(), WireError> {
    match classify_reply(reply, expected_origin)? {
        ReplyClass::Time => Ok(()),
        ReplyClass::KissODeath(_) => Err(WireError::SanityCheck("kiss-o'-death")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refid::RefId;

    fn ts(s: u32) -> NtpTimestamp {
        NtpTimestamp::from_parts(s, 0)
    }

    fn good_pair() -> (NtpPacket, NtpPacket) {
        let req = client_request(ts(100));
        let rep = server_reply(&req, ts(101), ts(101), 2, RefId::ipv4(1, 2, 3, 4), ts(90));
        (req, rep)
    }

    #[test]
    fn request_is_sntp_shaped() {
        let req = client_request(ts(42));
        assert!(req.is_sntp_client_shape());
        assert_eq!(req.transmit_ts, ts(42));
    }

    #[test]
    fn good_reply_passes() {
        let (req, rep) = good_pair();
        assert!(check_reply(&rep, req.transmit_ts).is_ok());
    }

    #[test]
    fn origin_mismatch_rejected() {
        let (_, rep) = good_pair();
        let err = check_reply(&rep, ts(999)).unwrap_err();
        assert!(matches!(err, WireError::SanityCheck(m) if m.contains("origin")));
    }

    #[test]
    fn kod_rejected() {
        let (req, mut rep) = good_pair();
        rep.stratum = 0;
        rep.reference_id = RefId::KISS_RATE;
        assert!(check_reply(&rep, req.transmit_ts).is_err());
    }

    #[test]
    fn classify_passes_good_reply_as_time() {
        let (req, rep) = good_pair();
        assert_eq!(classify_reply(&rep, req.transmit_ts), Ok(ReplyClass::Time));
    }

    /// The standard kiss codes survive a full serialize → parse →
    /// classify round trip with their four-byte code intact.
    #[test]
    fn kiss_codes_round_trip_through_the_wire() {
        for (refid, code) in [
            (RefId::KISS_RATE, *b"RATE"),
            (RefId::KISS_DENY, *b"DENY"),
            (RefId::KISS_RSTR, *b"RSTR"),
        ] {
            let req = client_request(ts(77));
            let kod = NtpPacket {
                mode: Mode::Server,
                stratum: 0,
                reference_id: refid,
                origin_ts: req.transmit_ts,
                transmit_ts: ts(78),
                ..Default::default()
            };
            let parsed = NtpPacket::parse(&kod.serialize()).unwrap();
            assert!(parsed.is_kiss_of_death());
            assert_eq!(
                classify_reply(&parsed, req.transmit_ts),
                Ok(ReplyClass::KissODeath(code)),
                "kiss code {:?} lost in transit",
                std::str::from_utf8(&code)
            );
            // The naive profile still refuses to use it as time.
            assert!(check_reply(&parsed, req.transmit_ts).is_err());
        }
    }

    /// A forged KoD whose origin does not echo our request must not be
    /// honored — classification fails before the kiss code is exposed.
    #[test]
    fn kod_with_wrong_origin_not_classified() {
        let (_, mut rep) = good_pair();
        rep.stratum = 0;
        rep.reference_id = RefId::KISS_DENY;
        let err = classify_reply(&rep, ts(12345)).unwrap_err();
        assert!(matches!(err, WireError::SanityCheck(m) if m.contains("origin")));
    }

    /// Stratum 0 with a refid that is not printable ASCII is garbage,
    /// not a kiss code.
    #[test]
    fn stratum_zero_without_ascii_code_rejected() {
        let (req, mut rep) = good_pair();
        rep.stratum = 0;
        rep.reference_id = RefId::ipv4(1, 2, 3, 4);
        assert!(classify_reply(&rep, req.transmit_ts).is_err());
    }

    #[test]
    fn unsynchronized_server_rejected() {
        let (req, mut rep) = good_pair();
        rep.leap = LeapIndicator::Unknown;
        assert!(check_reply(&rep, req.transmit_ts).is_err());
    }

    #[test]
    fn zero_transmit_rejected() {
        let (req, mut rep) = good_pair();
        rep.transmit_ts = NtpTimestamp::ZERO;
        assert!(check_reply(&rep, req.transmit_ts).is_err());
    }

    #[test]
    fn client_mode_reply_rejected() {
        let (req, mut rep) = good_pair();
        rep.mode = Mode::Client;
        assert!(check_reply(&rep, req.transmit_ts).is_err());
    }

    #[test]
    fn stratum_16_rejected() {
        let (req, mut rep) = good_pair();
        rep.stratum = 16;
        assert!(check_reply(&rep, req.transmit_ts).is_err());
    }

    #[test]
    fn reply_echoes_origin() {
        let (req, rep) = good_pair();
        assert_eq!(rep.origin_ts, req.transmit_ts);
        assert_eq!(rep.version, req.version);
    }
}
