//! Error type for packet parsing and validation.

use std::fmt;

/// Errors produced while decoding or validating NTP packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the 48-byte NTP header.
    Truncated {
        /// Bytes actually available.
        have: usize,
        /// Bytes required.
        need: usize,
    },
    /// The version field is outside the range this crate accepts (1..=4).
    BadVersion(u8),
    /// The mode field carries a value that is not a defined association mode.
    BadMode(u8),
    /// A reply failed one of the RFC 4330 client-side sanity checks.
    SanityCheck(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { have, need } => {
                write!(f, "truncated NTP packet: have {have} bytes, need {need}")
            }
            WireError::BadVersion(v) => write!(f, "unsupported NTP version {v}"),
            WireError::BadMode(m) => write!(f, "undefined NTP mode {m}"),
            WireError::SanityCheck(why) => write!(f, "SNTP reply sanity check failed: {why}"),
        }
    }
}

impl std::error::Error for WireError {}
