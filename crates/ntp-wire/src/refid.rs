//! Reference identifiers (the 32-bit `refid` header field).
//!
//! For stratum-1 servers the refid is a four-character ASCII code naming the
//! reference source (`GPS`, `ATOM`, …); for stratum ≥ 2 it is the IPv4
//! address of the upstream server (or an MD5 hash fragment for IPv6, which
//! this reproduction does not need). A stratum-0 *kiss-o'-death* packet
//! carries an ASCII kiss code such as `RATE` or `DENY` instead.

use std::fmt;

/// A 32-bit reference identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RefId(pub u32);

impl RefId {
    /// The unset refid.
    pub const NONE: RefId = RefId(0);
    /// Stratum-1 code: GPS receiver.
    pub const GPS: RefId = RefId::ascii(*b"GPS\0");
    /// Stratum-1 code: atomic clock.
    pub const ATOM: RefId = RefId::ascii(*b"ATOM");
    /// Stratum-1 code: pulse-per-second source.
    pub const PPS: RefId = RefId::ascii(*b"PPS\0");
    /// Kiss code: "rate exceeded; reduce your polling".
    pub const KISS_RATE: RefId = RefId::ascii(*b"RATE");
    /// Kiss code: "access denied; stop sending".
    pub const KISS_DENY: RefId = RefId::ascii(*b"DENY");
    /// Kiss code: "access restricted".
    pub const KISS_RSTR: RefId = RefId::ascii(*b"RSTR");

    /// Build a refid from a four-byte ASCII code.
    pub const fn ascii(code: [u8; 4]) -> Self {
        RefId(u32::from_be_bytes(code))
    }

    /// Build a refid from an IPv4 address in `a.b.c.d` component form.
    pub const fn ipv4(a: u8, b: u8, c: u8, d: u8) -> Self {
        RefId(u32::from_be_bytes([a, b, c, d]))
    }

    /// The four raw bytes, network order.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Interpret as a kiss code if all bytes are printable ASCII (the
    /// interpretation RFC 5905 gives refids arriving with stratum 0).
    pub fn as_kiss_code(self) -> Option<[u8; 4]> {
        let b = self.octets();
        let [first, ..] = b;
        if b.iter().all(|&c| c == 0 || c.is_ascii_uppercase()) && first != 0 {
            Some(b)
        } else {
            None
        }
    }
}

impl fmt::Debug for RefId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.octets();
        if let Some(code) = self.as_kiss_code() {
            let s: String = code.iter().filter(|&&c| c != 0).map(|&c| c as char).collect();
            write!(f, "RefId({s})")
        } else {
            let [o0, o1, o2, o3] = b;
            write!(f, "RefId({o0}.{o1}.{o2}.{o3})")
        }
    }
}

impl fmt::Display for RefId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_codes_roundtrip() {
        assert_eq!(RefId::GPS.octets(), *b"GPS\0");
        assert_eq!(RefId::KISS_RATE.as_kiss_code(), Some(*b"RATE"));
    }

    #[test]
    fn ipv4_is_not_a_kiss_code() {
        let r = RefId::ipv4(10, 0, 0, 1);
        assert_eq!(r.as_kiss_code(), None);
        assert_eq!(format!("{r}"), "RefId(10.0.0.1)");
    }

    #[test]
    fn none_is_zero() {
        assert_eq!(RefId::NONE.0, 0);
        assert_eq!(RefId::NONE.as_kiss_code(), None);
    }
}
