//! The four-timestamp clock algebra (RFC 5905 §8).
//!
//! One client/server exchange yields four timestamps:
//!
//! * `t1` — request departure, **client** clock
//! * `t2` — request arrival, **server** clock
//! * `t3` — reply departure, **server** clock
//! * `t4` — reply arrival, **client** clock
//!
//! from which the client derives
//!
//! ```text
//! offset θ = ((t2 − t1) + (t3 − t4)) / 2
//! delay  δ = (t4 − t1) − (t3 − t2)
//! ```
//!
//! θ is exact only when the forward and return one-way delays are equal;
//! an asymmetry of `a = owd_fwd − owd_back` corrupts θ by `a/2`. That error
//! term is the entire mechanism behind the paper's Figures 4–10: wireless
//! contention inflates one direction of the path far more than the other,
//! so SNTP (which trusts each θ sample as-is) reports offsets hundreds of
//! milliseconds wide of the truth.

use crate::packet::NtpPacket;
use crate::timestamp::{NtpDuration, NtpTimestamp};

/// The four timestamps of one completed exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exchange {
    /// Request departure (client clock).
    pub t1: NtpTimestamp,
    /// Request arrival (server clock).
    pub t2: NtpTimestamp,
    /// Reply departure (server clock).
    pub t3: NtpTimestamp,
    /// Reply arrival (client clock).
    pub t4: NtpTimestamp,
}

impl Exchange {
    /// Assemble an exchange from a server reply plus the locally captured
    /// arrival time `t4`. The reply's `origin` field is `t1` (echoed),
    /// `receive` is `t2`, `transmit` is `t3`.
    pub fn from_reply(reply: &NtpPacket, t4: NtpTimestamp) -> Self {
        Exchange { t1: reply.origin_ts, t2: reply.receive_ts, t3: reply.transmit_ts, t4 }
    }

    /// Clock offset θ of the server relative to the client: positive means
    /// the server's clock is ahead of ours.
    pub fn offset(&self) -> NtpDuration {
        let a = self.t2.wrapping_sub(self.t1);
        let b = self.t3.wrapping_sub(self.t4);
        a.half() + b.half()
    }

    /// Round-trip delay δ (time spent on the network, excluding server
    /// processing). Never meaningfully negative on real paths; tiny
    /// negative values can appear when clocks step mid-exchange.
    pub fn delay(&self) -> NtpDuration {
        self.t4.wrapping_sub(self.t1) - self.t3.wrapping_sub(self.t2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build an exchange from true-time quantities: client clock error
    /// `theta` (client = true + theta... we model server as truth), forward
    /// and return one-way delays, and server processing time. Returns the
    /// exchange as the client would observe it.
    fn synth(theta_ms: i64, fwd_ms: i64, back_ms: i64, proc_ms: i64) -> Exchange {
        let ms = |m: i64| NtpDuration::from_millis(m);
        let base = NtpTimestamp::from_parts(10_000, 0);
        // True departure time of request: base (on the true clock).
        // Client clock reads true + theta_client where theta_client = -theta
        // (so that "offset of server relative to client" = +theta).
        let t1 = base + ms(-theta_ms);
        let t2 = base + ms(fwd_ms); // server clock == true time
        let t3 = base + ms(fwd_ms + proc_ms);
        let t4 = base + ms(fwd_ms + proc_ms + back_ms) + ms(-theta_ms);
        Exchange { t1, t2, t3, t4 }
    }

    #[test]
    fn symmetric_path_recovers_exact_offset() {
        let e = synth(250, 40, 40, 1);
        assert!((e.offset().as_millis_f64() - 250.0).abs() < 0.01);
        assert!((e.delay().as_millis_f64() - 80.0).abs() < 0.01);
    }

    #[test]
    fn asymmetry_biases_offset_by_half() {
        // 100 ms extra on the forward path -> offset reads +50 ms high.
        let e = synth(0, 140, 40, 0);
        assert!((e.offset().as_millis_f64() - 50.0).abs() < 0.01);
        assert!((e.delay().as_millis_f64() - 180.0).abs() < 0.01);
    }

    #[test]
    fn negative_offset() {
        let e = synth(-75, 10, 10, 0);
        assert!((e.offset().as_millis_f64() + 75.0).abs() < 0.01);
    }

    #[test]
    fn delay_excludes_server_processing() {
        let e = synth(0, 30, 30, 500);
        assert!((e.delay().as_millis_f64() - 60.0).abs() < 0.01);
    }

    #[test]
    fn from_reply_maps_fields() {
        use crate::packet::NtpPacket;
        let reply = NtpPacket {
            origin_ts: NtpTimestamp::from_parts(1, 0),
            receive_ts: NtpTimestamp::from_parts(2, 0),
            transmit_ts: NtpTimestamp::from_parts(3, 0),
            ..Default::default()
        };
        let t4 = NtpTimestamp::from_parts(4, 0);
        let e = Exchange::from_reply(&reply, t4);
        assert_eq!(e.t1.seconds(), 1);
        assert_eq!(e.t2.seconds(), 2);
        assert_eq!(e.t3.seconds(), 3);
        assert_eq!(e.t4.seconds(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use devtools::prop;
    use devtools::{prop_assert, props};

    props! {
        /// For any true offset and any symmetric delay, the formula recovers
        /// the offset to fixed-point precision.
        fn symmetric_exact(theta in prop::ints(-500_000..500_000), owd in prop::ints(0..2_000), proc_t in prop::ints(0..100)) {
            let ms = NtpDuration::from_millis;
            let base = NtpTimestamp::from_parts(50_000, 0);
            let t1 = base + ms(-theta);
            let t2 = base + ms(owd);
            let t3 = base + ms(owd + proc_t);
            let t4 = base + ms(owd + proc_t + owd) + ms(-theta);
            let e = Exchange { t1, t2, t3, t4 };
            let err = (e.offset() - ms(theta)).abs();
            prop_assert!(err < NtpDuration::from_micros(2), "err={err:?}");
        }

        /// Offset error equals half the path asymmetry, always.
        fn asymmetry_error_is_half(fwd in prop::ints(0..3_000), back in prop::ints(0..3_000)) {
            let ms = NtpDuration::from_millis;
            let base = NtpTimestamp::from_parts(50_000, 0);
            let t1 = base;
            let t2 = base + ms(fwd);
            let t3 = t2;
            let t4 = base + ms(fwd + back);
            let e = Exchange { t1, t2, t3, t4 };
            let expected = (fwd - back) as f64 / 2.0;
            prop_assert!((e.offset().as_millis_f64() - expected).abs() < 0.01);
            prop_assert!((e.delay().as_millis_f64() - (fwd + back) as f64).abs() < 0.01);
        }
    }
}
