//! # ntp-wire
//!
//! Wire-format layer for the MNTP reproduction: NTP/SNTP timestamps, packet
//! encoding/decoding, and the four-timestamp offset/delay arithmetic that
//! every synchronization client in this workspace builds on.
//!
//! The format follows [RFC 5905] (NTPv4) with the [RFC 4330] (SNTP)
//! simplifications implemented as a *profile* over the same packet type:
//! SNTP clients zero every field except the first octet (LI/VN/Mode), which
//! is exactly how the paper (§2) distinguishes SNTP from NTP traffic in
//! server logs — and how [`crate::sntp_profile`] and the `loganalysis`
//! crate's protocol classifier distinguish them here.
//!
//! ## Modules
//!
//! * [`timestamp`] — 64-bit (`32.32`) and 32-bit (`16.16`) fixed-point time
//!   types plus a signed duration type, all with exact integer arithmetic.
//! * [`packet`] — [`packet::NtpPacket`] parse/serialize over `bytes`.
//! * [`refid`] — reference identifiers, including kiss-o'-death codes.
//! * [`math`] — [`math::Exchange`]: clock offset θ and round-trip delay δ
//!   from the (T1, T2, T3, T4) timestamps of one client/server exchange.
//! * [`sntp_profile`] — RFC 4330 client request construction and the reply
//!   sanity checks a minimal SNTP client must perform.
//! * [`view`] — [`view::PacketView`]: zero-copy borrowed parse for the
//!   batched server-core fast path.
//!
//! [RFC 5905]: https://www.rfc-editor.org/rfc/rfc5905
//! [RFC 4330]: https://www.rfc-editor.org/rfc/rfc4330

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod math;
pub mod packet;
pub mod refid;
pub mod sntp_profile;
pub mod timestamp;
pub mod view;

pub use error::WireError;
pub use math::Exchange;
pub use packet::{LeapIndicator, Mode, NtpPacket, Version, PACKET_LEN};
pub use refid::RefId;
pub use timestamp::{NtpDuration, NtpShort, NtpTimestamp};
pub use view::PacketView;
