//! The trace format shared by the logger and the emulator.
//!
//! One row per logging instant (every 5 s in the paper's configuration):
//! the wireless hints at that moment plus the offset each queried
//! reference reported (`None` where the exchange failed). Traces
//! round-trip through a simple line-oriented text format so they can be
//! written to disk by the logger binary and reloaded by the tuner.

use std::fmt::Write as _;

use netsim::WirelessHints;

/// One logging instant.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRow {
    /// Seconds since trace start (local clock of the logging host).
    pub t_secs: f64,
    /// Wireless hints at this instant (`None` on hint-less media).
    pub hints: Option<WirelessHints>,
    /// Offset reported by each queried reference, ms; `None` = no reply.
    pub offsets_ms: Vec<Option<f64>>,
}

impl TraceRow {
    /// Offsets that actually arrived.
    pub fn responses(&self) -> Vec<f64> {
        self.offsets_ms.iter().flatten().copied().collect()
    }
}

/// A recorded trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Rows in time order.
    pub rows: Vec<TraceRow>,
    /// Logging interval, seconds.
    pub interval_secs: f64,
}

impl Trace {
    /// Total duration covered, seconds.
    pub fn duration_secs(&self) -> f64 {
        self.rows.last().map(|r| r.t_secs).unwrap_or(0.0)
    }

    /// Serialize to the line-oriented text format:
    /// `t<TAB>rssi<TAB>noise<TAB>o1,o2,o3` with `-` for missing values.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        writeln!(out, "# mntp-tuner trace v1 interval={}", self.interval_secs).unwrap();
        for r in &self.rows {
            let (rssi, noise) = match &r.hints {
                Some(h) => (format!("{:.2}", h.rssi_dbm), format!("{:.2}", h.noise_dbm)),
                None => ("-".into(), "-".into()),
            };
            let offsets: Vec<String> = r
                .offsets_ms
                .iter()
                .map(|o| o.map(|v| format!("{v:.4}")).unwrap_or_else(|| "-".into()))
                .collect();
            writeln!(out, "{:.3}\t{}\t{}\t{}", r.t_secs, rssi, noise, offsets.join(",")).unwrap();
        }
        out
    }

    /// Parse the text format. Returns `None` on malformed input.
    pub fn from_text(text: &str) -> Option<Trace> {
        let mut lines = text.lines();
        let header = lines.next()?;
        let interval_secs = header.split("interval=").nth(1)?.trim().parse().ok()?;
        let mut rows = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split('\t');
            let t_secs: f64 = parts.next()?.parse().ok()?;
            let rssi = parts.next()?;
            let noise = parts.next()?;
            let hints = if rssi == "-" || noise == "-" {
                None
            } else {
                Some(WirelessHints {
                    rssi_dbm: rssi.parse().ok()?,
                    noise_dbm: noise.parse().ok()?,
                })
            };
            let offsets_ms = parts
                .next()?
                .split(',')
                .map(|o| if o == "-" { Ok(None) } else { o.parse().map(Some) })
                .collect::<Result<Vec<_>, _>>()
                .ok()?;
            rows.push(TraceRow { t_secs, hints, offsets_ms });
        }
        Some(Trace { rows, interval_secs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            interval_secs: 5.0,
            rows: vec![
                TraceRow {
                    t_secs: 0.0,
                    hints: Some(WirelessHints { rssi_dbm: -65.5, noise_dbm: -90.25 }),
                    offsets_ms: vec![Some(1.5), None, Some(-2.25)],
                },
                TraceRow { t_secs: 5.0, hints: None, offsets_ms: vec![None, None, None] },
            ],
        }
    }

    #[test]
    fn text_roundtrip() {
        let t = sample_trace();
        let parsed = Trace::from_text(&t.to_text()).unwrap();
        assert_eq!(parsed.interval_secs, 5.0);
        assert_eq!(parsed.rows.len(), 2);
        assert_eq!(parsed.rows[0].offsets_ms[0], Some(1.5));
        assert_eq!(parsed.rows[0].offsets_ms[1], None);
        assert!((parsed.rows[0].hints.unwrap().rssi_dbm + 65.5).abs() < 1e-9);
        assert_eq!(parsed.rows[1].hints, None);
    }

    #[test]
    fn responses_filters_nones() {
        let t = sample_trace();
        assert_eq!(t.rows[0].responses(), vec![1.5, -2.25]);
        assert!(t.rows[1].responses().is_empty());
    }

    #[test]
    fn duration() {
        assert_eq!(sample_trace().duration_secs(), 5.0);
        assert_eq!(Trace::default().duration_secs(), 0.0);
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(Trace::from_text("").is_none());
        assert!(Trace::from_text("garbage").is_none());
        assert!(Trace::from_text("# mntp-tuner trace v1 interval=5\nnot\ttsv").is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use devtools::prop::{self, Gen};
    use devtools::{prop_assert_eq, props};

    type RowParts = (f64, Option<(f64, f64)>, Vec<Option<f64>>);

    /// Row ingredients as shrinkable primitives; quantization to the text
    /// format's printed precision happens in [`row_from`].
    fn arb_row_parts() -> impl Gen<Value = RowParts> {
        (
            prop::floats(0.0..100_000.0),
            prop::options((prop::floats(-100.0..0.0), prop::floats(-100.0..0.0))),
            prop::vecs(prop::options(prop::floats(-2_000.0..2_000.0)), 1..5),
        )
    }

    fn row_from((t, hints, offsets): RowParts) -> TraceRow {
        TraceRow {
            t_secs: (t * 1000.0).round() / 1000.0,
            hints: hints.map(|(r, n)| netsim::WirelessHints {
                rssi_dbm: (r * 100.0).round() / 100.0,
                noise_dbm: (n * 100.0).round() / 100.0,
            }),
            offsets_ms: offsets
                .into_iter()
                .map(|o| o.map(|v| (v * 10_000.0).round() / 10_000.0))
                .collect(),
        }
    }

    props! {
        /// Any trace round-trips through the text format exactly (values
        /// quantized to the format's printed precision).
        fn text_roundtrip_any_trace(raw_rows in prop::vecs(arb_row_parts(), 0..20)) {
            let rows: Vec<TraceRow> = raw_rows.into_iter().map(row_from).collect();
            let trace = Trace { rows, interval_secs: 5.0 };
            let parsed = Trace::from_text(&trace.to_text()).unwrap();
            prop_assert_eq!(parsed, trace);
        }
    }
}
