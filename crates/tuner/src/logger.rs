//! The tuner's logging component.
//!
//! "The logging component runs on the TN of our testbed and emits SNTP
//! requests to multiple reference clocks every 5 seconds and records the
//! responses in the form of traces. It also records the corresponding
//! wireless hints from the channel every time an SNTP request is
//! emitted." (§5.3)

use clocksim::time::{SimDuration, SimTime};
use clocksim::SimClock;
use netsim::Testbed;
use sntp::{perform_exchange, ServerPool};

use crate::trace::{Trace, TraceRow};

/// Record a trace: query `sources` distinct pool servers every
/// `interval_secs` for `duration_secs`, logging hints and per-source
/// offsets. The clock is read but never corrected (the trace captures
/// the free-running drift the emulator will have to estimate).
pub fn record_trace(
    testbed: &mut Testbed,
    pool: &mut ServerPool,
    clock: &mut SimClock,
    duration_secs: u64,
    interval_secs: f64,
    sources: usize,
) -> Trace {
    let mut trace = Trace { rows: Vec::new(), interval_secs };
    let n = (duration_secs as f64 / interval_secs).floor() as u64;
    for i in 0..=n {
        let t = SimTime::ZERO + SimDuration::from_secs_f64(i as f64 * interval_secs);
        let hints = testbed.hints(t);
        let ids = pool.pick_distinct(sources);
        let offsets_ms = ids
            .into_iter()
            .map(|id| {
                perform_exchange(testbed, pool.server_mut(id), clock, t)
                    .ok()
                    .map(|done| done.sample.offset.as_millis_f64())
            })
            .collect();
        trace.rows.push(TraceRow { t_secs: t.as_secs_f64(), hints, offsets_ms });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksim::{OscillatorConfig, SimRng};
    use netsim::testbed::TestbedConfig;
    use sntp::PoolConfig;

    fn setup(seed: u64) -> (Testbed, ServerPool, SimClock) {
        let tb = Testbed::wireless(TestbedConfig::default(), seed);
        let pool = ServerPool::new(PoolConfig::default(), seed + 1);
        let osc = OscillatorConfig::laptop().with_skew_ppm(20.0).build(SimRng::new(seed + 2));
        let clock = SimClock::new(osc, SimTime::ZERO);
        (tb, pool, clock)
    }

    #[test]
    fn trace_has_expected_shape() {
        let (mut tb, mut pool, mut clock) = setup(1);
        let trace = record_trace(&mut tb, &mut pool, &mut clock, 600, 5.0, 3);
        assert_eq!(trace.rows.len(), 121);
        assert!(trace.rows.iter().all(|r| r.offsets_ms.len() == 3));
        assert!(trace.rows.iter().all(|r| r.hints.is_some()), "wireless testbed has hints");
        // Most rows should carry at least one response.
        let with_any = trace.rows.iter().filter(|r| !r.responses().is_empty()).count();
        assert!(with_any > 60, "responses={with_any}");
    }

    #[test]
    fn trace_shows_the_drift() {
        let (mut tb, mut pool, mut clock) = setup(3);
        let trace = record_trace(&mut tb, &mut pool, &mut clock, 3600, 5.0, 3);
        // 20 ppm over an hour = −72 ms of offset trend (clock fast →
        // servers appear behind). Compare early vs late medians.
        let median_of = |rows: &[crate::trace::TraceRow]| {
            let mut v: Vec<f64> = rows.iter().flat_map(|r| r.responses()).collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let early = median_of(&trace.rows[..120]);
        let late = median_of(&trace.rows[trace.rows.len() - 120..]);
        // The drift (−72 ms over the hour) must dominate the channel's
        // bloat noise in the medians.
        assert!(late < early - 25.0, "early={early} late={late}");
    }

    #[test]
    fn roundtrips_through_text() {
        let (mut tb, mut pool, mut clock) = setup(5);
        let trace = record_trace(&mut tb, &mut pool, &mut clock, 120, 5.0, 3);
        let parsed = Trace::from_text(&trace.to_text()).unwrap();
        assert_eq!(parsed.rows.len(), trace.rows.len());
        for (a, b) in parsed.rows.iter().zip(&trace.rows) {
            assert_eq!(a.offsets_ms.iter().filter(|o| o.is_some()).count(),
                       b.offsets_ms.iter().filter(|o| o.is_some()).count());
        }
    }
}
