//! The tuner's search component: sweep the four MNTP parameters.
//!
//! "When provided with a range of values for the input parameters […]
//! the search component generates all possible values of the parameters
//! and invokes the emulator for each generated combination", then ranks
//! configurations by RMSE of the reported offsets against a perfectly
//! synchronized clock (§5.3). Combinations are independent, so the sweep
//! fans out over the [`devtools::par`] work-stealing pool: a slow
//! parameter combination (long warmup ⇒ many emulated exchanges) no
//! longer idles a whole chunk's worth of siblings, and the
//! order-preserving map plus a stable sort keeps the ranking
//! byte-identical to the serial sweep at any `MNTP_JOBS`.

use devtools::par::Pool;
use mntp::MntpConfig;

use crate::emulator::{emulate, EmulationResult};
use crate::trace::Trace;

/// Value grids for the four Algorithm 1 parameters, in **minutes**
/// (matching the paper's Table 2 units).
#[derive(Clone, Debug)]
pub struct ParamGrid {
    /// `warmupPeriod` candidates.
    pub warmup_period_min: Vec<f64>,
    /// `warmupWaitTime` candidates.
    pub warmup_wait_min: Vec<f64>,
    /// `regularWaitTime` candidates.
    pub regular_wait_min: Vec<f64>,
    /// `resetPeriod` candidates.
    pub reset_period_min: Vec<f64>,
}

impl ParamGrid {
    /// The grid spanning the paper's Table 2 configurations.
    pub fn paper_table2() -> Self {
        ParamGrid {
            warmup_period_min: vec![30.0, 40.0, 50.0, 70.0, 90.0, 240.0],
            warmup_wait_min: vec![0.084, 0.25],
            regular_wait_min: vec![15.0, 30.0],
            reset_period_min: vec![240.0],
        }
    }

    /// All combinations, row-major.
    pub fn combinations(&self) -> Vec<(f64, f64, f64, f64)> {
        let mut out = Vec::new();
        for &wp in &self.warmup_period_min {
            for &ww in &self.warmup_wait_min {
                for &rw in &self.regular_wait_min {
                    for &rp in &self.reset_period_min {
                        out.push((wp, ww, rw, rp));
                    }
                }
            }
        }
        out
    }
}

/// One ranked configuration.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// `(warmupPeriod, warmupWaitTime, regularWaitTime, resetPeriod)`,
    /// minutes.
    pub params: (f64, f64, f64, f64),
    /// RMSE of corrected offsets vs a perfect clock, ms.
    pub rmse_ms: f64,
    /// Requests the configuration emitted over the trace.
    pub requests: u64,
    /// Full emulation output.
    pub result: EmulationResult,
}

/// Run the grid search over `trace`, ranked best (lowest RMSE) first.
/// `base` supplies every non-swept configuration field. Fans out over a
/// pool sized from `MNTP_JOBS` / the machine; see [`grid_search_on`].
pub fn grid_search(base: &MntpConfig, grid: &ParamGrid, trace: &Trace) -> Vec<SearchResult> {
    grid_search_on(&Pool::from_env(), base, grid, trace)
}

/// [`grid_search`] over an explicit pool. The combination→result map
/// preserves grid order and the rank sort is stable, so the returned
/// ranking is byte-identical for every worker count.
pub fn grid_search_on(
    pool: &Pool,
    base: &MntpConfig,
    grid: &ParamGrid,
    trace: &Trace,
) -> Vec<SearchResult> {
    let mut results = pool.map(grid.combinations(), |(wp, ww, rw, rp)| {
        let cfg = MntpConfig {
            warmup_period_secs: wp * 60.0,
            warmup_wait_secs: ww * 60.0,
            regular_wait_secs: rw * 60.0,
            reset_period_secs: rp * 60.0,
            ..base.clone()
        };
        let result = emulate(&cfg, trace);
        SearchResult {
            params: (wp, ww, rw, rp),
            rmse_ms: result.rmse_ms(),
            requests: result.requests,
            result,
        }
    });
    results.sort_by(|a, b| a.rmse_ms.partial_cmp(&b.rmse_ms).expect("no NaN rmse"));
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRow;
    use netsim::WirelessHints;

    fn trace() -> Trace {
        let mut rows = Vec::new();
        let mut t = 0.0;
        let mut i = 0usize;
        while t <= 4.0 * 3600.0 {
            let o = -0.04 * t + [(0.6), (-0.5), (0.3), (-0.2)][i % 4];
            let spike = if i % 13 == 12 { 300.0 } else { 0.0 };
            rows.push(TraceRow {
                t_secs: t,
                hints: Some(WirelessHints { rssi_dbm: -62.0, noise_dbm: -91.0 }),
                offsets_ms: vec![Some(o + spike), Some(o + 0.2), Some(o - 0.2)],
            });
            t += 5.0;
            i += 1;
        }
        Trace { rows, interval_secs: 5.0 }
    }

    #[test]
    fn grid_combinations_cartesian() {
        let g = ParamGrid {
            warmup_period_min: vec![10.0, 20.0],
            warmup_wait_min: vec![0.25],
            regular_wait_min: vec![5.0, 15.0],
            reset_period_min: vec![240.0],
        };
        assert_eq!(g.combinations().len(), 4);
    }

    #[test]
    fn search_ranks_by_rmse_and_is_complete() {
        let g = ParamGrid {
            warmup_period_min: vec![10.0, 60.0],
            warmup_wait_min: vec![0.25, 1.0],
            regular_wait_min: vec![15.0],
            reset_period_min: vec![240.0],
        };
        let results = grid_search(&MntpConfig::default(), &g, &trace());
        assert_eq!(results.len(), 4);
        for w in results.windows(2) {
            assert!(w[0].rmse_ms <= w[1].rmse_ms);
        }
    }

    #[test]
    fn more_requests_generally_better() {
        let g = ParamGrid {
            warmup_period_min: vec![10.0, 120.0],
            warmup_wait_min: vec![0.25],
            regular_wait_min: vec![15.0],
            reset_period_min: vec![240.0],
        };
        let results = grid_search(&MntpConfig::default(), &g, &trace());
        let short = results.iter().find(|r| r.params.0 == 10.0).unwrap();
        let long = results.iter().find(|r| r.params.0 == 120.0).unwrap();
        assert!(long.requests > short.requests);
        assert!(long.rmse_ms <= short.rmse_ms + 1.0, "long={} short={}", long.rmse_ms, short.rmse_ms);
    }

    #[test]
    fn ranking_identical_across_worker_counts() {
        // The determinism contract: serial (jobs=1) and heavily
        // oversubscribed (jobs=8) sweeps must produce the same ranking
        // with bitwise-equal statistics.
        let g = ParamGrid::paper_table2();
        let tr = trace();
        let fingerprint = |pool: &Pool| -> Vec<(u64, u64, (f64, f64, f64, f64))> {
            grid_search_on(pool, &MntpConfig::default(), &g, &tr)
                .into_iter()
                .map(|r| (r.rmse_ms.to_bits(), r.requests, r.params))
                .collect()
        };
        let serial = fingerprint(&Pool::with_jobs(1));
        assert_eq!(fingerprint(&Pool::with_jobs(8)), serial);
        assert_eq!(fingerprint(&Pool::with_jobs(3)), serial);
    }

    #[test]
    fn deterministic_despite_threads() {
        let g = ParamGrid::paper_table2();
        let tr = trace();
        let a: Vec<(u64, i64)> = grid_search(&MntpConfig::default(), &g, &tr)
            .into_iter()
            .map(|r| (r.requests, (r.rmse_ms * 1e6) as i64))
            .collect();
        let b: Vec<(u64, i64)> = grid_search(&MntpConfig::default(), &g, &tr)
            .into_iter()
            .map(|r| (r.requests, (r.rmse_ms * 1e6) as i64))
            .collect();
        assert_eq!(a, b);
    }
}
