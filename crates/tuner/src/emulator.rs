//! The tuner's emulation component: replay Algorithm 1 over a trace.
//!
//! The emulator drives the *real* [`mntp::Mntp`] engine with the recorded
//! hints and offsets, so whatever the engine would have done live — gate
//! deferrals, false-ticker rejection, trend filtering, resets — it does
//! here, deterministically and thousands of times faster. The output per
//! accepted sample is both the raw offset and the **corrected offset**
//! (raw minus the trend prediction at that instant): the corrected series
//! is what a drift-disciplined clock would exhibit, and its RMSE against
//! zero is the paper's tuning metric.

use mntp::{Mntp, MntpAction, MntpConfig, SampleVerdict};
use ntp_wire::{NtpDuration, NtpTimestamp};

use crate::trace::Trace;

/// The emulator's output for one configuration.
#[derive(Clone, Debug, Default)]
pub struct EmulationResult {
    /// Accepted samples: `(t_secs, raw offset ms, corrected offset ms)`.
    pub accepted: Vec<(f64, f64, f64)>,
    /// Rejected samples: `(t_secs, raw offset ms)`.
    pub rejected: Vec<(f64, f64)>,
    /// Query instants where the gate deferred.
    pub deferred: u64,
    /// Query instants that found no responses in the trace.
    pub failed: u64,
    /// Total requests MNTP would have emitted (one per query instant, as
    /// the paper's Table 2 counts them).
    pub requests: u64,
}

impl EmulationResult {
    /// RMSE of the corrected offsets against a perfect clock (0 ms) —
    /// the paper's tuning metric.
    pub fn rmse_ms(&self) -> f64 {
        if self.accepted.is_empty() {
            return f64::INFINITY;
        }
        let sum: f64 = self.accepted.iter().map(|(_, _, c)| c * c).sum();
        (sum / self.accepted.len() as f64).sqrt()
    }
}

fn local(t_secs: f64) -> NtpTimestamp {
    NtpTimestamp::from_parts(10_000, 0)
        .wrapping_add_duration(NtpDuration::from_seconds_f64(t_secs))
}

/// Replay `cfg` over `trace`.
pub fn emulate(cfg: &MntpConfig, trace: &Trace) -> EmulationResult {
    let mut engine = Mntp::new(cfg.clone());
    let mut out = EmulationResult::default();
    for row in &trace.rows {
        let now = local(row.t_secs);
        let deferred_before = engine.stats.deferred;
        match engine.on_tick(now, row.hints.as_ref()) {
            MntpAction::Wait => {
                if engine.stats.deferred > deferred_before {
                    out.deferred += 1;
                }
            }
            MntpAction::QueryMultiple(n) => {
                out.requests += 1;
                let offsets: Vec<f64> =
                    row.offsets_ms.iter().flatten().copied().take(n).collect();
                if offsets.is_empty() {
                    engine.on_query_failed(now);
                    out.failed += 1;
                } else {
                    // Corrected value uses the prediction available
                    // *before* this round updates the trend, applied to
                    // the engine's combined (post-false-ticker) offset.
                    let predicted = engine.predicted_offset_ms(now);
                    if let Some((combined, recorded)) = engine.on_warmup_round(now, &offsets) {
                        let corrected = predicted.map(|p| combined - p).unwrap_or(0.0);
                        if recorded {
                            out.accepted.push((row.t_secs, combined, corrected));
                        } else {
                            out.rejected.push((row.t_secs, combined));
                        }
                    }
                }
            }
            MntpAction::QuerySingle => {
                out.requests += 1;
                match row.offsets_ms.iter().flatten().next() {
                    None => {
                        engine.on_query_failed(now);
                        out.failed += 1;
                    }
                    Some(&raw) => {
                        let predicted = engine.predicted_offset_ms(now);
                        match engine.on_regular_sample(now, raw) {
                            SampleVerdict::Accepted { offset_ms } => {
                                let corrected =
                                    predicted.map(|p| offset_ms - p).unwrap_or(0.0);
                                out.accepted.push((row.t_secs, offset_ms, corrected));
                            }
                            SampleVerdict::Rejected { offset_ms } => {
                                out.rejected.push((row.t_secs, offset_ms));
                            }
                            // Traces replayed here never starve the engine
                            // long enough to reach holdover, but the arm
                            // must exist; treat the recovery sample like an
                            // acceptance with no trend prediction yet.
                            SampleVerdict::Recovered { offset_ms } => {
                                out.accepted.push((row.t_secs, offset_ms, 0.0));
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRow;
    use netsim::WirelessHints;

    fn good_hints() -> Option<WirelessHints> {
        Some(WirelessHints { rssi_dbm: -60.0, noise_dbm: -92.0 })
    }

    /// Synthetic trace: clean drift of `slope_ms_per_s`, occasional large
    /// spikes, 5 s cadence.
    fn synthetic_trace(duration_secs: u64, slope: f64, spike_every: usize) -> Trace {
        let mut rows = Vec::new();
        let mut i = 0usize;
        let mut t = 0.0;
        while t <= duration_secs as f64 {
            let base = slope * t;
            let jitter = [(0.8), (-0.6), (0.2), (-0.4), (0.5)][i % 5];
            let spike = if spike_every > 0 && i % spike_every == spike_every - 1 {
                250.0
            } else {
                0.0
            };
            let o = base + jitter + spike;
            rows.push(TraceRow {
                t_secs: t,
                hints: good_hints(),
                offsets_ms: vec![Some(o), Some(o + 0.3), Some(o - 0.3)],
            });
            i += 1;
            t += 5.0;
        }
        Trace { rows, interval_secs: 5.0 }
    }

    fn quick_cfg() -> MntpConfig {
        MntpConfig::from_tuner_minutes(5.0, 0.25, 2.0, 240.0)
    }

    #[test]
    fn clean_trace_yields_low_rmse() {
        let trace = synthetic_trace(3600, -0.02, 0); // −20 ppm drift, no spikes
        let r = emulate(&quick_cfg(), &trace);
        assert!(r.accepted.len() > 20, "accepted={}", r.accepted.len());
        assert!(r.rmse_ms() < 5.0, "rmse={}", r.rmse_ms());
    }

    #[test]
    fn spikes_are_rejected_after_warmup() {
        let trace = synthetic_trace(3600, -0.02, 7);
        let r = emulate(&quick_cfg(), &trace);
        assert!(!r.rejected.is_empty(), "some spikes must be rejected");
        // The rejected set is dominated by the injected 250 ms spikes
        // (a borderline ordinary sample may occasionally be rejected at
        // the band edge, which is fine).
        let spikes = r.rejected.iter().filter(|(t, o)| (o - (-0.02 * t)).abs() > 50.0).count();
        assert!(
            spikes * 2 >= r.rejected.len(),
            "spikes {spikes} of {} rejected",
            r.rejected.len()
        );
        assert!(spikes > 0);
    }

    #[test]
    fn bad_hints_defer_everything() {
        let mut trace = synthetic_trace(600, 0.0, 0);
        for r in &mut trace.rows {
            r.hints = Some(WirelessHints { rssi_dbm: -85.0, noise_dbm: -60.0 });
        }
        let r = emulate(&quick_cfg(), &trace);
        assert_eq!(r.requests, 0);
        assert!(r.deferred > 0);
        assert!(r.rmse_ms().is_infinite());
    }

    #[test]
    fn empty_rows_count_as_failures() {
        let mut trace = synthetic_trace(600, 0.0, 0);
        for r in &mut trace.rows {
            r.offsets_ms = vec![None, None, None];
        }
        let r = emulate(&quick_cfg(), &trace);
        assert!(r.failed > 0);
        assert!(r.accepted.is_empty());
    }

    #[test]
    fn longer_warmup_reduces_rmse() {
        // The Table 2 trend: more tuning requests → better RMSE.
        let trace = synthetic_trace(4 * 3600, -0.03, 11);
        let short = emulate(&MntpConfig::from_tuner_minutes(10.0, 0.25, 15.0, 240.0), &trace);
        let long = emulate(&MntpConfig::from_tuner_minutes(90.0, 0.084, 15.0, 240.0), &trace);
        assert!(long.requests > short.requests);
        assert!(
            long.rmse_ms() <= short.rmse_ms() + 0.5,
            "short={} long={}",
            short.rmse_ms(),
            long.rmse_ms()
        );
    }

    /// The §5.3 regression story: without per-sample drift re-estimation,
    /// a warmup whose samples are too few to pin the slope leaves the
    /// filter so conservative that the regular phase rejects everything.
    /// Re-estimation fixes it.
    #[test]
    fn reestimation_prevents_total_rejection() {
        let trace = synthetic_trace(4 * 3600, -0.05, 0);
        let base = MntpConfig::from_tuner_minutes(5.0, 1.0, 5.0, 240.0);
        let fixed = emulate(&MntpConfig { reestimate_drift: true, ..base.clone() }, &trace);
        let broken = emulate(&MntpConfig { reestimate_drift: false, ..base }, &trace);
        let fixed_reg_accept =
            fixed.accepted.iter().filter(|(t, _, _)| *t > 600.0).count();
        let broken_reg_accept =
            broken.accepted.iter().filter(|(t, _, _)| *t > 600.0).count();
        assert!(
            fixed_reg_accept > broken_reg_accept,
            "re-estimation should accept more: fixed={fixed_reg_accept} broken={broken_reg_accept}"
        );
    }

    #[test]
    fn deterministic() {
        let trace = synthetic_trace(1800, -0.02, 9);
        let a = emulate(&quick_cfg(), &trace);
        let b = emulate(&quick_cfg(), &trace);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.requests, b.requests);
    }
}
