//! `mntp-tuner` — the paper's §5.3 stand-alone tool as a CLI.
//!
//! ```text
//! mntp-tuner record <out.trace> [--hours N] [--seed S]     # logger
//! mntp-tuner emulate <trace> [--params WP,WW,RW,RP]        # emulator
//! mntp-tuner search <trace>                                # grid search
//! ```
//!
//! `record` runs the simulated testbed logger (on real hardware this
//! component would talk to the wireless adaptor and the pool; here it
//! talks to `netsim`). `emulate` and `search` consume any trace in the
//! text format — including ones recorded elsewhere. Parameters are in
//! minutes, matching the paper's Table 2.

use std::fs;
use std::process::ExitCode;

use clocksim::time::SimTime;
use clocksim::{OscillatorConfig, SimClock, SimRng};
use mntp::MntpConfig;
use netsim::testbed::TestbedConfig;
use netsim::Testbed;
use sntp::{PoolConfig, ServerPool};
use tuner::{emulate, grid_search, record_trace, ParamGrid, Trace};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  mntp-tuner record <out.trace> [--hours N] [--seed S]\n  \
         mntp-tuner emulate <trace> [--params WP,WW,RW,RP]\n  \
         mntp-tuner search <trace>"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    match cmd.as_str() {
        "record" => {
            let Some(path) = args.get(1) else { return usage() };
            let hours: f64 =
                flag_value(&args, "--hours").and_then(|v| v.parse().ok()).unwrap_or(4.0);
            let seed: u64 =
                flag_value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(2016);
            let mut tb = Testbed::wireless(TestbedConfig::default(), seed);
            let mut pool = ServerPool::new(PoolConfig::default(), seed + 1);
            let osc =
                OscillatorConfig::laptop().with_skew_ppm(30.0).build(SimRng::new(seed + 2));
            let mut clock = SimClock::new(osc, SimTime::ZERO);
            let trace = record_trace(
                &mut tb,
                &mut pool,
                &mut clock,
                (hours * 3600.0) as u64,
                5.0,
                3,
            );
            if let Err(e) = fs::write(path, trace.to_text()) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("recorded {} rows ({hours} h) to {path}", trace.rows.len());
            ExitCode::SUCCESS
        }
        "emulate" => {
            let Some(path) = args.get(1) else { return usage() };
            let Some(trace) = load_trace(path) else { return ExitCode::FAILURE };
            let cfg = match flag_value(&args, "--params") {
                None => MntpConfig::default(),
                Some(p) => {
                    let vals: Vec<f64> =
                        p.split(',').filter_map(|v| v.trim().parse().ok()).collect();
                    if vals.len() != 4 {
                        eprintln!("error: --params wants WP,WW,RW,RP (minutes)");
                        return ExitCode::from(2);
                    }
                    MntpConfig::from_tuner_minutes(vals[0], vals[1], vals[2], vals[3])
                }
            };
            let r = emulate(&cfg, &trace);
            println!(
                "accepted={} rejected={} deferred={} failed={} requests={}",
                r.accepted.len(),
                r.rejected.len(),
                r.deferred,
                r.failed,
                r.requests
            );
            println!("RMSE vs perfect clock: {:.2} ms", r.rmse_ms());
            for (t, raw, corrected) in r.accepted.iter().take(10) {
                println!("  t={t:>8.0}s raw={raw:>+9.2}ms corrected={corrected:>+8.2}ms");
            }
            if r.accepted.len() > 10 {
                println!("  … {} more", r.accepted.len() - 10);
            }
            ExitCode::SUCCESS
        }
        "search" => {
            let Some(path) = args.get(1) else { return usage() };
            let Some(trace) = load_trace(path) else { return ExitCode::FAILURE };
            let results =
                grid_search(&MntpConfig::default(), &ParamGrid::paper_table2(), &trace);
            println!(
                "{:>4} {:>8} {:>8} {:>8} {:>7} {:>9} {:>9}",
                "rank", "warmup", "w.wait", "r.wait", "reset", "RMSE(ms)", "requests"
            );
            for (i, r) in results.iter().enumerate() {
                println!(
                    "{:>4} {:>8.1} {:>8.3} {:>8.1} {:>7.0} {:>9.2} {:>9}",
                    i + 1,
                    r.params.0,
                    r.params.1,
                    r.params.2,
                    r.params.3,
                    r.rmse_ms,
                    r.requests
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn load_trace(path: &str) -> Option<Trace> {
    match fs::read_to_string(path) {
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            None
        }
        Ok(text) => match Trace::from_text(&text) {
            None => {
                eprintln!("error: {path} is not a valid mntp-tuner trace");
                None
            }
            Some(t) => Some(t),
        },
    }
}
