//! # tuner
//!
//! The **MNTP tuner** of the paper's §5.3 — "a stand-alone tool [whose
//! core is] the ability to perform trace-driven analysis on the recorded
//! clock offset values" — with its three components:
//!
//! * [`logger`] — runs on the (simulated) target node: emits SNTP
//!   requests to multiple reference clocks every 5 seconds, recording
//!   each round's per-source offsets *and* the wireless hints at that
//!   moment into a [`trace::Trace`].
//! * [`emulator`] — replays Algorithm 1 (the real [`mntp::Mntp`] engine,
//!   not a reimplementation) over a recorded trace and reports the
//!   offsets MNTP would have produced, plus the number of requests it
//!   would have emitted.
//! * [`search`] — sweeps the four MNTP parameters over caller-provided
//!   grids, runs the emulator for every combination (fanned out over the
//!   in-tree `devtools::par` work-stealing pool, honoring `MNTP_JOBS`),
//!   and ranks configurations by the RMSE
//!   of their corrected offsets against a perfectly synchronized clock —
//!   regenerating the paper's Table 2.
//!
//! The tuner is also the tool that uncovered the drift-underestimation
//! failure ("the MNTP filter was too conservative in accepting the
//! offsets resulting in all the offsets being rejected") that led to
//! per-sample drift re-estimation; the regression test for that story
//! lives in [`emulator`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emulator;
pub mod logger;
pub mod search;
pub mod trace;

pub use emulator::{emulate, EmulationResult};
pub use logger::record_trace;
pub use search::{grid_search, grid_search_on, ParamGrid, SearchResult};
pub use trace::{Trace, TraceRow};
