//! The clock discipline loop (RFC 5905 §11.3 and appendix A.5.5.1,
//! simplified).
//!
//! Consumes system offsets from the mitigation pipeline and produces
//! clock commands: a **step** when the offset exceeds the 128 ms step
//! threshold (after a sanity interval), otherwise a **phase slew** plus a
//! **frequency trim** from the hybrid PLL/FLL. The poll interval adapts
//! between `poll_min` and `poll_max`: good agreement (offset well inside
//! jitter) raises it, repeated surprises lower it.

use clocksim::ClockCommand;
use ntp_wire::NtpDuration;

/// Discipline tuning.
#[derive(Clone, Debug)]
pub struct DisciplineConfig {
    /// Step threshold, s (RFC: 0.128).
    pub step_threshold: f64,
    /// Panic threshold, s (RFC: 1000; offsets beyond this are refused).
    pub panic_threshold: f64,
    /// Minimum poll exponent (2^x s). RFC default 6 → 64 s.
    pub poll_min: i8,
    /// Maximum poll exponent. RFC default 10 → 1024 s.
    pub poll_max: i8,
    /// PLL time constant scale: loop gain is `1 / 2^(poll_tc)` relative
    /// to the poll interval.
    pub pll_gain: f64,
    /// FLL gain (fraction of measured frequency error corrected per
    /// update).
    pub fll_gain: f64,
    /// Minimum spacing between FLL-eligible updates, s. Below this the
    /// slope measurement is noise-dominated (the Allan-intercept rule,
    /// simplified), so only the PLL acts.
    pub fll_min_dt: f64,
    /// Per-update frequency trim clamp, ppm.
    pub trim_clamp_ppm: f64,
    /// Total accumulated trim clamp, ppm (kernel discipline limit).
    pub trim_total_clamp_ppm: f64,
}

impl Default for DisciplineConfig {
    fn default() -> Self {
        DisciplineConfig {
            step_threshold: 0.128,
            panic_threshold: 1000.0,
            poll_min: 6,
            poll_max: 10,
            pll_gain: 0.4,
            fll_gain: 0.25,
            fll_min_dt: 256.0,
            trim_clamp_ppm: 10.0,
            trim_total_clamp_ppm: 500.0,
        }
    }
}

/// Outcome of one discipline update.
#[derive(Clone, Debug, PartialEq)]
pub enum DisciplineVerdict {
    /// Offset beyond the panic threshold: refused (a real ntpd exits).
    Panic,
    /// Clock stepped.
    Stepped,
    /// Clock slewed/trimmed normally.
    Adjusted,
}

/// The discipline state machine.
#[derive(Clone, Debug)]
pub struct Discipline {
    cfg: DisciplineConfig,
    /// Current poll exponent.
    poll_exp: i8,
    /// Local time of the previous update, s.
    last_update: Option<f64>,
    /// Offset at the previous update, s.
    last_offset: f64,
    /// Consecutive in-band updates (drives poll raising).
    calm_streak: u32,
    /// Commands produced by the last update.
    pending: Vec<ClockCommand>,
    /// Local time of the last FLL engagement, and the offset then.
    fll_anchor: Option<(f64, f64)>,
    /// Accumulated frequency trim, ppm.
    total_trim_ppm: f64,
    /// Steps performed (diagnostics).
    pub steps: u64,
}

impl Discipline {
    /// New discipline at the minimum poll interval.
    pub fn new(cfg: DisciplineConfig) -> Self {
        let poll = cfg.poll_min;
        Discipline {
            cfg,
            poll_exp: poll,
            last_update: None,
            last_offset: 0.0,
            calm_streak: 0,
            pending: Vec::new(),
            fll_anchor: None,
            total_trim_ppm: 0.0,
            steps: 0,
        }
    }

    /// Current poll interval, seconds.
    pub fn poll_interval_secs(&self) -> f64 {
        2f64.powi(self.poll_exp as i32)
    }

    /// Current poll exponent.
    pub fn poll_exp(&self) -> i8 {
        self.poll_exp
    }

    /// Drain pending clock commands.
    pub fn take_commands(&mut self) -> Vec<ClockCommand> {
        std::mem::take(&mut self.pending)
    }

    /// Feed one system offset (seconds) with the system jitter estimate
    /// (seconds) at local time `now_secs`.
    pub fn update(&mut self, now_secs: f64, offset: f64, jitter: f64) -> DisciplineVerdict {
        if offset.abs() > self.cfg.panic_threshold {
            return DisciplineVerdict::Panic;
        }
        if offset.abs() > self.cfg.step_threshold {
            self.pending
                .push(ClockCommand::Step(NtpDuration::from_seconds_f64(offset)));
            self.steps += 1;
            self.poll_exp = self.cfg.poll_min;
            self.calm_streak = 0;
            self.last_update = Some(now_secs);
            self.last_offset = 0.0; // post-step residual ≈ 0
            self.fll_anchor = None; // pre-step offsets are meaningless now
            return DisciplineVerdict::Stepped;
        }

        // FLL term: the offset's slope is the frequency error of the
        // *server relative to us* — a clock running fast sees offsets
        // drift negative, so the slope itself is the correction to apply
        // (scaled by the gain). Engaged only across spans of at least
        // `fll_min_dt`: over shorter spans a fraction of a millisecond of
        // path noise masquerades as tens of ppm.
        match self.fll_anchor {
            None => self.fll_anchor = Some((now_secs, offset)),
            Some((t0, o0)) => {
                let dt = now_secs - t0;
                if dt >= self.cfg.fll_min_dt {
                    let offset_slope_ppm = (offset - o0) / dt * 1e6;
                    let trim = (self.cfg.fll_gain * offset_slope_ppm)
                        .clamp(-self.cfg.trim_clamp_ppm, self.cfg.trim_clamp_ppm);
                    let clamped_total = (self.total_trim_ppm + trim)
                        .clamp(-self.cfg.trim_total_clamp_ppm, self.cfg.trim_total_clamp_ppm);
                    let applied = clamped_total - self.total_trim_ppm;
                    if applied.abs() > 1e-4 {
                        self.total_trim_ppm += applied;
                        self.pending.push(ClockCommand::TrimFrequencyPpm(applied));
                    }
                    self.fll_anchor = Some((now_secs, offset));
                }
            }
        }
        // PLL term: correct a fraction of the phase error by slewing.
        let phase = self.cfg.pll_gain * offset;
        self.pending
            .push(ClockCommand::Slew(NtpDuration::from_seconds_f64(phase)));

        // Poll adaptation: compare offset to jitter.
        if offset.abs() < jitter.max(1e-3) * 2.0 {
            self.calm_streak += 1;
            if self.calm_streak >= 4 && self.poll_exp < self.cfg.poll_max {
                self.poll_exp += 1;
                self.calm_streak = 0;
            }
        } else {
            self.calm_streak = 0;
            if self.poll_exp > self.cfg.poll_min {
                self.poll_exp -= 1;
            }
        }

        self.last_update = Some(now_secs);
        self.last_offset = offset;
        DisciplineVerdict::Adjusted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_offset_steps() {
        let mut d = Discipline::new(DisciplineConfig::default());
        let v = d.update(0.0, 0.5, 0.001);
        assert_eq!(v, DisciplineVerdict::Stepped);
        let cmds = d.take_commands();
        assert!(matches!(cmds[0], ClockCommand::Step(_)));
        assert_eq!(d.steps, 1);
    }

    #[test]
    fn panic_offset_refused() {
        let mut d = Discipline::new(DisciplineConfig::default());
        assert_eq!(d.update(0.0, 2000.0, 0.001), DisciplineVerdict::Panic);
        assert!(d.take_commands().is_empty());
    }

    #[test]
    fn small_offset_slews() {
        let mut d = Discipline::new(DisciplineConfig::default());
        let v = d.update(0.0, 0.010, 0.002);
        assert_eq!(v, DisciplineVerdict::Adjusted);
        let cmds = d.take_commands();
        assert!(cmds.iter().any(|c| matches!(c, ClockCommand::Slew(_))));
    }

    #[test]
    fn fll_corrects_persistent_drift() {
        let mut d = Discipline::new(DisciplineConfig::default());
        // Offsets shrinking 1 ms per 64 s: the client clock runs fast by
        // 15.6 ppm. The FLL engages once fll_min_dt (256 s) has elapsed.
        let mut trims = Vec::new();
        for i in 0..8 {
            let t = i as f64 * 64.0;
            d.update(t, -0.001 * i as f64, 0.001);
            for c in d.take_commands() {
                if let ClockCommand::TrimFrequencyPpm(p) = c {
                    trims.push(p);
                }
            }
        }
        let total: f64 = trims.iter().sum();
        // Fast clock → negative trim; clamped at 10 ppm per engagement.
        assert!(total < -2.0 && total > -20.0, "total trim {total}, trims={trims:?}");
        assert!(trims.iter().all(|t| t.abs() <= 10.0 + 1e-9));
    }

    #[test]
    fn poll_rises_when_calm_falls_when_noisy() {
        let mut d = Discipline::new(DisciplineConfig::default());
        assert_eq!(d.poll_exp(), 6);
        // Four calm updates raise the poll once.
        for i in 0..4 {
            d.update(i as f64 * 64.0, 0.0001, 0.001);
            d.take_commands();
        }
        assert_eq!(d.poll_exp(), 7);
        // A surprise drops it back.
        d.update(300.0, 0.050, 0.001);
        assert_eq!(d.poll_exp(), 6);
    }

    #[test]
    fn poll_clamped_to_bounds() {
        let mut d = Discipline::new(DisciplineConfig::default());
        for i in 0..100 {
            d.update(i as f64 * 64.0, 0.0, 0.001);
            d.take_commands();
        }
        assert_eq!(d.poll_exp(), 10);
        for i in 0..100 {
            d.update(10_000.0 + i as f64, 0.05, 0.001);
            d.take_commands();
        }
        assert_eq!(d.poll_exp(), 6);
    }

    #[test]
    fn step_resets_poll() {
        let mut d = Discipline::new(DisciplineConfig::default());
        for i in 0..8 {
            d.update(i as f64 * 64.0, 0.0, 0.001);
            d.take_commands();
        }
        assert!(d.poll_exp() > 6);
        d.update(1000.0, 0.5, 0.001);
        assert_eq!(d.poll_exp(), 6);
    }
}
