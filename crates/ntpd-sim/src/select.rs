//! The selection (intersection) algorithm — Marzullo's algorithm as
//! adapted by RFC 5905 §11.2.1.
//!
//! Each peer asserts that the true offset lies in its *correctness
//! interval* `[θ − λ, θ + λ]`, where λ is the peer's root synchronization
//! distance. The algorithm finds the largest group of peers whose
//! intervals share a common point; everyone outside the clique is a
//! *falseticker*. This is the "time-tested filtering" that SNTP lacks and
//! whose absence the paper's §3.4 blames for mobile clients' poor
//! synchronization.

/// A peer's candidate offset and its error bound, both in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeerCandidate {
    /// Identifier the caller uses to map survivors back to peers.
    pub peer_id: usize,
    /// Filtered clock offset θ, s.
    pub offset: f64,
    /// Root synchronization distance λ (delay/2 + dispersion), s.
    pub root_distance: f64,
    /// Peer jitter (for the cluster stage), s.
    pub jitter: f64,
}

/// Run the intersection algorithm. Returns the ids of the surviving
/// (truechimer) peers. At least `2*f+1` of `n` peers must agree, where
/// `f` is the number tolerated as false — the standard majority-clique
/// rule; with fewer than half agreeing, the result is empty.
pub fn select_survivors(candidates: &[PeerCandidate]) -> Vec<usize> {
    let n = candidates.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![candidates[0].peer_id];
    }
    // Endpoint list: (value, type) with type −1 = lower, +1 = upper.
    let mut endpoints: Vec<(f64, i32)> = Vec::with_capacity(2 * n);
    for c in candidates {
        endpoints.push((c.offset - c.root_distance, -1));
        endpoints.push((c.offset + c.root_distance, 1));
    }
    endpoints.sort_by(|a, b| a.partial_cmp(b).expect("no NaN offsets"));

    // Find the maximum number of overlapping intervals and the region.
    // Standard sweep: count +1 at a lower endpoint, −1 at an upper.
    let mut depth = 0;
    let mut best_depth = 0;
    let mut region_lo = f64::NEG_INFINITY;
    let mut region_hi = f64::INFINITY;
    for i in 0..endpoints.len() {
        let (v, kind) = endpoints[i];
        if kind == -1 {
            depth += 1;
            if depth > best_depth {
                best_depth = depth;
                region_lo = v;
                // The matching upper bound is the next endpoint value at
                // which depth drops below best; recorded below.
                region_hi = endpoints
                    .get(i + 1)
                    .map(|e| e.0)
                    .unwrap_or(f64::INFINITY);
            }
        } else {
            depth -= 1;
        }
    }
    // Majority rule: the clique must contain more than half the peers
    // (tolerating f < n/2 falsetickers).
    if best_depth * 2 <= n {
        return Vec::new();
    }
    // Survivors: peers whose interval covers the intersection region.
    candidates
        .iter()
        .filter(|c| c.offset - c.root_distance <= region_hi && c.offset + c.root_distance >= region_lo)
        .map(|c| c.peer_id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: usize, offset: f64, dist: f64) -> PeerCandidate {
        PeerCandidate { peer_id: id, offset, root_distance: dist, jitter: 0.001 }
    }

    #[test]
    fn agreeing_peers_all_survive() {
        let cs = [cand(0, 0.010, 0.020), cand(1, 0.015, 0.020), cand(2, 0.005, 0.020)];
        let mut got = select_survivors(&cs);
        got.sort();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn falseticker_excluded() {
        let cs = [
            cand(0, 0.010, 0.015),
            cand(1, 0.012, 0.015),
            cand(2, 0.008, 0.015),
            cand(3, 0.500, 0.015), // half a second off
        ];
        let mut got = select_survivors(&cs);
        got.sort();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn no_majority_returns_empty() {
        // Two far-apart pairs: no clique has > n/2 members.
        let cs = [
            cand(0, 0.0, 0.01),
            cand(1, 0.0, 0.01),
            cand(2, 1.0, 0.01),
            cand(3, 1.0, 0.01),
        ];
        assert!(select_survivors(&cs).is_empty());
    }

    #[test]
    fn single_peer_survives_trivially() {
        assert_eq!(select_survivors(&[cand(7, 0.3, 0.01)]), vec![7]);
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(select_survivors(&[]).is_empty());
    }

    #[test]
    fn wide_interval_peer_can_join_clique() {
        // A peer with a big error bound still overlaps the tight clique.
        let cs = [
            cand(0, 0.000, 0.005),
            cand(1, 0.002, 0.005),
            cand(2, 0.100, 0.200), // wide but covering
        ];
        let mut got = select_survivors(&cs);
        got.sort();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn two_against_one() {
        let cs = [cand(0, 0.0, 0.01), cand(1, 0.001, 0.01), cand(2, 5.0, 0.01)];
        let mut got = select_survivors(&cs);
        got.sort();
        assert_eq!(got, vec![0, 1]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use devtools::prop;
    use devtools::{prop_assert, props};

    props! {
        /// With a majority of peers within ±b of zero and the rest far
        /// away, the far peers never survive.
        fn distant_minority_never_survives(
            good in prop::vecs(prop::floats(-0.005..0.005), 3..6),
            bad in prop::vecs(prop::floats(2.0..10.0), 1..2),
        ) {
            let mut cs = Vec::new();
            for (i, &o) in good.iter().enumerate() {
                cs.push(PeerCandidate { peer_id: i, offset: o, root_distance: 0.02, jitter: 0.0 });
            }
            let base = good.len();
            for (i, &o) in bad.iter().enumerate() {
                cs.push(PeerCandidate { peer_id: base + i, offset: o, root_distance: 0.02, jitter: 0.0 });
            }
            let got = select_survivors(&cs);
            for id in &got {
                prop_assert!(*id < base, "falseticker {id} survived");
            }
            prop_assert!(got.len() >= good.len(), "some truechimer was dropped: {got:?}");
        }
    }
}
