//! The selection (intersection) algorithm — Marzullo's algorithm as
//! adapted by RFC 5905 §11.2.1.
//!
//! The implementation lives in [`sntp::select`] so that every
//! multi-server client stack (this daemon, the fleet's hardened MNTP
//! discipline) shares one structurally panic-free copy; this module
//! re-exports it under the historical path.

pub use sntp::select::{select_survivors, PeerCandidate};
