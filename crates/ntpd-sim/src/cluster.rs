//! The cluster and combine algorithms (RFC 5905 §11.2.2–11.2.3).
//!
//! The implementation lives in [`sntp::select`] (one shared,
//! structurally panic-free copy below every client stack); this module
//! re-exports it under the historical path.

pub use sntp::select::{cluster, combine, MIN_SURVIVORS};
