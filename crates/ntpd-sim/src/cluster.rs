//! The cluster and combine algorithms (RFC 5905 §11.2.2–11.2.3).
//!
//! The intersection algorithm only guarantees survivors are *truechimers*;
//! the cluster algorithm then prunes statistical outliers: repeatedly
//! discard the survivor whose offset deviates most from the others (its
//! *selection jitter*) until that deviation no longer dominates the
//! peers' own jitter or a minimum survivor count is reached. The
//! remaining offsets are combined into the system offset, weighted by
//! inverse root distance.

use crate::select::PeerCandidate;

/// Minimum survivors the cluster algorithm will prune down to.
pub const MIN_SURVIVORS: usize = 3;

/// Selection jitter of candidate `i`: RMS of its offset against every
/// other candidate.
fn selection_jitter(cands: &[PeerCandidate], i: usize) -> f64 {
    if cands.len() < 2 {
        return 0.0;
    }
    let oi = cands[i].offset;
    let sum: f64 = cands
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != i)
        .map(|(_, c)| (c.offset - oi).powi(2))
        .sum();
    (sum / (cands.len() - 1) as f64).sqrt()
}

/// Run the cluster algorithm over the intersection survivors. Returns the
/// pruned candidate list (never empty if the input wasn't).
pub fn cluster(mut cands: Vec<PeerCandidate>) -> Vec<PeerCandidate> {
    while cands.len() > MIN_SURVIVORS {
        // Find max selection jitter and min peer jitter.
        let (worst_idx, worst_sel) = (0..cands.len())
            .map(|i| (i, selection_jitter(&cands, i)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN jitter"))
            .expect("non-empty");
        let min_peer_jitter = cands
            .iter()
            .map(|c| c.jitter)
            .fold(f64::INFINITY, f64::min);
        // Stop when discarding no longer helps: the worst selection
        // jitter is already below the best peer's own jitter.
        if worst_sel <= min_peer_jitter {
            break;
        }
        cands.remove(worst_idx);
    }
    cands
}

/// Combine survivor offsets into the system offset, weighting each by the
/// reciprocal of its root distance (RFC 5905 §11.2.3).
pub fn combine(cands: &[PeerCandidate]) -> Option<f64> {
    if cands.is_empty() {
        return None;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for c in cands {
        let w = 1.0 / c.root_distance.max(1e-9);
        num += w * c.offset;
        den += w;
    }
    Some(num / den)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: usize, offset: f64, dist: f64, jitter: f64) -> PeerCandidate {
        PeerCandidate { peer_id: id, offset, root_distance: dist, jitter }
    }

    #[test]
    fn outlier_pruned_first() {
        let cands = vec![
            cand(0, 0.001, 0.02, 0.0005),
            cand(1, 0.002, 0.02, 0.0005),
            cand(2, 0.0015, 0.02, 0.0005),
            cand(3, 0.040, 0.02, 0.0005), // inside its interval, but noisy
        ];
        let out = cluster(cands);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|c| c.peer_id != 3));
    }

    #[test]
    fn never_prunes_below_minimum() {
        let cands = vec![
            cand(0, 0.0, 0.02, 0.0001),
            cand(1, 0.5, 0.02, 0.0001),
            cand(2, -0.5, 0.02, 0.0001),
        ];
        assert_eq!(cluster(cands).len(), 3);
    }

    #[test]
    fn stops_when_jitter_dominated() {
        // All peers noisier than the spread between them: nothing pruned.
        let cands = vec![
            cand(0, 0.001, 0.02, 0.050),
            cand(1, 0.002, 0.02, 0.050),
            cand(2, 0.003, 0.02, 0.050),
            cand(3, 0.004, 0.02, 0.050),
        ];
        assert_eq!(cluster(cands).len(), 4);
    }

    #[test]
    fn combine_weights_by_distance() {
        // Peer 0 is 10x closer: its offset dominates.
        let cands = [cand(0, 0.010, 0.01, 0.0), cand(1, 0.110, 0.10, 0.0)];
        let c = combine(&cands).unwrap();
        let expected = (100.0 * 0.010 + 10.0 * 0.110) / 110.0;
        assert!((c - expected).abs() < 1e-12, "c={c}");
        assert!(c < 0.03, "closer peer should dominate: {c}");
    }

    #[test]
    fn combine_empty_is_none() {
        assert_eq!(combine(&[]), None);
    }

    #[test]
    fn combine_single() {
        assert_eq!(combine(&[cand(0, 0.25, 0.02, 0.0)]), Some(0.25));
    }
}
