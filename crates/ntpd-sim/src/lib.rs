//! # ntpd-sim
//!
//! A reference NTPv4 client implementation — the paper's stated future
//! work ("we plan to build a reference NTP implementation and perform an
//! exhaustive benchmarking of MNTP against SNTP and NTP", §7) — built on
//! the same sans-io substrate as the rest of the workspace.
//!
//! The implementation follows the RFC 5905 mitigation pipeline:
//!
//! * [`clock_filter`] — per-peer 8-stage shift register; the sample with
//!   the minimum delay among the last eight wins (delay and offset error
//!   are correlated, so minimum-delay picking strips most path noise).
//! * [`select`] — Marzullo-style intersection: find the largest clique of
//!   peers whose correctness intervals overlap; the rest are falsetickers.
//! * [`cluster`] — among survivors, iteratively discard the peer with the
//!   worst selection jitter, then [`cluster::combine`] the remainder into
//!   one offset weighted by root distance.
//! * [`discipline`] — the PLL/FLL hybrid loop: phase and frequency
//!   corrections, 128 ms step threshold, adaptive poll interval.
//! * [`huffpuff`] — the huff-n'-puff one-sided-congestion filter, NTP's
//!   transport-only answer to the asymmetry problem MNTP attacks with
//!   cross-layer hints.
//! * [`daemon`] — [`daemon::Ntpd`] glues the stages to a peer set with
//!   reachability tracking and poll scheduling.
//!
//! Simplifications relative to a production `ntpd` (documented here per
//! the repo's omissions policy): no symmetric/broadcast modes, no
//! interleaved mode, no autokey/NTS, and the poll-adaptation heuristic
//! is a simplified Allan-intercept rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock_filter;
pub mod cluster;
pub mod daemon;
pub mod discipline;
pub mod huffpuff;
pub mod select;

pub use clock_filter::{ClockFilter, FilterSample};
pub use huffpuff::HuffPuff;
pub use daemon::{run_ntpd, run_ntpd_faulted, Ntpd, NtpdConfig, NtpdDiscipline, NtpdRun};
pub use discipline::{Discipline, DisciplineConfig};
pub use select::{select_survivors, PeerCandidate};
