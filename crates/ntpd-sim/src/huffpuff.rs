//! The huff-n'-puff filter (RFC 5905 appendix; `ntpd`'s `tinker huffpuff`).
//!
//! NTP's own defense against exactly the pathology this paper studies:
//! **one-sided path congestion**. The filter remembers the minimum
//! round-trip delay seen over a sliding window (long enough to cover
//! congested episodes); when a sample's delay exceeds that baseline, the
//! excess is assumed to sit entirely on one leg, so the offset is
//! corrected by half the excess — toward zero, in the direction the
//! offset sign implies:
//!
//! ```text
//! θ' = θ − (δ − δ_min)/2   if θ > 0
//! θ' = θ + (δ − δ_min)/2   if θ < 0
//! ```
//!
//! Comparing SNTP + huff-n'-puff against MNTP (see
//! `experiments::extended`) answers a question the paper leaves open: how
//! much of MNTP's win could a *transport-only* heuristic recover, without
//! any cross-layer hints? (Answer: a good chunk of the bias, but none of
//! the loss avoidance — and it needs the RTT baseline to be clean.)

use std::collections::VecDeque;

/// Sliding-window minimum-delay tracker plus the offset correction.
///
/// ```
/// use ntpd_sim::HuffPuff;
///
/// let mut hp = HuffPuff::new(600.0);
/// // Establish an 80 ms RTT baseline.
/// for i in 0..5 { hp.correct(i as f64 * 5.0, 0.001, 0.080); }
/// // A sample whose return leg queued for 300 ms reads −150 ms;
/// // the filter removes the excess-delay bias.
/// let corrected = hp.correct(30.0, -0.150, 0.380);
/// assert!(corrected.abs() < 0.005);
/// ```
#[derive(Clone, Debug)]
pub struct HuffPuff {
    /// `(local time secs, delay secs)` samples inside the window.
    window: VecDeque<(f64, f64)>,
    /// Window span, seconds (ntpd default: 900 s × number of bins; we
    /// keep the raw samples instead of binning).
    span_secs: f64,
    /// Corrections applied (diagnostics).
    pub corrections: u64,
}

impl HuffPuff {
    /// New filter with the given window span. `ntpd`'s default is
    /// 7200 s; congested episodes must be shorter than the span or the
    /// baseline itself inflates.
    pub fn new(span_secs: f64) -> Self {
        HuffPuff { window: VecDeque::new(), span_secs, corrections: 0 }
    }

    /// The current minimum-delay baseline, if any samples are in window.
    pub fn min_delay(&self) -> Option<f64> {
        self.window.iter().map(|&(_, d)| d).reduce(f64::min)
    }

    /// Record a sample and return the corrected offset. Units: seconds.
    pub fn correct(&mut self, now_secs: f64, offset: f64, delay: f64) -> f64 {
        // Expire old samples.
        while let Some(&(t, _)) = self.window.front() {
            if now_secs - t > self.span_secs {
                self.window.pop_front();
            } else {
                break;
            }
        }
        self.window.push_back((now_secs, delay));
        let min = self.min_delay().expect("just pushed");
        let excess = delay - min;
        if excess <= 0.0 {
            return offset;
        }
        let half = excess / 2.0;
        self.corrections += 1;
        if offset > 0.0 {
            (offset - half).max(0.0).min(offset)
        } else {
            (offset + half).min(0.0).max(offset)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_samples_pass_through() {
        let mut hp = HuffPuff::new(600.0);
        // Identical delays: no excess, offsets untouched.
        for i in 0..10 {
            let out = hp.correct(i as f64 * 5.0, 0.012, 0.080);
            assert_eq!(out, 0.012);
        }
        assert_eq!(hp.corrections, 0);
    }

    #[test]
    fn one_sided_congestion_is_removed() {
        let mut hp = HuffPuff::new(600.0);
        // Establish an 80 ms RTT baseline.
        for i in 0..5 {
            hp.correct(i as f64 * 5.0, 0.001, 0.080);
        }
        // A congested sample: 300 ms extra on the return leg makes the
        // offset read −150 ms and the delay 380 ms.
        let corrected = hp.correct(30.0, -0.150, 0.380);
        assert!(
            corrected.abs() < 0.005,
            "excess-delay bias should be removed, got {corrected}"
        );
        assert_eq!(hp.corrections, 1);
    }

    #[test]
    fn correction_never_flips_sign_or_grows_offset() {
        let mut hp = HuffPuff::new(600.0);
        for i in 0..5 {
            hp.correct(i as f64 * 5.0, 0.0, 0.060);
        }
        // Excess larger than 2|offset|: clamped at zero, not flipped.
        let corrected = hp.correct(30.0, -0.020, 0.500);
        assert_eq!(corrected, 0.0);
        // Positive offsets shrink toward zero, never below.
        let corrected = hp.correct(35.0, 0.030, 0.200);
        assert!((0.0..=0.030).contains(&corrected));
    }

    #[test]
    fn window_expires_old_baseline() {
        let mut hp = HuffPuff::new(100.0);
        hp.correct(0.0, 0.0, 0.040); // old fast baseline
        // 200 s later the old sample is out of window; a slow regime
        // becomes its own baseline and is NOT treated as excess.
        let out = hp.correct(200.0, -0.050, 0.300);
        assert_eq!(out, -0.050, "new regime must not be corrected against stale baseline");
    }

    #[test]
    fn genuine_offset_with_clean_delay_is_kept() {
        let mut hp = HuffPuff::new(600.0);
        for i in 0..5 {
            hp.correct(i as f64 * 5.0, 0.250, 0.080);
        }
        // The clock really is 250 ms off; delay at baseline → no change.
        let out = hp.correct(30.0, 0.250, 0.080);
        assert_eq!(out, 0.250);
    }
}
