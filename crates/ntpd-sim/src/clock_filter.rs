//! The per-peer clock filter (RFC 5905 §10).
//!
//! Keeps the last eight `(offset, delay, dispersion)` samples in a shift
//! register. The working sample is the one with the **minimum delay** —
//! path queueing inflates delay and offset together, so the
//! least-delayed sample is also the least-biased. The filter also
//! exposes *jitter* (RMS offset difference to the working sample) and
//! ages stored dispersions at the standard `PHI = 15 ppm`.

/// Frequency tolerance used for dispersion aging, seconds per second.
pub const PHI: f64 = 15e-6;

/// Register depth (RFC 5905: 8).
pub const STAGES: usize = 8;

/// One filter sample. Units: seconds for all three time quantities;
/// `at_secs` is the local receive time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FilterSample {
    /// Measured clock offset θ, s.
    pub offset: f64,
    /// Measured round-trip delay δ, s.
    pub delay: f64,
    /// Initial dispersion ε, s.
    pub dispersion: f64,
    /// Local time the sample was taken, s.
    pub at_secs: f64,
}

/// The 8-stage clock filter.
#[derive(Clone, Debug, Default)]
pub struct ClockFilter {
    samples: Vec<FilterSample>,
    /// Time of the last sample that actually advanced the working value —
    /// used to enforce the "only newer samples are used" rule.
    last_used_at: Option<f64>,
}

impl ClockFilter {
    /// Empty filter.
    pub fn new() -> Self {
        ClockFilter::default()
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Insert a new sample, evicting the oldest beyond eight.
    pub fn push(&mut self, s: FilterSample) {
        self.samples.push(s);
        if self.samples.len() > STAGES {
            self.samples.remove(0);
        }
    }

    /// The working sample at local time `now_secs`: minimum delay among
    /// the register, with dispersions aged to `now_secs`. Returns `None`
    /// if the register is empty or the best sample is not newer than the
    /// last one handed out (the RFC's anti-replay of old data).
    pub fn working_sample(&mut self, now_secs: f64) -> Option<FilterSample> {
        let best = *self
            .samples
            .iter()
            .min_by(|a, b| a.delay.partial_cmp(&b.delay).unwrap_or(std::cmp::Ordering::Equal))?;
        if let Some(last) = self.last_used_at {
            if best.at_secs <= last {
                return None;
            }
        }
        self.last_used_at = Some(best.at_secs);
        let aged = FilterSample {
            dispersion: best.dispersion + PHI * (now_secs - best.at_secs).max(0.0),
            ..best
        };
        Some(aged)
    }

    /// Peek at the current minimum-delay sample without consuming it.
    pub fn peek_best(&self) -> Option<&FilterSample> {
        self.samples
            .iter()
            .min_by(|a, b| a.delay.partial_cmp(&b.delay).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Peer jitter: RMS difference of stored offsets against the best
    /// sample's offset.
    pub fn jitter(&self) -> f64 {
        let Some(best) = self.peek_best() else { return 0.0 };
        if self.samples.len() < 2 {
            return 0.0;
        }
        let sum: f64 = self
            .samples
            .iter()
            .map(|s| (s.offset - best.offset).powi(2))
            .sum();
        (sum / (self.samples.len() - 1) as f64).sqrt()
    }

    /// Filter dispersion: weighted sum of aged sample dispersions, newer
    /// samples weighted more (RFC 5905's `1/2^(i+1)` weights over the
    /// delay-sorted register).
    pub fn dispersion(&self, now_secs: f64) -> f64 {
        let mut sorted: Vec<&FilterSample> = self.samples.iter().collect();
        sorted.sort_by(|a, b| a.delay.partial_cmp(&b.delay).unwrap_or(std::cmp::Ordering::Equal));
        sorted
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let aged = s.dispersion + PHI * (now_secs - s.at_secs).max(0.0);
                aged / 2f64.powi(i as i32 + 1)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(offset: f64, delay: f64, at: f64) -> FilterSample {
        FilterSample { offset, delay, dispersion: 0.001, at_secs: at }
    }

    #[test]
    fn min_delay_sample_wins() {
        let mut f = ClockFilter::new();
        f.push(s(0.100, 0.200, 1.0)); // inflated by queueing
        f.push(s(0.010, 0.040, 2.0)); // clean
        f.push(s(0.150, 0.300, 3.0)); // worse
        let w = f.working_sample(4.0).unwrap();
        assert_eq!(w.offset, 0.010);
    }

    #[test]
    fn register_holds_eight() {
        let mut f = ClockFilter::new();
        for i in 0..20 {
            f.push(s(i as f64, 0.1 + i as f64 * 0.01, i as f64));
        }
        assert_eq!(f.len(), STAGES);
        // Oldest surviving sample is #12.
        assert_eq!(f.peek_best().unwrap().offset, 12.0);
    }

    #[test]
    fn stale_best_not_reused() {
        let mut f = ClockFilter::new();
        f.push(s(0.01, 0.040, 1.0));
        assert!(f.working_sample(2.0).is_some());
        // Same best sample: must not be handed out again.
        assert!(f.working_sample(3.0).is_none());
        // A newer, lower-delay sample unblocks it.
        f.push(s(0.012, 0.030, 4.0));
        assert!(f.working_sample(5.0).is_some());
    }

    #[test]
    fn dispersion_ages_at_phi() {
        let mut f = ClockFilter::new();
        f.push(FilterSample { offset: 0.0, delay: 0.05, dispersion: 0.001, at_secs: 0.0 });
        let w = f.working_sample(1000.0).unwrap();
        assert!((w.dispersion - (0.001 + PHI * 1000.0)).abs() < 1e-12);
    }

    #[test]
    fn jitter_zero_for_single_sample() {
        let mut f = ClockFilter::new();
        f.push(s(0.5, 0.1, 1.0));
        assert_eq!(f.jitter(), 0.0);
    }

    #[test]
    fn jitter_reflects_offset_spread() {
        let mut f = ClockFilter::new();
        f.push(s(0.000, 0.040, 1.0)); // best (min delay)
        f.push(s(0.030, 0.100, 2.0));
        f.push(s(-0.030, 0.100, 3.0));
        let j = f.jitter();
        assert!((j - (0.0018f64 / 2.0).sqrt()).abs() < 1e-9, "j={j}");
    }

    #[test]
    fn filter_dispersion_weights_decay() {
        let mut f = ClockFilter::new();
        for i in 0..8 {
            f.push(FilterSample {
                offset: 0.0,
                delay: 0.01 * (i + 1) as f64,
                dispersion: 0.008,
                at_secs: 0.0,
            });
        }
        let d = f.dispersion(0.0);
        // Σ 0.008 / 2^(i+1) for i in 0..8 ≈ 0.008 * (1 − 2⁻⁸)
        assert!((d - 0.008 * (1.0 - 1.0 / 256.0)).abs() < 1e-9, "d={d}");
    }

    #[test]
    fn empty_filter_yields_nothing() {
        let mut f = ClockFilter::new();
        assert!(f.working_sample(1.0).is_none());
        assert_eq!(f.jitter(), 0.0);
        assert_eq!(f.dispersion(0.0), 0.0);
    }
}
