//! The assembled NTP daemon and its simulation driver.
//!
//! [`Ntpd`] owns a set of peer associations (each a [`ClockFilter`] plus
//! reachability and poll state) and runs the full mitigation pipeline
//! (filter → select → cluster → combine → discipline) every time a peer
//! delivers a fresh working sample. [`run_ntpd`] drives it against the
//! simulated testbed for head-to-head comparisons with SNTP and MNTP —
//! the benchmarking the paper lists as future work.

use clocksim::time::{SimDuration, SimTime};
use clocksim::SimClock;
use netsim::Testbed;
use sntp::ServerPool;

use crate::clock_filter::{ClockFilter, FilterSample};
use crate::cluster::{cluster, combine};
use crate::discipline::{Discipline, DisciplineConfig, DisciplineVerdict};
use crate::select::{select_survivors, PeerCandidate};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct NtpdConfig {
    /// Peer (server) ids to associate with.
    pub peers: Vec<usize>,
    /// Discipline tuning.
    pub discipline: DisciplineConfig,
}

impl NtpdConfig {
    /// Standard four-peer configuration over the given server ids.
    pub fn with_peers(peers: Vec<usize>) -> Self {
        NtpdConfig { peers, discipline: DisciplineConfig::default() }
    }
}

/// Per-peer association state.
#[derive(Clone, Debug)]
struct Peer {
    server_id: usize,
    filter: ClockFilter,
    /// 8-bit reachability shift register (RFC 5905 §9.2).
    reach: u8,
    /// Next poll, local seconds.
    next_poll_secs: f64,
    /// The peer's standing candidate: its last working sample. A peer
    /// stays in the selection population even in rounds where it has no
    /// *fresh* sample — otherwise a lone falseticker that happens to be
    /// the only fresh peer would win a trivial "majority of one".
    candidate: Option<PeerCandidate>,
}

/// The daemon.
#[derive(Clone, Debug)]
pub struct Ntpd {
    peers: Vec<Peer>,
    discipline: Discipline,
    /// System offsets computed (local secs, offset secs) — diagnostics.
    pub system_offsets: Vec<(f64, f64)>,
    /// Count of mitigation rounds where selection found no majority.
    pub no_majority_rounds: u64,
}

impl Ntpd {
    /// New daemon; peers are polled immediately, staggered by 2 s.
    pub fn new(cfg: &NtpdConfig) -> Self {
        let peers = cfg
            .peers
            .iter()
            .enumerate()
            .map(|(i, &server_id)| Peer {
                server_id,
                filter: ClockFilter::new(),
                reach: 0,
                next_poll_secs: i as f64 * 2.0,
                candidate: None,
            })
            .collect();
        Ntpd {
            peers,
            discipline: Discipline::new(cfg.discipline.clone()),
            system_offsets: Vec::new(),
            no_majority_rounds: 0,
        }
    }

    /// Server ids due for polling at local time `now_secs`.
    pub fn due_peers(&self, now_secs: f64) -> Vec<usize> {
        self.peers
            .iter()
            .filter(|p| now_secs >= p.next_poll_secs)
            .map(|p| p.server_id)
            .collect()
    }

    /// Record a completed exchange for `server_id`.
    pub fn on_sample(&mut self, now_secs: f64, server_id: usize, offset: f64, delay: f64) {
        let poll = self.discipline.poll_interval_secs();
        if let Some(p) = self.peers.iter_mut().find(|p| p.server_id == server_id) {
            p.reach = (p.reach << 1) | 1;
            p.filter.push(FilterSample {
                offset,
                delay,
                dispersion: 0.001,
                at_secs: now_secs,
            });
            p.next_poll_secs = now_secs + poll;
        }
    }

    /// Record a failed poll for `server_id`.
    pub fn on_poll_failed(&mut self, now_secs: f64, server_id: usize) {
        let poll = self.discipline.poll_interval_secs();
        if let Some(p) = self.peers.iter_mut().find(|p| p.server_id == server_id) {
            p.reach <<= 1;
            p.next_poll_secs = now_secs + poll;
        }
    }

    /// Run the mitigation pipeline; returns clock commands to apply.
    pub fn mitigate(&mut self, now_secs: f64) -> Vec<clocksim::ClockCommand> {
        let mut candidates = Vec::new();
        for p in &mut self.peers {
            if p.reach == 0 {
                continue;
            }
            let jitter = p.filter.jitter();
            let dispersion = p.filter.dispersion(now_secs);
            if let Some(s) = p.filter.working_sample(now_secs) {
                p.candidate = Some(PeerCandidate {
                    peer_id: p.server_id,
                    offset: s.offset,
                    root_distance: s.delay / 2.0 + s.dispersion + dispersion,
                    jitter,
                });
            }
            if let Some(c) = p.candidate {
                candidates.push(c);
            }
        }
        if candidates.is_empty() {
            return Vec::new();
        }
        let survivor_ids = select_survivors(&candidates);
        if survivor_ids.is_empty() {
            self.no_majority_rounds += 1;
            return Vec::new();
        }
        let survivors: Vec<PeerCandidate> = candidates
            .into_iter()
            .filter(|c| survivor_ids.contains(&c.peer_id))
            .collect();
        let survivors = cluster(survivors);
        let Some(offset) = combine(&survivors) else {
            return Vec::new();
        };
        let jitter = survivors.iter().map(|c| c.jitter).fold(0.0f64, f64::max);
        let verdict = self.discipline.update(now_secs, offset, jitter);
        if verdict == DisciplineVerdict::Stepped {
            // Every stored sample was measured against the pre-step clock
            // and would poison the next rounds: flush the filters.
            for p in &mut self.peers {
                p.filter = ClockFilter::new();
                p.candidate = None;
            }
        }
        if verdict != DisciplineVerdict::Panic {
            self.system_offsets.push((now_secs, offset));
        }
        self.discipline.take_commands()
    }

    /// Current poll interval (drives the simulation cadence).
    pub fn poll_interval_secs(&self) -> f64 {
        self.discipline.poll_interval_secs()
    }

    /// Steps performed by the discipline.
    pub fn steps(&self) -> u64 {
        self.discipline.steps
    }
}

/// The result of an [`run_ntpd`] simulation.
#[derive(Clone, Debug, Default)]
pub struct NtpdRun {
    /// `(t_secs, clock true error ms)` — evaluation ground truth.
    pub true_error_ms: Vec<(f64, f64)>,
    /// System offsets the daemon computed, `(t_secs, offset_secs)`.
    pub system_offsets: Vec<(f64, f64)>,
    /// Total polls sent.
    pub polls_sent: u64,
    /// Steps applied.
    pub steps: u64,
}

/// [`Ntpd`] behind the workspace-wide [`mntp::Discipline`] trait: the
/// RFC 5905 client stack as the generic driver (and the fleet world)
/// sees it.
///
/// ntpd is hint-blind and self-paced: `poll` reads the *local* clock's
/// notion of elapsed seconds — as a real daemon would — and asks the
/// association table which peers are due. All samples of a round are
/// digested against that same pre-exchange local timestamp, and
/// mitigation runs once per round with at least one fresh sample,
/// exactly as the historical `run_ntpd` loop did.
pub struct NtpdDiscipline {
    daemon: Ntpd,
    now_local_secs: f64,
    pending: Vec<clocksim::ClockCommand>,
}

impl NtpdDiscipline {
    /// Wrap a fresh daemon.
    pub fn new(cfg: &NtpdConfig) -> Self {
        NtpdDiscipline { daemon: Ntpd::new(cfg), now_local_secs: 0.0, pending: Vec::new() }
    }

    /// The wrapped daemon (diagnostics: system offsets, step count).
    pub fn daemon(&self) -> &Ntpd {
        &self.daemon
    }
}

impl mntp::Discipline for NtpdDiscipline {
    fn wants_hints(&self) -> bool {
        // ntpd never reads link-layer hints; the driver must not sample
        // (and thereby advance) the testbed's hint process for it.
        false
    }

    fn poll(
        &mut self,
        t: SimTime,
        clock: &mut SimClock,
        _hints: Option<&netsim::WirelessHints>,
        _select: &mut dyn sntp::ServerSelect,
    ) -> mntp::Directive {
        self.now_local_secs = clock.now_local_nanos(t) as f64 / 1e9;
        let due = self.daemon.due_peers(self.now_local_secs);
        if due.is_empty() {
            mntp::Directive::Idle { record_deferred: false }
        } else {
            mntp::Directive::Query(due)
        }
    }

    fn complete(
        &mut self,
        _t: SimTime,
        _clock: &mut SimClock,
        round: &[mntp::ExchangeResult],
    ) -> Option<mntp::QueryOutcome> {
        let now = self.now_local_secs;
        let mut got_sample = false;
        for r in round {
            match r.outcome {
                Ok(done) => {
                    self.daemon.on_sample(
                        now,
                        r.server_id,
                        done.sample.offset.as_seconds_f64(),
                        done.sample.delay.as_seconds_f64(),
                    );
                    got_sample = true;
                }
                // KoD and loss alike: the peer just didn't deliver.
                Err(_) => self.daemon.on_poll_failed(now, r.server_id),
            }
        }
        if got_sample {
            self.pending = self.daemon.mitigate(now);
        }
        None
    }

    fn take_commands(&mut self) -> Vec<clocksim::ClockCommand> {
        std::mem::take(&mut self.pending)
    }
}

fn run_ntpd_inner(
    cfg: NtpdConfig,
    testbed: &mut Testbed,
    pool: &mut ServerPool,
    clock: &mut SimClock,
    faults: Option<&mut netsim::FaultInjector>,
    timeout: Option<SimDuration>,
    duration_secs: u64,
) -> NtpdRun {
    let mut d = NtpdDiscipline::new(&cfg);
    let dcfg = mntp::DriverConfig {
        ticks: duration_secs,
        tick_secs: 1.0,
        sample_every_tick: false,
        timeout,
    };
    let run = mntp::drive(&mut d, testbed, pool, clock, faults, &dcfg);
    NtpdRun {
        true_error_ms: run.true_error_ms,
        system_offsets: d.daemon.system_offsets.clone(),
        polls_sent: run.polls_sent,
        steps: d.daemon.steps(),
    }
}

/// Drive an [`Ntpd`] against the testbed for `duration_secs`, ticking
/// once per second. Thin wrapper over the generic [`mntp::drive`] loop
/// with an [`NtpdDiscipline`].
pub fn run_ntpd(
    cfg: NtpdConfig,
    testbed: &mut Testbed,
    pool: &mut ServerPool,
    clock: &mut SimClock,
    duration_secs: u64,
) -> NtpdRun {
    run_ntpd_inner(cfg, testbed, pool, clock, None, None, duration_secs)
}

/// [`run_ntpd`] through the fault-injecting network: every exchange goes
/// via [`sntp::perform_exchange_faulted`] with a per-poll timeout, so
/// outages, loss storms, kiss-o'-death and corruption all bite. The
/// daemon's own RFC 5905 machinery (reachability registers, poll
/// backoff) is its hardening; this driver adds nothing on top, which is
/// exactly what makes it a fair comparison arm for the fault sweep.
pub fn run_ntpd_faulted(
    cfg: NtpdConfig,
    testbed: &mut Testbed,
    pool: &mut ServerPool,
    clock: &mut SimClock,
    faults: &mut netsim::FaultInjector,
    timeout_secs: f64,
    duration_secs: u64,
) -> NtpdRun {
    let timeout = Some(SimDuration::from_secs_f64(timeout_secs));
    run_ntpd_inner(cfg, testbed, pool, clock, Some(faults), timeout, duration_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sntp::perform_exchange;
    use clocksim::{OscillatorConfig, SimRng};
    use ntp_wire::NtpDuration;
    use sntp::PoolConfig;

    fn clock_with(skew_ppm: f64, initial_error_ms: i64, seed: u64) -> SimClock {
        let osc = OscillatorConfig::laptop().with_skew_ppm(skew_ppm).build(SimRng::new(seed));
        SimClock::with_initial_error(
            osc,
            SimTime::ZERO,
            NtpDuration::from_millis(initial_error_ms),
        )
    }

    #[test]
    fn converges_on_wired_network() {
        let mut tb = Testbed::wired(1);
        let mut pool = ServerPool::new(
            PoolConfig { false_ticker_fraction: 0.0, ..Default::default() },
            2,
        );
        let mut clock = clock_with(12.0, 400, 3);
        let cfg = NtpdConfig::with_peers(vec![0, 1, 2, 3]);
        let run = run_ntpd(cfg, &mut tb, &mut pool, &mut clock, 3600);
        // Initial error 400 ms → stepped early, then disciplined.
        assert!(run.steps >= 1, "expected an initial step");
        let late: Vec<f64> = run
            .true_error_ms
            .iter()
            .filter(|(t, _)| *t > 1800.0)
            .map(|(_, e)| e.abs())
            .collect();
        let worst = late.iter().cloned().fold(0.0, f64::max);
        assert!(worst < 30.0, "ntpd should hold the clock tight, worst={worst}");
    }

    #[test]
    fn survives_false_tickers() {
        let mut tb = Testbed::wired(4);
        let mut pool = ServerPool::new(
            PoolConfig {
                false_ticker_fraction: 0.0,
                ..Default::default()
            },
            5,
        );
        // Manually poison one peer's clock by 300 ms.
        pool.server_mut(2).clock = clocksim::ReferenceClock::with_error(
            NtpDuration::from_millis(300),
        );
        let mut clock = clock_with(5.0, 0, 6);
        let cfg = NtpdConfig::with_peers(vec![0, 1, 2, 3]);
        let run = run_ntpd(cfg, &mut tb, &mut pool, &mut clock, 3600);
        let late: Vec<f64> = run
            .true_error_ms
            .iter()
            .filter(|(t, _)| *t > 1200.0)
            .map(|(_, e)| e.abs())
            .collect();
        let worst = late.iter().cloned().fold(0.0, f64::max);
        assert!(worst < 50.0, "falseticker must not capture the clock, worst={worst}");
    }

    #[test]
    fn poll_interval_backs_off_when_stable() {
        let mut tb = Testbed::wired(7);
        let mut pool = ServerPool::new(
            PoolConfig { false_ticker_fraction: 0.0, ..Default::default() },
            8,
        );
        let mut clock = clock_with(2.0, 0, 9);
        let mut daemon = Ntpd::new(&NtpdConfig::with_peers(vec![0, 1, 2]));
        // Run manually for two hours.
        for sec in 0..7200u64 {
            let t = SimTime::ZERO + SimDuration::from_secs(sec as i64);
            let now = sec as f64;
            let due = daemon.due_peers(now);
            let mut any = false;
            for id in due {
                if let Ok(d) = perform_exchange(&mut tb, pool.server_mut(id), &mut clock, t) {
                    daemon.on_sample(now, id, d.sample.offset.as_seconds_f64(), d.sample.delay.as_seconds_f64());
                    any = true;
                } else {
                    daemon.on_poll_failed(now, id);
                }
            }
            if any {
                for cmd in daemon.mitigate(now) {
                    cmd.apply(&mut clock, t);
                }
            }
        }
        assert!(
            daemon.poll_interval_secs() > 64.0,
            "poll should back off: {}",
            daemon.poll_interval_secs()
        );
    }

    #[test]
    fn unreachable_peers_excluded() {
        let mut daemon = Ntpd::new(&NtpdConfig::with_peers(vec![0, 1]));
        // Peer 0 answers, peer 1 never does.
        daemon.on_sample(10.0, 0, 0.005, 0.040);
        daemon.on_poll_failed(10.0, 1);
        let cmds = daemon.mitigate(11.0);
        // One peer is enough for mitigation to act (trivial majority).
        assert!(!cmds.is_empty());
        assert_eq!(daemon.system_offsets.len(), 1);
    }

    #[test]
    fn deterministic() {
        let go = || {
            let mut tb = Testbed::wired(10);
            let mut pool = ServerPool::new(PoolConfig::default(), 11);
            let mut clock = clock_with(8.0, 100, 12);
            let run = run_ntpd(
                NtpdConfig::with_peers(vec![0, 1, 2, 3]),
                &mut tb,
                &mut pool,
                &mut clock,
                900,
            );
            run.true_error_ms.iter().map(|(_, e)| (*e * 1e6) as i64).collect::<Vec<_>>()
        };
        assert_eq!(go(), go());
    }
}
