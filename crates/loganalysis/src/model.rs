//! The study population: Table 1's nineteen NTP servers and the
//! twenty-five service providers of Figure 1.
//!
//! Server identities and counts are transcribed from the paper's
//! Table 1. Provider profiles encode the four latency regimes §3.1
//! reports: cloud/hosting providers around 40 ms median minimum OWD,
//! ISPs around 50 ms, broadband around 250 ms, and mobile providers
//! around 550 ms with very large interquartile ranges and a near-linear
//! (uniform-like) distribution across clients.

/// Which latency/service category a provider belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProviderCategory {
    /// Cloud & hosting (paper SP 1–3): tight, low-latency.
    CloudHosting,
    /// Internet service providers (SP 4–9).
    Isp,
    /// Residential broadband (SP 10–21).
    Broadband,
    /// Mobile carriers (SP 22–25).
    Mobile,
}

impl ProviderCategory {
    /// Median of per-client minimum OWD, ms (paper §3.1).
    pub fn min_owd_median_ms(self) -> f64 {
        match self {
            ProviderCategory::CloudHosting => 40.0,
            ProviderCategory::Isp => 50.0,
            ProviderCategory::Broadband => 250.0,
            ProviderCategory::Mobile => 550.0,
        }
    }

    /// Hostname keywords that identify the category in reverse DNS.
    pub fn hostname_keywords(self) -> &'static [&'static str] {
        match self {
            ProviderCategory::CloudHosting => &["cloud", "host", "aws", "compute"],
            ProviderCategory::Isp => &["isp", "transit", "net", "fiber"],
            ProviderCategory::Broadband => &["cable", "dsl", "res", "broadband"],
            ProviderCategory::Mobile => &["mobile", "wireless", "cellular", "4g"],
        }
    }

    /// Fraction of this category's clients that speak SNTP (vs full
    /// NTP). Paper: >95% of mobile clients use SNTP; cloud hosts mostly
    /// run ntpd; residential CPE boxes are mixed.
    pub fn sntp_fraction(self) -> f64 {
        match self {
            ProviderCategory::CloudHosting => 0.25,
            ProviderCategory::Isp => 0.55,
            ProviderCategory::Broadband => 0.80,
            ProviderCategory::Mobile => 0.97,
        }
    }
}

/// A service provider in the study.
#[derive(Clone, Copy, Debug)]
pub struct ProviderProfile {
    /// Anonymized label, matching the paper's "SP n".
    pub name: &'static str,
    /// Latency/service category.
    pub category: ProviderCategory,
    /// Relative share of the client population.
    pub client_weight: f64,
}

/// The 25 providers of Figure 1: SP 1–3 cloud, SP 4–9 ISP, SP 10–21
/// broadband, SP 22–25 mobile. Weights skew toward broadband and mobile,
/// matching the population mix of public pool servers.
pub const PROVIDERS: [ProviderProfile; 25] = {
    const fn p(name: &'static str, category: ProviderCategory, client_weight: f64) -> ProviderProfile {
        ProviderProfile { name, category, client_weight }
    }
    use ProviderCategory::*;
    [
        p("SP 1", CloudHosting, 6.0),
        p("SP 2", CloudHosting, 4.0),
        p("SP 3", CloudHosting, 3.0),
        p("SP 4", Isp, 5.0),
        p("SP 5", Isp, 4.0),
        p("SP 6", Isp, 4.0),
        p("SP 7", Isp, 3.0),
        p("SP 8", Isp, 3.0),
        p("SP 9", Isp, 2.0),
        p("SP 10", Broadband, 8.0),
        p("SP 11", Broadband, 7.0),
        p("SP 12", Broadband, 6.0),
        p("SP 13", Broadband, 5.0),
        p("SP 14", Broadband, 5.0),
        p("SP 15", Broadband, 4.0),
        p("SP 16", Broadband, 4.0),
        p("SP 17", Broadband, 3.0),
        p("SP 18", Broadband, 3.0),
        p("SP 19", Broadband, 2.0),
        p("SP 20", Broadband, 2.0),
        p("SP 21", Broadband, 2.0),
        p("SP 22", Mobile, 6.0),
        p("SP 23", Mobile, 5.0),
        p("SP 24", Mobile, 4.0),
        p("SP 25", Mobile, 3.0),
    ]
};

/// Whether a server answers IPv4 only or both families (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IpVersion {
    /// IPv4 only.
    V4,
    /// Dual stack.
    V4V6,
}

impl std::fmt::Display for IpVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpVersion::V4 => write!(f, "v4"),
            IpVersion::V4V6 => write!(f, "v4/v6"),
        }
    }
}

/// One of the 19 study servers, as listed in Table 1.
#[derive(Clone, Copy, Debug)]
pub struct ServerProfile {
    /// Server id (AG1, CI1, …).
    pub id: &'static str,
    /// Stratum (1 or 2).
    pub stratum: u8,
    /// Address families served.
    pub ip_version: IpVersion,
    /// Unique clients over the 24 h capture (full scale).
    pub unique_clients: u64,
    /// Total OWD measurements over the capture (full scale).
    pub total_measurements: u64,
    /// Whether the server is ISP-internal (CI*/EN*): its population is
    /// dominated by the ISP's own infrastructure running full NTP.
    pub isp_internal: bool,
}

/// Table 1, transcribed. (The paper prints some counts with Indian-style
/// digit grouping, e.g. "7,63,847" = 763,847 and "1,77,957" = 177,957.)
pub const SERVERS: [ServerProfile; 19] = {
    const fn s(
        id: &'static str,
        stratum: u8,
        ip_version: IpVersion,
        unique_clients: u64,
        total_measurements: u64,
        isp_internal: bool,
    ) -> ServerProfile {
        ServerProfile { id, stratum, ip_version, unique_clients, total_measurements, isp_internal }
    }
    use IpVersion::*;
    [
        s("AG1", 2, V4, 639_704, 9_988_576, false),
        s("CI1", 2, V4V6, 606, 1_480_571, true),
        s("CI2", 2, V4V6, 359, 1_268_928, true),
        s("CI3", 2, V4V6, 335, 812_104, true),
        s("CI4", 2, V4V6, 262, 763_847, true),
        s("EN1", 2, V4V6, 228, 411_253, true),
        s("EN2", 2, V4V6, 232, 437_440, true),
        s("JW1", 1, V4, 12_769, 354_530, false),
        s("JW2", 1, V4, 35_548, 869_721, false),
        s("MW1", 1, V4, 2_746, 197_900, false),
        s("MW2", 2, V4, 9_482_918, 46_232_069, false),
        s("MW3", 2, V4, 1_141_163, 10_948_402, false),
        s("MW4", 2, V4, 2_525_072, 11_126_121, false),
        s("MI1", 1, V4, 1_078_308, 63_907_095, false),
        s("SU1", 1, V4V6, 21_101, 16_404_882, false),
        s("UI1", 2, V4, 36_559, 18_426_282, false),
        s("UI2", 2, V4, 18_925, 14_194_081, false),
        s("UI3", 2, V4, 177_957, 9_254_843, false),
        s("PP1", 2, V4V6, 128_644, 2_369_277, false),
    ]
};

/// Sum of unique clients across all 19 servers (paper: 17,823,505 —
/// the paper's total counts clients per server, so duplicates across
/// servers are counted once per server, like here).
pub fn total_unique_clients() -> u64 {
    SERVERS.iter().map(|s| s.unique_clients).sum()
}

/// Sum of measurements across all 19 servers (paper: 209,447,922).
pub fn total_measurements() -> u64 {
    SERVERS.iter().map(|s| s.total_measurements).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_servers_five_stratum1() {
        assert_eq!(SERVERS.len(), 19);
        assert_eq!(SERVERS.iter().filter(|s| s.stratum == 1).count(), 5);
        assert_eq!(SERVERS.iter().filter(|s| s.stratum == 2).count(), 14);
    }

    #[test]
    fn totals_match_paper() {
        assert_eq!(total_measurements(), 209_447_922);
        // The paper's prose says 17,823,505 unique clients, but its own
        // Table 1 column sums to 15,303,436 (the prose presumably counts
        // something slightly different). We pin the table sum.
        assert_eq!(total_unique_clients(), 15_303_436);
    }

    #[test]
    fn twenty_five_providers_in_paper_groups() {
        use ProviderCategory::*;
        assert_eq!(PROVIDERS.len(), 25);
        assert_eq!(PROVIDERS.iter().filter(|p| p.category == CloudHosting).count(), 3);
        assert_eq!(PROVIDERS.iter().filter(|p| p.category == Isp).count(), 6);
        assert_eq!(PROVIDERS.iter().filter(|p| p.category == Broadband).count(), 12);
        assert_eq!(PROVIDERS.iter().filter(|p| p.category == Mobile).count(), 4);
    }

    #[test]
    fn latency_ordering_matches_figure1() {
        use ProviderCategory::*;
        assert!(CloudHosting.min_owd_median_ms() < Isp.min_owd_median_ms());
        assert!(Isp.min_owd_median_ms() < Broadband.min_owd_median_ms());
        assert!(Broadband.min_owd_median_ms() < Mobile.min_owd_median_ms());
    }

    #[test]
    fn mobile_is_sntp_dominated() {
        assert!(ProviderCategory::Mobile.sntp_fraction() > 0.95);
        assert!(ProviderCategory::CloudHosting.sntp_fraction() < 0.5);
    }

    #[test]
    fn isp_internal_flags() {
        let internal: Vec<&str> =
            SERVERS.iter().filter(|s| s.isp_internal).map(|s| s.id).collect();
        assert_eq!(internal, vec!["CI1", "CI2", "CI3", "CI4", "EN1", "EN2"]);
    }
}
