//! Request inter-arrival analysis (the paper's Figures 11/12 angle).
//!
//! The paper's server-log study looks at the arrival process from two
//! sides: how often *one* client comes back (its effective poll
//! interval, which SNTP stacks pin to rigid periods) and how the
//! *aggregate* arrival stream at the server behaves (herding: rigid
//! periods synchronize across clients and produce bursts at second
//! boundaries, visible as a heavy sub-millisecond mode in the global
//! inter-arrival distribution). Both views run off the same
//! [`ServerLog`], whether it came from the synthetic Table 1 generator
//! or from a simulated fleet.
//!
//! Two incremental forms cover the streaming seam:
//!
//! - [`GapSink`] — exact: arrivals push in time order, gaps accumulate,
//!   time-adjacent shards stitch their boundary gap on merge. The batch
//!   [`global_interarrival`] is a thin adapter over it and stays
//!   byte-identical.
//! - [`GapSketch`] — constant memory: the same arrival/stitch protocol
//!   feeding a [`QuantileSketch`] plus exact mean and sub-ms counters,
//!   for the full-scale regime where holding 209M gaps is the thing
//!   streaming exists to avoid.

use std::collections::BTreeMap;

use devtools::sketch::{percentile_nearest_rank, QuantileSketch};

use crate::synth::ServerLog;

/// Distribution summary of one inter-arrival data set, milliseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterarrivalSummary {
    /// Number of gaps measured.
    pub gaps: u64,
    /// Mean gap, ms.
    pub mean_ms: f64,
    /// Median gap, ms.
    pub p50_ms: f64,
    /// 90th percentile, ms.
    pub p90_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Fraction of gaps under 1 ms — the herding signature in the
    /// global view (back-to-back requests inside one burst).
    pub sub_ms_share: f64,
}

fn summarize(mut gaps_ms: Vec<f64>) -> Option<InterarrivalSummary> {
    if gaps_ms.is_empty() {
        return None;
    }
    gaps_ms.sort_by(f64::total_cmp);
    let n = gaps_ms.len();
    let sum: f64 = gaps_ms.iter().sum();
    let sub_ms = gaps_ms.iter().filter(|g| **g < 1.0).count();
    Some(InterarrivalSummary {
        gaps: n as u64,
        mean_ms: sum / n as f64,
        p50_ms: percentile_nearest_rank(&gaps_ms, 0.50),
        p90_ms: percentile_nearest_rank(&gaps_ms, 0.90),
        p99_ms: percentile_nearest_rank(&gaps_ms, 0.99),
        sub_ms_share: sub_ms as f64 / n as f64,
    })
}

/// Exact incremental gap accumulator over a time-ordered arrival stream.
///
/// Shards covering adjacent time ranges merge with
/// [`merge_adjacent`](GapSink::merge_adjacent), which synthesizes the
/// gap spanning the shard boundary — so any chunking of one server's
/// stream reproduces the unchunked gap sequence exactly.
#[derive(Clone, Debug, Default)]
pub struct GapSink {
    gaps_ms: Vec<f64>,
    first_at: Option<f64>,
    last_at: Option<f64>,
}

impl GapSink {
    /// Empty sink.
    pub fn new() -> GapSink {
        GapSink::default()
    }

    /// Record one arrival. Arrivals must be pushed in non-decreasing
    /// time order for the gaps to mean anything.
    pub fn push_arrival(&mut self, at_secs: f64) {
        if let Some(prev) = self.last_at {
            self.gaps_ms.push((at_secs - prev) * 1e3);
        } else {
            self.first_at = Some(at_secs);
        }
        self.last_at = Some(at_secs);
    }

    /// Append a shard covering the time range immediately after this
    /// one, stitching the gap across the boundary.
    pub fn merge_adjacent(&mut self, other: &GapSink) {
        if let (Some(prev), Some(next)) = (self.last_at, other.first_at) {
            self.gaps_ms.push((next - prev) * 1e3);
        }
        self.gaps_ms.extend_from_slice(&other.gaps_ms);
        if self.first_at.is_none() {
            self.first_at = other.first_at;
        }
        if other.last_at.is_some() {
            self.last_at = other.last_at;
        }
    }

    /// Number of gaps accumulated so far.
    pub fn len(&self) -> usize {
        self.gaps_ms.len()
    }

    /// True when no gap has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.gaps_ms.is_empty()
    }

    /// Distribution summary; `None` when fewer than two arrivals were
    /// seen.
    pub fn finish(self) -> Option<InterarrivalSummary> {
        summarize(self.gaps_ms)
    }
}

/// Constant-memory counterpart of [`GapSink`]: same arrival/stitch
/// protocol, but gaps feed a [`QuantileSketch`] instead of a vector.
/// Mean, count, and the sub-ms share stay exact; percentiles carry the
/// sketch's rank-error bound.
#[derive(Clone, Debug)]
pub struct GapSketch {
    sketch: QuantileSketch,
    sub_ms: u64,
    first_at: Option<f64>,
    last_at: Option<f64>,
}

impl Default for GapSketch {
    fn default() -> Self {
        GapSketch::new(devtools::sketch::DEFAULT_K)
    }
}

impl GapSketch {
    /// Empty sketch with accuracy parameter `k` (see [`QuantileSketch`]).
    pub fn new(k: usize) -> GapSketch {
        GapSketch { sketch: QuantileSketch::new(k), sub_ms: 0, first_at: None, last_at: None }
    }

    fn push_gap(&mut self, gap_ms: f64) {
        if gap_ms < 1.0 {
            self.sub_ms += 1;
        }
        self.sketch.push(gap_ms);
    }

    /// Record one arrival (non-decreasing time order).
    pub fn push_arrival(&mut self, at_secs: f64) {
        if let Some(prev) = self.last_at {
            self.push_gap((at_secs - prev) * 1e3);
        } else {
            self.first_at = Some(at_secs);
        }
        self.last_at = Some(at_secs);
    }

    /// Fold in the shard covering the time range immediately after this
    /// one, stitching the boundary gap (same-server chunk merge).
    pub fn merge_adjacent(&mut self, other: &GapSketch) {
        if let (Some(prev), Some(next)) = (self.last_at, other.first_at) {
            self.push_gap((next - prev) * 1e3);
        }
        self.sketch.merge(&other.sketch);
        self.sub_ms += other.sub_ms;
        if self.first_at.is_none() {
            self.first_at = other.first_at;
        }
        if other.last_at.is_some() {
            self.last_at = other.last_at;
        }
    }

    /// Fold in a shard from an unrelated stream (another server): gap
    /// populations pool, no boundary gap is synthesized.
    pub fn merge_union(&mut self, other: &GapSketch) {
        self.sketch.merge(&other.sketch);
        self.sub_ms += other.sub_ms;
    }

    /// Number of gaps absorbed.
    pub fn gaps(&self) -> u64 {
        self.sketch.count()
    }

    /// Bytes of state held (the constant-memory claim, measurable).
    pub fn state_bytes(&self) -> usize {
        self.sketch.state_bytes()
    }

    /// Distribution summary with sketched percentiles; `None` when no
    /// gap was observed.
    pub fn finish(&self) -> Option<InterarrivalSummary> {
        let n = self.sketch.count();
        if n == 0 {
            return None;
        }
        Some(InterarrivalSummary {
            gaps: n,
            mean_ms: self.sketch.mean(),
            p50_ms: self.sketch.query(0.50),
            p90_ms: self.sketch.query(0.90),
            p99_ms: self.sketch.query(0.99),
            sub_ms_share: self.sub_ms as f64 / n as f64,
        })
    }
}

/// Gaps between consecutive requests at the server, across all clients.
/// `None` for logs with fewer than two records. (Adapter over
/// [`GapSink`].)
pub fn global_interarrival(log: &ServerLog) -> Option<InterarrivalSummary> {
    let mut times: Vec<f64> = log.records.iter().map(|r| r.received_at_secs).collect();
    times.sort_by(f64::total_cmp);
    let mut sink = GapSink::new();
    for t in times {
        sink.push_arrival(t);
    }
    sink.finish()
}

/// Gaps between consecutive requests of the *same* client — the
/// client's effective poll interval as the server observes it. `None`
/// when no client appears twice.
pub fn per_client_interarrival(log: &ServerLog) -> Option<InterarrivalSummary> {
    let mut per_client: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    for r in &log.records {
        per_client.entry(r.client_id).or_default().push(r.received_at_secs);
    }
    let mut gaps = Vec::new();
    for times in per_client.values_mut() {
        times.sort_by(f64::total_cmp);
        gaps.extend(times.iter().zip(times.iter().skip(1)).map(|(a, b)| (b - a) * 1e3));
    }
    summarize(gaps)
}

/// Requests per second of capture time, for rate plots: `(second,
/// count)` for every second that saw at least one request.
pub fn arrival_rate_per_sec(log: &ServerLog) -> Vec<(u64, u64)> {
    let mut buckets: BTreeMap<u64, u64> = BTreeMap::new();
    for r in &log.records {
        let sec = r.received_at_secs.max(0.0) as u64;
        *buckets.entry(sec).or_insert(0) += 1;
    }
    buckets.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_server_log, SynthConfig};

    fn sample_log() -> ServerLog {
        generate_server_log(&crate::model::SERVERS[0], &SynthConfig::default(), 99)
    }

    #[test]
    fn global_gaps_are_denser_than_per_client_gaps() {
        let log = sample_log();
        let global = global_interarrival(&log).expect("log has records");
        let per_client = per_client_interarrival(&log).expect("clients repeat");
        // Many clients interleave at the server: the aggregate stream is
        // strictly busier than any single client's poll cadence.
        assert!(global.mean_ms < per_client.mean_ms);
        assert!(global.p50_ms <= per_client.p50_ms);
    }

    #[test]
    fn rate_buckets_account_for_every_record() {
        let log = sample_log();
        let total: u64 = arrival_rate_per_sec(&log).iter().map(|(_, c)| c).sum();
        assert_eq!(total, log.records.len() as u64);
    }

    #[test]
    fn empty_log_yields_none() {
        let mut log = sample_log();
        log.records.clear();
        assert!(global_interarrival(&log).is_none());
        assert!(per_client_interarrival(&log).is_none());
        assert!(arrival_rate_per_sec(&log).is_empty());
    }

    #[test]
    fn percentiles_are_ordered() {
        let log = sample_log();
        let s = global_interarrival(&log).expect("records");
        assert!(s.p50_ms <= s.p90_ms && s.p90_ms <= s.p99_ms);
        assert!(s.sub_ms_share >= 0.0 && s.sub_ms_share <= 1.0);
    }

    #[test]
    fn chunked_gap_sink_stitches_to_the_unchunked_sequence() {
        let log = sample_log();
        let mut times: Vec<f64> = log.records.iter().map(|r| r.received_at_secs).collect();
        times.sort_by(f64::total_cmp);
        let whole = global_interarrival(&log).expect("records");
        // Split the ordered stream into 8 time-contiguous chunks and
        // stitch: identical summary, including the boundary gaps.
        let mut merged = GapSink::new();
        for chunk in times.chunks(times.len().div_ceil(8)) {
            let mut shard = GapSink::new();
            for &t in chunk {
                shard.push_arrival(t);
            }
            merged.merge_adjacent(&shard);
        }
        assert_eq!(merged.finish(), Some(whole));
    }

    #[test]
    fn gap_sketch_tracks_the_exact_summary() {
        let log = sample_log();
        let mut times: Vec<f64> = log.records.iter().map(|r| r.received_at_secs).collect();
        times.sort_by(f64::total_cmp);
        let exact = global_interarrival(&log).expect("records");
        let mut sk = GapSketch::default();
        for &t in &times {
            sk.push_arrival(t);
        }
        let approx = sk.finish().expect("gaps");
        // Count, mean, and sub-ms share are exact; percentiles carry
        // the rank-error bound, checked by rank (values can differ
        // within the epsilon band of the sorted gap array).
        assert_eq!(approx.gaps, exact.gaps);
        assert!((approx.mean_ms - exact.mean_ms).abs() < 1e-9);
        assert!((approx.sub_ms_share - exact.sub_ms_share).abs() < 1e-12);
        let mut gaps: Vec<f64> =
            times.iter().zip(times.iter().skip(1)).map(|(a, b)| (b - a) * 1e3).collect();
        gaps.sort_by(f64::total_cmp);
        let eps = sk.sketch.rank_error_bound() + 1.0 / gaps.len() as f64;
        for (q, got) in [(0.5, approx.p50_ms), (0.9, approx.p90_ms), (0.99, approx.p99_ms)] {
            let lo = gaps.partition_point(|&g| g < got) as f64 / gaps.len() as f64;
            let hi = gaps.partition_point(|&g| g <= got) as f64 / gaps.len() as f64;
            let dist = if q < lo { lo - q } else if q > hi { q - hi } else { 0.0 };
            assert!(dist <= eps, "q={q} got={got} rank band [{lo},{hi}] eps={eps}");
        }
    }

    #[test]
    fn gap_sketch_chunk_merge_is_deterministic() {
        let log = sample_log();
        let mut times: Vec<f64> = log.records.iter().map(|r| r.received_at_secs).collect();
        times.sort_by(f64::total_cmp);
        // One pass vs 8 stitched chunks: the merged sketch must emit the
        // exact same digits as any other chunking folded in order.
        let fold = |n_chunks: usize| {
            let mut merged = GapSketch::default();
            for chunk in times.chunks(times.len().div_ceil(n_chunks)) {
                let mut shard = GapSketch::default();
                for &t in chunk {
                    shard.push_arrival(t);
                }
                merged.merge_adjacent(&shard);
            }
            let s = merged.finish().expect("gaps");
            format!("{:?}", s)
        };
        // Different chunkings change which gaps are sketched at which
        // level, so only identical chunkings are bit-identical; the
        // fullscale pipeline fixes chunk boundaries in config for
        // exactly this reason. Same chunking must be reproducible:
        assert_eq!(fold(8), fold(8));
        assert_eq!(fold(1), fold(1));
    }
}
