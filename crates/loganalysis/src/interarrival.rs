//! Request inter-arrival analysis (the paper's Figures 11/12 angle).
//!
//! The paper's server-log study looks at the arrival process from two
//! sides: how often *one* client comes back (its effective poll
//! interval, which SNTP stacks pin to rigid periods) and how the
//! *aggregate* arrival stream at the server behaves (herding: rigid
//! periods synchronize across clients and produce bursts at second
//! boundaries, visible as a heavy sub-millisecond mode in the global
//! inter-arrival distribution). Both views run off the same
//! [`ServerLog`], whether it came from the synthetic Table 1 generator
//! or from a simulated fleet.

use std::collections::BTreeMap;

use crate::synth::ServerLog;

/// Distribution summary of one inter-arrival data set, milliseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterarrivalSummary {
    /// Number of gaps measured.
    pub gaps: u64,
    /// Mean gap, ms.
    pub mean_ms: f64,
    /// Median gap, ms.
    pub p50_ms: f64,
    /// 90th percentile, ms.
    pub p90_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Fraction of gaps under 1 ms — the herding signature in the
    /// global view (back-to-back requests inside one burst).
    pub sub_ms_share: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted.get(idx).copied().unwrap_or(0.0)
}

fn summarize(mut gaps_ms: Vec<f64>) -> Option<InterarrivalSummary> {
    if gaps_ms.is_empty() {
        return None;
    }
    gaps_ms.sort_by(f64::total_cmp);
    let n = gaps_ms.len();
    let sum: f64 = gaps_ms.iter().sum();
    let sub_ms = gaps_ms.iter().filter(|g| **g < 1.0).count();
    Some(InterarrivalSummary {
        gaps: n as u64,
        mean_ms: sum / n as f64,
        p50_ms: percentile(&gaps_ms, 0.50),
        p90_ms: percentile(&gaps_ms, 0.90),
        p99_ms: percentile(&gaps_ms, 0.99),
        sub_ms_share: sub_ms as f64 / n as f64,
    })
}

/// Gaps between consecutive requests at the server, across all clients.
/// `None` for logs with fewer than two records.
pub fn global_interarrival(log: &ServerLog) -> Option<InterarrivalSummary> {
    let mut times: Vec<f64> = log.records.iter().map(|r| r.received_at_secs).collect();
    times.sort_by(f64::total_cmp);
    let gaps = times.windows(2).map(|w| (w[1] - w[0]) * 1e3).collect();
    summarize(gaps)
}

/// Gaps between consecutive requests of the *same* client — the
/// client's effective poll interval as the server observes it. `None`
/// when no client appears twice.
pub fn per_client_interarrival(log: &ServerLog) -> Option<InterarrivalSummary> {
    let mut per_client: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    for r in &log.records {
        per_client.entry(r.client_id).or_default().push(r.received_at_secs);
    }
    let mut gaps = Vec::new();
    for times in per_client.values_mut() {
        times.sort_by(f64::total_cmp);
        gaps.extend(times.windows(2).map(|w| (w[1] - w[0]) * 1e3));
    }
    summarize(gaps)
}

/// Requests per second of capture time, for rate plots: `(second,
/// count)` for every second that saw at least one request.
pub fn arrival_rate_per_sec(log: &ServerLog) -> Vec<(u64, u64)> {
    let mut buckets: BTreeMap<u64, u64> = BTreeMap::new();
    for r in &log.records {
        let sec = r.received_at_secs.max(0.0) as u64;
        *buckets.entry(sec).or_insert(0) += 1;
    }
    buckets.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_server_log, SynthConfig};

    fn sample_log() -> ServerLog {
        generate_server_log(&crate::model::SERVERS[0], &SynthConfig::default(), 99)
    }

    #[test]
    fn global_gaps_are_denser_than_per_client_gaps() {
        let log = sample_log();
        let global = global_interarrival(&log).expect("log has records");
        let per_client = per_client_interarrival(&log).expect("clients repeat");
        // Many clients interleave at the server: the aggregate stream is
        // strictly busier than any single client's poll cadence.
        assert!(global.mean_ms < per_client.mean_ms);
        assert!(global.p50_ms <= per_client.p50_ms);
    }

    #[test]
    fn rate_buckets_account_for_every_record() {
        let log = sample_log();
        let total: u64 = arrival_rate_per_sec(&log).iter().map(|(_, c)| c).sum();
        assert_eq!(total, log.records.len() as u64);
    }

    #[test]
    fn empty_log_yields_none() {
        let mut log = sample_log();
        log.records.clear();
        assert!(global_interarrival(&log).is_none());
        assert!(per_client_interarrival(&log).is_none());
        assert!(arrival_rate_per_sec(&log).is_empty());
    }

    #[test]
    fn percentiles_are_ordered() {
        let log = sample_log();
        let s = global_interarrival(&log).expect("records");
        assert!(s.p50_ms <= s.p90_ms && s.p90_ms <= s.p99_ms);
        assert!(s.sub_ms_share >= 0.0 && s.sub_ms_share <= 1.0);
    }
}
