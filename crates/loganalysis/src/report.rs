//! Assemble the paper's §3.1 artifacts: Table 1, Figure 1, Figure 2.

use clocksim::stats::{ecdf, Summary};

use crate::classify::{classify_hostname, HostClass};
use crate::model::{ServerProfile, PROVIDERS, SERVERS};
use crate::owd::{extract_owds, OwdFilter};
use crate::protocol::{classify_clients, Protocol};
use crate::synth::{generate_server_log, ServerLog, SynthConfig};

/// Generate all nineteen logs (one per Table 1 server).
pub fn generate_all_logs(cfg: &SynthConfig, seed: u64) -> Vec<ServerLog> {
    SERVERS
        .iter()
        .enumerate()
        .map(|(i, s)| generate_server_log(s, cfg, seed.wrapping_add(i as u64 * 7919)))
        .collect()
}

/// One row of the reproduced Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Server profile (paper-side identity and full-scale counts).
    pub server: ServerProfile,
    /// Unique clients in the synthetic (scaled) log.
    pub observed_clients: u64,
    /// Measurements in the synthetic log.
    pub observed_measurements: u64,
}

/// Build Table 1 from generated logs.
pub fn table1(logs: &[ServerLog]) -> Vec<Table1Row> {
    logs.iter()
        .map(|log| Table1Row {
            server: log.server,
            observed_clients: log.unique_clients,
            observed_measurements: log.records.len() as u64,
        })
        .collect()
}

/// One provider's min-OWD distribution at one server (Figure 1).
#[derive(Clone, Debug)]
pub struct Figure1Row {
    /// Provider label ("SP n").
    pub provider: &'static str,
    /// Category description.
    pub category: crate::model::ProviderCategory,
    /// Number of clients with a surviving minimum OWD.
    pub clients: usize,
    /// Summary of per-client minimum OWDs, ms.
    pub min_owd: Summary,
    /// Empirical CDF points of per-client minimum OWDs.
    pub cdf: Vec<(f64, f64)>,
}

/// Build the Figure 1 rows for one server's log: classify clients into
/// providers by hostname, extract filtered OWDs, and summarize each
/// provider's per-client minimum OWD.
pub fn figure1(log: &ServerLog, filter: &OwdFilter) -> Vec<Figure1Row> {
    let owds = extract_owds(log, filter);
    // client -> provider via the hostname heuristic (first record wins;
    // hostnames are stable per client).
    let mut per_provider: Vec<Vec<f64>> = vec![Vec::new(); PROVIDERS.len()];
    let mut seen: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    for r in &log.records {
        if !seen.insert(r.client_id) {
            continue;
        }
        let HostClass::Provider(p) = classify_hostname(&r.hostname) else {
            continue;
        };
        if let (Some(bucket), Some(c)) = (per_provider.get_mut(p), owds.get(&r.client_id)) {
            if let Some(min) = c.min_owd_ms() {
                bucket.push(min);
            }
        }
    }
    per_provider
        .into_iter()
        .zip(PROVIDERS.iter())
        .map(|(mins, provider)| Figure1Row {
            provider: provider.name,
            category: provider.category,
            clients: mins.len(),
            min_owd: Summary::of(&mins),
            cdf: ecdf(&mins),
        })
        .collect()
}

/// SNTP/NTP share at one server (Figure 2, left).
#[derive(Clone, Debug)]
pub struct Figure2Row {
    /// Server id.
    pub server_id: &'static str,
    /// Fraction of clients classified SNTP.
    pub sntp_fraction: f64,
    /// Clients observed.
    pub clients: usize,
}

/// Build Figure 2 (left): per-server SNTP share.
pub fn figure2(logs: &[ServerLog]) -> Vec<Figure2Row> {
    logs.iter()
        .map(|log| {
            let classes = classify_clients(log);
            let sntp =
                classes.values().filter(|p| **p == Protocol::Sntp).count() as f64;
            Figure2Row {
                server_id: log.server.id,
                sntp_fraction: if classes.is_empty() { 0.0 } else { sntp / classes.len() as f64 },
                clients: classes.len(),
            }
        })
        .collect()
}

/// Figure 2 (right): per-provider SNTP share at one server.
pub fn figure2_providers(log: &ServerLog) -> Vec<(&'static str, f64, usize)> {
    let classes = classify_clients(log);
    let mut counts: Vec<(u32, u32)> = vec![(0, 0); PROVIDERS.len()];
    let mut seen: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    for r in &log.records {
        if !seen.insert(r.client_id) {
            continue;
        }
        let HostClass::Provider(p) = classify_hostname(&r.hostname) else {
            continue;
        };
        let Some(tally) = counts.get_mut(p) else {
            continue;
        };
        match classes.get(&r.client_id) {
            Some(Protocol::Sntp) => tally.0 += 1,
            Some(Protocol::Ntp) => tally.1 += 1,
            None => {}
        }
    }
    counts
        .into_iter()
        .zip(PROVIDERS.iter())
        .map(|((s, n), provider)| {
            let total = s + n;
            let frac = if total == 0 { 0.0 } else { s as f64 / total as f64 };
            (provider.name, frac, total as usize)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ProviderCategory;

    fn logs() -> Vec<ServerLog> {
        generate_all_logs(&SynthConfig { scale: 20_000, duration_secs: 86_400 }, 1)
    }

    #[test]
    fn table1_has_19_rows_with_scaled_counts() {
        let t = table1(&logs());
        assert_eq!(t.len(), 19);
        for row in &t {
            assert!(row.observed_clients >= 5);
            assert!(row.observed_measurements >= row.observed_clients);
        }
        // Biggest server (MW2) dominates, as in the paper.
        let mw2 = t.iter().find(|r| r.server.id == "MW2").unwrap();
        let ci1 = t.iter().find(|r| r.server.id == "CI1").unwrap();
        assert!(mw2.observed_clients > 50 * ci1.observed_clients.min(10));
    }

    #[test]
    fn figure1_reproduces_latency_ordering() {
        // Use a large public server for population size.
        let cfg = SynthConfig { scale: 5_000, duration_secs: 86_400 };
        let ag1 = SERVERS.iter().find(|s| s.id == "AG1").unwrap();
        let log = generate_server_log(ag1, &cfg, 2);
        let rows = figure1(&log, &OwdFilter::default());
        let med = |cat: ProviderCategory| {
            let vals: Vec<f64> = rows
                .iter()
                .filter(|r| r.category == cat && r.clients >= 3)
                .map(|r| r.min_owd.median)
                .collect();
            clocksim::stats::mean(&vals)
        };
        let cloud = med(ProviderCategory::CloudHosting);
        let mobile = med(ProviderCategory::Mobile);
        let broadband = med(ProviderCategory::Broadband);
        assert!(cloud < broadband, "cloud={cloud} broadband={broadband}");
        assert!(broadband < mobile, "broadband={broadband} mobile={mobile}");
        assert!(mobile > 300.0, "mobile median {mobile}");
    }

    #[test]
    fn figure2_majority_sntp_except_isp_internal() {
        let rows = figure2(&logs());
        // Tiny populations (the ISP-internal servers have only a handful
        // of clients at this scale) are too noisy for a share assertion;
        // the dedicated test in `synth` covers them at finer scale.
        for r in rows.iter().filter(|r| r.clients >= 20) {
            let internal = SERVERS.iter().find(|s| s.id == r.server_id).unwrap().isp_internal;
            if internal {
                assert!(r.sntp_fraction < 0.5, "{} frac {}", r.server_id, r.sntp_fraction);
            } else {
                assert!(r.sntp_fraction > 0.5, "{} frac {}", r.server_id, r.sntp_fraction);
            }
        }
    }

    #[test]
    fn figure2_mobile_providers_over_95_percent() {
        let cfg = SynthConfig { scale: 2_000, duration_secs: 86_400 };
        let su1 = SERVERS.iter().find(|s| s.id == "SU1").unwrap();
        // SU1 is small; use MW2 for population and check the provider split.
        let mw2 = SERVERS.iter().find(|s| s.id == "MW2").unwrap();
        let _ = su1;
        let log = generate_server_log(mw2, &cfg, 3);
        let rows = figure2_providers(&log);
        for (name, frac, n) in rows {
            let cat = PROVIDERS.iter().find(|p| p.name == name).unwrap().category;
            if cat == ProviderCategory::Mobile && n >= 30 {
                assert!(frac > 0.9, "{name}: {frac} over {n} clients");
            }
        }
    }

    #[test]
    fn figure1_cdf_shapes() {
        let cfg = SynthConfig { scale: 5_000, duration_secs: 86_400 };
        let ag1 = SERVERS.iter().find(|s| s.id == "AG1").unwrap();
        let log = generate_server_log(ag1, &cfg, 4);
        let rows = figure1(&log, &OwdFilter::default());
        for r in rows.iter().filter(|r| r.clients >= 5) {
            // CDFs are monotone and end at 1.
            assert!((r.cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
            for w in r.cdf.windows(2) {
                assert!(w[0].0 <= w[1].0);
            }
        }
    }
}
