//! Feed real capture files into the analysis pipeline.
//!
//! The paper's §3.1 pipeline was "a light-weight tool based on
//! netdissect.h and print-ntp.c" — i.e. it consumed tcpdump captures.
//! This module is that front end: parse a classic libpcap file
//! (Ethernet/IPv4/UDP), pick out the NTP datagrams, and hand back
//! `(timestamp, source, packet)` tuples the protocol classifier and OWD
//! extractor understand. Together with `netsim::pcap::PcapWriter` the
//! loop closes: simulate → capture → re-analyze with the same tools.
//!
//! The core reader is the streaming [`NtpPacketIter`]: one datagram per
//! `next()`, no whole-capture materialization, so arbitrarily large
//! captures analyze in constant memory. [`read_ntp_packets`] is the
//! collecting adapter for callers that want the old `Vec` API.

use ntp_wire::NtpPacket;

/// One NTP datagram recovered from a capture.
#[derive(Clone, Debug)]
pub struct CapturedNtp {
    /// Capture timestamp, seconds (+ fractional) since the capture epoch.
    pub at_secs: f64,
    /// Source IPv4 address.
    pub src_ip: [u8; 4],
    /// Destination IPv4 address.
    pub dst_ip: [u8; 4],
    /// Source UDP port.
    pub src_port: u16,
    /// The parsed NTP packet.
    pub packet: NtpPacket,
}

/// Errors while reading a capture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PcapError {
    /// File shorter than the global header, or bad magic.
    BadHeader,
    /// Only Ethernet (linktype 1) captures are supported.
    UnsupportedLinkType(u32),
    /// A record header ran past the end of the file.
    Truncated,
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::BadHeader => write!(f, "not a little-endian libpcap file"),
            PcapError::UnsupportedLinkType(lt) => write!(f, "unsupported linktype {lt}"),
            PcapError::Truncated => write!(f, "truncated capture"),
        }
    }
}

impl std::error::Error for PcapError {}

fn u32le(b: &[u8], off: usize) -> Option<u32> {
    Some(u32::from_le_bytes(b.get(off..off + 4)?.try_into().ok()?))
}

/// Streaming reader over the NTP datagrams of a libpcap byte stream:
/// yields one [`CapturedNtp`] per `next()` without materializing the
/// capture. Non-NTP and malformed frames are skipped silently (as
/// tcpdump-based tooling would); a truncated record yields one
/// `Err(Truncated)` and then the iterator fuses.
pub struct NtpPacketIter<'a> {
    data: &'a [u8],
    pos: usize,
    failed: bool,
}

impl Iterator for NtpPacketIter<'_> {
    type Item = Result<CapturedNtp, PcapError>;

    fn next(&mut self) -> Option<Self::Item> {
        while !self.failed && self.pos < self.data.len() {
            let (Some(ts_sec), Some(ts_usec), Some(incl)) = (
                u32le(self.data, self.pos),
                u32le(self.data, self.pos + 4),
                u32le(self.data, self.pos + 8),
            ) else {
                self.failed = true;
                return Some(Err(PcapError::Truncated));
            };
            let Some(frame) = self
                .pos
                .checked_add(16)
                .and_then(|start| self.data.get(start..start + incl as usize))
            else {
                self.failed = true;
                return Some(Err(PcapError::Truncated));
            };
            self.pos += 16 + incl as usize;
            if let Some(captured) = decode_frame(ts_sec as f64 + ts_usec as f64 / 1e6, frame) {
                return Some(Ok(captured));
            }
        }
        None
    }
}

/// Validate a libpcap header and return the streaming [`NtpPacketIter`]
/// over its records.
pub fn iter_ntp_packets(data: &[u8]) -> Result<NtpPacketIter<'_>, PcapError> {
    if data.len() < 24 || u32le(data, 0) != Some(0xa1b2_c3d4) {
        return Err(PcapError::BadHeader);
    }
    match u32le(data, 20) {
        Some(1) => Ok(NtpPacketIter { data, pos: 24, failed: false }),
        Some(lt) => Err(PcapError::UnsupportedLinkType(lt)),
        None => Err(PcapError::BadHeader),
    }
}

/// Parse a libpcap byte stream, returning every UDP datagram on port 123
/// (either direction) that carries a parseable NTP packet. (Collecting
/// adapter over [`iter_ntp_packets`].)
pub fn read_ntp_packets(data: &[u8]) -> Result<Vec<CapturedNtp>, PcapError> {
    iter_ntp_packets(data)?.collect()
}

fn decode_frame(at_secs: f64, frame: &[u8]) -> Option<CapturedNtp> {
    // Ethernet II, IPv4 only.
    const ETHERTYPE_IPV4: [u8; 2] = [0x08, 0x00];
    if frame.get(12..14) != Some(ETHERTYPE_IPV4.as_slice()) {
        return None;
    }
    let ip = frame.get(14..)?;
    let v_ihl = *ip.first()?;
    if v_ihl >> 4 != 4 {
        return None;
    }
    let ihl = ((v_ihl & 0x0F) as usize) * 4;
    if *ip.get(9)? != 17 {
        return None; // not UDP
    }
    let src_ip: [u8; 4] = ip.get(12..16)?.try_into().ok()?;
    let dst_ip: [u8; 4] = ip.get(16..20)?.try_into().ok()?;
    let udp = ip.get(ihl..)?;
    let src_port = u16::from_be_bytes(udp.get(0..2)?.try_into().ok()?);
    let dst_port = u16::from_be_bytes(udp.get(2..4)?.try_into().ok()?);
    if src_port != 123 && dst_port != 123 {
        return None;
    }
    let payload = udp.get(8..)?;
    let packet = NtpPacket::parse(payload).ok()?;
    Some(CapturedNtp { at_secs, src_ip, dst_ip, src_port, packet })
}

/// Share of captured *client requests* that are SNTP-shaped — the
/// §3.1 protocol statistic, straight from a capture.
pub fn sntp_request_share(packets: &[CapturedNtp]) -> f64 {
    streamed_sntp_request_share(packets.iter().cloned().map(Ok)).unwrap_or(0.0)
}

/// The same statistic computed in one constant-memory pass over a
/// streaming packet source (e.g. [`NtpPacketIter`]): only two counters
/// are held, never the packets.
pub fn streamed_sntp_request_share<I>(packets: I) -> Result<f64, PcapError>
where
    I: IntoIterator<Item = Result<CapturedNtp, PcapError>>,
{
    let mut requests = 0u64;
    let mut sntp = 0u64;
    for p in packets {
        let p = p?;
        if p.packet.mode == ntp_wire::packet::Mode::Client {
            requests += 1;
            if p.packet.is_sntp_client_shape() {
                sntp += 1;
            }
        }
    }
    Ok(if requests == 0 { 0.0 } else { sntp as f64 / requests as f64 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksim::time::SimTime;
    use netsim::pcap::{Endpoint, PcapWriter};
    use ntp_wire::{sntp_profile, NtpTimestamp};

    fn capture_with(n_sntp: usize, n_ntp: usize) -> Vec<u8> {
        let client = Endpoint::of([10, 0, 0, 2], 40_000);
        let server = Endpoint::of([203, 0, 113, 1], 123);
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for i in 0..n_sntp {
            let req = sntp_profile::client_request(NtpTimestamp::from_parts(100 + i as u32, 0));
            w.record_udp(SimTime::from_secs(i as i64), client, server, &req.serialize()).unwrap();
        }
        for i in 0..n_ntp {
            let mut req = sntp_profile::client_request(NtpTimestamp::from_parts(200 + i as u32, 0));
            req.poll = 6;
            req.precision = -20;
            req.stratum = 3;
            w.record_udp(SimTime::from_secs(100 + i as i64), client, server, &req.serialize())
                .unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip_through_writer_and_reader() {
        let bytes = capture_with(3, 2);
        let packets = read_ntp_packets(&bytes).unwrap();
        assert_eq!(packets.len(), 5);
        assert_eq!(packets[0].dst_ip, [203, 0, 113, 1]);
        assert_eq!(packets[0].src_port, 40_000);
        assert!((packets[3].at_secs - 100.0).abs() < 1e-6);
    }

    #[test]
    fn protocol_share_from_capture() {
        // Routed through the streaming iterator: the capture is consumed
        // one datagram at a time, never collected.
        let bytes = capture_with(8, 2);
        let share = streamed_sntp_request_share(iter_ntp_packets(&bytes).unwrap()).unwrap();
        assert!((share - 0.8).abs() < 1e-9, "share {share}");
        // The batch adapter agrees.
        let packets = read_ntp_packets(&bytes).unwrap();
        assert!((sntp_request_share(&packets) - share).abs() < 1e-12);
    }

    #[test]
    fn streaming_iterator_matches_batch_reader() {
        let bytes = capture_with(5, 3);
        let batch = read_ntp_packets(&bytes).unwrap();
        let streamed: Vec<CapturedNtp> =
            iter_ntp_packets(&bytes).unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(batch.len(), streamed.len());
        for (a, b) in batch.iter().zip(&streamed) {
            assert_eq!(a.at_secs, b.at_secs);
            assert_eq!(a.src_ip, b.src_ip);
            assert_eq!(a.packet.serialize(), b.packet.serialize());
        }
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(read_ntp_packets(&[]).unwrap_err(), PcapError::BadHeader);
        assert_eq!(read_ntp_packets(&[0u8; 30]).unwrap_err(), PcapError::BadHeader);
    }

    #[test]
    fn truncated_record_detected() {
        let mut bytes = capture_with(1, 0);
        bytes.truncate(bytes.len() - 10);
        assert_eq!(read_ntp_packets(&bytes).unwrap_err(), PcapError::Truncated);
        // The streaming iterator reports the truncation once, then fuses.
        let mut it = iter_ntp_packets(&bytes).unwrap();
        assert!(matches!(it.next(), Some(Err(PcapError::Truncated))));
        assert!(it.next().is_none());
    }

    #[test]
    fn non_ntp_traffic_skipped() {
        let a = Endpoint::of([10, 0, 0, 2], 40_000);
        let b = Endpoint { port: 53, ..Endpoint::of([10, 0, 0, 3], 53) };
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.record_udp(SimTime::from_secs(1), a, b, &[1, 2, 3]).unwrap(); // DNS-ish
        let req = sntp_profile::client_request(NtpTimestamp::from_parts(1, 0));
        w.record_udp(SimTime::from_secs(2), a, Endpoint::of([203, 0, 113, 1], 123), &req.serialize())
            .unwrap();
        let packets = read_ntp_packets(&w.finish().unwrap()).unwrap();
        assert_eq!(packets.len(), 1);
    }

    #[test]
    fn end_to_end_simulated_exchange_reanalyzed() {
        // Simulate real exchanges, capture them, and recover the protocol
        // mix from the capture alone.
        use clocksim::{OscillatorConfig, SimClock, SimRng};
        use netsim::Testbed;
        use sntp::{perform_exchange_traced, PoolConfig, ServerPool};

        let mut tb = Testbed::wired(9);
        let mut pool = ServerPool::new(PoolConfig::default(), 10);
        let osc = OscillatorConfig::laptop().build(SimRng::new(11));
        let mut clock = SimClock::new(osc, SimTime::ZERO);
        let client = Endpoint::of([192, 168, 0, 5], 51_000);
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for i in 0..20 {
            let t = SimTime::from_secs(i * 5);
            let id = pool.pick();
            let server = Endpoint::of([203, 0, 113, id as u8 + 1], 123);
            let mut cap = Vec::new();
            let _ = perform_exchange_traced(&mut tb, pool.server_mut(id), &mut clock, t, &mut cap);
            for pkt in cap {
                let (s, d) = if pkt.outbound { (client, server) } else { (server, client) };
                w.record_udp(pkt.at, s, d, &pkt.bytes).unwrap();
            }
        }
        let packets = read_ntp_packets(&w.finish().unwrap()).unwrap();
        assert!(packets.len() >= 38, "captured {}", packets.len());
        // All requests in this run are SNTP-shaped.
        assert!((sntp_request_share(&packets) - 1.0).abs() < 1e-9);
        // Replies carry server stratum.
        assert!(packets
            .iter()
            .filter(|p| p.packet.mode == ntp_wire::packet::Mode::Server)
            .all(|p| p.packet.stratum >= 1));
    }
}
