//! Keyword-based service-provider classification.
//!
//! The paper groups clients "based on AS number and provider name in
//! hostnames […] leveraging keywords and provider names (e.g., mobile,
//! cloud, Amazon, Sprint, etc.)" and concedes the method is "fairly
//! rudimentary \[but\] sufficient enough to highlight wired vs. wireless
//! service providers". The same two-stage heuristic lives here: extract
//! the provider label from the hostname, fall back to category keywords
//! when the label is unknown. Because the synthetic generator provides
//! ground truth, tests quantify the heuristic's accuracy instead of
//! assuming it.

use crate::model::{ProviderCategory, PROVIDERS};

/// Classification outcome for one hostname.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostClass {
    /// Mapped to a known provider (index into [`PROVIDERS`]).
    Provider(usize),
    /// Only the category could be inferred from keywords.
    CategoryOnly(ProviderCategory),
    /// Nothing matched.
    Unknown,
}

impl HostClass {
    /// The category this classification implies, if any.
    pub fn category(&self) -> Option<ProviderCategory> {
        match self {
            HostClass::Provider(i) => Some(PROVIDERS[*i].category),
            HostClass::CategoryOnly(c) => Some(*c),
            HostClass::Unknown => None,
        }
    }

    /// Whether the client counts as wireless (mobile category) for the
    /// paper's wired-vs-wireless split.
    pub fn is_wireless(&self) -> bool {
        self.category() == Some(ProviderCategory::Mobile)
    }
}

/// Classify one reverse-DNS hostname.
pub fn classify_hostname(hostname: &str) -> HostClass {
    let lower = hostname.to_lowercase();
    // Stage 1: provider label ("sp7" etc. in the anonymized population;
    // real deployments match ASN → provider names here).
    for (i, p) in PROVIDERS.iter().enumerate() {
        let label = format!(".{}.", p.name.replace(' ', "").to_lowercase());
        if lower.contains(&label) {
            return HostClass::Provider(i);
        }
    }
    // Stage 2: category keywords.
    for cat in [
        ProviderCategory::Mobile,
        ProviderCategory::CloudHosting,
        ProviderCategory::Broadband,
        ProviderCategory::Isp,
    ] {
        if cat.hostname_keywords().iter().any(|k| lower.contains(k)) {
            return HostClass::CategoryOnly(cat);
        }
    }
    HostClass::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SERVERS;
    use crate::synth::{generate_server_log, SynthConfig};

    #[test]
    fn provider_labels_win_over_keywords() {
        // Hostname carries both an SP label and a generic keyword.
        let h = "10-20-30.mobile.sp22.example.net";
        match classify_hostname(h) {
            HostClass::Provider(i) => assert_eq!(PROVIDERS[i].name, "SP 22"),
            other => panic!("expected provider match, got {other:?}"),
        }
    }

    #[test]
    fn keyword_fallback() {
        assert_eq!(
            classify_hostname("dynamic-44.cellular.unknowncarrier.example.org").category(),
            Some(ProviderCategory::Mobile)
        );
        assert_eq!(
            classify_hostname("vm-3.cloud.bigiron.example.org").category(),
            Some(ProviderCategory::CloudHosting)
        );
    }

    #[test]
    fn garbage_is_unknown() {
        assert_eq!(classify_hostname("zzzz.example.org"), HostClass::Unknown);
        assert!(!HostClass::Unknown.is_wireless());
    }

    #[test]
    fn wireless_flag_only_for_mobile() {
        assert!(classify_hostname("x.wireless.sp23.example.net").is_wireless());
        assert!(!classify_hostname("x.cable.sp12.example.net").is_wireless());
    }

    /// End-to-end accuracy of the heuristic over a synthetic population:
    /// the paper argues the rudimentary method is sufficient; here we can
    /// actually measure it.
    #[test]
    fn accuracy_against_ground_truth() {
        let ag1 = SERVERS.iter().find(|s| s.id == "AG1").unwrap();
        let log =
            generate_server_log(ag1, &SynthConfig { scale: 10_000, duration_secs: 86_400 }, 1);
        let mut correct = 0usize;
        let mut total = 0usize;
        for r in &log.records {
            total += 1;
            if let HostClass::Provider(i) = classify_hostname(&r.hostname) {
                if i == r.true_provider {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.99, "provider classification accuracy {acc}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use devtools::prop;
    use devtools::{prop_assert_eq, props};

    props! {
        /// The hostname classifier never panics and its wireless verdict
        /// agrees with its category.
        fn classifier_total(host in prop::strings(0..81)) {
            let c = classify_hostname(&host);
            if c.is_wireless() {
                prop_assert_eq!(c.category(), Some(ProviderCategory::Mobile));
            }
        }
    }
}
