//! Keyword-based service-provider classification.
//!
//! The paper groups clients "based on AS number and provider name in
//! hostnames […] leveraging keywords and provider names (e.g., mobile,
//! cloud, Amazon, Sprint, etc.)" and concedes the method is "fairly
//! rudimentary \[but\] sufficient enough to highlight wired vs. wireless
//! service providers". The same two-stage heuristic lives here: extract
//! the provider label from the hostname, fall back to category keywords
//! when the label is unknown. Because the synthetic generator provides
//! ground truth, tests quantify the heuristic's accuracy instead of
//! assuming it.
//!
//! Classification runs once per *record* in the streaming pipeline, so
//! the common case (pure-ASCII hostname) takes an allocation-free fast
//! path: one byte scan for `.sp<digits>.` labels and ASCII
//! case-insensitive keyword search. Non-ASCII hostnames fall back to the
//! original lowercase-and-`contains` implementation; a property test
//! pins the two paths equal.

use crate::model::{ProviderCategory, PROVIDERS};

/// Classification outcome for one hostname.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostClass {
    /// Mapped to a known provider (index into [`PROVIDERS`]).
    Provider(usize),
    /// Only the category could be inferred from keywords.
    CategoryOnly(ProviderCategory),
    /// Nothing matched.
    Unknown,
}

impl HostClass {
    /// The category this classification implies, if any.
    pub fn category(&self) -> Option<ProviderCategory> {
        match self {
            HostClass::Provider(i) => PROVIDERS.get(*i).map(|p| p.category),
            HostClass::CategoryOnly(c) => Some(*c),
            HostClass::Unknown => None,
        }
    }

    /// Whether the client counts as wireless (mobile category) for the
    /// paper's wired-vs-wireless split.
    pub fn is_wireless(&self) -> bool {
        self.category() == Some(ProviderCategory::Mobile)
    }
}

/// The category keyword stages, in match-priority order (mobile first:
/// a host that says both "cellular" and "net" is a mobile client). Also
/// the index order of [`ProviderTally::category_only`] and the
/// per-category buckets of the streaming pipeline.
pub const CATEGORY_ORDER: [ProviderCategory; 4] = [
    ProviderCategory::Mobile,
    ProviderCategory::CloudHosting,
    ProviderCategory::Broadband,
    ProviderCategory::Isp,
];

/// Classify one reverse-DNS hostname.
pub fn classify_hostname(hostname: &str) -> HostClass {
    if hostname.is_ascii() {
        classify_hostname_ascii(hostname.as_bytes())
    } else {
        classify_hostname_general(hostname)
    }
}

/// ASCII fast path: no allocation, single scan for provider labels.
fn classify_hostname_ascii(host: &[u8]) -> HostClass {
    // Stage 1: provider labels. Every provider is "SP n", so its label
    // is ".sp<n>." — scan once for all of them and keep the *smallest*
    // provider index found, matching the general path's
    // first-provider-in-PROVIDERS-order semantics.
    let mut best: Option<usize> = None;
    let mut pos = 0usize;
    // Jump dot to dot: a plain `position(== b'.')` over the tail is a
    // branch-free byte scan the compiler vectorizes, where a
    // per-byte-with-continue loop is not.
    while let Some(off) = host.get(pos..).and_then(|t| t.iter().position(|&b| b == b'.')) {
        let i = pos + off;
        pos = i + 1;
        let rest = host.get(i + 1..).unwrap_or(&[]);
        let (Some(s), Some(p)) = (rest.first(), rest.get(1)) else { continue };
        if !s.eq_ignore_ascii_case(&b's') || !p.eq_ignore_ascii_case(&b'p') {
            continue;
        }
        let digits = rest.get(2..).unwrap_or(&[]);
        let len = digits.iter().take_while(|d| d.is_ascii_digit()).count();
        // A label needs 1+ digits, no leading zero (".sp07." is not
        // ".sp7."), and a closing dot.
        if len == 0 || digits.first() == Some(&b'0') || digits.get(len) != Some(&b'.') {
            continue;
        }
        let mut n: usize = 0;
        for d in digits.iter().take(len) {
            n = n.saturating_mul(10) + usize::from(d - b'0');
        }
        if (1..=PROVIDERS.len()).contains(&n) && best.map_or(true, |b| n - 1 < b) {
            best = Some(n - 1);
        }
    }
    if let Some(i) = best {
        return HostClass::Provider(i);
    }
    // Stage 2: category keywords, ASCII case-insensitive.
    for cat in CATEGORY_ORDER {
        if cat.hostname_keywords().iter().any(|k| ascii_contains_ci(host, k.as_bytes())) {
            return HostClass::CategoryOnly(cat);
        }
    }
    HostClass::Unknown
}

/// Case-insensitive ASCII substring search (needles here are 2–9 bytes;
/// a naive scan beats anything fancier).
fn ascii_contains_ci(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    haystack
        .windows(needle.len())
        .any(|w| w.iter().zip(needle).all(|(a, b)| a.eq_ignore_ascii_case(b)))
}

/// The original allocation-per-call implementation, kept as the
/// non-ASCII fallback and as the reference the fast path is tested
/// against.
fn classify_hostname_general(hostname: &str) -> HostClass {
    let lower = hostname.to_lowercase();
    // Stage 1: provider label ("sp7" etc. in the anonymized population;
    // real deployments match ASN → provider names here).
    for (i, p) in PROVIDERS.iter().enumerate() {
        let label = format!(".{}.", p.name.replace(' ', "").to_lowercase());
        if lower.contains(&label) {
            return HostClass::Provider(i);
        }
    }
    // Stage 2: category keywords.
    for cat in CATEGORY_ORDER {
        if cat.hostname_keywords().iter().any(|k| lower.contains(k)) {
            return HostClass::CategoryOnly(cat);
        }
    }
    HostClass::Unknown
}

/// Streaming per-provider classification tally: one `push` per record,
/// mergeable across chunks (plain counter addition, so merge order
/// cannot change it).
#[derive(Clone, Debug, Default)]
pub struct ProviderTally {
    /// Records whose hostname mapped to each provider.
    pub per_provider: [u64; PROVIDERS.len()],
    /// Records where only the category was inferred, by category order
    /// of [`CATEGORY_ORDER`].
    pub category_only: [u64; 4],
    /// Records that matched nothing.
    pub unknown: u64,
    /// Records whose predicted provider equals the generator's ground
    /// truth (validation; the paper could not measure this).
    pub provider_correct: u64,
}

impl ProviderTally {
    /// Empty tally.
    pub fn new() -> ProviderTally {
        ProviderTally::default()
    }

    /// Classify one record's hostname into the tally. Returns the
    /// classification so callers can key further sinks off it.
    pub fn push(&mut self, record: &crate::synth::LogRecord) -> HostClass {
        let class = classify_hostname(&record.hostname);
        match class {
            HostClass::Provider(i) => {
                if let Some(slot) = self.per_provider.get_mut(i) {
                    *slot += 1;
                }
                if i == record.true_provider {
                    self.provider_correct += 1;
                }
            }
            HostClass::CategoryOnly(cat) => {
                if let Some(pos) = CATEGORY_ORDER.iter().position(|c| *c == cat) {
                    if let Some(slot) = self.category_only.get_mut(pos) {
                        *slot += 1;
                    }
                }
            }
            HostClass::Unknown => self.unknown += 1,
        }
        class
    }

    /// Fold another tally in (commutative counter addition).
    pub fn merge(&mut self, other: &ProviderTally) {
        for (a, b) in self.per_provider.iter_mut().zip(&other.per_provider) {
            *a += b;
        }
        for (a, b) in self.category_only.iter_mut().zip(&other.category_only) {
            *a += b;
        }
        self.unknown += other.unknown;
        self.provider_correct += other.provider_correct;
    }

    /// Total records classified.
    pub fn total(&self) -> u64 {
        self.per_provider.iter().sum::<u64>()
            + self.category_only.iter().sum::<u64>()
            + self.unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SERVERS;
    use crate::synth::{generate_server_log, SynthConfig};

    #[test]
    fn provider_labels_win_over_keywords() {
        // Hostname carries both an SP label and a generic keyword.
        let h = "10-20-30.mobile.sp22.example.net";
        match classify_hostname(h) {
            HostClass::Provider(i) => assert_eq!(PROVIDERS[i].name, "SP 22"),
            other => panic!("expected provider match, got {other:?}"),
        }
    }

    #[test]
    fn keyword_fallback() {
        assert_eq!(
            classify_hostname("dynamic-44.cellular.unknowncarrier.example.org").category(),
            Some(ProviderCategory::Mobile)
        );
        assert_eq!(
            classify_hostname("vm-3.cloud.bigiron.example.org").category(),
            Some(ProviderCategory::CloudHosting)
        );
    }

    #[test]
    fn garbage_is_unknown() {
        assert_eq!(classify_hostname("zzzz.example.org"), HostClass::Unknown);
        assert!(!HostClass::Unknown.is_wireless());
    }

    #[test]
    fn wireless_flag_only_for_mobile() {
        assert!(classify_hostname("x.wireless.sp23.example.net").is_wireless());
        assert!(!classify_hostname("x.cable.sp12.example.net").is_wireless());
    }

    #[test]
    fn fast_path_edge_cases_match_reference() {
        for h in [
            "a.sp1.b", "a.sp25.b", "a.sp26.b", "a.sp07.b", "a.sp0.b", "a.SP12.b",
            ".sp3.", "sp3.", ".sp3", "a.sp12.c.sp3.d", "a.sp.b", "x..sp5..y",
            "a.sp123456789123456789.b", "NET.example", "a.CELLULAR.b",
        ] {
            assert_eq!(classify_hostname_ascii(h.as_bytes()), classify_hostname_general(h), "{h}");
        }
    }

    #[test]
    fn lowest_provider_index_wins_with_multiple_labels() {
        // The general path checks providers in PROVIDERS order, so SP 3
        // beats SP 12 even though SP 12 appears first in the string.
        assert_eq!(classify_hostname("a.sp12.c.sp3.d"), HostClass::Provider(2));
    }

    #[test]
    fn tally_counts_and_merges() {
        let ag1 = SERVERS.iter().find(|s| s.id == "AG1").unwrap();
        let log = generate_server_log(ag1, &SynthConfig { scale: 10_000, duration_secs: 86_400 }, 7);
        let mut whole = ProviderTally::new();
        let mut left = ProviderTally::new();
        let mut right = ProviderTally::new();
        for (i, r) in log.records.iter().enumerate() {
            whole.push(r);
            if i % 2 == 0 {
                left.push(r);
            } else {
                right.push(r);
            }
        }
        left.merge(&right);
        assert_eq!(whole.per_provider, left.per_provider);
        assert_eq!(whole.unknown, left.unknown);
        assert_eq!(whole.provider_correct, left.provider_correct);
        assert_eq!(whole.total(), log.records.len() as u64);
    }

    /// End-to-end accuracy of the heuristic over a synthetic population:
    /// the paper argues the rudimentary method is sufficient; here we can
    /// actually measure it.
    #[test]
    fn accuracy_against_ground_truth() {
        let ag1 = SERVERS.iter().find(|s| s.id == "AG1").unwrap();
        let log =
            generate_server_log(ag1, &SynthConfig { scale: 10_000, duration_secs: 86_400 }, 1);
        let mut correct = 0usize;
        let mut total = 0usize;
        for r in &log.records {
            total += 1;
            if let HostClass::Provider(i) = classify_hostname(&r.hostname) {
                if i == r.true_provider {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.99, "provider classification accuracy {acc}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use devtools::prop;
    use devtools::{prop_assert_eq, props};

    props! {
        /// The hostname classifier never panics and its wireless verdict
        /// agrees with its category.
        fn classifier_total(host in prop::strings(0..81)) {
            let c = classify_hostname(&host);
            if c.is_wireless() {
                prop_assert_eq!(c.category(), Some(ProviderCategory::Mobile));
            }
        }

        /// The allocation-free ASCII fast path is indistinguishable from
        /// the reference implementation on any ASCII input.
        fn fast_path_matches_reference(host in prop::strings(0..81)) {
            if host.is_ascii() {
                prop_assert_eq!(
                    classify_hostname_ascii(host.as_bytes()),
                    classify_hostname_general(&host)
                );
            }
        }
    }
}
