//! SNTP vs NTP detection from packet shape.
//!
//! "SNTP sets all fields in an NTP packet to zero except the first
//! octet" (§2) — so a capture-side classifier can label each request by
//! inspecting the header: zeroed stratum/poll/precision/root fields mean
//! an SNTP client, populated ones mean a full NTP implementation. A
//! client is labelled by majority vote over its requests (a client never
//! legitimately flips implementations mid-capture, but captures can hold
//! corrupt packets).
//!
//! Two sinks implement the heuristic incrementally (`push` a record at a
//! time, `merge` partial results, `finish` once at the end):
//!
//! - [`ProtocolSink`] — exact per-client majority vote; memory grows
//!   with the client population. The batch API ([`classify_clients`],
//!   [`sntp_share`]) is a thin adapter over it and stays byte-identical.
//! - [`ShapeTally`] — request-level counts only: constant memory, used
//!   by the full-scale pipeline where per-client state for 15M clients
//!   is exactly what streaming is meant to avoid. Carries the
//!   prediction-vs-ground-truth confusion counts the validation report
//!   needs.

use std::collections::BTreeMap;

use ntp_wire::NtpPacket;

use crate::synth::{LogRecord, ServerLog};

/// Protocol verdict for a client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// RFC 4330-shaped requests.
    Sntp,
    /// Full NTP implementation.
    Ntp,
}

/// Classify one request.
pub fn classify_packet(packet: &NtpPacket) -> Protocol {
    if packet.is_sntp_client_shape() {
        Protocol::Sntp
    } else {
        Protocol::Ntp
    }
}

/// Exact per-client protocol classification, incrementally.
#[derive(Clone, Debug, Default)]
pub struct ProtocolSink {
    votes: BTreeMap<u32, (u32, u32)>,
}

impl ProtocolSink {
    /// Empty sink.
    pub fn new() -> ProtocolSink {
        ProtocolSink::default()
    }

    /// Vote one record. Unparseable requests are ignored, as in the
    /// batch path.
    pub fn push(&mut self, record: &LogRecord) {
        if let Ok(p) = NtpPacket::parse(&record.request) {
            let e = self.votes.entry(record.client_id).or_insert((0, 0));
            match classify_packet(&p) {
                Protocol::Sntp => e.0 += 1,
                Protocol::Ntp => e.1 += 1,
            }
        }
    }

    /// Fold another sink in (vote counts add; client order is a BTreeMap
    /// so merge order cannot change the result).
    pub fn merge(&mut self, other: &ProtocolSink) {
        for (id, (s, n)) in &other.votes {
            let e = self.votes.entry(*id).or_insert((0, 0));
            e.0 += s;
            e.1 += n;
        }
    }

    /// Majority verdict per client (ties go to SNTP, matching the batch
    /// path's historical behaviour).
    pub fn finish(self) -> BTreeMap<u32, Protocol> {
        self.votes
            .into_iter()
            .map(|(id, (s, n))| (id, if s >= n { Protocol::Sntp } else { Protocol::Ntp }))
            .collect()
    }
}

/// Constant-memory request-level protocol tally with ground-truth
/// confusion counts.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShapeTally {
    /// Requests classified SNTP.
    pub sntp: u64,
    /// Requests classified full NTP.
    pub ntp: u64,
    /// Requests that did not parse.
    pub malformed: u64,
    /// Classified SNTP and truly SNTP.
    pub true_sntp: u64,
    /// Classified NTP and truly NTP.
    pub true_ntp: u64,
}

impl ShapeTally {
    /// Empty tally.
    pub fn new() -> ShapeTally {
        ShapeTally::default()
    }

    /// Tally one record's shape against its ground truth. Returns the
    /// verdict (`None` for malformed requests) so callers can key
    /// further sinks off it.
    pub fn push(&mut self, record: &LogRecord) -> Option<Protocol> {
        self.push_view(NtpPacket::parse_ref(&record.request).ok().as_ref(), record.true_sntp)
    }

    /// [`push`](ShapeTally::push) on an already-parsed view (`None` =
    /// the request did not parse) — the hot-path entry for composite
    /// sinks that parse each request exactly once.
    pub fn push_view(
        &mut self,
        view: Option<&ntp_wire::PacketView<'_>>,
        true_sntp: bool,
    ) -> Option<Protocol> {
        let Some(view) = view else {
            self.malformed += 1;
            return None;
        };
        if view.is_sntp_client_shape() {
            self.sntp += 1;
            if true_sntp {
                self.true_sntp += 1;
            }
            Some(Protocol::Sntp)
        } else {
            self.ntp += 1;
            if !true_sntp {
                self.true_ntp += 1;
            }
            Some(Protocol::Ntp)
        }
    }

    /// Fold another tally in (commutative counter addition).
    pub fn merge(&mut self, other: &ShapeTally) {
        self.sntp += other.sntp;
        self.ntp += other.ntp;
        self.malformed += other.malformed;
        self.true_sntp += other.true_sntp;
        self.true_ntp += other.true_ntp;
    }

    /// Requests that produced a verdict.
    pub fn classified(&self) -> u64 {
        self.sntp + self.ntp
    }

    /// SNTP share of classified requests (request-weighted, unlike the
    /// per-client [`sntp_share`]).
    pub fn sntp_request_share(&self) -> f64 {
        if self.classified() == 0 {
            0.0
        } else {
            self.sntp as f64 / self.classified() as f64
        }
    }

    /// Fraction of classified requests whose verdict matches ground
    /// truth.
    pub fn accuracy(&self) -> f64 {
        if self.classified() == 0 {
            0.0
        } else {
            (self.true_sntp + self.true_ntp) as f64 / self.classified() as f64
        }
    }
}

/// Classify every client in a log by majority vote over its requests.
/// Unparseable requests are ignored. (Adapter over [`ProtocolSink`].)
pub fn classify_clients(log: &ServerLog) -> BTreeMap<u32, Protocol> {
    let mut sink = ProtocolSink::new();
    for r in &log.records {
        sink.push(r);
    }
    sink.finish()
}

/// Fraction of a log's clients classified as SNTP.
pub fn sntp_share(log: &ServerLog) -> f64 {
    let classes = classify_clients(log);
    if classes.is_empty() {
        return 0.0;
    }
    classes.values().filter(|p| **p == Protocol::Sntp).count() as f64 / classes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SERVERS;
    use crate::synth::{generate_server_log, SynthConfig};

    fn cfg() -> SynthConfig {
        SynthConfig { scale: 10_000, duration_secs: 86_400 }
    }

    #[test]
    fn classification_matches_ground_truth() {
        let ag1 = SERVERS.iter().find(|s| s.id == "AG1").unwrap();
        let log = generate_server_log(ag1, &cfg(), 1);
        let classes = classify_clients(&log);
        for r in &log.records {
            let got = classes[&r.client_id];
            let want = if r.true_sntp { Protocol::Sntp } else { Protocol::Ntp };
            assert_eq!(got, want, "client {}", r.client_id);
        }
    }

    #[test]
    fn sharded_sink_merge_equals_single_pass() {
        let ag1 = SERVERS.iter().find(|s| s.id == "AG1").unwrap();
        let log = generate_server_log(ag1, &cfg(), 9);
        let mut shards: Vec<ProtocolSink> = (0..4).map(|_| ProtocolSink::new()).collect();
        for (i, r) in log.records.iter().enumerate() {
            if let Some(s) = shards.get_mut(i % 4) {
                s.push(r);
            }
        }
        let mut merged = ProtocolSink::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged.finish(), classify_clients(&log));
    }

    #[test]
    fn shape_tally_is_accurate_and_merge_invariant() {
        let ag1 = SERVERS.iter().find(|s| s.id == "AG1").unwrap();
        let log = generate_server_log(ag1, &cfg(), 10);
        let mut whole = ShapeTally::new();
        let mut a = ShapeTally::new();
        let mut b = ShapeTally::new();
        for (i, r) in log.records.iter().enumerate() {
            whole.push(r);
            if i % 2 == 0 { a.push(r); } else { b.push(r); }
        }
        a.merge(&b);
        assert_eq!(whole.sntp, a.sntp);
        assert_eq!(whole.ntp, a.ntp);
        assert_eq!(whole.classified(), log.records.len() as u64);
        // The synth generator emits exactly ground-truth shapes, so the
        // request-level classifier is perfect on it.
        assert!((whole.accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn public_server_is_sntp_majority() {
        let mw2 = SERVERS.iter().find(|s| s.id == "MW2").unwrap();
        let log = generate_server_log(mw2, &SynthConfig::default(), 2);
        assert!(sntp_share(&log) > 0.5);
    }

    #[test]
    fn isp_internal_server_is_ntp_majority() {
        let en1 = SERVERS.iter().find(|s| s.id == "EN1").unwrap();
        let log = generate_server_log(en1, &SynthConfig { scale: 10, duration_secs: 86_400 }, 3);
        assert!(sntp_share(&log) < 0.5);
    }

    #[test]
    fn empty_log_yields_zero_share() {
        let ag1 = SERVERS.iter().find(|s| s.id == "AG1").unwrap();
        let mut log = generate_server_log(ag1, &cfg(), 4);
        log.records.clear();
        assert_eq!(sntp_share(&log), 0.0);
    }
}
