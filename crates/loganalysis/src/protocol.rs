//! SNTP vs NTP detection from packet shape.
//!
//! "SNTP sets all fields in an NTP packet to zero except the first
//! octet" (§2) — so a capture-side classifier can label each request by
//! inspecting the header: zeroed stratum/poll/precision/root fields mean
//! an SNTP client, populated ones mean a full NTP implementation. A
//! client is labelled by majority vote over its requests (a client never
//! legitimately flips implementations mid-capture, but captures can hold
//! corrupt packets).

use std::collections::BTreeMap;

use ntp_wire::NtpPacket;

use crate::synth::ServerLog;

/// Protocol verdict for a client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// RFC 4330-shaped requests.
    Sntp,
    /// Full NTP implementation.
    Ntp,
}

/// Classify one request.
pub fn classify_packet(packet: &NtpPacket) -> Protocol {
    if packet.is_sntp_client_shape() {
        Protocol::Sntp
    } else {
        Protocol::Ntp
    }
}

/// Classify every client in a log by majority vote over its requests.
/// Unparseable requests are ignored.
pub fn classify_clients(log: &ServerLog) -> BTreeMap<u32, Protocol> {
    let mut votes: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
    for r in &log.records {
        if let Ok(p) = NtpPacket::parse(&r.request) {
            let e = votes.entry(r.client_id).or_insert((0, 0));
            match classify_packet(&p) {
                Protocol::Sntp => e.0 += 1,
                Protocol::Ntp => e.1 += 1,
            }
        }
    }
    votes
        .into_iter()
        .map(|(id, (s, n))| (id, if s >= n { Protocol::Sntp } else { Protocol::Ntp }))
        .collect()
}

/// Fraction of a log's clients classified as SNTP.
pub fn sntp_share(log: &ServerLog) -> f64 {
    let classes = classify_clients(log);
    if classes.is_empty() {
        return 0.0;
    }
    classes.values().filter(|p| **p == Protocol::Sntp).count() as f64 / classes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SERVERS;
    use crate::synth::{generate_server_log, SynthConfig};

    fn cfg() -> SynthConfig {
        SynthConfig { scale: 10_000, duration_secs: 86_400 }
    }

    #[test]
    fn classification_matches_ground_truth() {
        let ag1 = SERVERS.iter().find(|s| s.id == "AG1").unwrap();
        let log = generate_server_log(ag1, &cfg(), 1);
        let classes = classify_clients(&log);
        for r in &log.records {
            let got = classes[&r.client_id];
            let want = if r.true_sntp { Protocol::Sntp } else { Protocol::Ntp };
            assert_eq!(got, want, "client {}", r.client_id);
        }
    }

    #[test]
    fn public_server_is_sntp_majority() {
        let mw2 = SERVERS.iter().find(|s| s.id == "MW2").unwrap();
        let log = generate_server_log(mw2, &SynthConfig::default(), 2);
        assert!(sntp_share(&log) > 0.5);
    }

    #[test]
    fn isp_internal_server_is_ntp_majority() {
        let en1 = SERVERS.iter().find(|s| s.id == "EN1").unwrap();
        let log = generate_server_log(en1, &SynthConfig { scale: 10, duration_secs: 86_400 }, 3);
        assert!(sntp_share(&log) < 0.5);
    }

    #[test]
    fn empty_log_yields_zero_share() {
        let ag1 = SERVERS.iter().find(|s| s.id == "AG1").unwrap();
        let mut log = generate_server_log(ag1, &cfg(), 4);
        log.records.clear();
        assert_eq!(sntp_share(&log), 0.0);
    }
}
