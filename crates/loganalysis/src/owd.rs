//! One-way-delay extraction with synchronization-state filtering.
//!
//! A server can estimate the client→server OWD of every request as
//! `T2 − T1` (its receive time minus the client's transmit timestamp) —
//! but that estimate is poisoned by the client's clock error, which for
//! unsynchronized SNTP clients reaches seconds. The paper applies "the
//! filtering heuristic described in Durairajan et al." to "eliminate
//! invalid latency measurements"; this module implements that idea in
//! two stages:
//!
//! 1. **Synchronization evidence** — full-NTP requests advertise the
//!    client's stratum and reference timestamp; a client whose reference
//!    timestamp is recent (it synchronized within the last poll cycle)
//!    is trusted. SNTP requests carry no such evidence and fall through
//!    to stage 2.
//! 2. **Plausibility bounds** — raw OWDs outside `(0, max_plausible]`
//!    are discarded; a client whose surviving samples still straddle an
//!    implausible range is dropped entirely.
//!
//! The per-record decision lives in [`surviving_owd_ms`] — one zero-copy
//! parse, filter, and out — and both consumers ride on it: the exact
//! per-client [`OwdSink`] (batch adapter: [`extract_owds`], pinned
//! byte-identical) and the full-scale pipeline's constant-memory
//! quantile sketches.
//!
//! Ground-truth validation (the generator knows every client's true
//! clock error) lives in the tests: the filter must keep most
//! well-synchronized clients and reject most badly-offset ones.

use std::collections::BTreeMap;

use ntp_wire::{NtpPacket, NtpTimestamp};

use crate::synth::{ts_at, LogRecord, ServerLog};

/// Filter parameters.
#[derive(Clone, Debug)]
pub struct OwdFilter {
    /// Maximum credible one-way delay, ms.
    pub max_plausible_ms: f64,
    /// Maximum age of the advertised reference timestamp for a full-NTP
    /// client to count as synchronized, seconds.
    pub max_ref_age_secs: f64,
}

impl Default for OwdFilter {
    fn default() -> Self {
        OwdFilter { max_plausible_ms: 1_500.0, max_ref_age_secs: 4_096.0 }
    }
}

/// Raw OWD of one record: server receive time minus client transmit
/// timestamp, ms. `None` when the packet doesn't parse.
pub fn raw_owd_ms(record: &LogRecord) -> Option<f64> {
    let p = NtpPacket::parse_ref(&record.request).ok()?;
    let t2: NtpTimestamp = ts_at(record.received_at_secs);
    Some(t2.wrapping_sub(p.transmit_ts()).as_millis_f64())
}

/// Evidence that the sending client's clock is synchronized, from the
/// request alone.
fn has_sync_evidence(p: &ntp_wire::PacketView<'_>, filter: &OwdFilter) -> bool {
    if p.is_sntp_client_shape() {
        return false;
    }
    let stratum = p.stratum();
    if stratum == 0 || stratum > 15 {
        return false;
    }
    if p.reference_ts().is_zero() {
        return false;
    }
    let age = p.transmit_ts().wrapping_sub(p.reference_ts()).as_seconds_f64();
    age >= 0.0 && age <= filter.max_ref_age_secs
}

/// The whole per-record pipeline: parse (zero-copy), compute the raw
/// OWD, and apply the Durairajan filter. Returns the surviving OWD in
/// ms, or `None` when the record is discarded (malformed or filtered).
pub fn surviving_owd_ms(record: &LogRecord, filter: &OwdFilter) -> Option<f64> {
    let p = NtpPacket::parse_ref(&record.request).ok()?;
    surviving_owd_ms_view(&p, record.received_at_secs, filter)
}

/// [`surviving_owd_ms`] on an already-parsed view — the hot-path entry
/// for composite sinks that parse each request exactly once and feed
/// several analyzers from the same view.
pub fn surviving_owd_ms_view(
    p: &ntp_wire::PacketView<'_>,
    received_at_secs: f64,
    filter: &OwdFilter,
) -> Option<f64> {
    let t2: NtpTimestamp = ts_at(received_at_secs);
    let owd = t2.wrapping_sub(p.transmit_ts()).as_millis_f64();
    let plausible = owd > 0.0 && owd <= filter.max_plausible_ms;
    // Trusted NTP clients only need plausibility; untrusted (SNTP)
    // clients need it too, but with a tighter skepticism: an OWD
    // under a millisecond from a WAN client is a clock artifact.
    let keep = if has_sync_evidence(p, filter) {
        plausible
    } else {
        plausible && owd >= 1.0
    };
    keep.then_some(owd)
}

/// Per-client OWD samples that survive the filter.
#[derive(Clone, Debug, Default)]
pub struct ClientOwds {
    /// Surviving samples, ms.
    pub samples_ms: Vec<f64>,
    /// Total records seen for the client.
    pub seen: u32,
    /// Records discarded.
    pub discarded: u32,
}

impl ClientOwds {
    /// Minimum surviving OWD (the per-client statistic of Figure 1).
    pub fn min_owd_ms(&self) -> Option<f64> {
        self.samples_ms.iter().copied().reduce(f64::min)
    }
}

/// Exact per-client OWD extraction, incrementally: `push` records in
/// time order, `merge` shards (sample vectors concatenate, so shards
/// must cover disjoint time ranges merged in time order to reproduce
/// the batch path exactly), `finish` for the per-client map.
#[derive(Clone, Debug, Default)]
pub struct OwdSink {
    clients: BTreeMap<u32, ClientOwds>,
}

impl OwdSink {
    /// Empty sink.
    pub fn new() -> OwdSink {
        OwdSink::default()
    }

    /// Filter one record into the sink.
    pub fn push(&mut self, record: &LogRecord, filter: &OwdFilter) {
        let entry = self.clients.entry(record.client_id).or_default();
        entry.seen += 1;
        match surviving_owd_ms(record, filter) {
            Some(owd) => entry.samples_ms.push(owd),
            None => entry.discarded += 1,
        }
    }

    /// Fold another sink in, appending its per-client samples after this
    /// one's (in-order merge of time-contiguous shards).
    pub fn merge(&mut self, other: &OwdSink) {
        for (id, c) in &other.clients {
            let entry = self.clients.entry(*id).or_default();
            entry.seen += c.seen;
            entry.discarded += c.discarded;
            entry.samples_ms.extend_from_slice(&c.samples_ms);
        }
    }

    /// The per-client map.
    pub fn finish(self) -> BTreeMap<u32, ClientOwds> {
        self.clients
    }
}

/// Extract filtered per-client OWDs from a log. (Adapter over
/// [`OwdSink`].)
pub fn extract_owds(log: &ServerLog, filter: &OwdFilter) -> BTreeMap<u32, ClientOwds> {
    let mut sink = OwdSink::new();
    for r in &log.records {
        sink.push(r, filter);
    }
    sink.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SERVERS;
    use crate::synth::{generate_server_log, SynthConfig};

    fn log() -> ServerLog {
        let ag1 = SERVERS.iter().find(|s| s.id == "AG1").unwrap();
        generate_server_log(ag1, &SynthConfig { scale: 10_000, duration_secs: 86_400 }, 42)
    }

    #[test]
    fn raw_owd_includes_clock_error() {
        let log = log();
        for r in log.records.iter().take(200) {
            let raw = raw_owd_ms(r).unwrap();
            let expected = r.true_owd_ms - r.true_clock_err_ms;
            assert!((raw - expected).abs() < 1.0, "raw={raw} expected={expected}");
        }
    }

    #[test]
    fn filter_keeps_synchronized_clients_samples() {
        let log = log();
        let owds = extract_owds(&log, &OwdFilter::default());
        // For well-synchronized clients, surviving min OWD should be
        // within ~20 ms of the true min OWD.
        let mut checked = 0;
        for (id, c) in &owds {
            let recs: Vec<&crate::synth::LogRecord> =
                log.records.iter().filter(|r| r.client_id == *id).collect();
            let well_synced = recs.iter().all(|r| r.true_clock_err_ms.abs() < 20.0);
            if !well_synced || c.samples_ms.len() < 3 {
                continue;
            }
            let true_min = recs.iter().map(|r| r.true_owd_ms).fold(f64::INFINITY, f64::min);
            if true_min > 1_400.0 {
                continue; // clipped by the plausibility cap
            }
            if let Some(min) = c.min_owd_ms() {
                assert!((min - true_min).abs() < 25.0, "min={min} true={true_min}");
                checked += 1;
            }
        }
        assert!(checked > 5, "checked={checked}");
    }

    #[test]
    fn sharded_sink_merge_equals_single_pass() {
        let log = log();
        let filter = OwdFilter::default();
        let whole = extract_owds(&log, &filter);
        // Time-contiguous shards merged in order: byte-identical result.
        let mid = log.records.len() / 2;
        let mut a = OwdSink::new();
        let mut b = OwdSink::new();
        for (i, r) in log.records.iter().enumerate() {
            if i < mid { a.push(r, &filter) } else { b.push(r, &filter) }
        }
        a.merge(&b);
        let merged = a.finish();
        assert_eq!(whole.len(), merged.len());
        for (id, c) in &whole {
            let m = &merged[id];
            assert_eq!(c.seen, m.seen);
            assert_eq!(c.discarded, m.discarded);
            assert_eq!(c.samples_ms, m.samples_ms);
        }
    }

    #[test]
    fn badly_offset_clients_lose_most_samples() {
        let log = log();
        let owds = extract_owds(&log, &OwdFilter::default());
        let mut bad_kept = 0u32;
        let mut bad_total = 0u32;
        for r in &log.records {
            if r.true_clock_err_ms.abs() > 2_000.0 {
                bad_total += 1;
            }
        }
        for (id, c) in &owds {
            let err = log
                .records
                .iter()
                .find(|r| r.client_id == *id)
                .map(|r| r.true_clock_err_ms)
                .unwrap_or(0.0);
            if err.abs() > 2_000.0 {
                bad_kept += c.samples_ms.len() as u32;
            }
        }
        assert!(bad_total > 0);
        let kept_frac = bad_kept as f64 / bad_total as f64;
        assert!(kept_frac < 0.4, "badly-offset clients kept {kept_frac}");
    }

    #[test]
    fn negative_owds_always_discarded() {
        let log = log();
        let owds = extract_owds(&log, &OwdFilter::default());
        for c in owds.values() {
            assert!(c.samples_ms.iter().all(|&o| o > 0.0));
        }
    }

    #[test]
    fn accounting_adds_up() {
        let log = log();
        let owds = extract_owds(&log, &OwdFilter::default());
        let seen: u32 = owds.values().map(|c| c.seen).sum();
        let kept: usize = owds.values().map(|c| c.samples_ms.len()).sum();
        let discarded: u32 = owds.values().map(|c| c.discarded).sum();
        assert_eq!(seen as usize, log.records.len());
        assert_eq!(kept + discarded as usize, seen as usize);
    }
}
