//! Time-to-reconvergence over a fleet error series.
//!
//! The chaos experiments record per-group error quantiles as a time
//! series (e.g. `mntp::fleet::GroupSample` p99s) across fault windows:
//! a regional outage ends, the herd reconnects, and the question the
//! artifact has to answer is *how long until the population is back in
//! spec — and how bad did it get in the meantime?* This module is that
//! ruler: a sustained-threshold reconvergence test plus a peak-error
//! scan, both pure functions over `(t_secs, error_ms)` pairs so the
//! caller can feed any quantile it cares about.
//!
//! "Sustained" matters: the first post-fault sample under the threshold
//! is often a lucky quantile while stragglers are still stepping their
//! clocks. Reconvergence here means the series goes under the threshold
//! *and stays there* for `sustain_secs` (or to the end of the recorded
//! series, whichever comes first — a series that ends converged counts).

/// What counts as "recovered".
#[derive(Clone, Copy, Debug)]
pub struct RecoveryConfig {
    /// The series is "in spec" when the error metric is at or below this
    /// many milliseconds.
    pub threshold_ms: f64,
    /// How long the series must stay in spec before the first in-spec
    /// instant is declared the reconvergence point. `0.0` accepts the
    /// first in-spec sample outright.
    pub sustain_secs: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig { threshold_ms: 10.0, sustain_secs: 30.0 }
    }
}

/// Seconds from `fault_end_secs` until the series first goes — and
/// stays — at or below `cfg.threshold_ms`, or `None` if it never does
/// within the recorded series.
///
/// Only samples at or after `fault_end_secs` are considered. A
/// candidate recovery instant is rejected if the series pops back above
/// the threshold within `cfg.sustain_secs` of it; the scan then resumes
/// after the violation. A series that stays in spec through its final
/// sample counts as sustained even if less than `sustain_secs` of it
/// was recorded.
pub fn time_to_reconvergence(
    series: &[(f64, f64)],
    fault_end_secs: f64,
    cfg: &RecoveryConfig,
) -> Option<f64> {
    let tail: Vec<(f64, f64)> = series
        .iter()
        .copied()
        .filter(|(t, _)| *t >= fault_end_secs)
        .collect();
    let mut i = 0;
    while i < tail.len() {
        let Some(&(t0, v0)) = tail.get(i) else {
            break;
        };
        if v0 > cfg.threshold_ms {
            i += 1;
            continue;
        }
        // Candidate: scan forward until the sustain window is covered or
        // the threshold is violated.
        let mut violated_at = None;
        for (j, &(t, v)) in tail.iter().enumerate().skip(i) {
            if v > cfg.threshold_ms {
                violated_at = Some(j);
                break;
            }
            if t - t0 >= cfg.sustain_secs {
                break;
            }
        }
        match violated_at {
            None => return Some(t0 - fault_end_secs),
            Some(j) => i = j + 1,
        }
    }
    None
}

/// The worst sample in `[from_secs, to_secs)`: `(t_secs, error_ms)` of
/// the maximum error, or `None` if the window holds no samples. This is
/// the degradation half of a recovery story — how far out of spec the
/// fault pushed the population before the ladder/selection caught it.
pub fn peak_error(series: &[(f64, f64)], from_secs: f64, to_secs: f64) -> Option<(f64, f64)> {
    series
        .iter()
        .copied()
        .filter(|(t, _)| *t >= from_secs && *t < to_secs)
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold_ms: f64, sustain_secs: f64) -> RecoveryConfig {
        RecoveryConfig { threshold_ms, sustain_secs }
    }

    #[test]
    fn clean_recovery_is_found_at_first_in_spec_sample() {
        // Fault ends at t=100; errors decay and stay low.
        let series = [(90.0, 3.0), (100.0, 80.0), (110.0, 40.0), (120.0, 8.0), (130.0, 5.0), (140.0, 4.0), (150.0, 4.0)];
        let ttr = time_to_reconvergence(&series, 100.0, &cfg(10.0, 20.0));
        assert_eq!(ttr, Some(20.0)); // t=120 is the first sustained in-spec instant
    }

    #[test]
    fn bounce_above_threshold_resets_the_clock() {
        // Dips in spec at t=110 but pops back out at t=120 — the real
        // recovery is the second dip at t=130.
        let series = [(100.0, 50.0), (110.0, 9.0), (120.0, 30.0), (130.0, 6.0), (140.0, 5.0), (150.0, 5.0), (160.0, 4.0)];
        let ttr = time_to_reconvergence(&series, 100.0, &cfg(10.0, 25.0));
        assert_eq!(ttr, Some(30.0));
    }

    #[test]
    fn never_recovering_yields_none() {
        let series = [(100.0, 50.0), (120.0, 45.0), (140.0, 60.0)];
        assert_eq!(time_to_reconvergence(&series, 100.0, &cfg(10.0, 10.0)), None);
        assert_eq!(time_to_reconvergence(&[], 100.0, &cfg(10.0, 10.0)), None);
    }

    #[test]
    fn series_ending_converged_counts_as_sustained() {
        // Only 5 s of in-spec tail recorded against a 30 s sustain
        // requirement — but the series *ends* in spec, so it counts.
        let series = [(100.0, 50.0), (110.0, 8.0), (115.0, 7.0)];
        let ttr = time_to_reconvergence(&series, 100.0, &cfg(10.0, 30.0));
        assert_eq!(ttr, Some(10.0));
    }

    #[test]
    fn samples_before_the_fault_end_are_ignored() {
        // In-spec steady state before the fault must not read as an
        // instant recovery.
        let series = [(50.0, 2.0), (100.0, 90.0), (130.0, 3.0), (160.0, 3.0)];
        let ttr = time_to_reconvergence(&series, 100.0, &cfg(10.0, 20.0));
        assert_eq!(ttr, Some(30.0));
    }

    #[test]
    fn zero_sustain_accepts_the_first_dip() {
        let series = [(100.0, 50.0), (110.0, 9.0), (120.0, 30.0)];
        assert_eq!(time_to_reconvergence(&series, 100.0, &cfg(10.0, 0.0)), Some(10.0));
    }

    #[test]
    fn peak_error_scans_the_window() {
        let series = [(90.0, 3.0), (100.0, 80.0), (110.0, 95.0), (120.0, 8.0)];
        assert_eq!(peak_error(&series, 100.0, 120.0), Some((110.0, 95.0)));
        assert_eq!(peak_error(&series, 200.0, 300.0), None);
    }
}
