//! # loganalysis
//!
//! The NTP-server-log measurement pipeline of the paper's §3.1, plus the
//! synthetic log generator that stands in for the 19 production servers'
//! tcpdump traces (see DESIGN.md for the substitution argument).
//!
//! * [`model`] — the study population: the paper's Table 1 server
//!   profiles (stratum, IP version, client and measurement counts) and
//!   25 service-provider profiles in the four latency categories of
//!   Figure 1 (cloud/hosting, ISP, broadband, mobile).
//! * [`synth`] — generate a server's worth of request/response records
//!   as real 48-byte NTP packets with per-client clocks, protocols
//!   (SNTP vs NTP shapes) and path latencies. Counts are scaled down
//!   from Table 1 (default 1/1000) with proportions preserved.
//! * [`protocol`] — classify each client as SNTP or NTP from packet
//!   shape, the same heuristic the paper applies to tcpdump output.
//! * [`classify`] — keyword-based service-provider classification from
//!   reverse-DNS hostnames ("fairly rudimentary \[but\] sufficient",
//!   §3.1) — validated against the generator's ground truth in tests.
//! * [`owd`] — one-way-delay extraction with the synchronization-state
//!   filtering heuristic of Durairajan et al. (HotNets'15), which the
//!   paper uses to discard invalid latency samples.
//! * [`pcap_input`] — parse libpcap captures (e.g. written by
//!   `netsim::pcap`) into analyzable NTP datagrams: the tcpdump front
//!   end the paper's tooling was built on.
//! * [`interarrival`] — request inter-arrival statistics over a server
//!   log, globally (the herding view: synchronized clients pile up in
//!   the same instants) and per client (the poll-schedule view) — the
//!   server-side lens the fleet experiment feeds with simulated
//!   arrivals.
//! * [`report`] — assemble Table 1, Figure 1 (min-OWD distributions per
//!   provider) and Figure 2 (SNTP vs NTP shares).
//! * [`recovery`] — sustained-threshold time-to-reconvergence and
//!   peak-error measurement over fleet error series: the ruler the chaos
//!   experiments apply to each fault phase.
//! * [`stream`] — the streaming seam: a one-pass, constant-memory
//!   [`stream::ChunkSummary`] bundling all the incremental sinks, with
//!   the deterministic (server, chunk)-ordered merge the full-scale
//!   209M-record pipeline folds over (DESIGN.md §13).
//!
//! Every analyzer exists in two forms: an incremental sink
//! (`push`/`merge`/`finish`) and the original batch function, now a
//! thin adapter over the sink and pinned byte-identical by tests. The
//! generator side mirrors this: [`synth::stream_chunk`] produces the
//! same population chunk-by-chunk with no whole-day materialization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod interarrival;
pub mod model;
pub mod owd;
pub mod pcap_input;
pub mod protocol;
pub mod recovery;
pub mod report;
pub mod stream;
pub mod synth;

pub use interarrival::{arrival_rate_per_sec, global_interarrival, per_client_interarrival, GapSink, GapSketch, InterarrivalSummary};
pub use model::{ProviderCategory, ProviderProfile, ServerProfile, PROVIDERS, SERVERS};
pub use recovery::{peak_error, time_to_reconvergence, RecoveryConfig};
pub use report::{figure1, figure2, generate_all_logs, table1, Figure1Row, Figure2Row, Table1Row};
pub use stream::ChunkSummary;
pub use synth::{chunk_len, chunk_plan, generate_server_log, stream_chunk, ChunkPlan, LogRecord, ServerLog, StreamSynthConfig, SynthConfig};
