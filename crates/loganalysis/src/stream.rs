//! The streaming seam: one-pass, constant-memory analysis of a record
//! stream.
//!
//! [`ChunkSummary`] bundles every incremental sink the full-scale
//! pipeline needs — protocol shape tally, provider classification
//! tally, filtered per-provider/per-category OWD quantile sketches, and
//! the global inter-arrival gap sketch — behind one
//! `push(&LogRecord)`. A chunk's summary is a pure function of the
//! chunk's records; the whole-regime summary is a *flat fold* of chunk
//! summaries in (server, chunk) order:
//!
//! - chunks of the same server fold with
//!   [`merge_adjacent`](ChunkSummary::merge_adjacent) (time-contiguous:
//!   the boundary inter-arrival gap is stitched), and
//! - servers fold with [`merge_union`](ChunkSummary::merge_union)
//!   (independent arrival streams pool, no cross-server gap).
//!
//! Determinism contract: chunk boundaries are fixed by configuration
//! (`StreamSynthConfig::chunk_records`), never by worker count, and the
//! fold is always the same flat left-to-right order — so any `(shards,
//! jobs)` decomposition that parallelizes chunk *production* yields
//! byte-identical folded results (see `devtools::sketch` for why the
//! sketch merge must not be re-associated).
//!
//! Memory contract: a `ChunkSummary` holds counters and fixed-`k`
//! sketches only — [`state_bytes`](ChunkSummary::state_bytes) grows
//! with `k·log(records/k)`, not with the record count — which is what
//! lets the 209M-record regime run in a few megabytes.

use devtools::sketch::QuantileSketch;

use crate::classify::{HostClass, ProviderTally, CATEGORY_ORDER};
use crate::interarrival::GapSketch;
use crate::model::PROVIDERS;
use crate::owd::{surviving_owd_ms_view, OwdFilter};
use crate::protocol::ShapeTally;
use crate::synth::LogRecord;

/// Everything the full-scale report needs from a stream of records, in
/// constant memory.
#[derive(Clone, Debug)]
pub struct ChunkSummary {
    /// Records pushed.
    pub records: u64,
    /// Request-level SNTP/NTP shape tally with ground-truth confusion.
    pub shapes: ShapeTally,
    /// Record-level provider/category classification tally.
    pub providers: ProviderTally,
    /// Surviving (post-filter) OWD samples.
    pub owd_kept: u64,
    /// Records whose OWD the filter discarded.
    pub owd_discarded: u64,
    /// Filtered-OWD sketch over all records.
    pub owd_all: QuantileSketch,
    /// Filtered-OWD sketch per provider ([`PROVIDERS`] order).
    pub owd_per_provider: Vec<QuantileSketch>,
    /// Filtered-OWD sketch per keyword-only category
    /// ([`CATEGORY_ORDER`] order).
    pub owd_per_category: Vec<QuantileSketch>,
    /// Global inter-arrival gap sketch.
    pub gaps: GapSketch,
}

impl Default for ChunkSummary {
    fn default() -> Self {
        ChunkSummary::new(devtools::sketch::DEFAULT_K)
    }
}

impl ChunkSummary {
    /// Empty summary with sketch accuracy parameter `k`.
    pub fn new(k: usize) -> ChunkSummary {
        ChunkSummary {
            records: 0,
            shapes: ShapeTally::new(),
            providers: ProviderTally::new(),
            owd_kept: 0,
            owd_discarded: 0,
            owd_all: QuantileSketch::new(k),
            owd_per_provider: (0..PROVIDERS.len()).map(|_| QuantileSketch::new(k)).collect(),
            owd_per_category: (0..CATEGORY_ORDER.len()).map(|_| QuantileSketch::new(k)).collect(),
            gaps: GapSketch::new(k),
        }
    }

    /// Absorb one record. Records must arrive in non-decreasing
    /// `received_at_secs` order (log order) for the gap stream to mean
    /// anything; every other sink is order-insensitive.
    pub fn push(&mut self, record: &LogRecord, filter: &OwdFilter) {
        self.records += 1;
        // One zero-copy parse feeds both the shape tally and the OWD
        // filter — at 209M records the second parse is measurable.
        let view = ntp_wire::NtpPacket::parse_ref(&record.request).ok();
        self.shapes.push_view(view.as_ref(), record.true_sntp);
        let class = self.providers.push(record);
        self.gaps.push_arrival(record.received_at_secs);
        let owd = view
            .as_ref()
            .and_then(|p| surviving_owd_ms_view(p, record.received_at_secs, filter));
        match owd {
            Some(owd) => {
                self.owd_kept += 1;
                self.owd_all.push(owd);
                match class {
                    HostClass::Provider(i) => {
                        if let Some(sk) = self.owd_per_provider.get_mut(i) {
                            sk.push(owd);
                        }
                    }
                    HostClass::CategoryOnly(cat) => {
                        let pos = CATEGORY_ORDER.iter().position(|c| *c == cat);
                        if let Some(sk) = pos.and_then(|p| self.owd_per_category.get_mut(p)) {
                            sk.push(owd);
                        }
                    }
                    HostClass::Unknown => {}
                }
            }
            None => self.owd_discarded += 1,
        }
    }

    fn merge_counters(&mut self, other: &ChunkSummary) {
        self.records += other.records;
        self.shapes.merge(&other.shapes);
        self.providers.merge(&other.providers);
        self.owd_kept += other.owd_kept;
        self.owd_discarded += other.owd_discarded;
        self.owd_all.merge(&other.owd_all);
        for (a, b) in self.owd_per_provider.iter_mut().zip(&other.owd_per_provider) {
            a.merge(b);
        }
        for (a, b) in self.owd_per_category.iter_mut().zip(&other.owd_per_category) {
            a.merge(b);
        }
    }

    /// Fold in the summary of the *next time-contiguous chunk of the
    /// same server*: the inter-arrival gap spanning the chunk boundary
    /// is stitched in.
    pub fn merge_adjacent(&mut self, other: &ChunkSummary) {
        self.merge_counters(other);
        self.gaps.merge_adjacent(&other.gaps);
    }

    /// Fold in the summary of an *independent stream* (another server):
    /// gap populations pool without a synthetic boundary gap.
    pub fn merge_union(&mut self, other: &ChunkSummary) {
        self.merge_counters(other);
        self.gaps.merge_union(&other.gaps);
    }

    /// Bytes of state held — the measurable form of the constant-memory
    /// claim (grows with sketch depth, not record count).
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<ChunkSummary>()
            + self.owd_all.state_bytes()
            + self.owd_per_provider.iter().map(|s| s.state_bytes()).sum::<usize>()
            + self.owd_per_category.iter().map(|s| s.state_bytes()).sum::<usize>()
            + self.gaps.state_bytes()
    }

    /// Filtered-OWD quantile for one provider (index into
    /// [`PROVIDERS`]), `None` when that provider has no surviving
    /// samples.
    pub fn provider_owd_quantile(&self, provider: usize, q: f64) -> Option<f64> {
        let sk = self.owd_per_provider.get(provider)?;
        if sk.is_empty() {
            None
        } else {
            Some(sk.query(q))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SERVERS;
    use crate::protocol::classify_clients;
    use crate::synth::{generate_server_log, ServerLog, SynthConfig};

    fn log() -> ServerLog {
        let ag1 = SERVERS.iter().find(|s| s.id == "AG1").unwrap();
        generate_server_log(ag1, &SynthConfig { scale: 10_000, duration_secs: 86_400 }, 7)
    }

    fn summarize_whole(log: &ServerLog) -> ChunkSummary {
        let filter = OwdFilter::default();
        let mut s = ChunkSummary::default();
        for r in &log.records {
            s.push(r, &filter);
        }
        s
    }

    #[test]
    fn composite_counters_agree_with_batch_analyzers() {
        let log = log();
        let s = summarize_whole(&log);
        assert_eq!(s.records, log.records.len() as u64);
        assert_eq!(s.shapes.classified(), log.records.len() as u64);
        // Same request stream ⇒ vote totals match the exact per-client
        // classifier's input.
        let classes = classify_clients(&log);
        assert_eq!(classes.len() as u64, {
            // every client voted at least once
            let mut ids: Vec<u32> = log.records.iter().map(|r| r.client_id).collect();
            ids.sort_unstable();
            ids.dedup();
            ids.len() as u64
        });
        // Gap count: n records in time order ⇒ n-1 gaps.
        assert_eq!(s.gaps.gaps(), log.records.len() as u64 - 1);
        // OWD accounting adds up.
        assert_eq!(s.owd_kept + s.owd_discarded, s.records);
        let owds = crate::owd::extract_owds(&log, &OwdFilter::default());
        let kept: usize = owds.values().map(|c| c.samples_ms.len()).sum();
        assert_eq!(s.owd_kept as usize, kept);
        assert_eq!(s.owd_all.count() as usize, kept);
    }

    #[test]
    fn chunked_fold_is_byte_identical_to_one_pass() {
        let log = log();
        let filter = OwdFilter::default();
        let fold = |n_chunks: usize| {
            let mut acc: Option<ChunkSummary> = None;
            for chunk in log.records.chunks(log.records.len().div_ceil(n_chunks)) {
                let mut s = ChunkSummary::default();
                for r in chunk {
                    s.push(r, &filter);
                }
                match &mut acc {
                    None => acc = Some(s),
                    Some(a) => a.merge_adjacent(&s),
                }
            }
            acc.expect("records")
        };
        // The *same chunking* must reproduce exactly regardless of when
        // or where each chunk summary was produced (that's what the
        // parallel pipeline relies on: chunk boundaries are config, the
        // fold order is fixed).
        let a = fold(8);
        let b = fold(8);
        assert_eq!(a.records, b.records);
        assert_eq!(a.owd_kept, b.owd_kept);
        assert_eq!(format!("{:?}", a.owd_all), format!("{:?}", b.owd_all));
        assert_eq!(format!("{:?}", a.gaps.finish()), format!("{:?}", b.gaps.finish()));
        // And the exact (non-sketched) parts are chunking-invariant
        // altogether:
        let whole = summarize_whole(&log);
        assert_eq!(whole.records, a.records);
        assert_eq!(whole.shapes.sntp, a.shapes.sntp);
        assert_eq!(whole.providers.per_provider, a.providers.per_provider);
        assert_eq!(whole.owd_kept, a.owd_kept);
        assert_eq!(whole.gaps.gaps(), a.gaps.gaps());
    }

    #[test]
    fn union_merge_pools_without_boundary_gap() {
        let log = log();
        let s = summarize_whole(&log);
        let mut u = ChunkSummary::default();
        u.merge_union(&s);
        u.merge_union(&s);
        assert_eq!(u.records, 2 * s.records);
        // Two independent streams of g gaps each pool to 2g, not 2g+1.
        assert_eq!(u.gaps.gaps(), 2 * s.gaps.gaps());
    }

    #[test]
    fn state_is_constant_memory() {
        let log = log();
        let s = summarize_whole(&log);
        // 31 sketches at k=256 on ~50k records: well under 2 MB, and —
        // the actual claim — bounded by sketch depth, not record count.
        assert!(s.state_bytes() < 2 << 20, "state {}", s.state_bytes());
        let per_sketch = 64 << 10; // loose per-sketch ceiling at this k
        assert!(s.owd_all.state_bytes() < per_sketch);
        assert!(s.gaps.state_bytes() < per_sketch);
    }

    #[test]
    fn provider_owd_quantiles_follow_the_latency_ordering() {
        let log = log();
        let s = summarize_whole(&log);
        // Median OWD of mobile providers exceeds cloud providers (the
        // Figure 1 ordering), measured from the sketches alone.
        let med = |cat: crate::model::ProviderCategory| {
            let meds: Vec<f64> = (0..PROVIDERS.len())
                .filter(|i| {
                    PROVIDERS.get(*i).map(|p| p.category) == Some(cat)
                        && s.owd_per_provider.get(*i).map(|sk| sk.count() >= 50).unwrap_or(false)
                })
                .filter_map(|i| s.provider_owd_quantile(i, 0.5))
                .collect();
            assert!(!meds.is_empty(), "no populated provider in {cat:?}");
            meds.iter().sum::<f64>() / meds.len() as f64
        };
        let cloud = med(crate::model::ProviderCategory::CloudHosting);
        let mobile = med(crate::model::ProviderCategory::Mobile);
        assert!(cloud < mobile, "cloud={cloud} mobile={mobile}");
    }
}
