//! Synthetic server-log generation.
//!
//! For each Table 1 server profile, generate a (scaled-down) day of
//! client traffic as *real 48-byte NTP packets*: every record carries the
//! request bytes as captured at the server, plus the capture-side
//! metadata a tcpdump-based pipeline has (server receive time, client
//! hostname from reverse DNS). Ground-truth fields (true provider, true
//! protocol, true client clock error, true OWD) ride along so the
//! analysis heuristics can be *validated*, which the paper could not do
//! with production traces.
//!
//! Two generators share one client model ([`draw_client_spec`] /
//! [`emit_record`] are the common core):
//!
//! - [`generate_server_log`] — the original batch generator: materialize
//!   the whole (scaled) day, sort it, return a [`ServerLog`]. Pinned
//!   byte-identical across refactors; every committed artifact rides on
//!   it.
//! - [`stream_chunk`] — the full-scale streaming generator: the day is
//!   cut into fixed-size record chunks, each keyed *only* by
//!   `(seed, server, chunk)`, so any chunk can be produced independently
//!   and in parallel with no whole-day materialization and no global
//!   sort. Arrival times are drawn per chunk inside the chunk's time
//!   window and sorted locally, so concatenating chunks in index order
//!   yields a globally time-ordered stream. Client identity is a uniform
//!   draw per record and the client's spec is re-derived on the fly from
//!   a pure function of `(seed, server, client)` — the same spec every
//!   time the client shows up, in any chunk. (The batch generator skews
//!   per-client volume Zipf-style; the streaming generator's volume is
//!   uniform per client — a documented modelling difference, not a bug.)

use clocksim::rng::SimRng;
use ntp_wire::{packet::Mode, sntp_profile, NtpDuration, NtpPacket, NtpTimestamp, Version};

use crate::model::{ProviderCategory, ServerProfile, PROVIDERS};

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Scale divisor applied to Table 1 counts (default 1000).
    pub scale: u64,
    /// Capture duration, seconds (paper: 24 h).
    pub duration_secs: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig { scale: 1000, duration_secs: 86_400 }
    }
}

/// One captured request as the analysis pipeline sees it, plus ground
/// truth for validation.
#[derive(Clone, Debug)]
pub struct LogRecord {
    /// Client identity (index into the synthetic population).
    pub client_id: u32,
    /// Reverse-DNS hostname of the client.
    pub hostname: String,
    /// Raw request bytes as captured.
    pub request: Vec<u8>,
    /// Server receive time (server clock ≈ true time), seconds into the
    /// capture.
    pub received_at_secs: f64,
    // ---- ground truth (not available to heuristics; used by tests) ----
    /// Which provider the client belongs to.
    pub true_provider: usize,
    /// Whether the client arrived over IPv6 (only on dual-stack servers).
    pub true_ipv6: bool,
    /// True protocol: `true` = SNTP.
    pub true_sntp: bool,
    /// True client→server OWD of this request, ms.
    pub true_owd_ms: f64,
    /// True client clock error at send time, ms.
    pub true_clock_err_ms: f64,
}

/// A synthetic day of traffic at one server.
#[derive(Clone, Debug)]
pub struct ServerLog {
    /// Which server this log belongs to.
    pub server: ServerProfile,
    /// Captured requests, in time order.
    pub records: Vec<LogRecord>,
    /// Unique clients generated.
    pub unique_clients: u64,
}

struct ClientSpec {
    provider: usize,
    ipv6: bool,
    hostname: String,
    sntp: bool,
    /// Minimum (propagation) OWD, ms.
    min_owd_ms: f64,
    /// Per-request jitter mean, ms.
    jitter_mean_ms: f64,
    /// Clock error at capture start, ms.
    clock_err_ms: f64,
    /// Clock skew, ppm.
    skew_ppm: f64,
    /// Number of requests in the capture.
    requests: u32,
    /// Whether the client's clock is well synchronized (drives the
    /// Durairajan filter's ground truth).
    synchronized: bool,
}

/// Draw a client's minimum OWD for a category. Cloud/ISP: tight
/// lognormal. Broadband: wider. Mobile: near-uniform spread over a huge
/// range — the "linear trend" of Figure 1's mobile CDFs.
fn draw_min_owd(cat: ProviderCategory, rng: &mut SimRng) -> f64 {
    match cat {
        ProviderCategory::CloudHosting => rng.lognormal(40.0f64.ln(), 0.35),
        ProviderCategory::Isp => rng.lognormal(50.0f64.ln(), 0.40),
        ProviderCategory::Broadband => rng.lognormal(250.0f64.ln(), 0.55),
        ProviderCategory::Mobile => rng.uniform_range(100.0, 1000.0),
    }
}

fn pick_provider(rng: &mut SimRng, isp_internal: bool) -> usize {
    if isp_internal {
        // ISP-internal servers see mostly the ISP's own wired
        // infrastructure (category Isp), some cloud monitoring.
        if rng.chance(0.8) {
            rng.int_range(3, 8) as usize
        } else {
            rng.int_range(0, 2) as usize
        }
    } else {
        let total: f64 = PROVIDERS.iter().map(|p| p.client_weight).sum();
        let mut x = rng.uniform() * total;
        for (i, p) in PROVIDERS.iter().enumerate() {
            x -= p.client_weight;
            if x <= 0.0 {
                return i;
            }
        }
        PROVIDERS.len() - 1
    }
}

fn hostname(provider: usize, client: u32, rng: &mut SimRng) -> String {
    use std::fmt::Write as _;
    let Some(p) = PROVIDERS.get(provider) else {
        return String::new(); // unreachable: provider comes from pick_provider
    };
    let kw = p.category.hostname_keywords();
    let k = kw.get(rng.index(kw.len())).copied().unwrap_or("net");
    // Single-allocation build (the streaming generator calls this per
    // *record*): same draws in the same order, same bytes out as the
    // original `format!` with `p.name.replace(' ', "").to_lowercase()`.
    let a = rng.int_range(1, 254);
    let b = rng.int_range(1, 254);
    let mut s = String::with_capacity(26 + k.len() + p.name.len());
    let _ = write!(s, "{a}-{b}-{}.{k}.", client % 251);
    for ch in p.name.chars() {
        if ch != ' ' {
            s.extend(ch.to_lowercase());
        }
    }
    s.push_str(".example.net");
    s
}

/// Draw one client's spec — the shared client model of both generators.
/// The draw order here is the batch generator's original order and is
/// load-bearing: reordering it changes every committed artifact.
fn draw_client_spec(rng: &mut SimRng, server: &ServerProfile, c: u32) -> ClientSpec {
    let provider = pick_provider(rng, server.isp_internal);
    let cat = PROVIDERS.get(provider).map(|p| p.category).unwrap_or(ProviderCategory::Isp);
    // ISP-internal servers (CI*/EN*) serve the ISP's own
    // infrastructure, which runs full ntpd regardless of category.
    let sntp = if server.isp_internal {
        rng.chance(0.15)
    } else {
        rng.chance(cat.sntp_fraction())
    };
    let min_owd_ms = draw_min_owd(cat, rng);
    // NTP clients are synchronized; SNTP clients often are not
    // (their clocks can be off by seconds — §2's vendor policies).
    let synchronized = if sntp { rng.chance(0.45) } else { rng.chance(0.97) };
    let clock_err_ms = if synchronized {
        rng.normal(0.0, 8.0)
    } else {
        // Up to several seconds of error, either sign.
        rng.normal(0.0, 2_500.0)
    };
    // Dual-stack servers (Table 1's "v4/v6") see a minority of
    // clients over IPv6; cloud/ISP infrastructure leads adoption.
    let ipv6 = server.ip_version == crate::model::IpVersion::V4V6
        && rng.chance(match cat {
            ProviderCategory::CloudHosting => 0.45,
            ProviderCategory::Isp => 0.30,
            ProviderCategory::Broadband => 0.15,
            ProviderCategory::Mobile => 0.25,
        });
    ClientSpec {
        provider,
        ipv6,
        hostname: hostname(provider, c, rng),
        sntp,
        min_owd_ms,
        jitter_mean_ms: match cat {
            ProviderCategory::Mobile => 80.0,
            ProviderCategory::Broadband => 25.0,
            _ => 6.0,
        },
        clock_err_ms,
        // Disciplined clients hold their rate near true; free-running
        // ones drift at crystal tolerance.
        skew_ppm: if synchronized { rng.normal(0.0, 0.1) } else { rng.normal(0.0, 15.0) },
        requests: 1, // at least one; remainder distributed below
        synchronized,
    }
}

/// Build one record for client `c` — the shared request model of both
/// generators. `t_send` and `owd_ms` are drawn by the caller (the two
/// generators parameterize time differently); the packet-shaping draws
/// (`poll`, reference age) happen here, after them, in the batch
/// generator's original order.
fn emit_record(
    rng: &mut SimRng,
    c: &ClientSpec,
    ci: u32,
    t_send: f64,
    owd_ms: f64,
    received_at_secs: f64,
) -> LogRecord {
    let clock_err = c.clock_err_ms + c.skew_ppm * 1e-3 * t_send; // ppm·s → ms
    // T1 on the client's clock.
    let t1 = ts_at(t_send).wrapping_add_duration(NtpDuration::from_seconds_f64(clock_err / 1e3));
    let packet = if c.sntp {
        sntp_profile::client_request(t1)
    } else {
        // Full ntpd-style request: poll/precision/stratum set,
        // reference timestamp recent when synchronized.
        let mut p = NtpPacket {
            version: Version::V4,
            mode: Mode::Client,
            stratum: 3,
            poll: 6 + rng.int_range(0, 4) as i8,
            precision: -20,
            transmit_ts: t1,
            ..Default::default()
        };
        p.reference_id = ntp_wire::RefId::ipv4(198, 51, 100, (ci % 250) as u8 + 1);
        let ref_age = if c.synchronized {
            rng.uniform_range(1.0, 900.0)
        } else {
            rng.uniform_range(100_000.0, 10_000_000.0)
        };
        p.reference_ts = t1.wrapping_add_duration(NtpDuration::from_seconds_f64(-ref_age));
        p.root_delay = ntp_wire::NtpShort::from_millis(30);
        p.root_dispersion = ntp_wire::NtpShort::from_millis(15);
        p
    };
    LogRecord {
        client_id: ci,
        hostname: c.hostname.clone(),
        request: packet.serialize(),
        received_at_secs,
        true_provider: c.provider,
        true_ipv6: c.ipv6,
        true_sntp: c.sntp,
        true_owd_ms: owd_ms,
        true_clock_err_ms: clock_err,
    }
}

/// Generate one server's synthetic log.
pub fn generate_server_log(server: &ServerProfile, cfg: &SynthConfig, seed: u64) -> ServerLog {
    let mut rng = SimRng::new(seed ^ 0x5EED_1065);
    let n_clients = (server.unique_clients / cfg.scale).max(5) as u32;
    let total_requests = (server.total_measurements / cfg.scale).max(n_clients as u64);

    // Build the client population.
    let mut clients = Vec::with_capacity(n_clients as usize);
    for c in 0..n_clients {
        clients.push(draw_client_spec(&mut rng, server, c));
    }
    // Distribute the remaining request budget: NTP clients poll
    // periodically and soak up most of the volume (a Zipf-ish skew).
    let mut remaining = total_requests.saturating_sub(n_clients as u64);
    while remaining > 0 {
        let i = rng.index(clients.len());
        let Some(cl) = clients.get_mut(i) else { break };
        let boost = if cl.sntp {
            1
        } else {
            rng.int_range(5, 40) as u64
        }
        .min(remaining);
        cl.requests += boost as u32;
        remaining -= boost;
    }

    // Emit records.
    let mut records = Vec::with_capacity(total_requests as usize);
    for (ci, c) in clients.iter().enumerate() {
        for _ in 0..c.requests {
            let t_send = rng.uniform_range(0.0, cfg.duration_secs as f64);
            let owd_ms = c.min_owd_ms + rng.exponential(c.jitter_mean_ms);
            records.push(emit_record(&mut rng, c, ci as u32, t_send, owd_ms, t_send + owd_ms / 1e3));
        }
    }
    records.sort_by(|a, b| a.received_at_secs.total_cmp(&b.received_at_secs));
    ServerLog { server: *server, records, unique_clients: n_clients as u64 }
}

/// NTP timestamp for `secs` into the capture (true timescale).
pub fn ts_at(secs: f64) -> NtpTimestamp {
    NtpTimestamp::from_parts(3_000_000, 0)
        .wrapping_add_duration(NtpDuration::from_seconds_f64(secs))
}

// ---------------------------------------------------------------------
// Streaming chunked generator
// ---------------------------------------------------------------------

/// Parameters of the chunked streaming generator.
#[derive(Clone, Debug)]
pub struct StreamSynthConfig {
    /// Scale divisor applied to Table 1 counts (`1` = the paper's full
    /// 209M-record regime).
    pub scale: u64,
    /// Capture duration, seconds (paper: 24 h).
    pub duration_secs: u64,
    /// Target records per chunk. This fixes the chunk boundaries — it is
    /// part of the *result's* identity, never derived from shard or job
    /// counts, which is what makes every (shards, jobs) decomposition
    /// byte-identical (DESIGN.md §13).
    pub chunk_records: u64,
}

impl Default for StreamSynthConfig {
    fn default() -> Self {
        StreamSynthConfig { scale: 1, duration_secs: 86_400, chunk_records: 1 << 20 }
    }
}

/// The chunk decomposition of one server's day under a
/// [`StreamSynthConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Records this server emits in total (Table 1 count ÷ scale).
    pub total_records: u64,
    /// Client population size.
    pub n_clients: u32,
    /// Number of chunks the day is cut into.
    pub chunks: u64,
}

/// Compute a server's chunk decomposition: same count model as
/// [`generate_server_log`], split into `ceil(total / chunk_records)`
/// time-window chunks.
pub fn chunk_plan(server: &ServerProfile, cfg: &StreamSynthConfig) -> ChunkPlan {
    let scale = cfg.scale.max(1);
    let n_clients = (server.unique_clients / scale).max(5) as u32;
    let total_records = (server.total_measurements / scale).max(n_clients as u64);
    let chunks = total_records.div_ceil(cfg.chunk_records.max(1)).max(1);
    ChunkPlan { total_records, n_clients, chunks }
}

/// Records in chunk `chunk` of a plan: the total split as evenly as
/// possible, earlier chunks taking the remainder.
pub fn chunk_len(plan: &ChunkPlan, chunk: u64) -> u64 {
    if chunk >= plan.chunks {
        return 0;
    }
    let base = plan.total_records / plan.chunks;
    let rem = plan.total_records % plan.chunks;
    base + u64::from(chunk < rem)
}

/// Stateless mixing of `(seed, server, salt, n)` into an independent RNG
/// seed (SplitMix64 finalizer over the combined words). This is the only
/// coupling between chunks: no generator state crosses a chunk boundary.
fn stream_key(seed: u64, server_index: usize, salt: u64, n: u64) -> u64 {
    let mut z = seed
        ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (server_index as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)
        ^ n.wrapping_mul(0xA24B_AED4_963E_E407);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const KEY_CHUNK: u64 = 0xC1;
const KEY_CLIENT: u64 = 0xC2;

/// Generate one chunk of one server's stream, pushing each record into
/// `sink` in server receive-time order. Memory is bounded by the chunk:
/// one `f64` arrival time per record plus a single in-flight
/// [`LogRecord`] — no whole-day materialization and no global sort
/// (concatenating chunks in index order is already globally sorted,
/// because chunk `c` owns the day's `c`-th time window).
///
/// The chunk is a pure function of `(seed, server, chunk)` under a fixed
/// config: any subset of chunks can be generated in any order, on any
/// worker, and byte-identical records come out.
pub fn stream_chunk(
    server: &ServerProfile,
    server_index: usize,
    cfg: &StreamSynthConfig,
    seed: u64,
    chunk: u64,
    sink: &mut dyn FnMut(&LogRecord),
) {
    let plan = chunk_plan(server, cfg);
    let len = chunk_len(&plan, chunk);
    if len == 0 {
        return;
    }
    let window = cfg.duration_secs as f64 / plan.chunks as f64;
    let t0 = chunk as f64 * window;
    let mut rng = SimRng::new(stream_key(seed, server_index, KEY_CHUNK, chunk));
    // Pass 1: the chunk's arrival times, sorted locally.
    let mut arrivals: Vec<f64> = (0..len).map(|_| rng.uniform_range(t0, t0 + window)).collect();
    arrivals.sort_by(f64::total_cmp);
    // Pass 2: one record per arrival. Client identity is a uniform draw;
    // the client's spec is re-derived from its pure per-client stream so
    // it is identical in every chunk it appears in.
    for &t_arrive in &arrivals {
        let ci = rng.below(plan.n_clients as u64) as u32;
        let mut client_rng = SimRng::new(stream_key(seed, server_index, KEY_CLIENT, ci as u64));
        let spec = draw_client_spec(&mut client_rng, server, ci);
        let owd_ms = spec.min_owd_ms + rng.exponential(spec.jitter_mean_ms);
        let record = emit_record(&mut rng, &spec, ci, t_arrive - owd_ms / 1e3, owd_ms, t_arrive);
        sink(&record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SERVERS;

    fn small_cfg() -> SynthConfig {
        SynthConfig { scale: 10_000, duration_secs: 86_400 }
    }

    #[test]
    fn counts_scale_with_table1() {
        let su1 = SERVERS.iter().find(|s| s.id == "SU1").unwrap();
        let log = generate_server_log(su1, &small_cfg(), 1);
        // 21,101 clients / 10,000 → max(2,5) = 5; 16.4M / 10k = 1640 reqs.
        assert_eq!(log.unique_clients, 5);
        let expect = (su1.total_measurements / 10_000) as usize;
        assert!(
            (log.records.len() as i64 - expect as i64).abs() < expect as i64 / 5 + 10,
            "records {} vs {expect}",
            log.records.len()
        );
    }

    #[test]
    fn records_are_parseable_packets_in_time_order() {
        let ag1 = SERVERS.iter().find(|s| s.id == "AG1").unwrap();
        let log = generate_server_log(ag1, &small_cfg(), 2);
        let mut prev = 0.0;
        for r in &log.records {
            let p = NtpPacket::parse(&r.request).expect("valid packet");
            assert_eq!(p.mode, Mode::Client);
            assert!(r.received_at_secs >= prev);
            prev = r.received_at_secs;
        }
    }

    #[test]
    fn sntp_records_have_sntp_shape() {
        let ag1 = SERVERS.iter().find(|s| s.id == "AG1").unwrap();
        let log = generate_server_log(ag1, &small_cfg(), 3);
        for r in &log.records {
            let p = NtpPacket::parse(&r.request).unwrap();
            assert_eq!(p.is_sntp_client_shape(), r.true_sntp, "host {}", r.hostname);
        }
    }

    #[test]
    fn mobile_clients_mostly_sntp() {
        let mw2 = SERVERS.iter().find(|s| s.id == "MW2").unwrap();
        let log = generate_server_log(mw2, &SynthConfig::default(), 4);
        // Per *client*, as the paper counts: >95% of mobile clients SNTP.
        let mut seen = std::collections::BTreeMap::new();
        for r in &log.records {
            if PROVIDERS[r.true_provider].category == ProviderCategory::Mobile {
                seen.insert(r.client_id, r.true_sntp);
            }
        }
        assert!(!seen.is_empty());
        let sntp = seen.values().filter(|s| **s).count() as f64 / seen.len() as f64;
        assert!(sntp > 0.9, "mobile SNTP client share {sntp}");
    }

    #[test]
    fn isp_internal_servers_are_ntp_heavy() {
        let ci1 = SERVERS.iter().find(|s| s.id == "CI1").unwrap();
        // CI1 has few clients; use scale 1 for fidelity.
        let log = generate_server_log(ci1, &SynthConfig { scale: 10, duration_secs: 86_400 }, 5);
        let sntp = log.records.iter().filter(|r| r.true_sntp).count() as f64
            / log.records.len() as f64;
        assert!(sntp < 0.5, "ISP-internal server should be NTP-majority, sntp={sntp}");
    }

    #[test]
    fn mobile_owds_exceed_cloud_owds() {
        let ag1 = SERVERS.iter().find(|s| s.id == "AG1").unwrap();
        let log = generate_server_log(ag1, &small_cfg(), 6);
        let owds_of = |cat: ProviderCategory| -> Vec<f64> {
            log.records
                .iter()
                .filter(|r| PROVIDERS[r.true_provider].category == cat)
                .map(|r| r.true_owd_ms)
                .collect()
        };
        let cloud = clocksim::stats::median(&owds_of(ProviderCategory::CloudHosting));
        let mobile = clocksim::stats::median(&owds_of(ProviderCategory::Mobile));
        assert!(mobile > cloud * 4.0, "cloud={cloud} mobile={mobile}");
    }

    #[test]
    fn ipv6_only_on_dual_stack_servers() {
        let cfg = SynthConfig { scale: 2_000, duration_secs: 86_400 };
        // MW2 is v4-only: no IPv6 clients ever.
        let mw2 = SERVERS.iter().find(|s| s.id == "MW2").unwrap();
        let log = generate_server_log(mw2, &cfg, 11);
        assert!(log.records.iter().all(|r| !r.true_ipv6));
        // SU1 is dual-stack: a visible IPv6 minority.
        let su1 = SERVERS.iter().find(|s| s.id == "SU1").unwrap();
        let log = generate_server_log(su1, &SynthConfig { scale: 500, duration_secs: 86_400 }, 12);
        let mut seen = std::collections::BTreeMap::new();
        for r in &log.records {
            seen.insert(r.client_id, r.true_ipv6);
        }
        let v6 = seen.values().filter(|v| **v).count();
        assert!(v6 > 0, "dual-stack server should see some IPv6 clients");
        assert!(v6 * 2 < seen.len(), "IPv6 stays a minority");
    }

    #[test]
    fn deterministic() {
        let jw1 = SERVERS.iter().find(|s| s.id == "JW1").unwrap();
        let a = generate_server_log(jw1, &small_cfg(), 7);
        let b = generate_server_log(jw1, &small_cfg(), 7);
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.records[0].request, b.records[0].request);
    }

    // ---- streaming generator ----

    fn stream_cfg(scale: u64, chunk_records: u64) -> StreamSynthConfig {
        StreamSynthConfig { scale, duration_secs: 86_400, chunk_records }
    }

    fn collect_chunk(server_idx: usize, cfg: &StreamSynthConfig, seed: u64, chunk: u64) -> Vec<LogRecord> {
        let mut out = Vec::new();
        stream_chunk(&SERVERS[server_idx], server_idx, cfg, seed, chunk, &mut |r| {
            out.push(r.clone())
        });
        out
    }

    #[test]
    fn chunk_lengths_cover_the_total_exactly() {
        let cfg = stream_cfg(5_000, 300);
        for (i, s) in SERVERS.iter().enumerate() {
            let plan = chunk_plan(s, &cfg);
            let sum: u64 = (0..plan.chunks).map(|c| chunk_len(&plan, c)).sum();
            assert_eq!(sum, plan.total_records, "server {i}");
            assert_eq!(chunk_len(&plan, plan.chunks), 0);
        }
    }

    #[test]
    fn chunks_are_pure_functions_of_their_key() {
        let cfg = stream_cfg(5_000, 500);
        let a = collect_chunk(0, &cfg, 2016, 3);
        let b = collect_chunk(0, &cfg, 2016, 3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.request, y.request);
            assert_eq!(x.hostname, y.hostname);
            assert_eq!(x.received_at_secs, y.received_at_secs);
        }
        // Different chunk / seed / server keys give different streams.
        assert_ne!(collect_chunk(0, &cfg, 2016, 2).first().map(|r| r.received_at_secs),
                   a.first().map(|r| r.received_at_secs));
    }

    #[test]
    fn concatenated_chunks_are_globally_time_ordered() {
        let cfg = stream_cfg(5_000, 400);
        let plan = chunk_plan(&SERVERS[0], &cfg);
        assert!(plan.chunks >= 3, "want a multi-chunk plan, got {}", plan.chunks);
        let mut prev = f64::NEG_INFINITY;
        let mut n = 0u64;
        for c in 0..plan.chunks {
            for r in collect_chunk(0, &cfg, 7, c) {
                assert!(r.received_at_secs >= prev, "chunk {c} breaks order");
                prev = r.received_at_secs;
                n += 1;
            }
        }
        assert_eq!(n, plan.total_records);
    }

    #[test]
    fn client_specs_are_stable_across_chunks() {
        // The same client id must resolve to the same hostname, provider,
        // and protocol wherever it appears.
        let cfg = stream_cfg(20_000, 200);
        let plan = chunk_plan(&SERVERS[0], &cfg);
        let mut seen: std::collections::BTreeMap<u32, (String, usize, bool)> =
            std::collections::BTreeMap::new();
        for c in 0..plan.chunks {
            for r in collect_chunk(0, &cfg, 9, c) {
                let entry = (r.hostname.clone(), r.true_provider, r.true_sntp);
                if let Some(prev) = seen.get(&r.client_id) {
                    assert_eq!(prev, &entry, "client {} flipped spec", r.client_id);
                } else {
                    seen.insert(r.client_id, entry);
                }
            }
        }
        assert!(seen.len() > 1);
    }

    #[test]
    fn streamed_records_are_valid_packets_with_consistent_truth() {
        let cfg = stream_cfg(10_000, 300);
        for r in collect_chunk(4, &cfg, 11, 0) {
            let p = NtpPacket::parse(&r.request).expect("valid packet");
            assert_eq!(p.mode, Mode::Client);
            assert_eq!(p.is_sntp_client_shape(), r.true_sntp);
            assert!(r.true_owd_ms > 0.0);
        }
    }

    #[test]
    fn streamed_category_latencies_match_the_model() {
        let cfg = stream_cfg(2_000, 2_000);
        let mut cloud = Vec::new();
        let mut mobile = Vec::new();
        for c in 0..chunk_plan(&SERVERS[0], &cfg).chunks.min(4) {
            for r in collect_chunk(0, &cfg, 13, c) {
                match PROVIDERS[r.true_provider].category {
                    ProviderCategory::CloudHosting => cloud.push(r.true_owd_ms),
                    ProviderCategory::Mobile => mobile.push(r.true_owd_ms),
                    _ => {}
                }
            }
        }
        assert!(cloud.len() > 50 && mobile.len() > 50);
        let c = clocksim::stats::median(&cloud);
        let m = clocksim::stats::median(&mobile);
        assert!(m > c * 4.0, "cloud={c} mobile={m}");
    }
}
