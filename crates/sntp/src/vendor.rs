//! Vendor-specific SNTP client policies and NITZ.
//!
//! The paper's §2 documents how commodity mobile OSes actually run SNTP:
//!
//! * **Android (KitKat)** — polls once a day when NITZ is unavailable,
//!   retries only three times on failure, and updates the system clock
//!   *only* if the new estimate differs from it by more than 5000 ms.
//! * **Windows Mobile** — polls once every seven days; a failed request is
//!   simply skipped, with no retry.
//! * **NITZ** — carrier-delivered time with second-level granularity,
//!   arriving only when the device crosses a network boundary.
//!
//! These policies explain the paper's log findings (mobile clients appear
//! rarely and with SNTP-shaped packets) and set the "deployed baseline"
//! bar that MNTP needs to clear.

use clocksim::ClockCommand;
use ntp_wire::{NtpDuration, NtpTimestamp};

use crate::client::OffsetSample;

/// A vendor SNTP polling/update policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VendorPolicy {
    /// Interval between scheduled polls, seconds (local clock).
    pub poll_interval_secs: u64,
    /// Retries allowed after a failed poll.
    pub max_retries: u32,
    /// Spacing between retries, seconds.
    pub retry_spacing_secs: u64,
    /// Apply the offset only if it exceeds this threshold, ms.
    /// `0` = always apply.
    pub update_threshold_ms: i64,
}

impl VendorPolicy {
    /// Android 4.4 (KitKat) behaviour, from the AOSP source the paper
    /// analysed.
    pub fn android_kitkat() -> Self {
        VendorPolicy {
            poll_interval_secs: 86_400,
            max_retries: 3,
            retry_spacing_secs: 30,
            update_threshold_ms: 5_000,
        }
    }

    /// Windows Mobile behaviour: weekly, no retries, always applies.
    pub fn windows_mobile() -> Self {
        VendorPolicy {
            poll_interval_secs: 7 * 86_400,
            max_retries: 0,
            retry_spacing_secs: 0,
            update_threshold_ms: 0,
        }
    }

    /// An aggressive 5-second poller with no threshold — the paper's
    /// measurement configuration (what the SNTP Time app does).
    pub fn measurement(poll_secs: u64) -> Self {
        VendorPolicy {
            poll_interval_secs: poll_secs,
            max_retries: 0,
            retry_spacing_secs: 0,
            update_threshold_ms: 0,
        }
    }
}

/// What the vendor client wants to do at a given local time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VendorAction {
    /// Nothing to do until the given local time.
    IdleUntil(NtpTimestamp),
    /// Emit an SNTP request now.
    SendRequest,
}

/// A vendor SNTP client: policy plus schedule state. Sans-io; the caller
/// performs the actual exchange and reports back.
#[derive(Clone, Debug)]
pub struct VendorClient {
    policy: VendorPolicy,
    next_poll: NtpTimestamp,
    retries_left: u32,
    /// Updates actually applied (diagnostics).
    pub updates_applied: u64,
    /// Updates suppressed by the threshold (diagnostics).
    pub updates_suppressed: u64,
}

impl VendorClient {
    /// New client that will poll immediately at `now_local`.
    pub fn new(policy: VendorPolicy, now_local: NtpTimestamp) -> Self {
        VendorClient {
            policy,
            next_poll: now_local,
            retries_left: policy.max_retries,
            updates_applied: 0,
            updates_suppressed: 0,
        }
    }

    /// Ask the client what to do at local time `now`.
    pub fn on_tick(&self, now: NtpTimestamp) -> VendorAction {
        if now.wrapping_sub(self.next_poll).is_negative() {
            VendorAction::IdleUntil(self.next_poll)
        } else {
            VendorAction::SendRequest
        }
    }

    fn schedule_next(&mut self, now: NtpTimestamp) {
        self.next_poll = now
            .wrapping_add_duration(NtpDuration::from_seconds(self.policy.poll_interval_secs as i32));
        self.retries_left = self.policy.max_retries;
    }

    /// Report a successful exchange; returns the clock command to apply,
    /// if the policy's threshold allows it.
    pub fn on_success(&mut self, now: NtpTimestamp, sample: &OffsetSample) -> Option<ClockCommand> {
        self.schedule_next(now);
        let threshold = NtpDuration::from_millis(self.policy.update_threshold_ms);
        if sample.offset.abs() >= threshold || self.policy.update_threshold_ms == 0 {
            self.updates_applied += 1;
            // SNTP applies the offset directly (a step).
            Some(ClockCommand::Step(sample.offset))
        } else {
            self.updates_suppressed += 1;
            None
        }
    }

    /// Report a failed exchange (timeout/loss). The client may schedule a
    /// retry or give up until the next poll interval.
    pub fn on_failure(&mut self, now: NtpTimestamp) {
        if self.retries_left > 0 {
            self.retries_left -= 1;
            self.next_poll = now.wrapping_add_duration(NtpDuration::from_seconds(
                self.policy.retry_spacing_secs as i32,
            ));
        } else {
            self.schedule_next(now);
        }
    }

    /// The local time of the next scheduled poll.
    pub fn next_poll(&self) -> NtpTimestamp {
        self.next_poll
    }
}

/// A NITZ event: carrier time with coarse (second) granularity, delivered
/// when the device crosses a network boundary.
#[derive(Clone, Copy, Debug)]
pub struct NitzEvent {
    /// The offset the carrier's coarse time implies, already quantized to
    /// whole seconds by the 3GPP encoding.
    pub offset: NtpDuration,
}

impl NitzEvent {
    /// Build an event from the true offset, applying the ±0.5 s
    /// quantization the second-granular encoding imposes.
    pub fn from_true_offset(true_offset: NtpDuration) -> Self {
        let secs = true_offset.as_seconds_f64().round();
        NitzEvent { offset: NtpDuration::from_seconds_f64(secs) }
    }

    /// The clock command a NITZ update performs (a hard step).
    pub fn command(&self) -> ClockCommand {
        ClockCommand::Step(self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u32) -> NtpTimestamp {
        NtpTimestamp::from_parts(s, 0)
    }

    fn sample(offset_ms: i64) -> OffsetSample {
        OffsetSample {
            offset: NtpDuration::from_millis(offset_ms),
            delay: NtpDuration::from_millis(40),
            t1: ts(1),
            t4: ts(2),
            stratum: 2,
        }
    }

    #[test]
    fn android_threshold_suppresses_small_offsets() {
        let mut c = VendorClient::new(VendorPolicy::android_kitkat(), ts(0));
        assert_eq!(c.on_tick(ts(0)), VendorAction::SendRequest);
        assert_eq!(c.on_success(ts(0), &sample(300)), None);
        assert_eq!(c.updates_suppressed, 1);
        // 6-second offset: applied.
        let mut c = VendorClient::new(VendorPolicy::android_kitkat(), ts(0));
        let cmd = c.on_success(ts(0), &sample(6_000)).unwrap();
        assert_eq!(cmd, ClockCommand::Step(NtpDuration::from_millis(6_000)));
    }

    #[test]
    fn android_polls_daily() {
        let mut c = VendorClient::new(VendorPolicy::android_kitkat(), ts(0));
        c.on_success(ts(0), &sample(0));
        assert_eq!(c.on_tick(ts(100)), VendorAction::IdleUntil(ts(86_400)));
        assert_eq!(c.on_tick(ts(86_400)), VendorAction::SendRequest);
    }

    #[test]
    fn android_retries_three_times_then_waits_a_day() {
        let mut c = VendorClient::new(VendorPolicy::android_kitkat(), ts(0));
        c.on_failure(ts(0)); // retry 1 at +30 s
        assert_eq!(c.next_poll(), ts(30));
        c.on_failure(ts(30)); // retry 2
        c.on_failure(ts(60)); // retry 3
        assert_eq!(c.next_poll(), ts(90));
        c.on_failure(ts(90)); // out of retries → next day
        assert_eq!(c.next_poll(), ts(90 + 86_400));
    }

    #[test]
    fn windows_mobile_never_retries() {
        let mut c = VendorClient::new(VendorPolicy::windows_mobile(), ts(0));
        c.on_failure(ts(0));
        assert_eq!(c.next_poll(), ts(7 * 86_400));
    }

    #[test]
    fn windows_mobile_always_applies() {
        let mut c = VendorClient::new(VendorPolicy::windows_mobile(), ts(0));
        assert!(c.on_success(ts(0), &sample(1)).is_some());
    }

    #[test]
    fn measurement_policy_polls_at_configured_interval() {
        let mut c = VendorClient::new(VendorPolicy::measurement(5), ts(0));
        c.on_success(ts(0), &sample(10));
        assert_eq!(c.on_tick(ts(3)), VendorAction::IdleUntil(ts(5)));
        assert_eq!(c.on_tick(ts(5)), VendorAction::SendRequest);
    }

    #[test]
    fn retry_success_resets_retry_budget() {
        let mut c = VendorClient::new(VendorPolicy::android_kitkat(), ts(0));
        c.on_failure(ts(0));
        c.on_success(ts(30), &sample(6000));
        // Budget restored: three more failures allowed before the long wait.
        c.on_failure(ts(86_430));
        assert_eq!(c.next_poll(), ts(86_460));
    }

    #[test]
    fn nitz_quantizes_to_seconds() {
        let e = NitzEvent::from_true_offset(NtpDuration::from_millis(1_499));
        assert_eq!(e.offset, NtpDuration::from_seconds(1));
        let e = NitzEvent::from_true_offset(NtpDuration::from_millis(-2_600));
        assert_eq!(e.offset, NtpDuration::from_seconds(-3));
        let e = NitzEvent::from_true_offset(NtpDuration::from_millis(400));
        assert_eq!(e.offset, NtpDuration::ZERO);
    }
}
