//! Sparse per-client rate-limit state: an open-addressing hash table of
//! last-seen ticks.
//!
//! The fleet model (`netsim::fleet::ServerModel`) keys its admission state
//! by dense client index — a `Vec<i64>` grown to the highest id seen. That
//! is the right shape when clients are `0..N` simulation lanes; a
//! production ingest path sees sparse 64-bit keys (source addresses) where
//! a dense vector is either gigantic or useless. This table stores exactly
//! the occupied entries: Fibonacci-hashed open addressing with linear
//! probing, ≤ 7/8 load factor, amortized-doubling growth.
//!
//! Empty slots are encoded in the *tick* array (`i64::MIN` is not a valid
//! arrival time), so keys need no reserved sentinel and any `u64` is a
//! valid client key.

/// Knuth's 64-bit Fibonacci multiplier (⌊2⁶⁴/φ⌋, forced odd).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Tick value marking an empty slot. Arrival ticks are nanoseconds on the
/// simulation timeline and never take this value.
const EMPTY_TICK: i64 = i64::MIN;

/// Open-addressing map `client key → last-seen tick (ns)`.
#[derive(Clone, Debug)]
pub struct RateTable {
    keys: Vec<u64>,
    ticks: Vec<i64>,
    len: usize,
    mask: usize,
}

impl RateTable {
    /// A table that holds `at_least` clients before its first growth.
    pub fn with_capacity(at_least: usize) -> Self {
        // Smallest power of two keeping load ≤ 7/8 at `at_least` entries.
        let cap = (at_least.saturating_mul(8) / 7 + 1).next_power_of_two().max(16);
        RateTable { keys: vec![0; cap], ticks: vec![EMPTY_TICK; cap], len: 0, mask: cap - 1 }
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no client has been seen.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot count (capacity before the next growth is 7/8 of it).
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Home slot: low bits of the Fibonacci hash. (Shard routing uses the
    /// *top* bits — see [`shard_of`] — so the two decisions stay
    /// independent and per-shard probe sequences don't degenerate.)
    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(FIB) as usize) & self.mask
    }

    /// Record `tick` as `key`'s last-seen instant and return the previous
    /// one, if the client was known. This is the whole rate-limit
    /// bookkeeping step: one probe sequence for both read and write.
    #[inline]
    pub fn upsert(&mut self, key: u64, tick: i64) -> Option<i64> {
        if (self.len + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
        let mask = self.mask;
        let mut i = self.home(key);
        loop {
            match self.ticks.get(i).copied() {
                Some(EMPTY_TICK) => {
                    if let (Some(k), Some(t)) = (self.keys.get_mut(i), self.ticks.get_mut(i)) {
                        *k = key;
                        *t = tick;
                    }
                    self.len += 1;
                    return None;
                }
                Some(prev) => {
                    if self.keys.get(i).copied() == Some(key) {
                        if let Some(t) = self.ticks.get_mut(i) {
                            *t = tick;
                        }
                        return Some(prev);
                    }
                    i = (i + 1) & mask;
                }
                // Unreachable: `i` is always masked into range.
                None => return None,
            }
        }
    }

    /// Look up `key`'s last-seen tick without modifying the table.
    pub fn get(&self, key: u64) -> Option<i64> {
        let mask = self.mask;
        let mut i = self.home(key);
        loop {
            match self.ticks.get(i).copied() {
                Some(EMPTY_TICK) | None => return None,
                Some(tick) => {
                    if self.keys.get(i).copied() == Some(key) {
                        return Some(tick);
                    }
                    i = (i + 1) & mask;
                }
            }
        }
    }

    /// Drop every entry, keeping the allocated slots. This is the
    /// process-restart model: the table's capacity (its memory) survives,
    /// its knowledge of clients does not — so the first post-restart poll
    /// from any client has no previous arrival to compare against and is
    /// served, never RATE'd.
    pub fn clear(&mut self) {
        self.keys.fill(0);
        self.ticks.fill(EMPTY_TICK);
        self.len = 0;
    }

    /// Double the slot count and reinsert every occupied entry.
    fn grow(&mut self) {
        let new_cap = self.keys.len().saturating_mul(2).max(16);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_ticks = std::mem::replace(&mut self.ticks, vec![EMPTY_TICK; new_cap]);
        self.mask = new_cap - 1;
        self.len = 0;
        for (key, tick) in old_keys.into_iter().zip(old_ticks) {
            if tick != EMPTY_TICK {
                self.insert_fresh(key, tick);
            }
        }
    }

    /// Insert a key known to be absent (rehash path — no read needed).
    fn insert_fresh(&mut self, key: u64, tick: i64) {
        let mask = self.mask;
        let mut i = self.home(key);
        loop {
            match self.ticks.get(i).copied() {
                Some(EMPTY_TICK) => {
                    if let (Some(k), Some(t)) = (self.keys.get_mut(i), self.ticks.get_mut(i)) {
                        *k = key;
                        *t = tick;
                    }
                    self.len += 1;
                    return;
                }
                Some(_) => i = (i + 1) & mask,
                // Unreachable: `i` is always masked into range.
                None => return,
            }
        }
    }
}

/// Which of `shards` tables owns `key`. `shards` must be a power of two;
/// the routing bits are the *top* bits of the Fibonacci hash, disjoint
/// from the in-table home-slot bits (low), so every shard's table still
/// sees a well-distributed key stream.
///
/// This routing is what makes the sharded pipeline bit-deterministic:
/// a client's requests always land on the same shard, so its last-seen
/// sequence — and therefore every KoD decision — is identical no matter
/// how many shards run or how they're scheduled.
#[inline]
pub fn shard_of(key: u64, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let bits = shards.trailing_zeros();
    (key.wrapping_mul(FIB) >> (64 - bits)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_upsert_returns_none_then_previous() {
        let mut t = RateTable::with_capacity(8);
        assert_eq!(t.upsert(7, 100), None);
        assert_eq!(t.upsert(7, 250), Some(100));
        assert_eq!(t.upsert(7, 400), Some(250));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_interfere() {
        let mut t = RateTable::with_capacity(4);
        assert_eq!(t.upsert(1, 10), None);
        assert_eq!(t.upsert(2, 20), None);
        assert_eq!(t.upsert(1, 30), Some(10));
        assert_eq!(t.upsert(2, 40), Some(20));
        assert_eq!(t.get(1), Some(30));
        assert_eq!(t.get(2), Some(40));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn growth_preserves_every_entry() {
        let mut t = RateTable::with_capacity(4);
        let n = 10_000u64;
        for k in 0..n {
            assert_eq!(t.upsert(k, k as i64 * 3), None, "key {k} seen twice?");
        }
        assert_eq!(t.len(), n as usize);
        for k in 0..n {
            assert_eq!(t.get(k), Some(k as i64 * 3), "key {k} lost in growth");
        }
        // Load factor invariant held.
        assert!(t.len() * 8 <= t.capacity() * 7);
    }

    #[test]
    fn sparse_keys_work() {
        let mut t = RateTable::with_capacity(8);
        for k in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63, 0xDEAD_BEEF_0000_0001] {
            assert_eq!(t.upsert(k, 42), None);
        }
        for k in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63, 0xDEAD_BEEF_0000_0001] {
            assert_eq!(t.get(k), Some(42), "key {k:#x}");
        }
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn adversarial_same_home_slot_keys_probe_linearly() {
        // Keys crafted to collide in home slot (same low hash bits after
        // multiplication is hard to craft directly, so just hammer a tiny
        // table where collisions are guaranteed).
        let mut t = RateTable::with_capacity(2);
        for k in 0..64u64 {
            t.upsert(k, k as i64);
        }
        for k in 0..64u64 {
            assert_eq!(t.get(k), Some(k as i64));
        }
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for &shards in &[1usize, 2, 4, 8, 16] {
            for k in 0..1000u64 {
                let s = shard_of(k, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(k, shards), "routing must be pure");
            }
        }
        // shards=1 always routes to 0.
        assert_eq!(shard_of(u64::MAX, 1), 0);
    }

    #[test]
    fn shard_routing_spreads_keys() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for k in 0..80_000u64 {
            counts[shard_of(k, shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 10_000.0).abs() < 2_000.0,
                "shard {s} holds {c} of 80k keys — routing is skewed"
            );
        }
    }
}
