//! The staged request pipeline: classify → rate-limit → emit.
//!
//! [`ServerCore`] answers a [`RequestRing`] batch into a [`ReplyRing`]
//! through three explicit stages, each a separate pass so it can be
//! benched, profiled, and scaled on its own:
//!
//! 1. **Ingest / classify** — zero-copy validate every datagram
//!    ([`ntp_wire::PacketView`]) and tag it SNTP-shaped, NTP-shaped, or
//!    malformed. Pure per-packet work, no shared state.
//! 2. **Discipline bookkeeping** — one [`RateTable::upsert`] per valid
//!    request decides service vs RATE kiss-o'-death from the client's
//!    previous arrival. The only stateful stage, and the reason for
//!    sharding: each shard owns the table for its slice of the key space.
//! 3. **Emit** — write the reply bytes in place (allocation-free
//!    `ntp-wire` writers) and accumulate the batch's [`CoreStats`] log
//!    record.
//!
//! ## Determinism across (shards, jobs)
//!
//! Requests are routed to shards by client key ([`shard_of`]), never by
//! position, so one client's requests always form the same subsequence on
//! the same shard table regardless of the shard count — and each reply
//! depends only on that subsequence. Shard outputs land in positional
//! scratch rings that a serial pass merges back in request order. The
//! worker pool ([`devtools::par::Pool`]) only runs whole shards, and the
//! merge reads them in shard order, so the reply byte stream is identical
//! for every (shards, jobs) combination — including `shards=1, jobs=1`,
//! which is the per-packet reference the property tests compare against
//! [`crate::SimServer`].

use clocksim::time::SimDuration;
use devtools::par::Pool;
use ntp_wire::{refid::RefId, sntp_profile, NtpDuration, NtpPacket};

use super::arena::{Fate, ReplyRing, RequestRing};
use super::table::{shard_of, RateTable};

/// Engine identity and policy. The defaults mirror the well-behaved
/// stratum-2 [`crate::SimServer`] the sim builds, minus its wobble: the
/// engine's clock is `true time + clock_error`, which is exactly
/// `clocksim::ReferenceClock::with_error` and keeps replies a pure
/// function of the request batch.
#[derive(Clone, Copy, Debug)]
pub struct CoreConfig {
    /// Advertised stratum.
    pub stratum: u8,
    /// Advertised reference id.
    pub refid: RefId,
    /// Constant server clock error (reply timestamps read
    /// `true + clock_error`).
    pub clock_error: NtpDuration,
    /// Processing time between receive (T2) and transmit (T3).
    pub proc_delay: SimDuration,
    /// Kiss-o'-death rate limiting: minimum spacing between requests
    /// from one client before the server answers `RATE`. `None` disables
    /// rate limiting (and its bookkeeping entirely, like `SimServer`).
    pub min_poll_interval: Option<SimDuration>,
    /// Expected distinct clients (sizes the rate tables; they still grow
    /// on demand).
    pub table_capacity: usize,
    /// Rate-table shards (rounded up to a power of two). Shard count is
    /// part of the engine's *shape*, not its behavior: replies are
    /// byte-identical at any value.
    pub shards: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            stratum: 2,
            refid: RefId::ipv4(192, 0, 2, 1),
            clock_error: NtpDuration::ZERO,
            proc_delay: SimDuration::from_micros(150),
            min_poll_interval: None,
            table_capacity: 1024,
            shards: 1,
        }
    }
}

/// Cumulative emission log: what the engine did, countable per batch or
/// per run. This is the log-emission stage's output — deterministic
/// counters only, safe to commit in artifacts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Time replies written.
    pub served: u64,
    /// RATE kiss-o'-death replies written.
    pub kod: u64,
    /// Datagrams that failed structural validation.
    pub malformed: u64,
    /// Valid requests with the RFC 4330 SNTP wire shape.
    pub sntp_shaped: u64,
    /// Valid requests with any other shape (ntpd-style pollers etc.).
    pub other_shaped: u64,
}

impl CoreStats {
    /// Total datagrams examined.
    pub fn total(&self) -> u64 {
        self.served + self.kod + self.malformed
    }

    fn add(&mut self, o: &CoreStats) {
        self.served += o.served;
        self.kod += o.kod;
        self.malformed += o.malformed;
        self.sntp_shaped += o.sntp_shaped;
        self.other_shaped += o.other_shaped;
    }
}

/// Stage-1 verdict for one datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Class {
    Malformed,
    Sntp,
    Other,
}

/// One shard: the rate table for its key-space slice plus positional
/// scratch reused across batches.
struct CoreShard {
    table: RateTable,
    /// Batch indices routed to this shard, in arrival order.
    picked: Vec<u32>,
    /// Stage-1 verdicts, parallel to `picked`.
    classes: Vec<Class>,
    /// Replies for `picked`, parallel by position.
    scratch: ReplyRing,
    /// This batch's emission counters.
    stats: CoreStats,
}

impl CoreShard {
    fn new(table_capacity: usize) -> Self {
        CoreShard {
            table: RateTable::with_capacity(table_capacity),
            picked: Vec::new(),
            classes: Vec::new(),
            scratch: ReplyRing::new(),
            stats: CoreStats::default(),
        }
    }

    /// Stage 1 — ingest/classify: validate each routed datagram.
    fn stage_classify(&mut self, reqs: &RequestRing) {
        self.classes.clear();
        for &idx in &self.picked {
            let class = match reqs.get(idx as usize) {
                Some((_, wire)) => match NtpPacket::parse_ref(wire) {
                    Ok(view) if view.is_sntp_client_shape() => Class::Sntp,
                    Ok(_) => Class::Other,
                    Err(_) => Class::Malformed,
                },
                None => Class::Malformed,
            };
            self.classes.push(class);
        }
    }

    /// Stage 2 — discipline bookkeeping: one table upsert per valid
    /// request decides its fate. Same semantics as `SimServer::handle`:
    /// with rate limiting off, no state is touched and everything valid
    /// is served.
    fn stage_rate_limit(&mut self, cfg: &CoreConfig, reqs: &RequestRing) {
        self.scratch.begin_batch(self.picked.len());
        for (j, (&idx, &class)) in self.picked.iter().zip(&self.classes).enumerate() {
            if class == Class::Malformed {
                continue; // fate stays Malformed
            }
            let Some((meta, _)) = reqs.get(idx as usize) else { continue };
            let mut too_fast = false;
            if let Some(min) = cfg.min_poll_interval {
                let arrival_ns = meta.arrival.as_nanos();
                let prev = self.table.upsert(meta.client, arrival_ns);
                too_fast = prev.is_some_and(|p| arrival_ns - p < min.as_nanos());
            }
            self.scratch.set_fate(j, if too_fast { Fate::Kod } else { Fate::Time });
        }
    }

    /// Stage 3 — emit: write each reply in place and log the batch.
    fn stage_emit(&mut self, cfg: &CoreConfig, reqs: &RequestRing) {
        self.stats = CoreStats::default();
        for (j, (&idx, &class)) in self.picked.iter().zip(&self.classes).enumerate() {
            let Some(fate) = self.scratch.fate(j) else { continue };
            if fate == Fate::Malformed {
                self.stats.malformed += 1;
                continue;
            }
            let Some((meta, wire)) = reqs.get(idx as usize) else { continue };
            // Validated in stage 1; re-borrowing the view is a few loads.
            let Ok(view) = NtpPacket::parse_ref(wire) else { continue };
            let Some(slot) = self.scratch.slot_mut(j) else { continue };
            let departure = meta.arrival + cfg.proc_delay;
            let t3 = departure.to_ntp() + cfg.clock_error;
            match fate {
                Fate::Kod => {
                    sntp_profile::write_kod_into(&view, RefId::KISS_RATE, t3, slot);
                    self.stats.kod += 1;
                }
                _ => {
                    let t2 = meta.arrival.to_ntp() + cfg.clock_error;
                    sntp_profile::write_server_reply_into(
                        &view,
                        t2,
                        t3,
                        cfg.stratum,
                        cfg.refid,
                        t2,
                        slot,
                    );
                    self.stats.served += 1;
                }
            }
            match class {
                Class::Sntp => self.stats.sntp_shaped += 1,
                Class::Other => self.stats.other_shaped += 1,
                Class::Malformed => {}
            }
        }
    }

    fn run_stages(&mut self, cfg: &CoreConfig, reqs: &RequestRing) {
        self.stage_classify(reqs);
        self.stage_rate_limit(cfg, reqs);
        self.stage_emit(cfg, reqs);
    }
}

/// The batched server engine. Owns the sharded rate tables and all batch
/// scratch; the caller owns the request/reply rings (so ingest and output
/// buffers can be double-buffered, pooled, or handed between stages
/// without copying through the engine).
pub struct ServerCore {
    cfg: CoreConfig,
    shards: Vec<CoreShard>,
    stats: CoreStats,
}

impl ServerCore {
    /// Build an engine from `cfg`. `cfg.shards` is rounded up to a power
    /// of two; the table capacity is split evenly across shards.
    pub fn new(cfg: CoreConfig) -> Self {
        let shards = cfg.shards.max(1).next_power_of_two();
        let per_shard = (cfg.table_capacity / shards).max(16);
        let cfg = CoreConfig { shards, ..cfg };
        ServerCore {
            cfg,
            shards: (0..shards).map(|_| CoreShard::new(per_shard)).collect(),
            stats: CoreStats::default(),
        }
    }

    /// The engine's (normalized) configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Cumulative emission counters across every processed batch.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Distinct clients currently tracked across all shard tables.
    pub fn clients_tracked(&self) -> usize {
        self.shards.iter().map(|s| s.table.len()).sum()
    }

    /// Run only stage 1 (ingest/classify) over a batch, serially — the
    /// profiling hook behind the pipeline's stage split, so the pure
    /// per-packet validation cost can be measured apart from table
    /// bookkeeping and reply emission. Returns `(sntp, other,
    /// malformed)` counts; no rate-table, reply, or stats state changes.
    pub fn classify_batch(&mut self, reqs: &RequestRing) -> (u64, u64, u64) {
        for shard in &mut self.shards {
            shard.picked.clear();
        }
        let nshards = self.shards.len();
        for (idx, (meta, _)) in reqs.iter().enumerate() {
            if let Some(shard) = self.shards.get_mut(shard_of(meta.client, nshards)) {
                shard.picked.push(idx as u32);
            }
        }
        let (mut sntp, mut other, mut malformed) = (0u64, 0u64, 0u64);
        for shard in &mut self.shards {
            shard.stage_classify(reqs);
            for class in &shard.classes {
                match class {
                    Class::Sntp => sntp += 1,
                    Class::Other => other += 1,
                    Class::Malformed => malformed += 1,
                }
            }
        }
        (sntp, other, malformed)
    }

    /// Answer one batch serially on the calling thread.
    pub fn process_batch(&mut self, reqs: &RequestRing, out: &mut ReplyRing) {
        self.process_batch_on(reqs, out, &Pool::with_jobs(1));
    }

    /// Answer one batch with shard stages fanned out over `pool`. The
    /// reply stream is byte-identical to [`ServerCore::process_batch`]
    /// for any pool size — the pool only changes wall-clock time.
    pub fn process_batch_on(&mut self, reqs: &RequestRing, out: &mut ReplyRing, pool: &Pool) {
        // Route (serial, cheap): client-keyed, never positional.
        for shard in &mut self.shards {
            shard.picked.clear();
        }
        let nshards = self.shards.len();
        for (idx, (meta, _)) in reqs.iter().enumerate() {
            if let Some(shard) = self.shards.get_mut(shard_of(meta.client, nshards)) {
                shard.picked.push(idx as u32);
            }
        }
        // Per-shard stages (parallel; each shard touches only its own
        // table and scratch).
        let cfg = self.cfg;
        pool.map(self.shards.iter_mut().collect::<Vec<_>>(), |shard| {
            shard.run_stages(&cfg, reqs)
        });
        // Merge (serial, in shard order): positional copy back into
        // request order, plus the log roll-up.
        out.begin_batch(reqs.len());
        for shard in &self.shards {
            for (j, &idx) in shard.picked.iter().enumerate() {
                let Some(fate) = shard.scratch.fate(j) else { continue };
                if let (Some(src), Some(dst)) =
                    (shard.scratch.slot(j), out.slot_mut(idx as usize))
                {
                    dst.copy_from_slice(src);
                }
                out.set_fate(idx as usize, fate);
            }
            self.stats.add(&shard.stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server_core::arena::SLOT;
    use clocksim::time::SimTime;
    use ntp_wire::{sntp_profile::client_request, NtpTimestamp, PacketView};

    fn request_bytes(secs: u32) -> Vec<u8> {
        client_request(NtpTimestamp::from_parts(secs, 0)).serialize()
    }

    fn batch(clients: &[(u64, i64)]) -> RequestRing {
        let mut ring = RequestRing::with_capacity(clients.len());
        for &(client, at_ms) in clients {
            ring.push(client, SimTime::from_millis(at_ms), &request_bytes(at_ms as u32));
        }
        ring
    }

    #[test]
    fn serves_a_simple_batch() {
        let mut core = ServerCore::new(CoreConfig::default());
        let reqs = batch(&[(1, 1000), (2, 2000), (3, 3000)]);
        let mut out = ReplyRing::new();
        core.process_batch(&reqs, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out.fates(), &[Fate::Time; 3]);
        assert_eq!(core.stats().served, 3);
        assert_eq!(core.stats().sntp_shaped, 3);
        // Replies are valid server packets echoing the request transmit.
        for i in 0..3 {
            let view = PacketView::new(out.slot(i).unwrap()).unwrap();
            assert_eq!(view.mode(), ntp_wire::Mode::Server);
            assert_eq!(view.stratum(), 2);
        }
    }

    #[test]
    fn malformed_datagrams_get_zeroed_slots() {
        let mut core = ServerCore::new(CoreConfig::default());
        let mut reqs = RequestRing::with_capacity(3);
        reqs.push(1, SimTime::from_secs(1), &request_bytes(1));
        reqs.push(2, SimTime::from_secs(1), &[0xFF; 10]); // truncated
        reqs.push(3, SimTime::from_secs(1), &[0u8; SLOT]); // version 0
        let mut out = ReplyRing::new();
        core.process_batch(&reqs, &mut out);
        assert_eq!(out.fates(), &[Fate::Time, Fate::Malformed, Fate::Malformed]);
        assert_eq!(out.slot(1).unwrap(), &[0u8; SLOT]);
        assert_eq!(out.slot(2).unwrap(), &[0u8; SLOT]);
        assert_eq!(core.stats().malformed, 2);
    }

    #[test]
    fn rate_limit_kods_fast_client_but_not_interleaved_peer() {
        let cfg = CoreConfig {
            min_poll_interval: Some(SimDuration::from_secs(8)),
            ..CoreConfig::default()
        };
        let mut core = ServerCore::new(cfg);
        // Client 1 polls every 10 s (fine); client 2 re-polls after 2 s.
        let reqs = batch(&[(1, 0), (2, 1000), (2, 3000), (1, 10_000)]);
        let mut out = ReplyRing::new();
        core.process_batch(&reqs, &mut out);
        assert_eq!(out.fates(), &[Fate::Time, Fate::Time, Fate::Kod, Fate::Time]);
        assert_eq!(core.stats().kod, 1);
        // The KoD is a proper RATE kiss.
        let kod = PacketView::new(out.slot(2).unwrap()).unwrap();
        assert_eq!(kod.stratum(), 0);
        assert_eq!(kod.reference_id().as_kiss_code(), Some(*b"RATE"));
    }

    #[test]
    fn rate_state_persists_across_batches() {
        let cfg = CoreConfig {
            min_poll_interval: Some(SimDuration::from_secs(8)),
            ..CoreConfig::default()
        };
        let mut core = ServerCore::new(cfg);
        let mut out = ReplyRing::new();
        core.process_batch(&batch(&[(9, 1000)]), &mut out);
        assert_eq!(out.fates(), &[Fate::Time]);
        // Second batch, 2 s later: same client is now too fast.
        core.process_batch(&batch(&[(9, 3000)]), &mut out);
        assert_eq!(out.fates(), &[Fate::Kod]);
        assert_eq!(core.clients_tracked(), 1);
    }

    #[test]
    fn sharded_output_matches_serial_reference() {
        let mk_reqs = || {
            let mut ring = RequestRing::with_capacity(512);
            for i in 0..512u64 {
                // 64 clients, each polling repeatedly — some too fast.
                let client = i % 64;
                let at = (i * 731) % 50_000;
                ring.push(client, SimTime::from_millis(at as i64), &request_bytes(at as u32));
            }
            ring
        };
        let cfg = CoreConfig {
            min_poll_interval: Some(SimDuration::from_secs(4)),
            clock_error: NtpDuration::from_millis(3),
            ..CoreConfig::default()
        };
        let mut reference = ReplyRing::new();
        ServerCore::new(CoreConfig { shards: 1, ..cfg })
            .process_batch(&mk_reqs(), &mut reference);
        for shards in [2usize, 4, 8] {
            for jobs in [1usize, 4] {
                let mut core = ServerCore::new(CoreConfig { shards, ..cfg });
                let mut out = ReplyRing::new();
                core.process_batch_on(&mk_reqs(), &mut out, &Pool::with_jobs(jobs));
                assert_eq!(
                    out.as_bytes(),
                    reference.as_bytes(),
                    "reply stream diverged at shards={shards} jobs={jobs}"
                );
                assert_eq!(out.fates(), reference.fates());
            }
        }
    }

    #[test]
    fn classify_batch_counts_shapes_without_state_changes() {
        let mut core = ServerCore::new(CoreConfig {
            min_poll_interval: Some(SimDuration::from_secs(8)),
            ..CoreConfig::default()
        });
        let mut reqs = RequestRing::with_capacity(4);
        reqs.push(1, SimTime::from_secs(1), &request_bytes(1));
        reqs.push(2, SimTime::from_secs(1), &[0xFF; 10]);
        let ntpd = ntp_wire::NtpPacket {
            poll: 6,
            precision: -20,
            ..client_request(NtpTimestamp::from_parts(1, 0))
        };
        reqs.push(3, SimTime::from_secs(1), &ntpd.serialize());
        assert_eq!(core.classify_batch(&reqs), (1, 1, 1));
        // Pure: no clients tracked, no stats, and an immediate re-poll by
        // client 1 is *not* too fast (the classify pass touched no table).
        assert_eq!(core.clients_tracked(), 0);
        assert_eq!(core.stats().total(), 0);
        let mut out = ReplyRing::new();
        core.process_batch(&batch(&[(1, 1500)]), &mut out);
        assert_eq!(out.fates(), &[Fate::Time]);
    }

    #[test]
    fn stats_accumulate_across_batches() {
        let mut core = ServerCore::new(CoreConfig::default());
        let mut out = ReplyRing::new();
        core.process_batch(&batch(&[(1, 0), (2, 0)]), &mut out);
        core.process_batch(&batch(&[(3, 1000)]), &mut out);
        assert_eq!(core.stats().served, 3);
        assert_eq!(core.stats().total(), 3);
    }
}
