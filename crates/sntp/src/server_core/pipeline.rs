//! The staged request pipeline: classify → rate-limit → emit.
//!
//! [`ServerCore`] answers a [`RequestRing`] batch into a [`ReplyRing`]
//! through three explicit stages, each a separate pass so it can be
//! benched, profiled, and scaled on its own:
//!
//! 1. **Ingest / classify** — zero-copy validate every datagram
//!    ([`ntp_wire::PacketView`]) and tag it SNTP-shaped, NTP-shaped, or
//!    malformed. Pure per-packet work, no shared state.
//! 2. **Discipline bookkeeping** — one [`RateTable::upsert`] per valid
//!    request decides service vs RATE kiss-o'-death from the client's
//!    previous arrival. The only stateful stage, and the reason for
//!    sharding: each shard owns the table for its slice of the key space.
//! 3. **Emit** — write the reply bytes in place (allocation-free
//!    `ntp-wire` writers) and accumulate the batch's [`CoreStats`] log
//!    record.
//!
//! ## Determinism across (shards, jobs)
//!
//! Requests are routed to shards by client key ([`shard_of`]), never by
//! position, so one client's requests always form the same subsequence on
//! the same shard table regardless of the shard count — and each reply
//! depends only on that subsequence. Shard outputs land in positional
//! scratch rings that a serial pass merges back in request order. The
//! worker pool ([`devtools::par::Pool`]) only runs whole shards, and the
//! merge reads them in shard order, so the reply byte stream is identical
//! for every (shards, jobs) combination — including `shards=1, jobs=1`,
//! which is the per-packet reference the property tests compare against
//! [`crate::SimServer`].

use clocksim::time::SimDuration;
use devtools::par::Pool;
use ntp_wire::{refid::RefId, sntp_profile, NtpDuration, NtpPacket};

use super::arena::{Fate, ReplyRing, RequestRing};
use super::table::{shard_of, RateTable};

/// Engine identity and policy. The defaults mirror the well-behaved
/// stratum-2 [`crate::SimServer`] the sim builds, minus its wobble: the
/// engine's clock is `true time + clock_error`, which is exactly
/// `clocksim::ReferenceClock::with_error` and keeps replies a pure
/// function of the request batch.
#[derive(Clone, Copy, Debug)]
pub struct CoreConfig {
    /// Advertised stratum.
    pub stratum: u8,
    /// Advertised reference id.
    pub refid: RefId,
    /// Constant server clock error (reply timestamps read
    /// `true + clock_error`).
    pub clock_error: NtpDuration,
    /// Processing time between receive (T2) and transmit (T3).
    pub proc_delay: SimDuration,
    /// Kiss-o'-death rate limiting: minimum spacing between requests
    /// from one client before the server answers `RATE`. `None` disables
    /// rate limiting (and its bookkeeping entirely, like `SimServer`).
    pub min_poll_interval: Option<SimDuration>,
    /// Expected distinct clients (sizes the rate tables; they still grow
    /// on demand).
    pub table_capacity: usize,
    /// Rate-table shards (rounded up to a power of two). Shard count is
    /// part of the engine's *shape*, not its behavior: replies are
    /// byte-identical at any value.
    pub shards: usize,
    /// Graceful-degradation ladder: adaptive RATE floors plus priority
    /// shedding of repeat offenders, engaged by batch size. `None` (the
    /// default) disables the ladder entirely — byte-identical to the
    /// pre-ladder engine.
    pub degraded: Option<CoreDegradation>,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            stratum: 2,
            refid: RefId::ipv4(192, 0, 2, 1),
            clock_error: NtpDuration::ZERO,
            proc_delay: SimDuration::from_micros(150),
            min_poll_interval: None,
            table_capacity: 1024,
            shards: 1,
            degraded: None,
        }
    }
}

/// The graceful-degradation ladder. The batch size the caller hands to
/// [`ServerCore::process_batch_on`] is the engine's backlog proxy — it is
/// what an ingest loop actually sees when it drains its socket — and it
/// selects one of three rungs *per batch, serially, before the shard
/// fan-out*, so the rung (like everything else) is identical at any
/// (shards, jobs):
///
/// 1. **Nominal** (`len < ramp_batch`): base policy only.
/// 2. **Ramped** (`len ≥ ramp_batch`): the minimum poll interval is
///    raised to at least `ramp_min_poll` — eager pollers draw RATE sooner,
///    which is the protocol-honest way to ask a herd to back off.
/// 3. **Overloaded** (`len ≥ overload_batch`): the floor rises to
///    `overload_min_poll` and *priority shedding* arms: a client whose
///    strike count (consecutive rate-limit violations since its last
///    compliant poll) has reached `shed_strikes` is dropped without any
///    reply at all ([`Fate::Shed`]) — abusive pollers that ignore RATE
///    stop costing reply bandwidth, while first offenders still get the
///    kiss telling them to slow down.
///
/// Strikes accumulate whenever a ladder is configured (even on the
/// nominal rung) and reset on any compliant arrival, so a client that
/// honors RATE is never shed.
#[derive(Clone, Copy, Debug)]
pub struct CoreDegradation {
    /// Batch size at which the ramp rung engages.
    pub ramp_batch: usize,
    /// Raised minimum poll interval while ramped (floors the base
    /// `min_poll_interval`; the larger of the two wins).
    pub ramp_min_poll: SimDuration,
    /// Batch size at which the overload rung (and shedding) engages.
    pub overload_batch: usize,
    /// Minimum poll interval while overloaded.
    pub overload_min_poll: SimDuration,
    /// Consecutive violations after which an offender is shed while the
    /// overload rung is active.
    pub shed_strikes: u8,
}

impl Default for CoreDegradation {
    fn default() -> Self {
        CoreDegradation {
            ramp_batch: 1024,
            ramp_min_poll: SimDuration::from_secs(16),
            overload_batch: 4096,
            overload_min_poll: SimDuration::from_secs(64),
            shed_strikes: 3,
        }
    }
}

/// The per-batch rung `CoreDegradation` resolved to: an optional poll
/// floor plus whether shedding is armed. Computed once, serially, from
/// the batch length; copied into every shard stage.
#[derive(Clone, Copy, Debug, Default)]
struct LadderRung {
    floor: Option<SimDuration>,
    shedding: bool,
}

impl LadderRung {
    fn for_batch(cfg: &CoreConfig, batch_len: usize) -> Self {
        let Some(d) = cfg.degraded else { return LadderRung::default() };
        if batch_len >= d.overload_batch {
            LadderRung { floor: Some(d.overload_min_poll), shedding: true }
        } else if batch_len >= d.ramp_batch {
            LadderRung { floor: Some(d.ramp_min_poll), shedding: false }
        } else {
            LadderRung::default()
        }
    }
}

/// Cumulative emission log: what the engine did, countable per batch or
/// per run. This is the log-emission stage's output — deterministic
/// counters only, safe to commit in artifacts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Time replies written.
    pub served: u64,
    /// RATE kiss-o'-death replies written.
    pub kod: u64,
    /// Datagrams that failed structural validation.
    pub malformed: u64,
    /// Valid requests with the RFC 4330 SNTP wire shape.
    pub sntp_shaped: u64,
    /// Valid requests with any other shape (ntpd-style pollers etc.).
    pub other_shaped: u64,
    /// Valid requests dropped without reply by the degradation ladder's
    /// priority shed.
    pub shed: u64,
    /// Times [`ServerCore::restart`] wiped the per-client state.
    pub restarts: u64,
}

impl CoreStats {
    /// Total datagrams examined.
    pub fn total(&self) -> u64 {
        self.served + self.kod + self.malformed + self.shed
    }

    fn add(&mut self, o: &CoreStats) {
        self.served += o.served;
        self.kod += o.kod;
        self.malformed += o.malformed;
        self.sntp_shaped += o.sntp_shaped;
        self.other_shaped += o.other_shaped;
        self.shed += o.shed;
    }
}

/// Stage-1 verdict for one datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Class {
    Malformed,
    Sntp,
    Other,
}

/// One shard: the rate table for its key-space slice plus positional
/// scratch reused across batches.
struct CoreShard {
    table: RateTable,
    /// Consecutive rate-limit violations per client since its last
    /// compliant arrival. Only touched when a ladder is configured;
    /// client-keyed like `table`, so strike history is shard-invariant.
    strikes: RateTable,
    /// Batch indices routed to this shard, in arrival order.
    picked: Vec<u32>,
    /// Stage-1 verdicts, parallel to `picked`.
    classes: Vec<Class>,
    /// Replies for `picked`, parallel by position.
    scratch: ReplyRing,
    /// This batch's emission counters.
    stats: CoreStats,
}

impl CoreShard {
    fn new(table_capacity: usize) -> Self {
        CoreShard {
            table: RateTable::with_capacity(table_capacity),
            strikes: RateTable::with_capacity(16),
            picked: Vec::new(),
            classes: Vec::new(),
            scratch: ReplyRing::new(),
            stats: CoreStats::default(),
        }
    }

    /// Stage 1 — ingest/classify: validate each routed datagram.
    fn stage_classify(&mut self, reqs: &RequestRing) {
        self.classes.clear();
        for &idx in &self.picked {
            let class = match reqs.get(idx as usize) {
                Some((_, wire)) => match NtpPacket::parse_ref(wire) {
                    Ok(view) if view.is_sntp_client_shape() => Class::Sntp,
                    Ok(_) => Class::Other,
                    Err(_) => Class::Malformed,
                },
                None => Class::Malformed,
            };
            self.classes.push(class);
        }
    }

    /// Stage 2 — discipline bookkeeping: one table upsert per valid
    /// request decides its fate. Same semantics as `SimServer::handle`:
    /// with rate limiting off, no state is touched and everything valid
    /// is served. `rung` is this batch's degradation rung, resolved
    /// serially by the caller: it can raise the effective poll floor and,
    /// while overloaded, escalate repeat offenders from `Kod` to `Shed`.
    fn stage_rate_limit(&mut self, cfg: &CoreConfig, reqs: &RequestRing, rung: LadderRung) {
        self.scratch.begin_batch(self.picked.len());
        let ladder = cfg.degraded.is_some();
        let shed_at = cfg.degraded.map_or(i64::MAX, |d| i64::from(d.shed_strikes).max(1));
        for (j, (&idx, &class)) in self.picked.iter().zip(&self.classes).enumerate() {
            if class == Class::Malformed {
                continue; // fate stays Malformed
            }
            let Some((meta, _)) = reqs.get(idx as usize) else { continue };
            let min = match (cfg.min_poll_interval, rung.floor) {
                (Some(m), Some(f)) => Some(m.max(f)),
                (m, None) => m,
                (None, f) => f,
            };
            let mut too_fast = false;
            if let Some(min) = min {
                let arrival_ns = meta.arrival.as_nanos();
                let prev = self.table.upsert(meta.client, arrival_ns);
                too_fast = prev.is_some_and(|p| arrival_ns - p < min.as_nanos());
            }
            let fate = if too_fast {
                let strikes = if ladder {
                    let s = self.strikes.get(meta.client).unwrap_or(0) + 1;
                    self.strikes.upsert(meta.client, s);
                    s
                } else {
                    0
                };
                if rung.shedding && strikes >= shed_at {
                    Fate::Shed
                } else {
                    Fate::Kod
                }
            } else {
                // A compliant arrival clears the record: honoring the
                // kiss is what keeps a client off the shed list.
                if ladder && self.strikes.get(meta.client).is_some_and(|s| s != 0) {
                    self.strikes.upsert(meta.client, 0);
                }
                Fate::Time
            };
            self.scratch.set_fate(j, fate);
        }
    }

    /// Stage 3 — emit: write each reply in place and log the batch.
    fn stage_emit(&mut self, cfg: &CoreConfig, reqs: &RequestRing) {
        self.stats = CoreStats::default();
        for (j, (&idx, &class)) in self.picked.iter().zip(&self.classes).enumerate() {
            let Some(fate) = self.scratch.fate(j) else { continue };
            if fate == Fate::Malformed {
                self.stats.malformed += 1;
                continue;
            }
            if fate == Fate::Shed {
                // Shed is silence: the slot stays zeroed, no bytes go out.
                self.stats.shed += 1;
                continue;
            }
            let Some((meta, wire)) = reqs.get(idx as usize) else { continue };
            // Validated in stage 1; re-borrowing the view is a few loads.
            let Ok(view) = NtpPacket::parse_ref(wire) else { continue };
            let Some(slot) = self.scratch.slot_mut(j) else { continue };
            let departure = meta.arrival + cfg.proc_delay;
            let t3 = departure.to_ntp() + cfg.clock_error;
            match fate {
                Fate::Kod => {
                    sntp_profile::write_kod_into(&view, RefId::KISS_RATE, t3, slot);
                    self.stats.kod += 1;
                }
                _ => {
                    let t2 = meta.arrival.to_ntp() + cfg.clock_error;
                    sntp_profile::write_server_reply_into(
                        &view,
                        t2,
                        t3,
                        cfg.stratum,
                        cfg.refid,
                        t2,
                        slot,
                    );
                    self.stats.served += 1;
                }
            }
            match class {
                Class::Sntp => self.stats.sntp_shaped += 1,
                Class::Other => self.stats.other_shaped += 1,
                Class::Malformed => {}
            }
        }
    }

    fn run_stages(&mut self, cfg: &CoreConfig, reqs: &RequestRing, rung: LadderRung) {
        self.stage_classify(reqs);
        self.stage_rate_limit(cfg, reqs, rung);
        self.stage_emit(cfg, reqs);
    }
}

/// The batched server engine. Owns the sharded rate tables and all batch
/// scratch; the caller owns the request/reply rings (so ingest and output
/// buffers can be double-buffered, pooled, or handed between stages
/// without copying through the engine).
pub struct ServerCore {
    cfg: CoreConfig,
    shards: Vec<CoreShard>,
    stats: CoreStats,
}

impl ServerCore {
    /// Build an engine from `cfg`. `cfg.shards` is rounded up to a power
    /// of two; the table capacity is split evenly across shards.
    pub fn new(cfg: CoreConfig) -> Self {
        let shards = cfg.shards.max(1).next_power_of_two();
        let per_shard = (cfg.table_capacity / shards).max(16);
        let cfg = CoreConfig { shards, ..cfg };
        ServerCore {
            cfg,
            shards: (0..shards).map(|_| CoreShard::new(per_shard)).collect(),
            stats: CoreStats::default(),
        }
    }

    /// The engine's (normalized) configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Cumulative emission counters across every processed batch.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Distinct clients currently tracked across all shard tables.
    pub fn clients_tracked(&self) -> usize {
        self.shards.iter().map(|s| s.table.len()).sum()
    }

    /// Model a process restart: every shard forgets its per-client
    /// arrival and strike state (capacity, config, and cumulative stats
    /// survive — a restarted daemon keeps its logs). The point is the
    /// recovery behavior: with the tables cold, the first post-restart
    /// poll from every client — including the reconnecting herd — has no
    /// previous arrival on record, so ban-honoring clients are *served*,
    /// not mass-RATE'd, and strike records don't carry a pre-restart
    /// grudge into the new process.
    pub fn restart(&mut self) {
        for shard in &mut self.shards {
            shard.table.clear();
            shard.strikes.clear();
        }
        self.stats.restarts += 1;
    }

    /// Run only stage 1 (ingest/classify) over a batch, serially — the
    /// profiling hook behind the pipeline's stage split, so the pure
    /// per-packet validation cost can be measured apart from table
    /// bookkeeping and reply emission. Returns `(sntp, other,
    /// malformed)` counts; no rate-table, reply, or stats state changes.
    pub fn classify_batch(&mut self, reqs: &RequestRing) -> (u64, u64, u64) {
        for shard in &mut self.shards {
            shard.picked.clear();
        }
        let nshards = self.shards.len();
        for (idx, (meta, _)) in reqs.iter().enumerate() {
            if let Some(shard) = self.shards.get_mut(shard_of(meta.client, nshards)) {
                shard.picked.push(idx as u32);
            }
        }
        let (mut sntp, mut other, mut malformed) = (0u64, 0u64, 0u64);
        for shard in &mut self.shards {
            shard.stage_classify(reqs);
            for class in &shard.classes {
                match class {
                    Class::Sntp => sntp += 1,
                    Class::Other => other += 1,
                    Class::Malformed => malformed += 1,
                }
            }
        }
        (sntp, other, malformed)
    }

    /// Answer one batch serially on the calling thread.
    pub fn process_batch(&mut self, reqs: &RequestRing, out: &mut ReplyRing) {
        self.process_batch_on(reqs, out, &Pool::with_jobs(1));
    }

    /// Answer one batch with shard stages fanned out over `pool`. The
    /// reply stream is byte-identical to [`ServerCore::process_batch`]
    /// for any pool size — the pool only changes wall-clock time.
    pub fn process_batch_on(&mut self, reqs: &RequestRing, out: &mut ReplyRing, pool: &Pool) {
        // Route (serial, cheap): client-keyed, never positional.
        for shard in &mut self.shards {
            shard.picked.clear();
        }
        let nshards = self.shards.len();
        for (idx, (meta, _)) in reqs.iter().enumerate() {
            if let Some(shard) = self.shards.get_mut(shard_of(meta.client, nshards)) {
                shard.picked.push(idx as u32);
            }
        }
        // Resolve this batch's degradation rung serially, *before* the
        // fan-out: the rung depends only on the batch length, so every
        // shard sees the same policy at any (shards, jobs).
        let rung = LadderRung::for_batch(&self.cfg, reqs.len());
        // Per-shard stages (parallel; each shard touches only its own
        // table and scratch).
        let cfg = self.cfg;
        pool.map(self.shards.iter_mut().collect::<Vec<_>>(), |shard| {
            shard.run_stages(&cfg, reqs, rung)
        });
        // Merge (serial, in shard order): positional copy back into
        // request order, plus the log roll-up.
        out.begin_batch(reqs.len());
        for shard in &self.shards {
            for (j, &idx) in shard.picked.iter().enumerate() {
                let Some(fate) = shard.scratch.fate(j) else { continue };
                if let (Some(src), Some(dst)) =
                    (shard.scratch.slot(j), out.slot_mut(idx as usize))
                {
                    dst.copy_from_slice(src);
                }
                out.set_fate(idx as usize, fate);
            }
            self.stats.add(&shard.stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server_core::arena::SLOT;
    use clocksim::time::SimTime;
    use ntp_wire::{sntp_profile::client_request, NtpTimestamp, PacketView};

    fn request_bytes(secs: u32) -> Vec<u8> {
        client_request(NtpTimestamp::from_parts(secs, 0)).serialize()
    }

    fn batch(clients: &[(u64, i64)]) -> RequestRing {
        let mut ring = RequestRing::with_capacity(clients.len());
        for &(client, at_ms) in clients {
            ring.push(client, SimTime::from_millis(at_ms), &request_bytes(at_ms as u32));
        }
        ring
    }

    #[test]
    fn serves_a_simple_batch() {
        let mut core = ServerCore::new(CoreConfig::default());
        let reqs = batch(&[(1, 1000), (2, 2000), (3, 3000)]);
        let mut out = ReplyRing::new();
        core.process_batch(&reqs, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out.fates(), &[Fate::Time; 3]);
        assert_eq!(core.stats().served, 3);
        assert_eq!(core.stats().sntp_shaped, 3);
        // Replies are valid server packets echoing the request transmit.
        for i in 0..3 {
            let view = PacketView::new(out.slot(i).unwrap()).unwrap();
            assert_eq!(view.mode(), ntp_wire::Mode::Server);
            assert_eq!(view.stratum(), 2);
        }
    }

    #[test]
    fn malformed_datagrams_get_zeroed_slots() {
        let mut core = ServerCore::new(CoreConfig::default());
        let mut reqs = RequestRing::with_capacity(3);
        reqs.push(1, SimTime::from_secs(1), &request_bytes(1));
        reqs.push(2, SimTime::from_secs(1), &[0xFF; 10]); // truncated
        reqs.push(3, SimTime::from_secs(1), &[0u8; SLOT]); // version 0
        let mut out = ReplyRing::new();
        core.process_batch(&reqs, &mut out);
        assert_eq!(out.fates(), &[Fate::Time, Fate::Malformed, Fate::Malformed]);
        assert_eq!(out.slot(1).unwrap(), &[0u8; SLOT]);
        assert_eq!(out.slot(2).unwrap(), &[0u8; SLOT]);
        assert_eq!(core.stats().malformed, 2);
    }

    #[test]
    fn rate_limit_kods_fast_client_but_not_interleaved_peer() {
        let cfg = CoreConfig {
            min_poll_interval: Some(SimDuration::from_secs(8)),
            ..CoreConfig::default()
        };
        let mut core = ServerCore::new(cfg);
        // Client 1 polls every 10 s (fine); client 2 re-polls after 2 s.
        let reqs = batch(&[(1, 0), (2, 1000), (2, 3000), (1, 10_000)]);
        let mut out = ReplyRing::new();
        core.process_batch(&reqs, &mut out);
        assert_eq!(out.fates(), &[Fate::Time, Fate::Time, Fate::Kod, Fate::Time]);
        assert_eq!(core.stats().kod, 1);
        // The KoD is a proper RATE kiss.
        let kod = PacketView::new(out.slot(2).unwrap()).unwrap();
        assert_eq!(kod.stratum(), 0);
        assert_eq!(kod.reference_id().as_kiss_code(), Some(*b"RATE"));
    }

    #[test]
    fn rate_state_persists_across_batches() {
        let cfg = CoreConfig {
            min_poll_interval: Some(SimDuration::from_secs(8)),
            ..CoreConfig::default()
        };
        let mut core = ServerCore::new(cfg);
        let mut out = ReplyRing::new();
        core.process_batch(&batch(&[(9, 1000)]), &mut out);
        assert_eq!(out.fates(), &[Fate::Time]);
        // Second batch, 2 s later: same client is now too fast.
        core.process_batch(&batch(&[(9, 3000)]), &mut out);
        assert_eq!(out.fates(), &[Fate::Kod]);
        assert_eq!(core.clients_tracked(), 1);
    }

    #[test]
    fn sharded_output_matches_serial_reference() {
        let mk_reqs = || {
            let mut ring = RequestRing::with_capacity(512);
            for i in 0..512u64 {
                // 64 clients, each polling repeatedly — some too fast.
                let client = i % 64;
                let at = (i * 731) % 50_000;
                ring.push(client, SimTime::from_millis(at as i64), &request_bytes(at as u32));
            }
            ring
        };
        let cfg = CoreConfig {
            min_poll_interval: Some(SimDuration::from_secs(4)),
            clock_error: NtpDuration::from_millis(3),
            ..CoreConfig::default()
        };
        let mut reference = ReplyRing::new();
        ServerCore::new(CoreConfig { shards: 1, ..cfg })
            .process_batch(&mk_reqs(), &mut reference);
        for shards in [2usize, 4, 8] {
            for jobs in [1usize, 4] {
                let mut core = ServerCore::new(CoreConfig { shards, ..cfg });
                let mut out = ReplyRing::new();
                core.process_batch_on(&mk_reqs(), &mut out, &Pool::with_jobs(jobs));
                assert_eq!(
                    out.as_bytes(),
                    reference.as_bytes(),
                    "reply stream diverged at shards={shards} jobs={jobs}"
                );
                assert_eq!(out.fates(), reference.fates());
            }
        }
    }

    #[test]
    fn classify_batch_counts_shapes_without_state_changes() {
        let mut core = ServerCore::new(CoreConfig {
            min_poll_interval: Some(SimDuration::from_secs(8)),
            ..CoreConfig::default()
        });
        let mut reqs = RequestRing::with_capacity(4);
        reqs.push(1, SimTime::from_secs(1), &request_bytes(1));
        reqs.push(2, SimTime::from_secs(1), &[0xFF; 10]);
        let ntpd = ntp_wire::NtpPacket {
            poll: 6,
            precision: -20,
            ..client_request(NtpTimestamp::from_parts(1, 0))
        };
        reqs.push(3, SimTime::from_secs(1), &ntpd.serialize());
        assert_eq!(core.classify_batch(&reqs), (1, 1, 1));
        // Pure: no clients tracked, no stats, and an immediate re-poll by
        // client 1 is *not* too fast (the classify pass touched no table).
        assert_eq!(core.clients_tracked(), 0);
        assert_eq!(core.stats().total(), 0);
        let mut out = ReplyRing::new();
        core.process_batch(&batch(&[(1, 1500)]), &mut out);
        assert_eq!(out.fates(), &[Fate::Time]);
    }

    #[test]
    fn stats_accumulate_across_batches() {
        let mut core = ServerCore::new(CoreConfig::default());
        let mut out = ReplyRing::new();
        core.process_batch(&batch(&[(1, 0), (2, 0)]), &mut out);
        core.process_batch(&batch(&[(3, 1000)]), &mut out);
        assert_eq!(core.stats().served, 3);
        assert_eq!(core.stats().total(), 3);
    }

    /// A small ladder that ramps at 4 requests/batch and overloads at 8,
    /// shedding on the 2nd consecutive violation.
    fn tiny_ladder() -> CoreDegradation {
        CoreDegradation {
            ramp_batch: 4,
            ramp_min_poll: SimDuration::from_secs(16),
            overload_batch: 8,
            overload_min_poll: SimDuration::from_secs(64),
            shed_strikes: 2,
        }
    }

    #[test]
    fn idle_ladder_is_byte_identical_to_no_ladder() {
        let base = CoreConfig {
            min_poll_interval: Some(SimDuration::from_secs(8)),
            clock_error: NtpDuration::from_millis(2),
            ..CoreConfig::default()
        };
        let mk_reqs = || {
            // 3-request batches: below even the tiny ladder's ramp rung.
            batch(&[(1, 0), (2, 100), (1, 2000)])
        };
        let mut plain = ReplyRing::new();
        ServerCore::new(base).process_batch(&mk_reqs(), &mut plain);
        let mut laddered = ReplyRing::new();
        let mut core = ServerCore::new(CoreConfig { degraded: Some(tiny_ladder()), ..base });
        core.process_batch(&mk_reqs(), &mut laddered);
        assert_eq!(plain.as_bytes(), laddered.as_bytes());
        assert_eq!(plain.fates(), laddered.fates());
        assert_eq!(core.stats().shed, 0);
    }

    #[test]
    fn ramp_rung_raises_the_poll_floor() {
        let mut core = ServerCore::new(CoreConfig {
            min_poll_interval: Some(SimDuration::from_secs(8)),
            degraded: Some(tiny_ladder()),
            ..CoreConfig::default()
        });
        // 4 requests -> ramp rung (floor 16 s). Client 7 re-polls after
        // 10 s: fine under the base 8 s policy, too fast under the ramp.
        let reqs = batch(&[(7, 0), (8, 10), (9, 20), (7, 10_000)]);
        let mut out = ReplyRing::new();
        core.process_batch(&reqs, &mut out);
        assert_eq!(out.fates(), &[Fate::Time, Fate::Time, Fate::Time, Fate::Kod]);
        assert_eq!(core.stats().kod, 1);
        assert_eq!(core.stats().shed, 0, "ramp rung never sheds");
    }

    #[test]
    fn overload_sheds_repeat_offenders_but_kods_first_offense() {
        let mut core = ServerCore::new(CoreConfig {
            min_poll_interval: Some(SimDuration::from_secs(8)),
            degraded: Some(tiny_ladder()),
            ..CoreConfig::default()
        });
        // 8 requests -> overload rung. Client 1 hammers every 100 ms:
        // first arrival served, strike 1 KoD'd, strikes >= 2 shed.
        // Client 2 polls politely once and is served.
        let reqs = batch(&[
            (1, 0),
            (1, 100),
            (1, 200),
            (1, 300),
            (1, 400),
            (1, 500),
            (1, 600),
            (2, 650),
        ]);
        let mut out = ReplyRing::new();
        core.process_batch(&reqs, &mut out);
        assert_eq!(out.fate(0), Some(Fate::Time));
        assert_eq!(out.fate(1), Some(Fate::Kod));
        for j in 2..7 {
            assert_eq!(out.fate(j), Some(Fate::Shed), "arrival {j} should be shed");
            assert_eq!(out.slot(j).unwrap(), &[0u8; SLOT], "shed slot must stay zeroed");
        }
        assert_eq!(out.fate(7), Some(Fate::Time));
        assert_eq!(core.stats().shed, 5);
        assert_eq!(core.stats().total(), 8);
    }

    #[test]
    fn compliant_arrival_clears_the_strike_record() {
        let mut core = ServerCore::new(CoreConfig {
            min_poll_interval: Some(SimDuration::from_secs(8)),
            degraded: Some(tiny_ladder()),
            ..CoreConfig::default()
        });
        let mut out = ReplyRing::new();
        // Overloaded batch: client 5 earns one strike (KoD), then backs
        // off past the overload floor — the compliant poll clears it.
        let pad: Vec<(u64, i64)> = (100..106).map(|c| (c, 0)).collect();
        let mut b1: Vec<(u64, i64)> = vec![(5, 0), (5, 100)];
        b1.extend_from_slice(&pad);
        core.process_batch(&batch(&b1), &mut out);
        assert_eq!(out.fate(1), Some(Fate::Kod));
        // Second overloaded batch, 100 s later: compliant poll serves and
        // resets; the immediate re-poll is a *first* strike again -> KoD,
        // not Shed.
        let mut b2: Vec<(u64, i64)> = vec![(5, 100_000), (5, 100_100)];
        b2.extend(pad.iter().map(|&(c, _)| (c, 100_000)));
        core.process_batch(&batch(&b2), &mut out);
        assert_eq!(out.fate(0), Some(Fate::Time));
        assert_eq!(out.fate(1), Some(Fate::Kod), "cleared record means KoD, not Shed");
    }

    #[test]
    fn restart_serves_returning_clients_without_mass_rate() {
        let mut core = ServerCore::new(CoreConfig {
            min_poll_interval: Some(SimDuration::from_secs(8)),
            degraded: Some(tiny_ladder()),
            ..CoreConfig::default()
        });
        let mut out = ReplyRing::new();
        core.process_batch(&batch(&[(1, 0), (2, 100), (3, 200)]), &mut out);
        assert_eq!(core.clients_tracked(), 3);
        core.restart();
        assert_eq!(core.clients_tracked(), 0);
        assert_eq!(core.stats().restarts, 1);
        // The whole herd reconnects 1 s later — way inside the 8 s
        // minimum interval, but the cold table has no previous arrival to
        // hold against them: everyone is served.
        core.process_batch(&batch(&[(1, 1000), (2, 1100), (3, 1200)]), &mut out);
        assert_eq!(out.fates(), &[Fate::Time; 3]);
    }

    #[test]
    fn sharded_ladder_matches_serial_reference() {
        let mk_reqs = |n: u64| {
            let mut ring = RequestRing::with_capacity(n as usize);
            for i in 0..n {
                // A few abusive clients hammering plus a polite majority.
                let client = if i % 3 == 0 { i % 4 } else { 100 + i % 40 };
                let at = i * 97 % 30_000;
                ring.push(client, SimTime::from_millis(at as i64), &request_bytes(at as u32));
            }
            ring
        };
        let cfg = CoreConfig {
            min_poll_interval: Some(SimDuration::from_secs(4)),
            degraded: Some(tiny_ladder()),
            ..CoreConfig::default()
        };
        // 256-request batches sit on the overload rung: floors and
        // shedding are both live, and must still be shard-invariant.
        let mut reference = ReplyRing::new();
        let mut serial = ServerCore::new(CoreConfig { shards: 1, ..cfg });
        serial.process_batch(&mk_reqs(256), &mut reference);
        assert!(serial.stats().shed > 0, "test is vacuous without sheds");
        for shards in [2usize, 4, 8] {
            for jobs in [1usize, 4] {
                let mut core = ServerCore::new(CoreConfig { shards, ..cfg });
                let mut out = ReplyRing::new();
                core.process_batch_on(&mk_reqs(256), &mut out, &Pool::with_jobs(jobs));
                assert_eq!(
                    out.as_bytes(),
                    reference.as_bytes(),
                    "laddered reply stream diverged at shards={shards} jobs={jobs}"
                );
                assert_eq!(out.fates(), reference.fates());
                assert_eq!(core.stats(), serial.stats());
            }
        }
    }
}
