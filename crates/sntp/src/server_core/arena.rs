//! Preallocated request/reply arenas for the batched server pipeline.
//!
//! Both rings are flat `Vec<u8>` arenas carved into fixed 48-byte slots —
//! one slot per datagram — so a whole batch is two contiguous allocations
//! that live for the engine's lifetime and are reused batch after batch.
//! Nothing in the per-packet path allocates: ingest copies each datagram
//! into its request slot once, and every reply is written in place by the
//! allocation-free `ntp-wire` writers.

use clocksim::time::{SimDuration, SimTime};
use ntp_wire::PACKET_LEN;

/// Bytes per arena slot — exactly one NTP header.
pub const SLOT: usize = PACKET_LEN;

/// Per-datagram metadata carried alongside the raw bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestMeta {
    /// Stable client key (source address surrogate) — the rate-limit and
    /// shard-routing identity.
    pub client: u64,
    /// True arrival instant at the server.
    pub arrival: SimTime,
    /// Stored datagram length, capped at [`SLOT`]. Shorter datagrams keep
    /// their real length so the parser sees the same truncation the wire
    /// delivered; longer ones keep only the header (trailing extension
    /// bytes are ignored by the codec anyway).
    pub len: u8,
}

/// A batch of inbound datagrams: one 48-byte slot plus one
/// [`RequestMeta`] per request, in arrival order.
#[derive(Clone, Debug)]
pub struct RequestRing {
    bytes: Vec<u8>,
    meta: Vec<RequestMeta>,
    cap: usize,
}

impl RequestRing {
    /// A ring with room for `cap` datagrams.
    pub fn with_capacity(cap: usize) -> Self {
        RequestRing { bytes: vec![0; cap * SLOT], meta: Vec::with_capacity(cap), cap }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Datagrams currently batched.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// True when no datagrams are batched.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Drop all batched datagrams (slots are reused, not zeroed).
    pub fn clear(&mut self) {
        self.meta.clear();
    }

    /// Copy one datagram into the next slot. Returns `false` (dropping
    /// the datagram) when the ring is full — the caller decides whether
    /// that means flush-and-retry or backpressure.
    pub fn push(&mut self, client: u64, arrival: SimTime, datagram: &[u8]) -> bool {
        let i = self.meta.len();
        if i >= self.cap {
            return false;
        }
        let keep = datagram.len().min(SLOT);
        let start = i * SLOT;
        if let (Some(dst), Some(src)) =
            (self.bytes.get_mut(start..start + keep), datagram.get(..keep))
        {
            dst.copy_from_slice(src);
        }
        self.meta.push(RequestMeta { client, arrival, len: keep as u8 });
        true
    }

    /// The metadata records, in arrival order.
    pub fn meta(&self) -> &[RequestMeta] {
        &self.meta
    }

    /// One datagram by batch index: its metadata and wire bytes. The
    /// slice is truncated to the stored length, so a short datagram
    /// parses exactly as the original would (`Truncated`).
    pub fn get(&self, idx: usize) -> Option<(&RequestMeta, &[u8])> {
        let m = self.meta.get(idx)?;
        let start = idx * SLOT;
        let wire = self.bytes.get(start..start + m.len as usize)?;
        Some((m, wire))
    }

    /// Iterate `(meta, wire bytes)` in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = (&RequestMeta, &[u8])> {
        self.meta.iter().zip(self.bytes.chunks_exact(SLOT)).map(|(m, slot)| {
            let wire = slot.get(..m.len as usize).unwrap_or(slot);
            (m, wire)
        })
    }

    /// Shift every arrival forward by `dt`, keeping the batch otherwise
    /// intact. Benchmarks replay one prepared batch many times; without
    /// this the second pass would see zero inter-arrival gaps and measure
    /// the kiss-o'-death path instead of service.
    pub fn advance_arrivals(&mut self, dt: SimDuration) {
        for m in &mut self.meta {
            m.arrival = m.arrival + dt;
        }
    }
}

/// What the pipeline decided to do with one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    /// A normal time reply was written.
    Time,
    /// A RATE kiss-o'-death was written.
    Kod,
    /// The datagram failed structural validation; its reply slot stays
    /// zeroed and nothing is sent.
    Malformed,
    /// A valid request from a repeat rate-limit offender, dropped without
    /// any reply while the engine is overloaded (the degradation ladder's
    /// priority shed). The slot stays zeroed and nothing is sent.
    Shed,
}

/// The outbound side: one 48-byte reply slot plus one [`Fate`] per
/// request, positionally aligned with the [`RequestRing`] batch.
#[derive(Clone, Debug, Default)]
pub struct ReplyRing {
    bytes: Vec<u8>,
    fates: Vec<Fate>,
}

impl ReplyRing {
    /// An empty ring; slots appear per batch.
    pub fn new() -> Self {
        ReplyRing::default()
    }

    /// Start a batch of `n` replies: all slots zeroed, all fates
    /// `Malformed` until a stage decides otherwise. Allocation is
    /// amortized — after the first batch of a given size this is a
    /// `memset`, nothing more.
    pub fn begin_batch(&mut self, n: usize) {
        self.bytes.clear();
        self.bytes.resize(n * SLOT, 0);
        self.fates.clear();
        self.fates.resize(n, Fate::Malformed);
    }

    /// Replies in the current batch.
    pub fn len(&self) -> usize {
        self.fates.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.fates.is_empty()
    }

    /// The fate of reply `idx`.
    pub fn fate(&self, idx: usize) -> Option<Fate> {
        self.fates.get(idx).copied()
    }

    /// All fates, in request order.
    pub fn fates(&self) -> &[Fate] {
        &self.fates
    }

    /// Record the fate of reply `idx`.
    pub fn set_fate(&mut self, idx: usize, fate: Fate) {
        if let Some(f) = self.fates.get_mut(idx) {
            *f = fate;
        }
    }

    /// Reply bytes for slot `idx` (zeroed if the fate is `Malformed`).
    pub fn slot(&self, idx: usize) -> Option<&[u8]> {
        let start = idx * SLOT;
        self.bytes.get(start..start + SLOT)
    }

    /// Mutable 48-byte reply slot `idx` for in-place serialization.
    pub fn slot_mut(&mut self, idx: usize) -> Option<&mut [u8; SLOT]> {
        let start = idx * SLOT;
        let s = self.bytes.get_mut(start..start + SLOT)?;
        <&mut [u8; SLOT]>::try_from(s).ok()
    }

    /// The whole reply stream, concatenated in request order — the byte
    /// string the determinism tests compare across (shards, jobs).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut ring = RequestRing::with_capacity(4);
        assert!(ring.is_empty());
        let datagram = [7u8; SLOT];
        assert!(ring.push(42, SimTime::from_secs(1), &datagram));
        assert_eq!(ring.len(), 1);
        let (m, wire) = ring.get(0).unwrap();
        assert_eq!(m.client, 42);
        assert_eq!(m.len as usize, SLOT);
        assert_eq!(wire, &datagram);
    }

    #[test]
    fn short_datagram_keeps_its_length() {
        let mut ring = RequestRing::with_capacity(2);
        ring.push(1, SimTime::ZERO, &[0xAB; 10]);
        let (m, wire) = ring.get(0).unwrap();
        assert_eq!(m.len, 10);
        assert_eq!(wire, &[0xAB; 10]);
    }

    #[test]
    fn long_datagram_truncated_to_header() {
        let mut ring = RequestRing::with_capacity(2);
        ring.push(1, SimTime::ZERO, &[0xCD; 200]);
        let (m, wire) = ring.get(0).unwrap();
        assert_eq!(m.len as usize, SLOT);
        assert_eq!(wire.len(), SLOT);
    }

    #[test]
    fn full_ring_rejects() {
        let mut ring = RequestRing::with_capacity(1);
        assert!(ring.push(1, SimTime::ZERO, &[0; SLOT]));
        assert!(!ring.push(2, SimTime::ZERO, &[0; SLOT]));
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn iter_matches_get() {
        let mut ring = RequestRing::with_capacity(3);
        for i in 0..3u8 {
            ring.push(i as u64, SimTime::from_secs(i as i64), &[i; 20]);
        }
        let via_iter: Vec<_> = ring.iter().map(|(m, w)| (*m, w.to_vec())).collect();
        for (i, (m, w)) in via_iter.iter().enumerate() {
            let (gm, gw) = ring.get(i).unwrap();
            assert_eq!(m, gm);
            assert_eq!(w, gw);
        }
    }

    #[test]
    fn advance_arrivals_shifts_only_time() {
        let mut ring = RequestRing::with_capacity(2);
        ring.push(5, SimTime::from_secs(10), &[1; SLOT]);
        ring.advance_arrivals(SimDuration::from_secs(3));
        let (m, _) = ring.get(0).unwrap();
        assert_eq!(m.arrival, SimTime::from_secs(13));
        assert_eq!(m.client, 5);
    }

    #[test]
    fn reply_ring_batch_lifecycle() {
        let mut out = ReplyRing::new();
        out.begin_batch(3);
        assert_eq!(out.len(), 3);
        assert_eq!(out.fate(0), Some(Fate::Malformed));
        out.slot_mut(1).unwrap().fill(0x11);
        out.set_fate(1, Fate::Time);
        assert_eq!(out.slot(1).unwrap(), &[0x11; SLOT]);
        assert_eq!(out.fate(1), Some(Fate::Time));
        // A new batch wipes everything.
        out.begin_batch(2);
        assert_eq!(out.len(), 2);
        assert_eq!(out.slot(1).unwrap(), &[0u8; SLOT]);
        assert_eq!(out.fate(1), Some(Fate::Malformed));
        assert_eq!(out.as_bytes().len(), 2 * SLOT);
    }

    #[test]
    fn out_of_range_access_is_none() {
        let ring = RequestRing::with_capacity(1);
        assert!(ring.get(0).is_none());
        let mut out = ReplyRing::new();
        out.begin_batch(1);
        assert!(out.slot(1).is_none());
        assert!(out.fate(1).is_none());
    }
}
