//! The batched server-side throughput engine.
//!
//! The fleet experiments model the server as [`crate::SimServer`] — parse
//! one packet, build one reply struct, heap-allocate its bytes. That is
//! the right fidelity for simulation, and three orders of magnitude off a
//! production ingest path. This module is the production shape: requests
//! arrive as raw bytes in a preallocated arena ([`RequestRing`]), flow
//! through a staged pipeline (zero-copy classify → sharded rate-limit →
//! in-place reply emission, see [`pipeline`]), and leave as a contiguous
//! reply stream ([`ReplyRing`]) without a single per-packet allocation.
//!
//! Semantics are pinned to the sim: a `ServerCore` with clock error *e*
//! produces byte-for-byte the replies a wobble-free `SimServer` would,
//! including kiss-o'-death fates — property-tested in
//! `crates/sntp/tests/server_core_equivalence.rs`. Scale-out is
//! deterministic: per-client shard routing plus a serial positional merge
//! keeps the reply stream identical at any (shards, jobs); throughput is
//! tracked by the `server_core_*` benches against
//! `results/bench/baseline.json`.
//!
//! * [`arena`] — [`RequestRing`] / [`ReplyRing`] slot arenas and [`Fate`].
//! * [`table`] — [`RateTable`]: sparse per-client last-seen ticks
//!   (open addressing, Fibonacci hashing) and [`shard_of`] routing.
//! * [`pipeline`] — [`ServerCore`]: the staged engine itself.

pub mod arena;
pub mod pipeline;
pub mod table;

pub use arena::{Fate, ReplyRing, RequestMeta, RequestRing, SLOT};
pub use pipeline::{CoreConfig, CoreDegradation, CoreStats, ServerCore};
pub use table::{shard_of, RateTable};
