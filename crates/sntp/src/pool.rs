//! The simulated `pool.ntp.org`.
//!
//! The paper's clients send every request to `0.pool.ntp.org`, and "every
//! SNTP request to the pool server is randomly assigned to a new NTP time
//! reference" (§3.2). The pool here is a population of [`SimServer`]s
//! with independently drawn clock errors and backbone delays; each
//! request picks a server uniformly at random.
//!
//! A configurable fraction of the population are **false tickers** —
//! servers whose clocks are off by tens to hundreds of ms. Public-pool
//! measurement studies (Vijayalayan & Veitch, "Rot at the Roots?", which
//! the paper cites) found exactly such servers in the wild; they are what
//! MNTP's warmup-phase mean+1σ rejection exists to filter out.

use clocksim::rng::SimRng;
use netsim::link::{DelayModel, Link, LossModel};

use crate::server::SimServer;

/// Pool population parameters.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of servers.
    pub size: usize,
    /// σ of well-behaved servers' clock errors, ms.
    pub good_error_sigma_ms: f64,
    /// Fraction of false tickers.
    pub false_ticker_fraction: f64,
    /// False-ticker error magnitude range, ms.
    pub false_ticker_error_ms: (f64, f64),
    /// Range of per-server backbone median OWDs, ms.
    pub backbone_median_ms: (f64, f64),
    /// Backbone packet loss probability per leg.
    pub backbone_loss: f64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            size: 24,
            good_error_sigma_ms: 1.0,
            false_ticker_fraction: 0.05,
            false_ticker_error_ms: (15.0, 60.0),
            backbone_median_ms: (12.0, 45.0),
            backbone_loss: 0.002,
        }
    }
}

/// A population of simulated pool servers.
pub struct ServerPool {
    servers: Vec<SimServer>,
    rng: SimRng,
}

impl ServerPool {
    /// Build a pool from config and a seed.
    pub fn new(cfg: PoolConfig, seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let mut servers = Vec::with_capacity(cfg.size);
        for id in 0..cfg.size {
            let is_false_ticker = rng.chance(cfg.false_ticker_fraction);
            let error_ms = if is_false_ticker {
                let mag = rng.uniform_range(cfg.false_ticker_error_ms.0, cfg.false_ticker_error_ms.1);
                if rng.chance(0.5) {
                    mag
                } else {
                    -mag
                }
            } else {
                rng.normal(0.0, cfg.good_error_sigma_ms)
            };
            let median = rng.uniform_range(cfg.backbone_median_ms.0, cfg.backbone_median_ms.1);
            let mk_link = |rng: &mut SimRng| {
                let _ = rng; // per-link state is inside the models
                Link {
                    delay: DelayModel::backbone(median),
                    loss: LossModel::Bernoulli(cfg.backbone_loss),
                }
            };
            let up = mk_link(&mut rng);
            let down = mk_link(&mut rng);
            servers.push(SimServer::with_error_ms(id, error_ms, (up, down), &mut rng));
        }
        ServerPool { servers, rng }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Pick a uniformly random server (a fresh DNS resolution of
    /// `N.pool.ntp.org`), returning its index.
    pub fn pick(&mut self) -> usize {
        self.rng.index(self.servers.len())
    }

    /// Pick `n` *distinct* random servers — what querying
    /// `0/1/3.pool.ntp.org` in parallel yields.
    pub fn pick_distinct(&mut self, n: usize) -> Vec<usize> {
        let n = n.min(self.servers.len());
        let mut ids: Vec<usize> = (0..self.servers.len()).collect();
        self.rng.shuffle(&mut ids);
        ids.truncate(n);
        ids
    }

    /// Access a server by index.
    pub fn server_mut(&mut self, id: usize) -> &mut SimServer {
        &mut self.servers[id]
    }

    /// Immutable access (tests/diagnostics).
    pub fn server(&self, id: usize) -> &SimServer {
        &self.servers[id]
    }

    /// Ground truth: indices of servers whose clock error exceeds
    /// `threshold_ms` (for validating false-ticker rejection).
    pub fn false_tickers(&self, threshold_ms: f64) -> Vec<usize> {
        self.servers
            .iter()
            .filter(|s| s.true_error_ms.abs() > threshold_ms)
            .map(|s| s.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_has_mostly_good_servers() {
        let pool = ServerPool::new(PoolConfig::default(), 1);
        let bad = pool.false_tickers(20.0).len();
        assert!(bad <= pool.len() / 3, "too many false tickers: {bad}");
        let good = pool.len() - bad;
        assert!(good >= pool.len() / 2);
    }

    #[test]
    fn some_seed_produces_false_tickers() {
        // With 10% fraction and 24 servers, most seeds have ≥1.
        let mut any = false;
        for seed in 0..5 {
            if !ServerPool::new(PoolConfig::default(), seed).false_tickers(20.0).is_empty() {
                any = true;
            }
        }
        assert!(any, "no false tickers across 5 seeds — model broken");
    }

    #[test]
    fn pick_covers_population() {
        let mut pool = ServerPool::new(PoolConfig { size: 8, ..Default::default() }, 2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[pool.pick()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pick_distinct_is_distinct() {
        let mut pool = ServerPool::new(PoolConfig::default(), 3);
        for _ in 0..50 {
            let ids = pool.pick_distinct(3);
            assert_eq!(ids.len(), 3);
            assert_ne!(ids[0], ids[1]);
            assert_ne!(ids[1], ids[2]);
            assert_ne!(ids[0], ids[2]);
        }
    }

    #[test]
    fn pick_distinct_clamps_to_pool_size() {
        let mut pool = ServerPool::new(PoolConfig { size: 2, ..Default::default() }, 4);
        assert_eq!(pool.pick_distinct(5).len(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let errors = |seed| {
            let pool = ServerPool::new(PoolConfig::default(), seed);
            (0..pool.len()).map(|i| pool.server(i).true_error_ms).collect::<Vec<_>>()
        };
        assert_eq!(errors(5), errors(5));
        assert_ne!(errors(5), errors(6));
    }
}
