//! The simulated `pool.ntp.org`.
//!
//! The paper's clients send every request to `0.pool.ntp.org`, and "every
//! SNTP request to the pool server is randomly assigned to a new NTP time
//! reference" (§3.2). The pool here is a population of [`SimServer`]s
//! with independently drawn clock errors and backbone delays; each
//! request picks a server uniformly at random.
//!
//! A configurable fraction of the population are **false tickers** —
//! servers whose clocks are off by tens to hundreds of ms. Public-pool
//! measurement studies (Vijayalayan & Veitch, "Rot at the Roots?", which
//! the paper cites) found exactly such servers in the wild; they are what
//! MNTP's warmup-phase mean+1σ rejection exists to filter out.

use clocksim::rng::SimRng;
use netsim::link::{DelayModel, Link, LossModel};

use crate::server::SimServer;

/// The module's single panic site: a server id that this pool or tracker
/// never issued. Ids are handles handed out by `pick`/`pick_distinct`,
/// so an out-of-range id is a caller bug reported loudly here instead of
/// via scattered indexing sites.
#[cold]
#[inline(never)]
fn foreign_id(who: &'static str, id: usize, len: usize) -> ! {
    // lint:allow(no-panic) — the pool's one audited panic: ids are handles issued by pick()/pick_distinct(), so an out-of-range id is a caller bug worth a loud, attributable failure
    panic!("{who}: foreign server id {id} (pool of {len})")
}

/// A server handle as the accessors see it: just the vector index, but
/// every conversion back to a slot goes through the bounds-checked
/// `resolve` pair below, keeping [`foreign_id`] the only panic path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ServerId(usize);

impl ServerId {
    fn resolve<'a, T>(self, slots: &'a [T], who: &'static str) -> &'a T {
        match slots.get(self.0) {
            Some(s) => s,
            None => foreign_id(who, self.0, slots.len()),
        }
    }

    fn resolve_mut<'a, T>(self, slots: &'a mut [T], who: &'static str) -> &'a mut T {
        let len = slots.len();
        match slots.get_mut(self.0) {
            Some(s) => s,
            None => foreign_id(who, self.0, len),
        }
    }
}

/// Pool population parameters.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of servers.
    pub size: usize,
    /// σ of well-behaved servers' clock errors, ms.
    pub good_error_sigma_ms: f64,
    /// Fraction of false tickers.
    pub false_ticker_fraction: f64,
    /// False-ticker error magnitude range, ms.
    pub false_ticker_error_ms: (f64, f64),
    /// Range of per-server backbone median OWDs, ms.
    pub backbone_median_ms: (f64, f64),
    /// Backbone packet loss probability per leg.
    pub backbone_loss: f64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            size: 24,
            good_error_sigma_ms: 1.0,
            false_ticker_fraction: 0.05,
            false_ticker_error_ms: (15.0, 60.0),
            backbone_median_ms: (12.0, 45.0),
            backbone_loss: 0.002,
        }
    }
}

/// A population of simulated pool servers.
pub struct ServerPool {
    servers: Vec<SimServer>,
    rng: SimRng,
}

impl ServerPool {
    /// Build a pool from config and a seed.
    pub fn new(cfg: PoolConfig, seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let mut servers = Vec::with_capacity(cfg.size);
        for id in 0..cfg.size {
            let is_false_ticker = rng.chance(cfg.false_ticker_fraction);
            let error_ms = if is_false_ticker {
                let mag = rng.uniform_range(cfg.false_ticker_error_ms.0, cfg.false_ticker_error_ms.1);
                if rng.chance(0.5) {
                    mag
                } else {
                    -mag
                }
            } else {
                rng.normal(0.0, cfg.good_error_sigma_ms)
            };
            let median = rng.uniform_range(cfg.backbone_median_ms.0, cfg.backbone_median_ms.1);
            let mk_link = |rng: &mut SimRng| {
                let _ = rng; // per-link state is inside the models
                Link {
                    delay: DelayModel::backbone(median),
                    loss: LossModel::Bernoulli(cfg.backbone_loss),
                }
            };
            let up = mk_link(&mut rng);
            let down = mk_link(&mut rng);
            servers.push(SimServer::with_error_ms(id, error_ms, (up, down), &mut rng));
        }
        ServerPool { servers, rng }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Pick a uniformly random server (a fresh DNS resolution of
    /// `N.pool.ntp.org`), returning its index.
    pub fn pick(&mut self) -> usize {
        self.rng.index(self.servers.len())
    }

    /// Pick `n` *distinct* random servers — what querying
    /// `0/1/3.pool.ntp.org` in parallel yields.
    pub fn pick_distinct(&mut self, n: usize) -> Vec<usize> {
        let n = n.min(self.servers.len());
        let mut ids: Vec<usize> = (0..self.servers.len()).collect();
        self.rng.shuffle(&mut ids);
        ids.truncate(n);
        ids
    }

    /// Access a server by index. Panics (via [`foreign_id`]) on an id
    /// this pool never issued.
    pub fn server_mut(&mut self, id: usize) -> &mut SimServer {
        ServerId(id).resolve_mut(&mut self.servers, "ServerPool::server_mut")
    }

    /// Immutable access (tests/diagnostics).
    pub fn server(&self, id: usize) -> &SimServer {
        ServerId(id).resolve(&self.servers, "ServerPool::server")
    }

    /// Ground truth: indices of servers whose clock error exceeds
    /// `threshold_ms` (for validating false-ticker rejection).
    pub fn false_tickers(&self, threshold_ms: f64) -> Vec<usize> {
        self.servers
            .iter()
            .filter(|s| s.true_error_ms.abs() > threshold_ms)
            .map(|s| s.id)
            .collect()
    }
}

/// Random server selection, abstracted away from the pool that owns the
/// server state.
///
/// Single-client drivers hand disciplines the [`ServerPool`] itself:
/// selection draws from the pool's own RNG. At fleet scale that shared
/// RNG would serialize every client through one mutable pool — and make
/// the draw order depend on scheduling — so each fleet client instead
/// owns a [`PickLane`]: a private selection RNG over the same server
/// index space. Disciplines only see `&mut dyn ServerSelect` and work
/// unchanged in both worlds.
pub trait ServerSelect {
    /// Number of selectable servers.
    fn len(&self) -> usize;

    /// True when no servers are selectable.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pick a uniformly random server index (a fresh DNS resolution of
    /// `N.pool.ntp.org`).
    fn pick(&mut self) -> usize;

    /// Pick `n` *distinct* random server indices — what querying
    /// `0/1/3.pool.ntp.org` in parallel yields.
    fn pick_distinct(&mut self, n: usize) -> Vec<usize>;
}

impl ServerSelect for ServerPool {
    fn len(&self) -> usize {
        ServerPool::len(self)
    }
    fn pick(&mut self) -> usize {
        ServerPool::pick(self)
    }
    fn pick_distinct(&mut self, n: usize) -> Vec<usize> {
        ServerPool::pick_distinct(self, n)
    }
}

/// A per-client server-selection lane: the same uniform pick /
/// distinct-shuffle draws as [`ServerPool`], from a private RNG stream,
/// over a server index space owned elsewhere.
#[derive(Clone, Debug)]
pub struct PickLane {
    rng: SimRng,
    servers: usize,
}

impl PickLane {
    /// A selection lane over `servers` indices, seeded independently of
    /// every other client's lane.
    pub fn new(servers: usize, seed: u64) -> Self {
        PickLane { rng: SimRng::new(seed), servers }
    }
}

impl ServerSelect for PickLane {
    fn len(&self) -> usize {
        self.servers
    }
    fn pick(&mut self) -> usize {
        self.rng.index(self.servers)
    }
    fn pick_distinct(&mut self, n: usize) -> Vec<usize> {
        let n = n.min(self.servers);
        let mut ids: Vec<usize> = (0..self.servers).collect();
        self.rng.shuffle(&mut ids);
        ids.truncate(n);
        ids
    }
}

/// Health-tracking policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Consecutive failures before a server is demoted (temporarily
    /// blacklisted).
    pub demote_after: u32,
    /// Blacklist duration for the first demotion, seconds.
    pub demote_secs: f64,
    /// Each repeat demotion multiplies the ban by this factor…
    pub demote_growth: f64,
    /// …up to this cap, seconds.
    pub max_demote_secs: f64,
    /// Extra spacing honored after a `RATE` kiss code, seconds.
    pub rate_backoff_secs: f64,
    /// Blacklist duration after `DENY`/`RSTR` (access refused — treat
    /// the server as gone for a long time), seconds.
    pub deny_secs: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            demote_after: 4,
            demote_secs: 60.0,
            demote_growth: 2.0,
            max_demote_secs: 900.0,
            rate_backoff_secs: 64.0,
            deny_secs: 3600.0,
        }
    }
}

/// Per-server reachability and sanction state, ntpd-style.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerHealth {
    /// 8-bit reachability shift register (1 = the last poll succeeded),
    /// as in RFC 5905 §13 / `ntpq -p`'s `reach` column.
    reach: u8,
    /// Failures since the last success.
    consecutive_failures: u32,
    /// Demotions served so far (drives the growing ban; decays on
    /// success).
    demotions: u32,
    /// Server is blacklisted until this time, seconds.
    banned_until_secs: f64,
    /// Kiss-o'-death replies seen from this server.
    pub kod_received: u64,
}

impl ServerHealth {
    /// The reachability shift register.
    pub fn reach(&self) -> u8 {
        self.reach
    }

    /// Polls answered among the last eight (0–8).
    pub fn score(&self) -> u32 {
        self.reach.count_ones()
    }

    /// True when the server may be queried at time `t` (not blacklisted).
    pub fn eligible(&self, t_secs: f64) -> bool {
        t_secs >= self.banned_until_secs
    }

    /// When the current sanction lapses (0 when never sanctioned).
    pub fn banned_until_secs(&self) -> f64 {
        self.banned_until_secs
    }
}

/// Tracks [`ServerHealth`] for a whole pool and performs failover
/// selection: healthy servers are picked at random; demoted servers sit
/// out a growing-but-decaying ban; `DENY`/`RSTR` kiss codes remove a
/// server for a long time. Owns a private RNG stream so selection
/// replays deterministically and never perturbs the pool's own stream.
#[derive(Clone, Debug)]
pub struct HealthTracker {
    cfg: HealthConfig,
    servers: Vec<ServerHealth>,
    rng: SimRng,
}

impl HealthTracker {
    /// Track `n` servers under `cfg`; `seed` fixes the selection stream.
    pub fn new(n: usize, cfg: HealthConfig, seed: u64) -> Self {
        HealthTracker { cfg, servers: vec![ServerHealth::default(); n], rng: SimRng::new(seed) }
    }

    /// Health of server `id`.
    pub fn health(&self, id: usize) -> &ServerHealth {
        ServerId(id).resolve(&self.servers, "HealthTracker::health")
    }

    /// Record a successful exchange with `id` at time `t`.
    pub fn on_success(&mut self, id: usize, _t_secs: f64) {
        let h = ServerId(id).resolve_mut(&mut self.servers, "HealthTracker::on_success");
        h.reach = (h.reach << 1) | 1;
        h.consecutive_failures = 0;
        // Decay: good behaviour halves the demotion memory, so an old
        // incident stops inflating future bans.
        h.demotions /= 2;
    }

    /// Record a failed exchange (loss, timeout, corrupt reply) with `id`.
    pub fn on_failure(&mut self, id: usize, t_secs: f64) {
        let cfg = self.cfg;
        let h = ServerId(id).resolve_mut(&mut self.servers, "HealthTracker::on_failure");
        h.reach <<= 1;
        h.consecutive_failures += 1;
        if h.consecutive_failures >= cfg.demote_after {
            let ban = (cfg.demote_secs * cfg.demote_growth.powi(h.demotions.min(16) as i32))
                .min(cfg.max_demote_secs);
            h.banned_until_secs = h.banned_until_secs.max(t_secs + ban);
            h.demotions = h.demotions.saturating_add(1);
            h.consecutive_failures = 0;
        }
    }

    /// Record a kiss-o'-death from `id`; the code decides the sanction.
    pub fn on_kod(&mut self, id: usize, code: [u8; 4], t_secs: f64) {
        let cfg = self.cfg;
        let h = ServerId(id).resolve_mut(&mut self.servers, "HealthTracker::on_kod");
        h.kod_received += 1;
        let ban = match &code {
            b"DENY" | b"RSTR" => cfg.deny_secs,
            _ => cfg.rate_backoff_secs,
        };
        h.banned_until_secs = h.banned_until_secs.max(t_secs + ban);
    }

    /// Pick one server to query at time `t`: uniformly random among the
    /// eligible; when *every* server is blacklisted, the one whose ban
    /// lapses soonest (lowest id breaking ties) — a client must always
    /// have a next server to try.
    pub fn pick(&mut self, t_secs: f64) -> usize {
        let eligible: Vec<usize> = self
            .servers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.eligible(t_secs))
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            // A tracker is always constructed over a non-empty pool; an
            // empty one degenerates to id 0 (which the accessors will
            // then report as foreign, attributably).
            return self
                .servers
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.banned_until_secs.total_cmp(&b.banned_until_secs))
                .map(|(i, _)| i)
                .unwrap_or_default();
        }
        let k = self.rng.index(eligible.len());
        eligible.get(k).copied().unwrap_or_default()
    }

    /// Pick up to `n` distinct servers, eligible ones first (shuffled),
    /// topped up with blacklisted ones (soonest-lapsing first) only when
    /// the eligible population is too small.
    pub fn pick_distinct(&mut self, n: usize, t_secs: f64) -> Vec<usize> {
        let mut eligible: Vec<usize> = self
            .servers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.eligible(t_secs))
            .map(|(i, _)| i)
            .collect();
        self.rng.shuffle(&mut eligible);
        if eligible.len() < n {
            let mut banned: Vec<(f64, usize)> = self
                .servers
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.eligible(t_secs))
                .map(|(i, s)| (s.banned_until_secs, i))
                .collect();
            banned.sort_by(|(a, _), (b, _)| a.total_cmp(b));
            eligible.extend(banned.into_iter().map(|(_, i)| i));
        }
        eligible.truncate(n.min(self.servers.len()));
        eligible
    }

    /// How many servers are currently eligible.
    pub fn eligible_count(&self, t_secs: f64) -> usize {
        self.servers.iter().filter(|h| h.eligible(t_secs)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_has_mostly_good_servers() {
        let pool = ServerPool::new(PoolConfig::default(), 1);
        let bad = pool.false_tickers(20.0).len();
        assert!(bad <= pool.len() / 3, "too many false tickers: {bad}");
        let good = pool.len() - bad;
        assert!(good >= pool.len() / 2);
    }

    #[test]
    fn some_seed_produces_false_tickers() {
        // With 10% fraction and 24 servers, most seeds have ≥1.
        let mut any = false;
        for seed in 0..5 {
            if !ServerPool::new(PoolConfig::default(), seed).false_tickers(20.0).is_empty() {
                any = true;
            }
        }
        assert!(any, "no false tickers across 5 seeds — model broken");
    }

    #[test]
    fn pick_covers_population() {
        let mut pool = ServerPool::new(PoolConfig { size: 8, ..Default::default() }, 2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[pool.pick()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pick_distinct_is_distinct() {
        let mut pool = ServerPool::new(PoolConfig::default(), 3);
        for _ in 0..50 {
            let ids = pool.pick_distinct(3);
            assert_eq!(ids.len(), 3);
            assert_ne!(ids[0], ids[1]);
            assert_ne!(ids[1], ids[2]);
            assert_ne!(ids[0], ids[2]);
        }
    }

    #[test]
    fn pick_distinct_clamps_to_pool_size() {
        let mut pool = ServerPool::new(PoolConfig { size: 2, ..Default::default() }, 4);
        assert_eq!(pool.pick_distinct(5).len(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let errors = |seed| {
            let pool = ServerPool::new(PoolConfig::default(), seed);
            (0..pool.len()).map(|i| pool.server(i).true_error_ms).collect::<Vec<_>>()
        };
        assert_eq!(errors(5), errors(5));
        assert_ne!(errors(5), errors(6));
    }

    #[test]
    fn reach_register_tracks_last_eight_polls() {
        let mut tr = HealthTracker::new(1, HealthConfig::default(), 1);
        for _ in 0..3 {
            tr.on_success(0, 0.0);
        }
        tr.on_failure(0, 0.0);
        tr.on_success(0, 0.0);
        assert_eq!(tr.health(0).reach(), 0b11101);
        assert_eq!(tr.health(0).score(), 4);
    }

    #[test]
    fn consecutive_failures_demote_and_bans_grow_then_decay() {
        let cfg = HealthConfig {
            demote_after: 3,
            demote_secs: 60.0,
            demote_growth: 2.0,
            max_demote_secs: 900.0,
            ..Default::default()
        };
        let mut tr = HealthTracker::new(1, cfg, 2);
        for _ in 0..3 {
            tr.on_failure(0, 100.0);
        }
        // First demotion: banned for 60 s.
        assert!(!tr.health(0).eligible(100.0));
        assert_eq!(tr.health(0).banned_until_secs(), 160.0);
        assert!(tr.health(0).eligible(160.0));
        // Second demotion doubles the ban.
        for _ in 0..3 {
            tr.on_failure(0, 200.0);
        }
        assert_eq!(tr.health(0).banned_until_secs(), 320.0);
        // Two successes decay the demotion memory back to zero…
        tr.on_success(0, 400.0);
        tr.on_success(0, 401.0);
        // …so the next demotion is a fresh 60 s again.
        for _ in 0..3 {
            tr.on_failure(0, 500.0);
        }
        assert_eq!(tr.health(0).banned_until_secs(), 560.0);
    }

    #[test]
    fn kiss_codes_sanction_by_severity() {
        let mut tr = HealthTracker::new(2, HealthConfig::default(), 3);
        tr.on_kod(0, *b"RATE", 100.0);
        assert!(!tr.health(0).eligible(100.0));
        assert!(tr.health(0).eligible(164.0));
        tr.on_kod(1, *b"DENY", 100.0);
        assert!(!tr.health(1).eligible(1000.0));
        assert!(tr.health(1).eligible(3700.0));
        assert_eq!(tr.health(1).kod_received, 1);
    }

    #[test]
    fn pick_avoids_blacklisted_servers() {
        let mut tr = HealthTracker::new(4, HealthConfig::default(), 4);
        tr.on_kod(2, *b"DENY", 0.0);
        for _ in 0..200 {
            assert_ne!(tr.pick(10.0), 2);
        }
        assert_eq!(tr.eligible_count(10.0), 3);
    }

    #[test]
    fn pick_falls_back_to_soonest_lapsing_ban_when_all_down() {
        let mut tr = HealthTracker::new(3, HealthConfig::default(), 5);
        tr.on_kod(0, *b"DENY", 0.0);
        tr.on_kod(1, *b"RATE", 0.0);
        tr.on_kod(2, *b"DENY", 0.0);
        // Everyone banned; server 1's RATE lapses first.
        assert_eq!(tr.pick(1.0), 1);
    }

    #[test]
    fn pick_distinct_prefers_eligible_and_tops_up() {
        let mut tr = HealthTracker::new(4, HealthConfig::default(), 6);
        tr.on_kod(1, *b"DENY", 0.0);
        tr.on_kod(3, *b"RATE", 0.0);
        let picked = tr.pick_distinct(3, 10.0);
        assert_eq!(picked.len(), 3);
        // The two eligible servers must both be there; the top-up is the
        // soonest-lapsing ban (RATE before DENY).
        assert!(picked.contains(&0) && picked.contains(&2));
        assert!(picked.contains(&3));
        assert!(!picked.contains(&1));
    }

    #[test]
    fn tracker_selection_is_deterministic() {
        let run = |seed| {
            let mut tr = HealthTracker::new(8, HealthConfig::default(), seed);
            (0..100)
                .map(|i| {
                    let id = tr.pick(i as f64);
                    if i % 3 == 0 {
                        tr.on_failure(id, i as f64);
                    } else {
                        tr.on_success(id, i as f64);
                    }
                    id
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
