//! Radio energy accounting for synchronization traffic.
//!
//! The paper's §3.4 argues NTP is "ill-suited for mobile devices and
//! would have a negative impact on battery life", citing Balasubramanian
//! et al. (IMC'09): on 3G, every transfer pays a large *tail* cost — the
//! radio stays in a high-power state for seconds after the last packet —
//! so many small periodic transfers cost far more than their byte counts
//! suggest. This module implements that model so the workspace's
//! protocol comparisons can report joules, not just packet counts.
//!
//! Model (after Balasubramanian et al., simplified): a transfer pays a
//! ramp cost if the radio was idle, active power during its airtime, and
//! the radio then drains tail power until the tail expires *or the next
//! transfer arrives* — tail energy is charged by occupancy of the union
//! of tail intervals, so polling faster than the tail length pins the
//! radio high and costs wall-clock time, not transfer count.

/// Radio energy parameters. Defaults approximate a 3G/early-LTE handset
/// (the paper's study period): ~2 J ramp+tail overhead per isolated
/// transfer, 12.5 s tail.
#[derive(Clone, Debug)]
pub struct EnergyModel {
    /// Energy to promote the radio from idle, J.
    pub ramp_j: f64,
    /// Power while actively transferring, W.
    pub active_w: f64,
    /// Power during the post-transfer tail, W.
    pub tail_w: f64,
    /// Tail duration after the last packet, s.
    pub tail_secs: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel { ramp_j: 0.6, active_w: 0.8, tail_w: 0.6, tail_secs: 12.5 }
    }
}

/// Accumulates the energy of a time-ordered sequence of transfers.
///
/// The tail is charged by *occupancy*: the radio drains `tail_w` for the
/// entire union of tail intervals, so a client polling faster than the
/// tail length keeps the radio pinned high and pays continuously — the
/// actual reason periodic small transfers are so expensive.
/// ```
/// use sntp::{EnergyMeter, EnergyModel};
///
/// let mut spread = EnergyMeter::new(EnergyModel::default());
/// let mut bundled = EnergyMeter::new(EnergyModel::default());
/// for i in 0..10 {
///     spread.record_transfer(i as f64 * 60.0, 0.1);  // one per minute
///     bundled.record_transfer(i as f64 * 0.2, 0.1);  // back to back
/// }
/// // Spacing transfers past the radio tail costs several times more.
/// assert!(spread.total_j() > 3.0 * bundled.total_j());
/// ```
#[derive(Clone, Debug)]
pub struct EnergyMeter {
    model: EnergyModel,
    /// End of the last transfer's airtime, s.
    last_active_end: f64,
    /// End of the current radio-on window (airtime + tail), s.
    tail_until: f64,
    /// Total energy excluding the final unexpired tail, J.
    total_j: f64,
    /// Transfers that found the radio already up.
    piggybacked: u64,
    /// Transfers that paid a ramp.
    isolated: u64,
}

impl EnergyMeter {
    /// New meter with the given model.
    pub fn new(model: EnergyModel) -> Self {
        EnergyMeter {
            model,
            last_active_end: f64::NEG_INFINITY,
            tail_until: f64::NEG_INFINITY,
            total_j: 0.0,
            piggybacked: 0,
            isolated: 0,
        }
    }

    /// Record one transfer at time `at_secs` lasting `airtime_secs`
    /// (an SNTP exchange is ~an RTT of airtime at the radio level).
    /// Transfers must be fed in time order.
    pub fn record_transfer(&mut self, at_secs: f64, airtime_secs: f64) {
        // Close out the previous tail: it ran from the end of the last
        // airtime until the new transfer started (or it expired).
        if self.last_active_end.is_finite() {
            let tail_ran = (at_secs.min(self.tail_until) - self.last_active_end).max(0.0);
            self.total_j += self.model.tail_w * tail_ran;
        }
        if at_secs <= self.tail_until {
            self.piggybacked += 1;
        } else {
            self.total_j += self.model.ramp_j;
            self.isolated += 1;
        }
        self.total_j += self.model.active_w * airtime_secs;
        self.last_active_end = at_secs + airtime_secs;
        self.tail_until = self.last_active_end + self.model.tail_secs;
    }

    /// Total energy so far, including the currently unexpired tail
    /// (as if the measurement window closed now with the tail running
    /// to completion).
    pub fn total_j(&self) -> f64 {
        if self.last_active_end.is_finite() {
            self.total_j + self.model.tail_w * self.model.tail_secs
        } else {
            self.total_j
        }
    }

    /// `(isolated, piggybacked)` transfer counts.
    pub fn counts(&self) -> (u64, u64) {
        (self.isolated, self.piggybacked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_transfer_pays_ramp_and_tail() {
        let mut m = EnergyMeter::new(EnergyModel::default());
        m.record_transfer(100.0, 0.1);
        // 0.6 + 0.8·0.1 + 0.6·12.5 = 8.18 J
        assert!((m.total_j() - 8.18).abs() < 1e-9, "{}", m.total_j());
        assert_eq!(m.counts(), (1, 0));
    }

    #[test]
    fn back_to_back_transfers_keep_the_radio_up() {
        let mut m = EnergyMeter::new(EnergyModel::default());
        m.record_transfer(100.0, 0.1);
        m.record_transfer(105.0, 0.1); // inside the 12.5 s tail
        assert_eq!(m.counts(), (1, 1));
        // One ramp; airtime 2×0.08 J; tail occupancy = 4.9 s between the
        // transfers + a full 12.5 s tail after the second.
        let expected = 0.6 + 2.0 * 0.08 + 0.6 * (4.9 + 12.5);
        assert!((m.total_j() - expected).abs() < 1e-9, "{} vs {expected}", m.total_j());
    }

    /// The crucial property the naive per-transfer model misses: polling
    /// faster than the tail never lets the radio sleep, so energy grows
    /// with *wall time*, not transfer count.
    #[test]
    fn fast_polling_pins_the_radio() {
        let mut m = EnergyMeter::new(EnergyModel::default());
        // 720 polls, 5 s apart: one hour with the radio pinned high.
        for i in 0..720 {
            m.record_transfer(i as f64 * 5.0, 0.1);
        }
        // Lower bound: tail power for the whole hour.
        assert!(m.total_j() > 0.6 * 3600.0 * 0.9, "{}", m.total_j());
        assert_eq!(m.counts().0, 1, "only the first transfer ramps");
    }

    #[test]
    fn spaced_transfers_each_pay_full_price() {
        let mut m = EnergyMeter::new(EnergyModel::default());
        m.record_transfer(0.0, 0.1);
        m.record_transfer(100.0, 0.1);
        assert_eq!(m.counts(), (2, 0));
        assert!((m.total_j() - 2.0 * 8.18).abs() < 1e-9);
    }

    /// The Balasubramanian result the paper leans on: N transfers spread
    /// out cost ~N× the bundle price; the same N transfers bundled cost
    /// barely more than one.
    #[test]
    fn periodic_small_transfers_cost_more_than_a_bundle() {
        let spread = {
            let mut m = EnergyMeter::new(EnergyModel::default());
            for i in 0..20 {
                m.record_transfer(i as f64 * 64.0, 0.05);
            }
            m.total_j()
        };
        let bundled = {
            let mut m = EnergyMeter::new(EnergyModel::default());
            for i in 0..20 {
                m.record_transfer(i as f64 * 0.2, 0.05);
            }
            m.total_j()
        };
        assert!(spread > 10.0 * bundled, "spread {spread} vs bundled {bundled}");
    }

    #[test]
    fn tail_window_slides_forward() {
        let mut m = EnergyMeter::new(EnergyModel::default());
        m.record_transfer(0.0, 0.1);
        m.record_transfer(10.0, 0.1); // piggybacked, tail now ends ≈22.7
        m.record_transfer(20.0, 0.1); // still piggybacked
        assert_eq!(m.counts(), (1, 2));
    }
}
