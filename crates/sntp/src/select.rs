//! Falseticker-resilient server selection: Marzullo's intersection
//! algorithm plus the cluster/combine refinement of RFC 5905 §11.2.
//!
//! Each peer asserts that the true offset lies in its *correctness
//! interval* `[θ − λ, θ + λ]`, where λ is the peer's root
//! synchronization distance. [`select_survivors`] finds the largest
//! group of peers whose intervals share a common point; everyone
//! outside the clique is a *falseticker*. [`cluster`] then prunes
//! statistical outliers among the survivors — repeatedly discarding the
//! peer whose offset deviates most from the others (its *selection
//! jitter*) until that deviation no longer dominates the peers' own
//! jitter or [`MIN_SURVIVORS`] is reached — and [`combine`] folds the
//! remainder into one system offset, weighted by inverse root distance.
//!
//! This is the "time-tested filtering" that SNTP lacks and whose
//! absence the paper's §3.4 blames for mobile clients' poor
//! synchronization. It grew up in `ntpd_sim` (which still re-exports
//! it); it lives here — below every client stack — so the fleet's
//! multi-server MNTP discipline can run the same mitigation without a
//! dependency cycle. The whole module is structurally panic-free: it
//! sits on the `lint.toml` `[panic]` hot-path list.

/// A peer's candidate offset and its error bound, both in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeerCandidate {
    /// Identifier the caller uses to map survivors back to peers.
    pub peer_id: usize,
    /// Filtered clock offset θ, s.
    pub offset: f64,
    /// Root synchronization distance λ (delay/2 + dispersion), s.
    pub root_distance: f64,
    /// Peer jitter (for the cluster stage), s.
    pub jitter: f64,
}

/// Run the intersection algorithm. Returns the ids of the surviving
/// (truechimer) peers. At least `2*f+1` of `n` peers must agree, where
/// `f` is the number tolerated as false — the standard majority-clique
/// rule; with fewer than half agreeing, the result is empty.
pub fn select_survivors(candidates: &[PeerCandidate]) -> Vec<usize> {
    let n = candidates.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return candidates.iter().map(|c| c.peer_id).collect();
    }
    // Map each float endpoint to an integer whose natural order matches
    // `total_cmp` (the sign-magnitude → two's-complement bit trick; an
    // involution, so `ord_key` also maps keys back to float bits). The
    // transform runs once per endpoint at construction, so the sort
    // compares plain machine words instead of re-deriving keys — or
    // branching on NaN — in the comparator.
    fn ord_key(b: i64) -> i64 {
        b ^ (((b >> 63) as u64) >> 1) as i64
    }
    fn key_val(k: i64) -> f64 {
        f64::from_bits(ord_key(k) as u64)
    }
    // Endpoint list: (key, type) with type −1 = lower, +1 = upper; lower
    // endpoints sort before upper at equal values, as before. Equal
    // (key, type) pairs are interchangeable to the sweep, so an unstable
    // sort is deterministic here.
    let mut endpoints: Vec<(i64, i32)> = Vec::with_capacity(2 * n);
    for c in candidates {
        endpoints.push((ord_key((c.offset - c.root_distance).to_bits() as i64), -1));
        endpoints.push((ord_key((c.offset + c.root_distance).to_bits() as i64), 1));
    }
    endpoints.sort_unstable();

    // Find the maximum number of overlapping intervals and the region.
    // Standard sweep: count +1 at a lower endpoint, −1 at an upper.
    let mut depth = 0;
    let mut best_depth = 0;
    let mut region_lo = f64::NEG_INFINITY;
    let mut region_hi = f64::INFINITY;
    for (i, &(k, kind)) in endpoints.iter().enumerate() {
        if kind == -1 {
            depth += 1;
            if depth > best_depth {
                best_depth = depth;
                region_lo = key_val(k);
                // The matching upper bound is the next endpoint value at
                // which depth drops below best; recorded below.
                region_hi = endpoints
                    .get(i + 1)
                    .map(|e| key_val(e.0))
                    .unwrap_or(f64::INFINITY);
            }
        } else {
            depth -= 1;
        }
    }
    // Majority rule: the clique must contain more than half the peers
    // (tolerating f < n/2 falsetickers).
    if best_depth * 2 <= n {
        return Vec::new();
    }
    // Survivors: peers whose interval covers the intersection region.
    candidates
        .iter()
        .filter(|c| {
            c.offset - c.root_distance <= region_hi && c.offset + c.root_distance >= region_lo
        })
        .map(|c| c.peer_id)
        .collect()
}

/// Minimum survivors the cluster algorithm will prune down to.
pub const MIN_SURVIVORS: usize = 3;

/// Selection jitter of candidate `i`: RMS of its offset against every
/// other candidate.
fn selection_jitter(cands: &[PeerCandidate], i: usize) -> f64 {
    if cands.len() < 2 {
        return 0.0;
    }
    let Some(ci) = cands.get(i) else {
        return 0.0;
    };
    let oi = ci.offset;
    let sum: f64 = cands
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != i)
        .map(|(_, c)| (c.offset - oi).powi(2))
        .sum();
    (sum / (cands.len() - 1) as f64).sqrt()
}

/// Run the cluster algorithm over the intersection survivors. Returns
/// the pruned candidate list (never empty if the input wasn't).
pub fn cluster(mut cands: Vec<PeerCandidate>) -> Vec<PeerCandidate> {
    while cands.len() > MIN_SURVIVORS {
        // Find max selection jitter (last max on ties, matching the old
        // `max_by` behaviour) and min peer jitter.
        let mut worst_idx = 0usize;
        let mut worst_sel = f64::NEG_INFINITY;
        for i in 0..cands.len() {
            let sj = selection_jitter(&cands, i);
            if sj >= worst_sel {
                worst_sel = sj;
                worst_idx = i;
            }
        }
        let min_peer_jitter = cands
            .iter()
            .map(|c| c.jitter)
            .fold(f64::INFINITY, f64::min);
        // Stop when discarding no longer helps: the worst selection
        // jitter is already below the best peer's own jitter.
        if worst_sel <= min_peer_jitter || worst_idx >= cands.len() {
            break;
        }
        cands.remove(worst_idx);
    }
    cands
}

/// Combine survivor offsets into the system offset, weighting each by
/// the reciprocal of its root distance (RFC 5905 §11.2.3).
pub fn combine(cands: &[PeerCandidate]) -> Option<f64> {
    if cands.is_empty() {
        return None;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for c in cands {
        let w = 1.0 / c.root_distance.max(1e-9);
        num += w * c.offset;
        den += w;
    }
    Some(num / den)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: usize, offset: f64, dist: f64) -> PeerCandidate {
        PeerCandidate { peer_id: id, offset, root_distance: dist, jitter: 0.001 }
    }

    fn candj(id: usize, offset: f64, dist: f64, jitter: f64) -> PeerCandidate {
        PeerCandidate { peer_id: id, offset, root_distance: dist, jitter }
    }

    #[test]
    fn agreeing_peers_all_survive() {
        let cs = [cand(0, 0.010, 0.020), cand(1, 0.015, 0.020), cand(2, 0.005, 0.020)];
        let mut got = select_survivors(&cs);
        got.sort();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn falseticker_excluded() {
        let cs = [
            cand(0, 0.010, 0.015),
            cand(1, 0.012, 0.015),
            cand(2, 0.008, 0.015),
            cand(3, 0.500, 0.015), // half a second off
        ];
        let mut got = select_survivors(&cs);
        got.sort();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn no_majority_returns_empty() {
        // Two far-apart pairs: no clique has > n/2 members.
        let cs = [
            cand(0, 0.0, 0.01),
            cand(1, 0.0, 0.01),
            cand(2, 1.0, 0.01),
            cand(3, 1.0, 0.01),
        ];
        assert!(select_survivors(&cs).is_empty());
    }

    #[test]
    fn single_peer_survives_trivially() {
        assert_eq!(select_survivors(&[cand(7, 0.3, 0.01)]), vec![7]);
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(select_survivors(&[]).is_empty());
    }

    #[test]
    fn wide_interval_peer_can_join_clique() {
        // A peer with a big error bound still overlaps the tight clique.
        let cs = [
            cand(0, 0.000, 0.005),
            cand(1, 0.002, 0.005),
            cand(2, 0.100, 0.200), // wide but covering
        ];
        let mut got = select_survivors(&cs);
        got.sort();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn two_against_one() {
        let cs = [cand(0, 0.0, 0.01), cand(1, 0.001, 0.01), cand(2, 5.0, 0.01)];
        let mut got = select_survivors(&cs);
        got.sort();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn outlier_pruned_first() {
        let cands = vec![
            candj(0, 0.001, 0.02, 0.0005),
            candj(1, 0.002, 0.02, 0.0005),
            candj(2, 0.0015, 0.02, 0.0005),
            candj(3, 0.040, 0.02, 0.0005), // inside its interval, but noisy
        ];
        let out = cluster(cands);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|c| c.peer_id != 3));
    }

    #[test]
    fn never_prunes_below_minimum() {
        let cands = vec![
            candj(0, 0.0, 0.02, 0.0001),
            candj(1, 0.5, 0.02, 0.0001),
            candj(2, -0.5, 0.02, 0.0001),
        ];
        assert_eq!(cluster(cands).len(), 3);
    }

    #[test]
    fn stops_when_jitter_dominated() {
        // All peers noisier than the spread between them: nothing pruned.
        let cands = vec![
            candj(0, 0.001, 0.02, 0.050),
            candj(1, 0.002, 0.02, 0.050),
            candj(2, 0.003, 0.02, 0.050),
            candj(3, 0.004, 0.02, 0.050),
        ];
        assert_eq!(cluster(cands).len(), 4);
    }

    #[test]
    fn combine_weights_by_distance() {
        // Peer 0 is 10x closer: its offset dominates.
        let cands = [candj(0, 0.010, 0.01, 0.0), candj(1, 0.110, 0.10, 0.0)];
        let c = combine(&cands).unwrap();
        let expected = (100.0 * 0.010 + 10.0 * 0.110) / 110.0;
        assert!((c - expected).abs() < 1e-12, "c={c}");
        assert!(c < 0.03, "closer peer should dominate: {c}");
    }

    #[test]
    fn combine_empty_is_none() {
        assert_eq!(combine(&[]), None);
    }

    #[test]
    fn combine_single() {
        assert_eq!(combine(&[candj(0, 0.25, 0.02, 0.0)]), Some(0.25));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use devtools::prop;
    use devtools::{prop_assert, props};

    props! {
        /// With a majority of peers within ±b of zero and the rest far
        /// away, the far peers never survive.
        fn distant_minority_never_survives(
            good in prop::vecs(prop::floats(-0.005..0.005), 3..6),
            bad in prop::vecs(prop::floats(2.0..10.0), 1..2),
        ) {
            let mut cs = Vec::new();
            for (i, &o) in good.iter().enumerate() {
                cs.push(PeerCandidate { peer_id: i, offset: o, root_distance: 0.02, jitter: 0.0 });
            }
            let base = good.len();
            for (i, &o) in bad.iter().enumerate() {
                cs.push(PeerCandidate { peer_id: base + i, offset: o, root_distance: 0.02, jitter: 0.0 });
            }
            let got = select_survivors(&cs);
            for id in &got {
                prop_assert!(*id < base, "falseticker {id} survived");
            }
            prop_assert!(got.len() >= good.len(), "some truechimer was dropped: {got:?}");
        }
    }
}
