//! # sntp
//!
//! The SNTP side of the reproduction: a sans-io RFC 4330 client state
//! machine, a simulated population of NTP pool servers, the vendor client
//! policies the paper calls out (§2), and the *exchange composition* that
//! carries real packet bytes across the simulated testbed.
//!
//! * [`client`] — [`client::SntpClient`]: builds requests, validates
//!   replies, yields [`client::OffsetSample`]s. This is the unmodified
//!   baseline MNTP is compared against.
//! * [`server`] — [`server::SimServer`]: a stratum server with its own
//!   (slightly wrong) clock, processing delay, and backbone path.
//! * [`pool`] — [`pool::ServerPool`]: `0.pool.ntp.org`-style random server
//!   assignment per request, including a configurable fraction of
//!   *false tickers* (servers whose clock is badly off), which is what
//!   MNTP's warmup-phase rejection heuristic exists to defeat.
//! * [`exchange`] — [`exchange::perform_exchange`]: serializes a request,
//!   walks it across the last hop and backbone (each leg can drop or
//!   delay it), has the server answer, and walks the reply back. All four
//!   timestamps come from the respective clocks; nothing reads true time.
//! * [`vendor`] — Android KitKat / Windows Mobile SNTP policies and NITZ,
//!   reproducing the OS behaviours in §2 of the paper.
//! * [`energy`] — the Balasubramanian-style radio energy model behind
//!   the paper's §3.4 battery argument: joules per transfer including
//!   ramp and tail costs.
//! * [`retry`] — capped exponential backoff with deterministic jitter,
//!   the pacing policy hardened clients use after failures.
//! * [`select`] — Marzullo-style intersection plus the RFC 5905 §11.2
//!   cluster/combine refinement: the falseticker-resilient selection
//!   every multi-server client stack (ntpd-sim, the fleet's hardened
//!   MNTP discipline) runs over its per-server candidates.
//! * [`server_core`] — the batched byte-level server engine: arena-backed
//!   zero-copy parse → classify → sharded rate-limit → in-place reply
//!   emission, behaviorally pinned to [`server::SimServer`].
//!
//! The hardened-client surface ([`exchange::perform_exchange_faulted`],
//! [`pool::HealthTracker`], kiss-o'-death handling via
//! [`client::ReplyOutcome`]) composes with `netsim::faults` to survive
//! the episodic failures the fault layer injects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod energy;
pub mod exchange;
pub mod fleet;
pub mod pool;
pub mod retry;
pub mod select;
pub mod server;
pub mod server_core;
pub mod vendor;

pub use client::{OffsetSample, ReplyOutcome, SntpClient};
pub use energy::{EnergyMeter, EnergyModel};
pub use fleet::{
    begin_fleet_exchange, complete_fleet_exchange, perform_fleet_exchange, serve_fleet_exchange,
    FleetArrival, FleetReplyInFlight, FleetRequestInFlight, RequestShape,
};
pub use exchange::{
    perform_exchange, perform_exchange_faulted, perform_exchange_traced, CompletedExchange,
    ExchangeError, TracedPacket,
};
pub use pool::{
    HealthConfig, HealthTracker, PickLane, PoolConfig, ServerHealth, ServerPool, ServerSelect,
};
pub use retry::{Backoff, BackoffConfig};
pub use select::{cluster, combine, select_survivors, PeerCandidate, MIN_SURVIVORS};
pub use server::SimServer;
pub use server_core::{
    CoreConfig, CoreDegradation, CoreStats, RateTable, ReplyRing, RequestRing, ServerCore,
};
