//! Fleet-scale exchange: one client among many, one server with a
//! capacity model.
//!
//! [`perform_fleet_exchange`] is the multi-client sibling of
//! [`crate::perform_exchange`]: the last hop is one lane of a shared
//! [`netsim::fleet::FleetNet`] (any [`ChannelIo`] — a standalone
//! `WifiChannel` or a `Lane` view of the struct-of-arrays bank), and the
//! server is fronted by a [`netsim::fleet::ServerModel`] that can drop
//! the request on backlog overflow or answer a RATE kiss under load.
//! Alongside the client-side outcome it emits the *server-side*
//! observation — the raw request bytes and true arrival time — so a
//! simulated fleet produces exactly the kind of log the paper's §3.1
//! measurement pipeline consumes.
//!
//! # Phases
//!
//! The round trip is factored into three phase functions so the sharded
//! fleet runner can pipeline them across an epoch barrier:
//!
//! 1. [`begin_fleet_exchange`] — client side: stamp `t1`, shape the
//!    request, pay the wireless uplink. Touches only the client's own
//!    clock and channel lane → safe to run shard-parallel.
//! 2. [`serve_fleet_exchange`] — server side: backbone up, capacity
//!    decision, serve, backbone down. Touches the shared server state →
//!    the runner executes these serially in global client-id order.
//! 3. [`complete_fleet_exchange`] — client side again: wireless
//!    downlink, stamp `t4`, classify the reply → shard-parallel.
//!
//! [`perform_fleet_exchange`] is exactly the three phases composed, so
//! single-exchange callers keep the original one-call surface.

use clocksim::time::{SimDuration, SimTime};
use clocksim::ClockControl;
use netsim::fleet::{ServerModel, ServiceDecision};
use netsim::wifi::ChannelIo;
use ntp_wire::{refid::RefId, NtpDuration, NtpPacket, NtpShort};

use crate::client::{ReplyOutcome, SntpClient};
use crate::exchange::{CompletedExchange, ExchangeError};
use crate::server::SimServer;

/// On-the-wire shape of the request a fleet client emits.
///
/// "SNTP sets all fields in an NTP packet to zero except the first
/// octet" (§2); a full NTP implementation populates stratum, poll,
/// precision and the root/reference fields. Shaping requests lets the
/// synthetic server log exercise the same packet-shape classifier the
/// paper ran over tcpdump output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestShape {
    /// RFC 4330 minimal client request.
    Sntp,
    /// Full-NTP-shaped client request (populated header fields).
    Ntpd,
}

/// Server-side record of one arrival, as a capture at the server would
/// see it — plus the service decision for rate accounting.
#[derive(Clone, Debug)]
pub struct FleetArrival {
    /// Fleet client id.
    pub client_id: u32,
    /// Which server the request reached.
    pub server_id: usize,
    /// True arrival time at the server.
    pub at: SimTime,
    /// Raw request bytes as captured.
    pub request: Vec<u8>,
    /// The request was dropped for backlog overflow (no reply).
    pub dropped: bool,
    /// The reply was a RATE kiss-o'-death.
    pub kod: bool,
}

/// Give an SNTP-shaped request the header of a full NTP client
/// (stratum/poll/precision/root/reference fields populated), keeping
/// the transmit timestamp so the origin-echo check still passes.
fn ntpd_shape(request: &mut NtpPacket, client_id: u32) {
    request.stratum = 3;
    request.poll = 6;
    request.precision = -20;
    request.root_delay = NtpShort::from_millis(30);
    request.root_dispersion = NtpShort::from_millis(15);
    request.reference_id = RefId::ipv4(198, 51, 100, (client_id % 250) as u8 + 1);
    request.reference_ts = request
        .transmit_ts
        .wrapping_add_duration(NtpDuration::from_seconds_f64(-64.0));
}

/// A request that has left the station but not yet crossed the backbone:
/// everything phase 2 (the server side) and phase 3 (reply completion)
/// need from phase 1.
#[derive(Clone, Debug)]
pub struct FleetRequestInFlight {
    /// The client protocol state (holds the origin timestamp for the
    /// echo check on the reply).
    pub client: SntpClient,
    /// Parsed (and possibly ntpd-shaped) request.
    pub request: NtpPacket,
    /// Serialized request bytes, as a capture would record them.
    pub request_bytes: Vec<u8>,
    /// Wireless uplink delay already paid.
    pub hop_up: SimDuration,
    /// Effective transmit instant (`t` clamped forward to the client
    /// clock's position).
    pub t_eff: SimTime,
}

/// A reply that has left the server but not yet crossed the last hop:
/// everything phase 3 needs from phase 2.
#[derive(Clone, Debug)]
pub struct FleetReplyInFlight {
    /// Serialized reply bytes.
    pub reply_bytes: Vec<u8>,
    /// True departure time of the reply at the server.
    pub departure: SimTime,
    /// Backbone downlink delay already paid.
    pub bb_down: SimDuration,
    /// Arrival time at the WAP (`departure + bb_down`).
    pub at_wap: SimTime,
    /// True forward path delay (`hop_up + bb_up`), for ground truth.
    pub fwd: SimDuration,
}

/// Phase 1 (client side): stamp `t1`, shape and serialize the request,
/// pay the wireless uplink.
pub fn begin_fleet_exchange<C: ChannelIo>(
    chan: &mut C,
    clock: &mut dyn ClockControl,
    client_id: u32,
    t: SimTime,
    shape: RequestShape,
) -> Result<FleetRequestInFlight, ExchangeError> {
    let t = t.max(clock.position());
    let mut client = SntpClient::new();
    let t1 = clock.now(t);
    let request_bytes = client.make_request(t1);
    let request = match NtpPacket::parse(&request_bytes) {
        Ok(mut p) => {
            if shape == RequestShape::Ntpd {
                ntpd_shape(&mut p, client_id);
            }
            p
        }
        Err(_) => return Err(ExchangeError::RejectedReply),
    };
    let request_bytes = request.serialize();

    // Client → WAP over this client's channel lane.
    let Some(hop_up) = chan.transmit_up(t) else {
        return Err(ExchangeError::LostLastHopUp);
    };
    Ok(FleetRequestInFlight { client, request, request_bytes, hop_up, t_eff: t })
}

/// Phase 2 (server side): backbone uplink, capacity decision, service,
/// backbone downlink. Touches shared server state — the fleet runner
/// calls this serially in global client-id order.
///
/// Returns the server-side arrival observation (when the request reached
/// the server at all) alongside the in-flight reply. A
/// [`ServiceDecision::Dropped`] request surfaces to the client as
/// [`ExchangeError::Blackholed`] — from the phone's point of view a
/// queue-overflow drop and a blackholed packet are indistinguishable.
pub fn serve_fleet_exchange(
    inflight: &FleetRequestInFlight,
    server: &mut SimServer,
    model: &mut ServerModel,
    client_id: u32,
) -> (Option<FleetArrival>, Result<FleetReplyInFlight, ExchangeError>) {
    // WAP → server across the backbone.
    let bb_up = {
        let SimServer { backbone_up, rng, .. } = server;
        backbone_up.transmit(rng)
    };
    let Some(bb_up) = bb_up else {
        return (None, Err(ExchangeError::LostBackboneUp));
    };
    let fwd = inflight.hop_up + bb_up;
    let arrival_at = inflight.t_eff + fwd;

    // The capacity model decides the request's fate.
    let decision = model.on_arrival(client_id, arrival_at);
    let mut arrival = FleetArrival {
        client_id,
        server_id: server.id,
        at: arrival_at,
        request: inflight.request_bytes.clone(),
        dropped: false,
        kod: false,
    };
    let (depart, kod) = match decision {
        ServiceDecision::Dropped => {
            arrival.dropped = true;
            return (Some(arrival), Err(ExchangeError::Blackholed));
        }
        ServiceDecision::Served { depart, kod } => (depart, kod),
    };
    arrival.kod = kod;
    let (reply_bytes, departure) = server.serve(&inflight.request, arrival_at, depart, kod);

    // Server → WAP.
    let bb_down = {
        let SimServer { backbone_down, rng, .. } = server;
        backbone_down.transmit(rng)
    };
    let Some(bb_down) = bb_down else {
        return (Some(arrival), Err(ExchangeError::LostBackboneDown));
    };
    let at_wap = departure + bb_down;
    (Some(arrival), Ok(FleetReplyInFlight { reply_bytes, departure, bb_down, at_wap, fwd }))
}

/// Phase 3 (client side): wireless downlink, stamp `t4`, classify the
/// reply.
pub fn complete_fleet_exchange<C: ChannelIo>(
    chan: &mut C,
    clock: &mut dyn ClockControl,
    client: &mut SntpClient,
    reply: &FleetReplyInFlight,
    server_id: usize,
) -> Result<CompletedExchange, ExchangeError> {
    let Some(hop_down) = chan.transmit_down(reply.at_wap) else {
        return Err(ExchangeError::LostLastHopDown);
    };
    let back = reply.bb_down + hop_down;
    let completed_at = reply.departure + back;

    let t4 = clock.now(completed_at);
    match client.on_reply_classified(&reply.reply_bytes, t4) {
        Ok(ReplyOutcome::Sample(sample)) => Ok(CompletedExchange {
            sample,
            true_fwd: reply.fwd,
            true_back: back,
            completed_at,
            server_id,
        }),
        Ok(ReplyOutcome::KissODeath(code)) => Err(ExchangeError::KissODeath(code)),
        Err(_) => Err(ExchangeError::RejectedReply),
    }
}

/// One request/reply round trip for fleet client `client_id` at true
/// time `t`, through its own channel lane, against `server` fronted by
/// `model` — the three phase functions composed back-to-back.
pub fn perform_fleet_exchange<C: ChannelIo>(
    chan: &mut C,
    server: &mut SimServer,
    model: &mut ServerModel,
    clock: &mut dyn ClockControl,
    client_id: u32,
    t: SimTime,
    shape: RequestShape,
) -> (Option<FleetArrival>, Result<CompletedExchange, ExchangeError>) {
    let mut inflight = match begin_fleet_exchange(chan, clock, client_id, t, shape) {
        Ok(f) => f,
        Err(e) => return (None, Err(e)),
    };
    let (arrival, reply) = serve_fleet_exchange(&inflight, server, model, client_id);
    let reply = match reply {
        Ok(r) => r,
        Err(e) => return (arrival, Err(e)),
    };
    let outcome = complete_fleet_exchange(chan, clock, &mut inflight.client, &reply, server.id);
    (arrival, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{PoolConfig, ServerPool};
    use clocksim::rng::SimRng;
    use clocksim::time::SimDuration;
    use clocksim::{OscillatorConfig, SimClock};
    use netsim::fleet::{FleetConfig, FleetNet};

    fn test_clock(seed: u64) -> SimClock {
        let osc = OscillatorConfig::laptop().with_skew_ppm(30.0).build(SimRng::new(seed));
        SimClock::new(osc, SimTime::ZERO)
    }

    fn setup() -> (FleetNet, ServerPool, SimClock) {
        let cfg = FleetConfig { clients: 3, servers: 2, ..FleetConfig::default() };
        let net = FleetNet::new(&cfg, 11);
        let pool = ServerPool::new(
            PoolConfig { size: 2, false_ticker_fraction: 0.0, ..PoolConfig::default() },
            12,
        );
        (net, pool, test_clock(13))
    }

    #[test]
    fn fleet_exchange_yields_sample_and_arrival() {
        let (mut net, mut pool, mut clock) = setup();
        let t = SimTime::from_secs(5);
        net.advance_to(t);
        let (mut chan, model) = net.lanes(0, 0).expect("lane 0/0");
        let (arrival, outcome) = perform_fleet_exchange(
            &mut chan,
            pool.server_mut(0),
            model,
            &mut clock,
            0,
            t,
            RequestShape::Sntp,
        );
        let arrival = arrival.expect("request should reach the server");
        assert!(!arrival.dropped && !arrival.kod);
        assert!(arrival.at > t);
        let parsed = NtpPacket::parse(&arrival.request).unwrap();
        assert!(parsed.is_sntp_client_shape());
        let done = outcome.expect("exchange should succeed on a quiet lane");
        // Client starts at truth; the measured offset is bounded by the
        // server's own clock error (σ tens of ms) plus path asymmetry.
        assert!(done.sample.offset.as_millis_f64().abs() < 500.0);
        assert!(done.sample.delay.as_millis_f64() > 0.0);
    }

    #[test]
    fn ntpd_shape_classifies_as_full_ntp_and_still_validates() {
        let (mut net, mut pool, mut clock) = setup();
        let t = SimTime::from_secs(5);
        net.advance_to(t);
        let (mut chan, model) = net.lanes(1, 0).expect("lane 1/0");
        let (arrival, outcome) = perform_fleet_exchange(
            &mut chan,
            pool.server_mut(0),
            model,
            &mut clock,
            1,
            t,
            RequestShape::Ntpd,
        );
        let parsed = NtpPacket::parse(&arrival.expect("arrival").request).unwrap();
        assert!(!parsed.is_sntp_client_shape(), "ntpd shape must not look like SNTP");
        outcome.expect("shaped request must still pass the origin check");
    }

    #[test]
    fn overloaded_model_surfaces_drops_and_kisses() {
        use netsim::fleet::ServerModelConfig;
        let cfg = FleetConfig {
            clients: 8,
            servers: 1,
            server: ServerModelConfig {
                queue_capacity: 2,
                service_time: SimDuration::from_secs_f64(0.5),
                ..ServerModelConfig::default()
            },
            ..FleetConfig::default()
        };
        let mut net = FleetNet::new(&cfg, 21);
        let mut pool = ServerPool::new(PoolConfig { size: 1, ..PoolConfig::default() }, 22);
        let t = SimTime::from_secs(3);
        net.advance_to(t);
        let mut dropped = 0;
        let mut ok = 0;
        for c in 0..8u32 {
            // Each fleet client owns its clock; a shared one would
            // serialize the burst via the departure clamp.
            let mut clock = test_clock(100 + c as u64);
            let (mut chan, model) = net.lanes(c as usize, 0).expect("lane");
            let (_, outcome) = perform_fleet_exchange(
                &mut chan,
                pool.server_mut(0),
                model,
                &mut clock,
                c,
                t,
                RequestShape::Sntp,
            );
            match outcome {
                Err(ExchangeError::Blackholed) => dropped += 1,
                Ok(_) => ok += 1,
                Err(_) => {}
            }
        }
        assert!(dropped > 0, "capacity 2 with 0.5 s service must drop a burst of 8");
        assert!(ok > 0, "head of the burst should still be served");
        let stats = net.server_model(0).expect("model").stats;
        assert_eq!(stats.dropped, dropped);
    }
}
