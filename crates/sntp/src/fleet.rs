//! Fleet-scale exchange: one client among many, one server with a
//! capacity model.
//!
//! [`perform_fleet_exchange`] is the multi-client sibling of
//! [`crate::perform_exchange`]: the last hop is one lane of a shared
//! [`netsim::fleet::FleetNet`] (a [`WifiChannel`] borrowed via
//! `FleetNet::lanes`), and the server is fronted by a
//! [`netsim::fleet::ServerModel`] that can drop the request on backlog
//! overflow or answer a RATE kiss under load. Alongside the client-side
//! outcome it emits the *server-side* observation — the raw request
//! bytes and true arrival time — so a simulated fleet produces exactly
//! the kind of log the paper's §3.1 measurement pipeline consumes.

use clocksim::time::SimTime;
use clocksim::ClockControl;
use netsim::fleet::{ServerModel, ServiceDecision};
use netsim::wifi::WifiChannel;
use ntp_wire::{refid::RefId, NtpDuration, NtpPacket, NtpShort};

use crate::client::{ReplyOutcome, SntpClient};
use crate::exchange::{CompletedExchange, ExchangeError};
use crate::server::SimServer;

/// On-the-wire shape of the request a fleet client emits.
///
/// "SNTP sets all fields in an NTP packet to zero except the first
/// octet" (§2); a full NTP implementation populates stratum, poll,
/// precision and the root/reference fields. Shaping requests lets the
/// synthetic server log exercise the same packet-shape classifier the
/// paper ran over tcpdump output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestShape {
    /// RFC 4330 minimal client request.
    Sntp,
    /// Full-NTP-shaped client request (populated header fields).
    Ntpd,
}

/// Server-side record of one arrival, as a capture at the server would
/// see it — plus the service decision for rate accounting.
#[derive(Clone, Debug)]
pub struct FleetArrival {
    /// Fleet client id.
    pub client_id: u32,
    /// Which server the request reached.
    pub server_id: usize,
    /// True arrival time at the server.
    pub at: SimTime,
    /// Raw request bytes as captured.
    pub request: Vec<u8>,
    /// The request was dropped for backlog overflow (no reply).
    pub dropped: bool,
    /// The reply was a RATE kiss-o'-death.
    pub kod: bool,
}

/// Give an SNTP-shaped request the header of a full NTP client
/// (stratum/poll/precision/root/reference fields populated), keeping
/// the transmit timestamp so the origin-echo check still passes.
fn ntpd_shape(request: &mut NtpPacket, client_id: u32) {
    request.stratum = 3;
    request.poll = 6;
    request.precision = -20;
    request.root_delay = NtpShort::from_millis(30);
    request.root_dispersion = NtpShort::from_millis(15);
    request.reference_id = RefId::ipv4(198, 51, 100, (client_id % 250) as u8 + 1);
    request.reference_ts = request
        .transmit_ts
        .wrapping_add_duration(NtpDuration::from_seconds_f64(-64.0));
}

/// One request/reply round trip for fleet client `client_id` at true
/// time `t`, through its own channel lane, against `server` fronted by
/// `model`.
///
/// Returns the server-side arrival observation (when the request reached
/// the server at all) alongside the client-side outcome. A
/// [`ServiceDecision::Dropped`] request surfaces to the client as
/// [`ExchangeError::Blackholed`] — from the phone's point of view a
/// queue-overflow drop and a blackholed packet are indistinguishable.
pub fn perform_fleet_exchange(
    chan: &mut WifiChannel,
    server: &mut SimServer,
    model: &mut ServerModel,
    clock: &mut dyn ClockControl,
    client_id: u32,
    t: SimTime,
    shape: RequestShape,
) -> (Option<FleetArrival>, Result<CompletedExchange, ExchangeError>) {
    let t = t.max(clock.position());
    let mut client = SntpClient::new();
    let t1 = clock.now(t);
    let request_bytes = client.make_request(t1);
    let request = match NtpPacket::parse(&request_bytes) {
        Ok(mut p) => {
            if shape == RequestShape::Ntpd {
                ntpd_shape(&mut p, client_id);
            }
            p
        }
        Err(_) => return (None, Err(ExchangeError::RejectedReply)),
    };
    let request_bytes = request.serialize();

    // Client → WAP over this client's channel lane.
    let Some(hop_up) = chan.transmit_up(t) else {
        return (None, Err(ExchangeError::LostLastHopUp));
    };
    // WAP → server across the backbone.
    let bb_up = {
        let SimServer { backbone_up, rng, .. } = server;
        backbone_up.transmit(rng)
    };
    let Some(bb_up) = bb_up else {
        return (None, Err(ExchangeError::LostBackboneUp));
    };
    let fwd = hop_up + bb_up;
    let arrival_at = t + fwd;

    // The capacity model decides the request's fate.
    let decision = model.on_arrival(client_id, arrival_at);
    let mut arrival = FleetArrival {
        client_id,
        server_id: server.id,
        at: arrival_at,
        request: request_bytes,
        dropped: false,
        kod: false,
    };
    let (depart, kod) = match decision {
        ServiceDecision::Dropped => {
            arrival.dropped = true;
            return (Some(arrival), Err(ExchangeError::Blackholed));
        }
        ServiceDecision::Served { depart, kod } => (depart, kod),
    };
    arrival.kod = kod;
    let (reply_bytes, departure) = server.serve(&request, arrival_at, depart, kod);

    // Server → WAP → client.
    let bb_down = {
        let SimServer { backbone_down, rng, .. } = server;
        backbone_down.transmit(rng)
    };
    let Some(bb_down) = bb_down else {
        return (Some(arrival), Err(ExchangeError::LostBackboneDown));
    };
    let at_wap = departure + bb_down;
    let Some(hop_down) = chan.transmit_down(at_wap) else {
        return (Some(arrival), Err(ExchangeError::LostLastHopDown));
    };
    let back = bb_down + hop_down;
    let completed_at = departure + back;

    let t4 = clock.now(completed_at);
    let outcome = match client.on_reply_classified(&reply_bytes, t4) {
        Ok(ReplyOutcome::Sample(sample)) => Ok(CompletedExchange {
            sample,
            true_fwd: fwd,
            true_back: back,
            completed_at,
            server_id: server.id,
        }),
        Ok(ReplyOutcome::KissODeath(code)) => Err(ExchangeError::KissODeath(code)),
        Err(_) => Err(ExchangeError::RejectedReply),
    };
    (Some(arrival), outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{PoolConfig, ServerPool};
    use clocksim::rng::SimRng;
    use clocksim::time::SimDuration;
    use clocksim::{OscillatorConfig, SimClock};
    use netsim::fleet::{FleetConfig, FleetNet};

    fn test_clock(seed: u64) -> SimClock {
        let osc = OscillatorConfig::laptop().with_skew_ppm(30.0).build(SimRng::new(seed));
        SimClock::new(osc, SimTime::ZERO)
    }

    fn setup() -> (FleetNet, ServerPool, SimClock) {
        let cfg = FleetConfig { clients: 3, servers: 2, ..FleetConfig::default() };
        let net = FleetNet::new(&cfg, 11);
        let pool = ServerPool::new(
            PoolConfig { size: 2, false_ticker_fraction: 0.0, ..PoolConfig::default() },
            12,
        );
        (net, pool, test_clock(13))
    }

    #[test]
    fn fleet_exchange_yields_sample_and_arrival() {
        let (mut net, mut pool, mut clock) = setup();
        let t = SimTime::from_secs(5);
        net.advance_to(t);
        let (chan, model) = net.lanes(0, 0).expect("lane 0/0");
        let (arrival, outcome) = perform_fleet_exchange(
            chan,
            pool.server_mut(0),
            model,
            &mut clock,
            0,
            t,
            RequestShape::Sntp,
        );
        let arrival = arrival.expect("request should reach the server");
        assert!(!arrival.dropped && !arrival.kod);
        assert!(arrival.at > t);
        let parsed = NtpPacket::parse(&arrival.request).unwrap();
        assert!(parsed.is_sntp_client_shape());
        let done = outcome.expect("exchange should succeed on a quiet lane");
        // Client starts at truth; the measured offset is bounded by the
        // server's own clock error (σ tens of ms) plus path asymmetry.
        assert!(done.sample.offset.as_millis_f64().abs() < 500.0);
        assert!(done.sample.delay.as_millis_f64() > 0.0);
    }

    #[test]
    fn ntpd_shape_classifies_as_full_ntp_and_still_validates() {
        let (mut net, mut pool, mut clock) = setup();
        let t = SimTime::from_secs(5);
        net.advance_to(t);
        let (chan, model) = net.lanes(1, 0).expect("lane 1/0");
        let (arrival, outcome) = perform_fleet_exchange(
            chan,
            pool.server_mut(0),
            model,
            &mut clock,
            1,
            t,
            RequestShape::Ntpd,
        );
        let parsed = NtpPacket::parse(&arrival.expect("arrival").request).unwrap();
        assert!(!parsed.is_sntp_client_shape(), "ntpd shape must not look like SNTP");
        outcome.expect("shaped request must still pass the origin check");
    }

    #[test]
    fn overloaded_model_surfaces_drops_and_kisses() {
        use netsim::fleet::ServerModelConfig;
        let cfg = FleetConfig {
            clients: 8,
            servers: 1,
            server: ServerModelConfig {
                queue_capacity: 2,
                service_time: SimDuration::from_secs_f64(0.5),
                ..ServerModelConfig::default()
            },
            ..FleetConfig::default()
        };
        let mut net = FleetNet::new(&cfg, 21);
        let mut pool = ServerPool::new(PoolConfig { size: 1, ..PoolConfig::default() }, 22);
        let t = SimTime::from_secs(3);
        net.advance_to(t);
        let mut dropped = 0;
        let mut ok = 0;
        for c in 0..8u32 {
            // Each fleet client owns its clock; a shared one would
            // serialize the burst via the departure clamp.
            let mut clock = test_clock(100 + c as u64);
            let (chan, model) = net.lanes(c as usize, 0).expect("lane");
            let (_, outcome) = perform_fleet_exchange(
                chan,
                pool.server_mut(0),
                model,
                &mut clock,
                c,
                t,
                RequestShape::Sntp,
            );
            match outcome {
                Err(ExchangeError::Blackholed) => dropped += 1,
                Ok(_) => ok += 1,
                Err(_) => {}
            }
        }
        assert!(dropped > 0, "capacity 2 with 0.5 s service must drop a burst of 8");
        assert!(ok > 0, "head of the burst should still be served");
        let stats = net.server_model(0).expect("model").stats;
        assert_eq!(stats.dropped, dropped);
    }
}
