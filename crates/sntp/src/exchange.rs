//! Exchange composition: one SNTP request/reply round trip across the
//! simulated network.
//!
//! [`perform_exchange`] is the only place where protocol bytes, clocks,
//! and network models meet:
//!
//! 1. read T1 from the client's clock, serialize a request;
//! 2. carry it across the last hop (WiFi/wired/cellular) and the backbone
//!    — either leg may drop it;
//! 3. let the server parse it and answer with T2/T3 from *its* clock;
//! 4. carry the reply back (again droppable) and read T4 from the
//!    client's clock;
//! 5. run the RFC 4330 sanity checks and derive (offset, delay).
//!
//! True time appears only where the physical world needs it (when packets
//! *actually* arrive); every timestamp in the packets comes from a
//! possibly-wrong clock, exactly as on real hardware.

use clocksim::time::{SimDuration, SimTime};
use clocksim::ClockControl;
use netsim::faults::{FaultInjector, PacketFate};
use netsim::Testbed;
use ntp_wire::NtpDuration;

use crate::client::{OffsetSample, ReplyOutcome, SntpClient};
use crate::server::SimServer;

/// Why an exchange failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeError {
    /// Request lost on the client's last hop.
    LostLastHopUp,
    /// Request lost on the backbone.
    LostBackboneUp,
    /// Reply lost on the backbone.
    LostBackboneDown,
    /// Reply lost on the client's last hop.
    LostLastHopDown,
    /// Reply arrived but failed parsing or sanity checks.
    RejectedReply,
    /// Packet swallowed by a scheduled server outage (fault layer).
    Blackholed,
    /// The reply arrived after the per-query timeout; the request was
    /// abandoned and the late reply rejected.
    Timeout,
    /// The server answered kiss-o'-death with this code; the caller
    /// must honor it (back off / stop using the server).
    KissODeath([u8; 4]),
}

/// A successful exchange with full diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct CompletedExchange {
    /// The validated offset sample as the client computed it.
    pub sample: OffsetSample,
    /// True forward one-way delay (ground truth; evaluation only).
    pub true_fwd: SimDuration,
    /// True return one-way delay (ground truth; evaluation only).
    pub true_back: SimDuration,
    /// True time at which the reply arrived.
    pub completed_at: SimTime,
    /// Which server answered.
    pub server_id: usize,
}

impl CompletedExchange {
    /// The offset-measurement error contributed by path asymmetry alone:
    /// `(fwd − back) / 2` (ground truth; evaluation only).
    pub fn asymmetry_error(&self) -> NtpDuration {
        let diff_ns = self.true_fwd.as_nanos() - self.true_back.as_nanos();
        NtpDuration::from_nanos(diff_ns / 2)
    }
}

/// A packet observed during a traced exchange, for pcap dumping.
#[derive(Clone, Debug)]
pub struct TracedPacket {
    /// True time the packet was *captured* (client-side vantage: requests
    /// at departure, replies at arrival).
    pub at: SimTime,
    /// Direction: `true` = client → server.
    pub outbound: bool,
    /// The raw 48-byte NTP payload.
    pub bytes: Vec<u8>,
}

/// [`perform_exchange`], additionally capturing the request and reply
/// bytes as a client-side tcpdump would see them. Lost packets are still
/// captured in the direction(s) they were observed (an outbound request
/// appears even if its reply never comes — exactly like a real capture).
pub fn perform_exchange_traced(
    testbed: &mut Testbed,
    server: &mut SimServer,
    clock: &mut dyn ClockControl,
    t: SimTime,
    capture: &mut Vec<TracedPacket>,
) -> Result<CompletedExchange, ExchangeError> {
    let t = t.max(clock.position());
    let mut client = SntpClient::new();
    let t1 = clock.now(t);
    let request = client.make_request(t1);
    capture.push(TracedPacket { at: t, outbound: true, bytes: request.clone() });

    let Some(hop_up) = testbed.last_hop_up(t) else {
        return Err(ExchangeError::LostLastHopUp);
    };
    let bb_up = {
        let SimServer { backbone_up, rng, .. } = server;
        backbone_up.transmit(rng)
    };
    let Some(bb_up) = bb_up else {
        return Err(ExchangeError::LostBackboneUp);
    };
    let fwd = hop_up + bb_up;
    let arrival = t + fwd;
    let (reply_bytes, departure) =
        server.handle(&request, arrival).map_err(|_| ExchangeError::RejectedReply)?;
    let bb_down = {
        let SimServer { backbone_down, rng, .. } = server;
        backbone_down.transmit(rng)
    };
    let Some(bb_down) = bb_down else {
        return Err(ExchangeError::LostBackboneDown);
    };
    let at_wap = departure + bb_down;
    let Some(hop_down) = testbed.last_hop_down(at_wap) else {
        return Err(ExchangeError::LostLastHopDown);
    };
    let back = bb_down + hop_down;
    let completed_at = departure + back;
    capture.push(TracedPacket { at: completed_at, outbound: false, bytes: reply_bytes.clone() });

    let t4 = clock.now(completed_at);
    let sample = client.on_reply(&reply_bytes, t4).map_err(|_| ExchangeError::RejectedReply)?;
    Ok(CompletedExchange { sample, true_fwd: fwd, true_back: back, completed_at, server_id: server.id })
}

/// Perform one full exchange starting at true time `t`.
pub fn perform_exchange(
    testbed: &mut Testbed,
    server: &mut SimServer,
    clock: &mut dyn ClockControl,
    t: SimTime,
) -> Result<CompletedExchange, ExchangeError> {
    // A request cannot depart at a time the clock has already passed
    // (e.g. another client on the same host just finished an exchange
    // that advanced it). Without this clamp, T1 would be stamped with a
    // *later* clock state than the nominal departure time, biasing the
    // measured offset by half the discrepancy.
    let t = t.max(clock.position());
    let mut client = SntpClient::new();
    let t1 = clock.now(t);
    let request = client.make_request(t1);

    // Client → WAP/Internet.
    let Some(hop_up) = testbed.last_hop_up(t) else {
        return Err(ExchangeError::LostLastHopUp);
    };
    // WAP → server across the backbone.
    let bb_up = {
        let SimServer { backbone_up, rng, .. } = server;
        backbone_up.transmit(rng)
    };
    let Some(bb_up) = bb_up else {
        return Err(ExchangeError::LostBackboneUp);
    };
    let fwd = hop_up + bb_up;
    let arrival = t + fwd;

    let (reply_bytes, departure) =
        server.handle(&request, arrival).map_err(|_| ExchangeError::RejectedReply)?;

    // Server → WAP.
    let bb_down = {
        let SimServer { backbone_down, rng, .. } = server;
        backbone_down.transmit(rng)
    };
    let Some(bb_down) = bb_down else {
        return Err(ExchangeError::LostBackboneDown);
    };
    // WAP → client. The downlink is sampled at the reply's arrival at the
    // WAP, so it sees the channel state of that moment.
    let at_wap = departure + bb_down;
    let Some(hop_down) = testbed.last_hop_down(at_wap) else {
        return Err(ExchangeError::LostLastHopDown);
    };
    let back = bb_down + hop_down;
    let completed_at = departure + back;

    let t4 = clock.now(completed_at);
    let sample =
        client.on_reply(&reply_bytes, t4).map_err(|_| ExchangeError::RejectedReply)?;

    Ok(CompletedExchange {
        sample,
        true_fwd: fwd,
        true_back: back,
        completed_at,
        server_id: server.id,
    })
}

/// [`perform_exchange`] with a fault layer and a per-query timeout: the
/// hardened client's one round trip through a hostile world.
///
/// The [`FaultInjector`] is consulted at every stage, *on top of* the
/// testbed's own channel models (a packet must survive both):
///
/// * due client clock steps (suspend/resume) are applied before T1 is
///   read, and a due falseticker onset steps the server's clock;
/// * while a kiss-o'-death window covers this server, its rate limiting
///   is forced on (and released when the window ends);
/// * the request faces storm/outage drops, then extra uplink delay;
/// * the reply faces drops, corruption, duplication, and extra downlink
///   delay;
/// * if the reply lands after `timeout`, the request is abandoned
///   (`Err(Timeout)`) and the late reply is fed to the client anyway —
///   it must be rejected and counted, exactly like a stale packet on
///   real hardware; a duplicated reply's second copy is handled the
///   same way after the first is consumed.
pub fn perform_exchange_faulted(
    testbed: &mut Testbed,
    server: &mut SimServer,
    clock: &mut dyn ClockControl,
    t: SimTime,
    faults: &mut FaultInjector,
    timeout: Option<SimDuration>,
) -> Result<CompletedExchange, ExchangeError> {
    let t = t.max(clock.position());
    // Suspend/resume: the device wakes with its clock wrong.
    for step_ms in faults.take_clock_steps(t) {
        clock.step(t, NtpDuration::from_seconds_f64(step_ms / 1e3));
    }
    // A good server going bad: its reference clock steps once.
    if let Some(err_ms) = faults.take_falseticker_onset(t, server.id) {
        server.clock.step(t, NtpDuration::from_seconds_f64(err_ms / 1e3));
    }
    // The fault layer owns the rate-limit knob of servers it schedules
    // KoD windows for: limiting on inside the window, off outside.
    if faults.kod_manages(server.id) {
        server.min_poll_interval = faults.kod_min_poll(t, server.id);
    }

    let mut client = SntpClient::new();
    let t1 = clock.now(t);
    let request = client.make_request(t1);

    if faults.uplink_fate(t, server.id) == PacketFate::Drop {
        return Err(if faults.outage_active(t, server.id) {
            ExchangeError::Blackholed
        } else {
            ExchangeError::LostLastHopUp
        });
    }
    let Some(hop_up) = testbed.last_hop_up(t) else {
        return Err(ExchangeError::LostLastHopUp);
    };
    let bb_up = {
        let SimServer { backbone_up, rng, .. } = server;
        backbone_up.transmit(rng)
    };
    let Some(bb_up) = bb_up else {
        return Err(ExchangeError::LostBackboneUp);
    };
    let fwd = hop_up + bb_up + faults.extra_delay_up(t);
    let arrival = t + fwd;

    let (reply_bytes, departure) =
        server.handle(&request, arrival).map_err(|_| ExchangeError::RejectedReply)?;

    let fate = faults.downlink_fate(departure, server.id);
    if fate == PacketFate::Drop {
        return Err(if faults.outage_active(departure, server.id) {
            ExchangeError::Blackholed
        } else {
            ExchangeError::LostLastHopDown
        });
    }
    let bb_down = {
        let SimServer { backbone_down, rng, .. } = server;
        backbone_down.transmit(rng)
    };
    let Some(bb_down) = bb_down else {
        return Err(ExchangeError::LostBackboneDown);
    };
    let spike_down = faults.extra_delay_down(departure);
    let at_wap = departure + bb_down + spike_down;
    let Some(hop_down) = testbed.last_hop_down(at_wap) else {
        return Err(ExchangeError::LostLastHopDown);
    };
    let back = bb_down + spike_down + hop_down;
    let completed_at = departure + back;
    let t4 = clock.now(completed_at);

    if timeout.is_some_and(|to| (completed_at - t).as_nanos() > to.as_nanos()) {
        // The caller gave up before the reply landed; the late packet
        // still reaches the socket and must be rejected, not applied.
        client.abandon();
        let late = client.on_reply_classified(&reply_bytes, t4);
        debug_assert!(late.is_err(), "stale reply must not be accepted");
        return Err(ExchangeError::Timeout);
    }

    let mut delivered = reply_bytes.clone();
    if fate == PacketFate::Corrupt {
        // Flip the origin-timestamp field: the packet still parses but
        // cannot pass the bogus-reply check.
        // lint:allow(no-slice-index) — server replies are full 48-byte NTP packets; 24..32 is the origin-timestamp field
        for b in &mut delivered[24..32] {
            *b ^= 0xFF;
        }
    }

    let outcome =
        client.on_reply_classified(&delivered, t4).map_err(|_| ExchangeError::RejectedReply)?;
    let sample = match outcome {
        ReplyOutcome::KissODeath(code) => return Err(ExchangeError::KissODeath(code)),
        ReplyOutcome::Sample(s) => s,
    };
    if fate == PacketFate::Duplicate {
        // The clone lands right behind the consumed original.
        let dup = client.on_reply_classified(&reply_bytes, t4);
        debug_assert!(dup.is_err(), "duplicate reply must not be double-applied");
    }
    Ok(CompletedExchange {
        sample,
        true_fwd: fwd,
        true_back: back,
        completed_at,
        server_id: server.id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{PoolConfig, ServerPool};
    use clocksim::{OscillatorConfig, SimClock, SimRng};
    use netsim::faults::{FaultKind, FaultSchedule, ServerSet};
    use netsim::testbed::TestbedConfig;

    fn perfect_clock() -> SimClock {
        SimClock::new(OscillatorConfig::perfect().build(SimRng::new(1)), SimTime::ZERO)
    }

    #[test]
    fn wired_exchange_offset_tracks_server_error() {
        let mut tb = Testbed::wired(1);
        let mut pool = ServerPool::new(
            PoolConfig { size: 1, false_ticker_fraction: 0.0, good_error_sigma_ms: 0.0, ..Default::default() },
            2,
        );
        let mut clock = perfect_clock();
        let mut offsets = Vec::new();
        for i in 0..200 {
            let t = SimTime::from_secs(i * 5);
            if let Ok(done) = perform_exchange(&mut tb, pool.server_mut(0), &mut clock, t) {
                offsets.push(done.sample.offset.as_millis_f64());
            }
        }
        assert!(offsets.len() > 190);
        let mean = offsets.iter().sum::<f64>() / offsets.len() as f64;
        // Server error ~0, symmetric wired path: offsets near zero.
        assert!(mean.abs() < 5.0, "mean={mean}");
    }

    #[test]
    fn offset_error_equals_asymmetry_plus_clock_errors() {
        let mut tb = Testbed::wired(3);
        let mut pool = ServerPool::new(
            PoolConfig { size: 1, false_ticker_fraction: 0.0, good_error_sigma_ms: 0.0, ..Default::default() },
            4,
        );
        let mut clock = perfect_clock();
        for i in 0..50 {
            let t = SimTime::from_secs(i * 5);
            if let Ok(done) = perform_exchange(&mut tb, pool.server_mut(0), &mut clock, t) {
                // With a perfect client clock and a ≈0-error server, the
                // reported offset must equal the path-asymmetry error
                // (fwd − back)/2 up to the server's tiny wobble.
                let predicted = done.asymmetry_error().as_millis_f64();
                let got = done.sample.offset.as_millis_f64();
                assert!(
                    (got - predicted).abs() < 2.0,
                    "offset {got} vs asym {predicted}"
                );
            }
        }
    }

    #[test]
    fn wireless_exchanges_are_noisier_than_wired() {
        let spread = |mut tb: Testbed, seed: u64| {
            let mut pool = ServerPool::new(
                PoolConfig { size: 4, false_ticker_fraction: 0.0, ..Default::default() },
                seed,
            );
            let mut clock = perfect_clock();
            let mut offsets = Vec::new();
            for i in 0..400 {
                let t = SimTime::from_secs(i * 5);
                let sid = pool.pick();
                if let Ok(done) = perform_exchange(&mut tb, pool.server_mut(sid), &mut clock, t) {
                    offsets.push(done.sample.offset.as_millis_f64());
                }
            }
            clocksim::stats::stddev(&offsets)
        };
        let wired = spread(Testbed::wired(5), 6);
        let wireless = spread(Testbed::wireless(TestbedConfig::default(), 7), 8);
        assert!(wireless > 3.0 * wired, "wireless σ {wireless} vs wired σ {wired}");
    }

    #[test]
    fn losses_reported_with_direction() {
        let mut tb = Testbed::lossy_wired(9, 0.5);
        let mut pool = ServerPool::new(PoolConfig { size: 1, ..Default::default() }, 10);
        let mut clock = perfect_clock();
        let mut errs = 0;
        for i in 0..100 {
            if perform_exchange(&mut tb, pool.server_mut(0), &mut clock, SimTime::from_secs(i * 5))
                .is_err()
            {
                errs += 1;
            }
        }
        assert!(errs > 30, "errs={errs}");
    }

    #[test]
    fn clock_error_appears_in_offset() {
        let mut tb = Testbed::wired(11);
        let mut pool = ServerPool::new(
            PoolConfig { size: 1, false_ticker_fraction: 0.0, good_error_sigma_ms: 0.0, ..Default::default() },
            12,
        );
        // Client clock 500 ms behind truth: server appears 500 ms ahead.
        let osc = OscillatorConfig::perfect().build(SimRng::new(13));
        let mut clock = SimClock::with_initial_error(
            osc,
            SimTime::ZERO,
            NtpDuration::from_millis(-500),
        );
        let done =
            perform_exchange(&mut tb, pool.server_mut(0), &mut clock, SimTime::from_secs(10))
                .unwrap();
        assert!((done.sample.offset.as_millis_f64() - 500.0).abs() < 5.0);
    }

    fn quiet_pool(seed: u64) -> ServerPool {
        ServerPool::new(
            PoolConfig {
                size: 2,
                false_ticker_fraction: 0.0,
                good_error_sigma_ms: 0.0,
                backbone_loss: 0.0,
                ..Default::default()
            },
            seed,
        )
    }

    #[test]
    fn faulted_exchange_with_empty_schedule_matches_normal_path() {
        let mut faults = FaultInjector::new(FaultSchedule::none(), 1);
        let mut tb_a = Testbed::wired(20);
        let mut tb_b = Testbed::wired(20);
        let mut pool_a = quiet_pool(21);
        let mut pool_b = quiet_pool(21);
        let mut clock_a = perfect_clock();
        let mut clock_b = perfect_clock();
        for i in 0..50 {
            let t = SimTime::from_secs(i * 10);
            let plain = perform_exchange(&mut tb_a, pool_a.server_mut(0), &mut clock_a, t);
            let faulted = perform_exchange_faulted(
                &mut tb_b,
                pool_b.server_mut(0),
                &mut clock_b,
                t,
                &mut faults,
                None,
            );
            match (plain, faulted) {
                (Ok(a), Ok(b)) => assert_eq!(a.sample, b.sample),
                (a, b) => panic!("paths diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn outage_blackholes_and_recovers() {
        let sched = FaultSchedule::none().window(
            100.0,
            200.0,
            FaultKind::ServerOutage { servers: ServerSet::All },
        );
        let mut faults = FaultInjector::new(sched, 2);
        let mut tb = Testbed::wired(22);
        let mut pool = quiet_pool(23);
        let mut clock = perfect_clock();
        let go = |tb: &mut Testbed, pool: &mut ServerPool, clock: &mut SimClock, faults: &mut FaultInjector, s: i64| {
            perform_exchange_faulted(tb, pool.server_mut(0), clock, SimTime::from_secs(s), faults, None)
        };
        assert!(go(&mut tb, &mut pool, &mut clock, &mut faults, 50).is_ok());
        assert_eq!(
            go(&mut tb, &mut pool, &mut clock, &mut faults, 150).unwrap_err(),
            ExchangeError::Blackholed
        );
        assert!(go(&mut tb, &mut pool, &mut clock, &mut faults, 250).is_ok());
        assert!(faults.stats.dropped_up >= 1);
    }

    #[test]
    fn slow_reply_times_out_and_is_not_applied() {
        // 800 ms of extra downlink delay against a 500 ms budget.
        let sched = FaultSchedule::none().window(
            0.0,
            1e9,
            FaultKind::DelaySpike { extra_up_ms: 0.0, extra_down_ms: 800.0 },
        );
        let mut faults = FaultInjector::new(sched, 3);
        let mut tb = Testbed::wired(24);
        let mut pool = quiet_pool(25);
        let mut clock = perfect_clock();
        let err = perform_exchange_faulted(
            &mut tb,
            pool.server_mut(0),
            &mut clock,
            SimTime::from_secs(10),
            &mut faults,
            Some(SimDuration::from_millis(500)),
        )
        .unwrap_err();
        assert_eq!(err, ExchangeError::Timeout);
        // With a roomier budget the same spike is tolerated.
        let ok = perform_exchange_faulted(
            &mut tb,
            pool.server_mut(0),
            &mut clock,
            SimTime::from_secs(20),
            &mut faults,
            Some(SimDuration::from_secs(5)),
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn corrupted_replies_are_rejected() {
        let sched =
            FaultSchedule::none().window(0.0, 1e9, FaultKind::CorruptReply { prob: 1.0 });
        let mut faults = FaultInjector::new(sched, 4);
        let mut tb = Testbed::wired(26);
        let mut pool = quiet_pool(27);
        let mut clock = perfect_clock();
        let err = perform_exchange_faulted(
            &mut tb,
            pool.server_mut(0),
            &mut clock,
            SimTime::from_secs(5),
            &mut faults,
            None,
        )
        .unwrap_err();
        assert_eq!(err, ExchangeError::RejectedReply);
        assert_eq!(faults.stats.corrupted, 1);
    }

    #[test]
    fn duplicated_replies_apply_exactly_once() {
        let sched =
            FaultSchedule::none().window(0.0, 1e9, FaultKind::DuplicateReply { prob: 1.0 });
        let mut faults = FaultInjector::new(sched, 5);
        let mut tb = Testbed::wired(28);
        let mut pool = quiet_pool(29);
        let mut clock = perfect_clock();
        // Succeeds despite every reply being cloned: the duplicate is
        // rejected internally (debug_assert'd in the exchange).
        let done = perform_exchange_faulted(
            &mut tb,
            pool.server_mut(0),
            &mut clock,
            SimTime::from_secs(5),
            &mut faults,
            None,
        )
        .unwrap();
        assert!(done.sample.offset.as_millis_f64().abs() < 50.0);
        assert_eq!(faults.stats.duplicated, 1);
    }

    #[test]
    fn kod_window_turns_rate_limiting_on_and_off() {
        let sched = FaultSchedule::none().window(
            100.0,
            200.0,
            FaultKind::KissODeath { servers: ServerSet::One(0), min_poll_secs: 64.0 },
        );
        let mut faults = FaultInjector::new(sched, 6);
        let mut tb = Testbed::wired(30);
        let mut pool = quiet_pool(31);
        let mut clock = perfect_clock();
        let go = |tb: &mut Testbed, pool: &mut ServerPool, clock: &mut SimClock, faults: &mut FaultInjector, s: i64| {
            perform_exchange_faulted(tb, pool.server_mut(0), clock, SimTime::from_secs(s), faults, None)
        };
        // Inside the window, polls 10 s apart: first primes the limiter,
        // second draws RATE.
        assert!(go(&mut tb, &mut pool, &mut clock, &mut faults, 110).is_ok());
        assert_eq!(
            go(&mut tb, &mut pool, &mut clock, &mut faults, 120).unwrap_err(),
            ExchangeError::KissODeath(*b"RATE")
        );
        assert_eq!(pool.server(0).kod_sent, 1);
        // After the window the same cadence is served normally.
        assert!(go(&mut tb, &mut pool, &mut clock, &mut faults, 210).is_ok());
        assert!(go(&mut tb, &mut pool, &mut clock, &mut faults, 220).is_ok());
    }

    #[test]
    fn falseticker_onset_shifts_measured_offset() {
        let sched = FaultSchedule::none()
            .at(100.0, FaultKind::FalsetickerOnset { server: 0, error_ms: 300.0 });
        let mut faults = FaultInjector::new(sched, 7);
        let mut tb = Testbed::wired(32);
        let mut pool = quiet_pool(33);
        let mut clock = perfect_clock();
        let before = perform_exchange_faulted(
            &mut tb, pool.server_mut(0), &mut clock, SimTime::from_secs(50), &mut faults, None,
        )
        .unwrap();
        assert!(before.sample.offset.as_millis_f64().abs() < 50.0);
        let after = perform_exchange_faulted(
            &mut tb, pool.server_mut(0), &mut clock, SimTime::from_secs(150), &mut faults, None,
        )
        .unwrap();
        let shift = after.sample.offset.as_millis_f64() - before.sample.offset.as_millis_f64();
        assert!((shift - 300.0).abs() < 50.0, "onset shift {shift}");
    }

    #[test]
    fn client_clock_step_appears_in_offset() {
        // The device sleeps and wakes 400 ms behind: the server then
        // appears 400 ms *ahead*.
        let sched = FaultSchedule::none().at(100.0, FaultKind::ClockStep { offset_ms: -400.0 });
        let mut faults = FaultInjector::new(sched, 8);
        let mut tb = Testbed::wired(34);
        let mut pool = quiet_pool(35);
        let mut clock = perfect_clock();
        let done = perform_exchange_faulted(
            &mut tb, pool.server_mut(0), &mut clock, SimTime::from_secs(150), &mut faults, None,
        )
        .unwrap();
        assert!((done.sample.offset.as_millis_f64() - 400.0).abs() < 50.0);
        assert_eq!(faults.stats.clock_steps, 1);
    }

    /// The whole faulted pipeline replays bit-identically for a fixed
    /// (schedule, seed) — the contract the fault-sweep artifacts and the
    /// parallel-equivalence suite build on.
    #[test]
    fn faulted_exchange_sequence_is_deterministic() {
        let run = || {
            let sched = FaultSchedule::none()
                .window(0.0, 2000.0, FaultKind::LossStorm { loss_prob: 0.3 })
                .window(500.0, 1500.0, FaultKind::DuplicateReply { prob: 0.5 })
                .at(800.0, FaultKind::ClockStep { offset_ms: 120.0 });
            let mut faults = FaultInjector::new(sched, 99);
            let mut tb = Testbed::wireless(TestbedConfig::default(), 36);
            let mut pool = quiet_pool(37);
            let mut clock = perfect_clock();
            (0..200)
                .map(|i| {
                    perform_exchange_faulted(
                        &mut tb,
                        pool.server_mut((i % 2) as usize),
                        &mut clock,
                        SimTime::from_secs(i * 10),
                        &mut faults,
                        Some(SimDuration::from_secs(2)),
                    )
                    .map(|d| d.sample.offset.as_millis_f64().to_bits())
                    .map_err(|e| format!("{e:?}"))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
