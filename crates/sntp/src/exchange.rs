//! Exchange composition: one SNTP request/reply round trip across the
//! simulated network.
//!
//! [`perform_exchange`] is the only place where protocol bytes, clocks,
//! and network models meet:
//!
//! 1. read T1 from the client's clock, serialize a request;
//! 2. carry it across the last hop (WiFi/wired/cellular) and the backbone
//!    — either leg may drop it;
//! 3. let the server parse it and answer with T2/T3 from *its* clock;
//! 4. carry the reply back (again droppable) and read T4 from the
//!    client's clock;
//! 5. run the RFC 4330 sanity checks and derive (offset, delay).
//!
//! True time appears only where the physical world needs it (when packets
//! *actually* arrive); every timestamp in the packets comes from a
//! possibly-wrong clock, exactly as on real hardware.

use clocksim::time::{SimDuration, SimTime};
use clocksim::ClockControl;
use netsim::Testbed;
use ntp_wire::NtpDuration;

use crate::client::{OffsetSample, SntpClient};
use crate::server::SimServer;

/// Why an exchange failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeError {
    /// Request lost on the client's last hop.
    LostLastHopUp,
    /// Request lost on the backbone.
    LostBackboneUp,
    /// Reply lost on the backbone.
    LostBackboneDown,
    /// Reply lost on the client's last hop.
    LostLastHopDown,
    /// Reply arrived but failed parsing or sanity checks.
    RejectedReply,
}

/// A successful exchange with full diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct CompletedExchange {
    /// The validated offset sample as the client computed it.
    pub sample: OffsetSample,
    /// True forward one-way delay (ground truth; evaluation only).
    pub true_fwd: SimDuration,
    /// True return one-way delay (ground truth; evaluation only).
    pub true_back: SimDuration,
    /// True time at which the reply arrived.
    pub completed_at: SimTime,
    /// Which server answered.
    pub server_id: usize,
}

impl CompletedExchange {
    /// The offset-measurement error contributed by path asymmetry alone:
    /// `(fwd − back) / 2` (ground truth; evaluation only).
    pub fn asymmetry_error(&self) -> NtpDuration {
        let diff_ns = self.true_fwd.as_nanos() - self.true_back.as_nanos();
        NtpDuration::from_nanos(diff_ns / 2)
    }
}

/// A packet observed during a traced exchange, for pcap dumping.
#[derive(Clone, Debug)]
pub struct TracedPacket {
    /// True time the packet was *captured* (client-side vantage: requests
    /// at departure, replies at arrival).
    pub at: SimTime,
    /// Direction: `true` = client → server.
    pub outbound: bool,
    /// The raw 48-byte NTP payload.
    pub bytes: Vec<u8>,
}

/// [`perform_exchange`], additionally capturing the request and reply
/// bytes as a client-side tcpdump would see them. Lost packets are still
/// captured in the direction(s) they were observed (an outbound request
/// appears even if its reply never comes — exactly like a real capture).
pub fn perform_exchange_traced(
    testbed: &mut Testbed,
    server: &mut SimServer,
    clock: &mut dyn ClockControl,
    t: SimTime,
    capture: &mut Vec<TracedPacket>,
) -> Result<CompletedExchange, ExchangeError> {
    let t = t.max(clock.position());
    let mut client = SntpClient::new();
    let t1 = clock.now(t);
    let request = client.make_request(t1);
    capture.push(TracedPacket { at: t, outbound: true, bytes: request.clone() });

    let Some(hop_up) = testbed.last_hop_up(t) else {
        return Err(ExchangeError::LostLastHopUp);
    };
    let bb_up = {
        let SimServer { backbone_up, rng, .. } = server;
        backbone_up.transmit(rng)
    };
    let Some(bb_up) = bb_up else {
        return Err(ExchangeError::LostBackboneUp);
    };
    let fwd = hop_up + bb_up;
    let arrival = t + fwd;
    let (reply_bytes, departure) =
        server.handle(&request, arrival).map_err(|_| ExchangeError::RejectedReply)?;
    let bb_down = {
        let SimServer { backbone_down, rng, .. } = server;
        backbone_down.transmit(rng)
    };
    let Some(bb_down) = bb_down else {
        return Err(ExchangeError::LostBackboneDown);
    };
    let at_wap = departure + bb_down;
    let Some(hop_down) = testbed.last_hop_down(at_wap) else {
        return Err(ExchangeError::LostLastHopDown);
    };
    let back = bb_down + hop_down;
    let completed_at = departure + back;
    capture.push(TracedPacket { at: completed_at, outbound: false, bytes: reply_bytes.clone() });

    let t4 = clock.now(completed_at);
    let sample = client.on_reply(&reply_bytes, t4).map_err(|_| ExchangeError::RejectedReply)?;
    Ok(CompletedExchange { sample, true_fwd: fwd, true_back: back, completed_at, server_id: server.id })
}

/// Perform one full exchange starting at true time `t`.
pub fn perform_exchange(
    testbed: &mut Testbed,
    server: &mut SimServer,
    clock: &mut dyn ClockControl,
    t: SimTime,
) -> Result<CompletedExchange, ExchangeError> {
    // A request cannot depart at a time the clock has already passed
    // (e.g. another client on the same host just finished an exchange
    // that advanced it). Without this clamp, T1 would be stamped with a
    // *later* clock state than the nominal departure time, biasing the
    // measured offset by half the discrepancy.
    let t = t.max(clock.position());
    let mut client = SntpClient::new();
    let t1 = clock.now(t);
    let request = client.make_request(t1);

    // Client → WAP/Internet.
    let Some(hop_up) = testbed.last_hop_up(t) else {
        return Err(ExchangeError::LostLastHopUp);
    };
    // WAP → server across the backbone.
    let bb_up = {
        let SimServer { backbone_up, rng, .. } = server;
        backbone_up.transmit(rng)
    };
    let Some(bb_up) = bb_up else {
        return Err(ExchangeError::LostBackboneUp);
    };
    let fwd = hop_up + bb_up;
    let arrival = t + fwd;

    let (reply_bytes, departure) =
        server.handle(&request, arrival).map_err(|_| ExchangeError::RejectedReply)?;

    // Server → WAP.
    let bb_down = {
        let SimServer { backbone_down, rng, .. } = server;
        backbone_down.transmit(rng)
    };
    let Some(bb_down) = bb_down else {
        return Err(ExchangeError::LostBackboneDown);
    };
    // WAP → client. The downlink is sampled at the reply's arrival at the
    // WAP, so it sees the channel state of that moment.
    let at_wap = departure + bb_down;
    let Some(hop_down) = testbed.last_hop_down(at_wap) else {
        return Err(ExchangeError::LostLastHopDown);
    };
    let back = bb_down + hop_down;
    let completed_at = departure + back;

    let t4 = clock.now(completed_at);
    let sample =
        client.on_reply(&reply_bytes, t4).map_err(|_| ExchangeError::RejectedReply)?;

    Ok(CompletedExchange {
        sample,
        true_fwd: fwd,
        true_back: back,
        completed_at,
        server_id: server.id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{PoolConfig, ServerPool};
    use clocksim::{OscillatorConfig, SimClock, SimRng};
    use netsim::testbed::TestbedConfig;

    fn perfect_clock() -> SimClock {
        SimClock::new(OscillatorConfig::perfect().build(SimRng::new(1)), SimTime::ZERO)
    }

    #[test]
    fn wired_exchange_offset_tracks_server_error() {
        let mut tb = Testbed::wired(1);
        let mut pool = ServerPool::new(
            PoolConfig { size: 1, false_ticker_fraction: 0.0, good_error_sigma_ms: 0.0, ..Default::default() },
            2,
        );
        let mut clock = perfect_clock();
        let mut offsets = Vec::new();
        for i in 0..200 {
            let t = SimTime::from_secs(i * 5);
            if let Ok(done) = perform_exchange(&mut tb, pool.server_mut(0), &mut clock, t) {
                offsets.push(done.sample.offset.as_millis_f64());
            }
        }
        assert!(offsets.len() > 190);
        let mean = offsets.iter().sum::<f64>() / offsets.len() as f64;
        // Server error ~0, symmetric wired path: offsets near zero.
        assert!(mean.abs() < 5.0, "mean={mean}");
    }

    #[test]
    fn offset_error_equals_asymmetry_plus_clock_errors() {
        let mut tb = Testbed::wired(3);
        let mut pool = ServerPool::new(
            PoolConfig { size: 1, false_ticker_fraction: 0.0, good_error_sigma_ms: 0.0, ..Default::default() },
            4,
        );
        let mut clock = perfect_clock();
        for i in 0..50 {
            let t = SimTime::from_secs(i * 5);
            if let Ok(done) = perform_exchange(&mut tb, pool.server_mut(0), &mut clock, t) {
                // With a perfect client clock and a ≈0-error server, the
                // reported offset must equal the path-asymmetry error
                // (fwd − back)/2 up to the server's tiny wobble.
                let predicted = done.asymmetry_error().as_millis_f64();
                let got = done.sample.offset.as_millis_f64();
                assert!(
                    (got - predicted).abs() < 2.0,
                    "offset {got} vs asym {predicted}"
                );
            }
        }
    }

    #[test]
    fn wireless_exchanges_are_noisier_than_wired() {
        let spread = |mut tb: Testbed, seed: u64| {
            let mut pool = ServerPool::new(
                PoolConfig { size: 4, false_ticker_fraction: 0.0, ..Default::default() },
                seed,
            );
            let mut clock = perfect_clock();
            let mut offsets = Vec::new();
            for i in 0..400 {
                let t = SimTime::from_secs(i * 5);
                let sid = pool.pick();
                if let Ok(done) = perform_exchange(&mut tb, pool.server_mut(sid), &mut clock, t) {
                    offsets.push(done.sample.offset.as_millis_f64());
                }
            }
            clocksim::stats::stddev(&offsets)
        };
        let wired = spread(Testbed::wired(5), 6);
        let wireless = spread(Testbed::wireless(TestbedConfig::default(), 7), 8);
        assert!(wireless > 3.0 * wired, "wireless σ {wireless} vs wired σ {wired}");
    }

    #[test]
    fn losses_reported_with_direction() {
        let mut tb = Testbed::lossy_wired(9, 0.5);
        let mut pool = ServerPool::new(PoolConfig { size: 1, ..Default::default() }, 10);
        let mut clock = perfect_clock();
        let mut errs = 0;
        for i in 0..100 {
            if perform_exchange(&mut tb, pool.server_mut(0), &mut clock, SimTime::from_secs(i * 5))
                .is_err()
            {
                errs += 1;
            }
        }
        assert!(errs > 30, "errs={errs}");
    }

    #[test]
    fn clock_error_appears_in_offset() {
        let mut tb = Testbed::wired(11);
        let mut pool = ServerPool::new(
            PoolConfig { size: 1, false_ticker_fraction: 0.0, good_error_sigma_ms: 0.0, ..Default::default() },
            12,
        );
        // Client clock 500 ms behind truth: server appears 500 ms ahead.
        let osc = OscillatorConfig::perfect().build(SimRng::new(13));
        let mut clock = SimClock::with_initial_error(
            osc,
            SimTime::ZERO,
            NtpDuration::from_millis(-500),
        );
        let done =
            perform_exchange(&mut tb, pool.server_mut(0), &mut clock, SimTime::from_secs(10))
                .unwrap();
        assert!((done.sample.offset.as_millis_f64() - 500.0).abs() < 5.0);
    }
}
