//! A simulated stratum server.
//!
//! Each [`SimServer`] owns a [`ReferenceClock`] with its own (usually
//! small, occasionally terrible) error, a processing delay, and the wired
//! backbone path between itself and the testbed's uplink. Servers speak
//! real packet bytes: requests are parsed and replies serialized through
//! `ntp-wire`, so the whole codec is exercised on every exchange.

use clocksim::rng::SimRng;
use clocksim::time::{SimDuration, SimTime};
use clocksim::ClockControl;
use clocksim::ReferenceClock;
use netsim::link::Link;
use ntp_wire::{refid::RefId, sntp_profile, NtpPacket, WireError};

use crate::server_core::RateTable;

/// A simulated NTP server.
pub struct SimServer {
    /// Server index within its pool.
    pub id: usize,
    /// Advertised stratum.
    pub stratum: u8,
    /// Advertised reference id.
    pub refid: RefId,
    /// The server's own clock.
    pub clock: ReferenceClock,
    /// Processing time between receive and transmit.
    pub proc_delay: SimDuration,
    /// Backbone path, client → server direction.
    pub backbone_up: Link,
    /// Backbone path, server → client direction.
    pub backbone_down: Link,
    /// True clock error magnitude this server was built with, ms — ground
    /// truth for validating false-ticker rejection (not visible to
    /// protocol code).
    pub true_error_ms: f64,
    /// RNG stream for this server's backbone links.
    pub rng: SimRng,
    /// Kiss-o'-death rate limiting: minimum spacing between requests
    /// from one client before the server answers `RATE` (public pool
    /// servers enforce exactly this against abusive SNTP clients).
    pub min_poll_interval: Option<SimDuration>,
    /// Per-client arrival times of the previous request (rate-limit
    /// state, keyed the way a real pool server keys it: by source).
    last_request: RateTable,
    /// KoD replies sent (diagnostics).
    pub kod_sent: u64,
}

impl SimServer {
    /// Answer a request that arrived (fully parsed) at true time
    /// `arrival`. Returns serialized reply bytes and the departure time.
    ///
    /// This is the classic single-client pool path: the whole
    /// `pool`/`exchange` stack drives one simulated device against its
    /// server pool, so every request through here is that one device and
    /// rate-limit state is keyed under a single implicit client. For
    /// multi-client use, call [`SimServer::handle_from`] with a distinct
    /// key per source, or requests from different clients would be
    /// conflated into one spacing stream and KoD each other.
    pub fn handle(
        &mut self,
        request_bytes: &[u8],
        arrival: SimTime,
    ) -> Result<(Vec<u8>, SimTime), WireError> {
        self.handle_from(0, request_bytes, arrival)
    }

    /// Answer a request from a specific client key (source surrogate).
    /// Rate limiting compares this client's arrival spacing only against
    /// its own previous request, exactly like the batched
    /// [`crate::server_core::ServerCore`] pipeline.
    pub fn handle_from(
        &mut self,
        client: u64,
        request_bytes: &[u8],
        arrival: SimTime,
    ) -> Result<(Vec<u8>, SimTime), WireError> {
        let request = NtpPacket::parse(request_bytes)?;
        // Rate limiting: answer a kiss-o'-death instead of time.
        let mut too_fast = false;
        if let Some(min) = self.min_poll_interval {
            let arrival_ns = arrival.as_nanos();
            let prev = self.last_request.upsert(client, arrival_ns);
            too_fast = prev.is_some_and(|p| arrival_ns - p < min.as_nanos());
        }
        let departure = arrival + self.proc_delay;
        Ok(self.serve(&request, arrival, departure, too_fast))
    }

    /// Answer an already-parsed request with an externally decided fate:
    /// the caller (either [`handle`](Self::handle) or a fleet-scale
    /// service model) picks the departure time and whether to send a
    /// RATE kiss; this method only stamps the packet from the server's
    /// clock. Timestamp reads preserve the historical order — KoD reads
    /// the clock once at `departure`; a time reply reads at `arrival`
    /// then `departure`.
    pub fn serve(
        &mut self,
        request: &NtpPacket,
        arrival: SimTime,
        departure: SimTime,
        kod: bool,
    ) -> (Vec<u8>, SimTime) {
        if kod {
            self.kod_sent += 1;
            let kod_pkt = NtpPacket {
                mode: ntp_wire::packet::Mode::Server,
                stratum: 0,
                reference_id: RefId::KISS_RATE,
                origin_ts: request.transmit_ts,
                transmit_ts: self.clock.now(departure),
                ..Default::default()
            };
            return (kod_pkt.serialize(), departure);
        }
        let t2 = self.clock.now(arrival);
        let t3 = self.clock.now(departure);
        let reply = sntp_profile::server_reply(request, t2, t3, self.stratum, self.refid, t2);
        (reply.serialize(), departure)
    }

    /// Build a well-behaved stratum-2 server with a given clock error.
    pub fn with_error_ms(id: usize, error_ms: f64, backbone: (Link, Link), rng: &mut SimRng) -> Self {
        let err = ntp_wire::NtpDuration::from_seconds_f64(error_ms / 1e3);
        SimServer {
            id,
            stratum: 2,
            refid: RefId::ipv4(192, 0, 2, (id % 250) as u8 + 1),
            clock: ReferenceClock::with_wobble(err, 0.3, 300.0, rng.fork(id as u64)),
            proc_delay: SimDuration::from_micros(150),
            backbone_up: backbone.0,
            backbone_down: backbone.1,
            true_error_ms: error_ms,
            rng: rng.fork(1000 + id as u64),
            min_poll_interval: None,
            last_request: RateTable::with_capacity(16),
            kod_sent: 0,
        }
    }

    /// Enable kiss-o'-death rate limiting (builder-style).
    pub fn with_rate_limit(mut self, min_interval: SimDuration) -> Self {
        self.min_poll_interval = Some(min_interval);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::link::DelayModel;
    use ntp_wire::{Exchange, NtpTimestamp};

    fn server(error_ms: f64) -> SimServer {
        let mut rng = SimRng::new(1);
        let up = Link::lossless(DelayModel::backbone(20.0));
        let down = Link::lossless(DelayModel::backbone(20.0));
        SimServer::with_error_ms(0, error_ms, (up, down), &mut rng)
    }

    #[test]
    fn reply_carries_server_time() {
        let mut s = server(100.0);
        let req = sntp_profile::client_request(NtpTimestamp::from_parts(50, 0)).serialize();
        let arrival = SimTime::from_secs(1000);
        let (reply_bytes, departure) = s.handle(&req, arrival).unwrap();
        assert_eq!(departure, arrival + SimDuration::from_micros(150));
        let reply = NtpPacket::parse(&reply_bytes).unwrap();
        assert_eq!(reply.stratum, 2);
        assert_eq!(reply.origin_ts, NtpTimestamp::from_parts(50, 0));
        // Server clock error ≈ 100 ms: t2 should be ≈ true arrival + 100 ms.
        let diff = reply.receive_ts.wrapping_sub(arrival.to_ntp());
        assert!((diff.as_millis_f64() - 100.0).abs() < 3.0, "diff={diff:?}");
    }

    #[test]
    fn t3_after_t2_by_processing_delay() {
        let mut s = server(0.0);
        let req = sntp_profile::client_request(NtpTimestamp::from_parts(1, 0)).serialize();
        let (reply_bytes, _) = s.handle(&req, SimTime::from_secs(10)).unwrap();
        let reply = NtpPacket::parse(&reply_bytes).unwrap();
        let proc = reply.transmit_ts.wrapping_sub(reply.receive_ts);
        assert!((proc.as_seconds_f64() - 150e-6).abs() < 20e-6, "proc={proc:?}");
    }

    #[test]
    fn garbage_request_rejected() {
        let mut s = server(0.0);
        assert!(s.handle(&[1, 2, 3], SimTime::ZERO).is_err());
    }

    #[test]
    fn rate_limited_server_sends_kod() {
        let mut s = server(0.0).with_rate_limit(SimDuration::from_secs(8));
        let req = sntp_profile::client_request(NtpTimestamp::from_parts(1, 0)).serialize();
        // First request: normal reply.
        let (r1, _) = s.handle(&req, SimTime::from_secs(10)).unwrap();
        assert!(!NtpPacket::parse(&r1).unwrap().is_kiss_of_death());
        // Second request 2 s later: RATE.
        let (r2, _) = s.handle(&req, SimTime::from_secs(12)).unwrap();
        let kod = NtpPacket::parse(&r2).unwrap();
        assert!(kod.is_kiss_of_death());
        assert_eq!(kod.reference_id.as_kiss_code(), Some(*b"RATE"));
        assert_eq!(s.kod_sent, 1);
        // After backing off, service resumes.
        let (r3, _) = s.handle(&req, SimTime::from_secs(30)).unwrap();
        assert!(!NtpPacket::parse(&r3).unwrap().is_kiss_of_death());
    }

    /// Two clients interleaving requests must not trip each other's rate
    /// limit: each polls at a compliant 10 s cadence, but their combined
    /// arrival stream at the server is one request every 5 s — under the
    /// 8 s minimum. With the old single-slot `last_request` this KoD'd
    /// every request after the first; per-client keying serves them all.
    #[test]
    fn interleaved_clients_do_not_kod_each_other() {
        let mut s = server(0.0).with_rate_limit(SimDuration::from_secs(8));
        let req = sntp_profile::client_request(NtpTimestamp::from_parts(1, 0)).serialize();
        for i in 0..8i64 {
            let client = (i % 2) as u64 + 1;
            let arrival = SimTime::from_secs(i * 5);
            let (reply, _) = s.handle_from(client, &req, arrival).unwrap();
            assert!(
                !NtpPacket::parse(&reply).unwrap().is_kiss_of_death(),
                "client {client} KoD'd at t={}s by its peer's traffic",
                i * 5
            );
        }
        assert_eq!(s.kod_sent, 0);
        // The limit still bites a genuinely abusive client.
        let (reply, _) = s.handle_from(1, &req, SimTime::from_secs(37)).unwrap();
        assert!(NtpPacket::parse(&reply).unwrap().is_kiss_of_death());
        assert_eq!(s.kod_sent, 1);
    }

    #[test]
    fn client_rejects_kod_replies() {
        use crate::client::SntpClient;
        let mut s = server(0.0).with_rate_limit(SimDuration::from_secs(60));
        let mut c = SntpClient::new();
        let t1 = NtpTimestamp::from_parts(5, 0);
        let req = c.make_request(t1);
        s.handle(&req, SimTime::from_secs(1)).unwrap();
        // Immediately again: KoD, which the RFC 4330 checks must reject.
        let req = c.make_request(t1);
        let (kod_bytes, _) = s.handle(&req, SimTime::from_secs(2)).unwrap();
        assert!(c.on_reply(&kod_bytes, NtpTimestamp::from_parts(6, 0)).is_err());
        assert_eq!(c.rejected(), 1);
    }

    #[test]
    fn end_to_end_offset_equals_server_error_on_symmetric_path() {
        // Client clock = truth; symmetric 10 ms legs; server ahead 75 ms.
        let mut s = server(75.0);
        let t_send = SimTime::from_secs(500);
        let t1 = t_send.to_ntp();
        let req = sntp_profile::client_request(t1).serialize();
        let arrival = t_send + SimDuration::from_millis(10);
        let (reply_bytes, departure) = s.handle(&req, arrival).unwrap();
        let t4_true = departure + SimDuration::from_millis(10);
        let reply = NtpPacket::parse(&reply_bytes).unwrap();
        let ex = Exchange::from_reply(&reply, t4_true.to_ntp());
        assert!((ex.offset().as_millis_f64() - 75.0).abs() < 3.0, "offset={:?}", ex.offset());
        assert!((ex.delay().as_millis_f64() - 20.0).abs() < 1.0);
    }
}
