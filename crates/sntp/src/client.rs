//! The sans-io SNTP client.
//!
//! [`SntpClient`] owns no socket and no clock: callers hand it local
//! timestamps, it hands back request bytes and validated offset samples.
//! This mirrors how SNTP actually behaves on the platforms the paper
//! studied — each reply's offset is taken at face value ("SNTP uses clock
//! offset to update the local clock directly and none of the time-tested
//! filtering algorithms", §3.4). Whatever filtering happens on top of
//! this client (vendor thresholds, MNTP's gate + trend filter) is
//! deliberately *not* here.

use ntp_wire::{
    sntp_profile::{self, ReplyClass},
    Exchange, NtpDuration, NtpPacket, NtpTimestamp, WireError,
};

/// One validated offset measurement, as reported by an SNTP reply.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OffsetSample {
    /// Clock offset θ: how far the server's clock is ahead of ours.
    pub offset: NtpDuration,
    /// Round-trip delay δ.
    pub delay: NtpDuration,
    /// Local (client-clock) time of the request's departure (T1).
    pub t1: NtpTimestamp,
    /// Local (client-clock) time of the reply's arrival (T4).
    pub t4: NtpTimestamp,
    /// Server stratum from the reply.
    pub stratum: u8,
}

/// A reply the hardened client accepted as *meaningful* — either usable
/// time or a kiss-o'-death the caller must honor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ReplyOutcome {
    /// A validated offset measurement.
    Sample(OffsetSample),
    /// The server refused service; the four bytes are the kiss code
    /// (`RATE` → back off, `DENY`/`RSTR` → stop using this server).
    KissODeath([u8; 4]),
}

/// Sans-io SNTP client: one outstanding request at a time.
#[derive(Clone, Debug, Default)]
pub struct SntpClient {
    /// The transmit timestamp of the in-flight request, if any.
    outstanding: Option<NtpTimestamp>,
    /// Replies accepted so far (diagnostics).
    accepted: u64,
    /// Replies rejected by sanity checks (diagnostics).
    rejected: u64,
    /// Kiss-o'-death replies received (diagnostics).
    kod_received: u64,
}

impl SntpClient {
    /// New idle client.
    pub fn new() -> Self {
        SntpClient::default()
    }

    /// Build a request for departure at local time `t1`. Overwrites any
    /// previous outstanding request (SNTP clients don't pipeline).
    pub fn make_request(&mut self, t1: NtpTimestamp) -> Vec<u8> {
        self.outstanding = Some(t1);
        sntp_profile::client_request(t1).serialize()
    }

    /// True if a request is awaiting a reply.
    pub fn has_outstanding(&self) -> bool {
        self.outstanding.is_some()
    }

    /// Give up on the outstanding request (caller-side timeout).
    pub fn abandon(&mut self) {
        self.outstanding = None;
    }

    /// Process reply bytes received at local time `t4`, treating any
    /// kiss-o'-death as a rejection (the naive SNTP behaviour the paper
    /// measured on shipped clients). Hardened callers that honor kiss
    /// codes use [`SntpClient::on_reply_classified`].
    pub fn on_reply(&mut self, data: &[u8], t4: NtpTimestamp) -> Result<OffsetSample, WireError> {
        match self.on_reply_classified(data, t4)? {
            ReplyOutcome::Sample(s) => Ok(s),
            ReplyOutcome::KissODeath(_) => {
                // The KoD consumed the outstanding request (the server
                // *did* answer us), but it yields no time.
                self.rejected += 1;
                Err(WireError::SanityCheck("kiss-o'-death"))
            }
        }
    }

    /// Process reply bytes received at local time `t4`, distinguishing
    /// time replies from kiss-o'-death refusals.
    ///
    /// Every rejection — stale replies arriving after [`SntpClient::abandon`],
    /// duplicates of an already-consumed reply, origin mismatches, parse
    /// failures, failed sanity checks — is counted in
    /// [`SntpClient::rejected`]; silent discards would make fault-layer
    /// duplicate storms invisible in run diagnostics.
    pub fn on_reply_classified(
        &mut self,
        data: &[u8],
        t4: NtpTimestamp,
    ) -> Result<ReplyOutcome, WireError> {
        let Some(origin) = self.outstanding else {
            // Late reply after abandon(), or a duplicate of a reply we
            // already consumed: rejected *and counted*.
            self.rejected += 1;
            return Err(WireError::SanityCheck("no outstanding request"));
        };
        let packet = NtpPacket::parse(data).inspect_err(|_| self.rejected += 1)?;
        match sntp_profile::classify_reply(&packet, origin) {
            Err(e) => {
                self.rejected += 1;
                Err(e)
            }
            Ok(ReplyClass::KissODeath(code)) => {
                self.outstanding = None;
                self.kod_received += 1;
                Ok(ReplyOutcome::KissODeath(code))
            }
            Ok(ReplyClass::Time) => {
                self.outstanding = None;
                self.accepted += 1;
                let ex = Exchange::from_reply(&packet, t4);
                Ok(ReplyOutcome::Sample(OffsetSample {
                    offset: ex.offset(),
                    delay: ex.delay(),
                    t1: ex.t1,
                    t4,
                    stratum: packet.stratum,
                }))
            }
        }
    }

    /// Count of accepted replies.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Count of rejected replies.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Count of kiss-o'-death replies received.
    pub fn kod_received(&self) -> u64 {
        self.kod_received
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntp_wire::refid::RefId;

    fn ts(s: u32, ms: u32) -> NtpTimestamp {
        NtpTimestamp::from_parts(s, ((ms as u64 * (1 << 32)) / 1000) as u32)
    }

    /// Simulate a server reply with the given one-way delays and server
    /// clock ahead by `server_ahead_ms`.
    fn reply_for(req: &[u8], fwd_ms: u32, back_ms: u32, server_ahead_ms: u32) -> (Vec<u8>, NtpTimestamp) {
        let request = NtpPacket::parse(req).unwrap();
        // Client t1 = request.transmit_ts (client clock). True send time:
        // pretend client clock == true time for simplicity here.
        let t1 = request.transmit_ts;
        let t2 = t1 + NtpDuration::from_millis((fwd_ms + server_ahead_ms) as i64);
        let t3 = t2 + NtpDuration::from_millis(1);
        let reply = sntp_profile::server_reply(&request, t2, t3, 2, RefId::ipv4(1, 2, 3, 4), t2);
        // t4 on the client clock: true elapsed = fwd + 1 + back.
        let t4 = t1 + NtpDuration::from_millis((fwd_ms + 1 + back_ms) as i64);
        (reply.serialize(), t4)
    }

    #[test]
    fn symmetric_exchange_recovers_server_offset() {
        let mut c = SntpClient::new();
        let req = c.make_request(ts(100, 0));
        let (reply, t4) = reply_for(&req, 40, 40, 250);
        let s = c.on_reply(&reply, t4).unwrap();
        assert!((s.offset.as_millis_f64() - 250.0).abs() < 0.01, "offset={}", s.offset);
        assert!((s.delay.as_millis_f64() - 80.0).abs() < 0.01);
        assert_eq!(s.stratum, 2);
        assert_eq!(c.accepted(), 1);
        assert!(!c.has_outstanding());
    }

    #[test]
    fn asymmetric_exchange_is_biased() {
        let mut c = SntpClient::new();
        let req = c.make_request(ts(100, 0));
        let (reply, t4) = reply_for(&req, 400, 20, 0);
        let s = c.on_reply(&reply, t4).unwrap();
        // Bias = (fwd − back)/2 = 190 ms: this is the whole SNTP problem.
        assert!((s.offset.as_millis_f64() - 190.0).abs() < 0.01);
    }

    #[test]
    fn reply_without_request_rejected() {
        let mut c = SntpClient::new();
        let mut other = SntpClient::new();
        let req = other.make_request(ts(5, 0));
        let (reply, t4) = reply_for(&req, 10, 10, 0);
        assert!(c.on_reply(&reply, t4).is_err());
        // An unsolicited reply must be counted, not silently discarded.
        assert_eq!(c.rejected(), 1);
    }

    /// A reply that limps in after the caller timed out and abandoned
    /// the request is stale: rejected, counted, and the client stays
    /// idle (no request is resurrected).
    #[test]
    fn late_reply_after_abandon_rejected_and_counted() {
        let mut c = SntpClient::new();
        let req = c.make_request(ts(100, 0));
        let (reply, t4) = reply_for(&req, 10, 10, 0);
        c.abandon();
        assert!(c.on_reply(&reply, t4).is_err());
        assert_eq!(c.rejected(), 1);
        assert_eq!(c.accepted(), 0);
        assert!(!c.has_outstanding());
    }

    /// A fault-layer duplicate: the first copy is consumed normally, the
    /// identical second copy finds no outstanding request and must be
    /// rejected and counted — never double-accepted.
    #[test]
    fn duplicate_reply_rejected_and_counted() {
        let mut c = SntpClient::new();
        let req = c.make_request(ts(100, 0));
        let (reply, t4) = reply_for(&req, 10, 10, 0);
        assert!(c.on_reply(&reply, t4).is_ok());
        assert_eq!(c.accepted(), 1);
        let t4_later = t4 + NtpDuration::from_millis(3);
        assert!(c.on_reply(&reply, t4_later).is_err());
        assert_eq!(c.accepted(), 1, "duplicate must not be accepted twice");
        assert_eq!(c.rejected(), 1);
    }

    /// The classified path surfaces kiss-o'-death codes and consumes the
    /// outstanding request (the server answered — with a refusal).
    #[test]
    fn classified_path_exposes_kiss_code() {
        use ntp_wire::packet::Mode;
        let mut c = SntpClient::new();
        let req = c.make_request(ts(50, 0));
        let request = NtpPacket::parse(&req).unwrap();
        let kod = NtpPacket {
            mode: Mode::Server,
            stratum: 0,
            reference_id: RefId::KISS_RATE,
            origin_ts: request.transmit_ts,
            transmit_ts: ts(51, 0),
            ..Default::default()
        };
        let out = c.on_reply_classified(&kod.serialize(), ts(51, 0)).unwrap();
        assert_eq!(out, ReplyOutcome::KissODeath(*b"RATE"));
        assert_eq!(c.kod_received(), 1);
        assert_eq!(c.rejected(), 0, "an honored KoD is not a sanity rejection");
        assert!(!c.has_outstanding());
    }

    #[test]
    fn mismatched_origin_rejected_and_counted() {
        let mut c = SntpClient::new();
        let _req = c.make_request(ts(100, 0));
        let mut other = SntpClient::new();
        let stale = other.make_request(ts(99, 0));
        let (reply, t4) = reply_for(&stale, 10, 10, 0);
        assert!(c.on_reply(&reply, t4).is_err());
        assert_eq!(c.rejected(), 1);
        // Request still outstanding — a forged reply must not clear it.
        assert!(c.has_outstanding());
    }

    #[test]
    fn garbage_bytes_rejected() {
        let mut c = SntpClient::new();
        let _ = c.make_request(ts(1, 0));
        assert!(c.on_reply(&[0u8; 10], ts(2, 0)).is_err());
        assert_eq!(c.rejected(), 1);
    }

    #[test]
    fn abandon_clears_outstanding() {
        let mut c = SntpClient::new();
        let _ = c.make_request(ts(1, 0));
        c.abandon();
        assert!(!c.has_outstanding());
    }

    #[test]
    fn new_request_replaces_old() {
        let mut c = SntpClient::new();
        let _old = c.make_request(ts(1, 0));
        let new = c.make_request(ts(2, 0));
        // Reply to the *new* request is accepted…
        let (reply, t4) = reply_for(&new, 10, 10, 0);
        assert!(c.on_reply(&reply, t4).is_ok());
    }

    #[test]
    fn request_bytes_are_sntp_shaped() {
        let mut c = SntpClient::new();
        let req = c.make_request(ts(7, 0));
        let p = NtpPacket::parse(&req).unwrap();
        assert!(p.is_sntp_client_shape());
    }
}
