//! The sans-io SNTP client.
//!
//! [`SntpClient`] owns no socket and no clock: callers hand it local
//! timestamps, it hands back request bytes and validated offset samples.
//! This mirrors how SNTP actually behaves on the platforms the paper
//! studied — each reply's offset is taken at face value ("SNTP uses clock
//! offset to update the local clock directly and none of the time-tested
//! filtering algorithms", §3.4). Whatever filtering happens on top of
//! this client (vendor thresholds, MNTP's gate + trend filter) is
//! deliberately *not* here.

use ntp_wire::{sntp_profile, Exchange, NtpDuration, NtpPacket, NtpTimestamp, WireError};

/// One validated offset measurement, as reported by an SNTP reply.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OffsetSample {
    /// Clock offset θ: how far the server's clock is ahead of ours.
    pub offset: NtpDuration,
    /// Round-trip delay δ.
    pub delay: NtpDuration,
    /// Local (client-clock) time of the request's departure (T1).
    pub t1: NtpTimestamp,
    /// Local (client-clock) time of the reply's arrival (T4).
    pub t4: NtpTimestamp,
    /// Server stratum from the reply.
    pub stratum: u8,
}

/// Sans-io SNTP client: one outstanding request at a time.
#[derive(Clone, Debug, Default)]
pub struct SntpClient {
    /// The transmit timestamp of the in-flight request, if any.
    outstanding: Option<NtpTimestamp>,
    /// Replies accepted so far (diagnostics).
    accepted: u64,
    /// Replies rejected by sanity checks (diagnostics).
    rejected: u64,
}

impl SntpClient {
    /// New idle client.
    pub fn new() -> Self {
        SntpClient::default()
    }

    /// Build a request for departure at local time `t1`. Overwrites any
    /// previous outstanding request (SNTP clients don't pipeline).
    pub fn make_request(&mut self, t1: NtpTimestamp) -> Vec<u8> {
        self.outstanding = Some(t1);
        sntp_profile::client_request(t1).serialize()
    }

    /// True if a request is awaiting a reply.
    pub fn has_outstanding(&self) -> bool {
        self.outstanding.is_some()
    }

    /// Give up on the outstanding request (caller-side timeout).
    pub fn abandon(&mut self) {
        self.outstanding = None;
    }

    /// Process reply bytes received at local time `t4`.
    pub fn on_reply(&mut self, data: &[u8], t4: NtpTimestamp) -> Result<OffsetSample, WireError> {
        let origin = self
            .outstanding
            .ok_or(WireError::SanityCheck("no outstanding request"))?;
        let packet = NtpPacket::parse(data).inspect_err(|_| self.rejected += 1)?;
        if let Err(e) = sntp_profile::check_reply(&packet, origin) {
            self.rejected += 1;
            return Err(e);
        }
        self.outstanding = None;
        self.accepted += 1;
        let ex = Exchange::from_reply(&packet, t4);
        Ok(OffsetSample {
            offset: ex.offset(),
            delay: ex.delay(),
            t1: ex.t1,
            t4,
            stratum: packet.stratum,
        })
    }

    /// Count of accepted replies.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Count of rejected replies.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntp_wire::refid::RefId;

    fn ts(s: u32, ms: u32) -> NtpTimestamp {
        NtpTimestamp::from_parts(s, ((ms as u64 * (1 << 32)) / 1000) as u32)
    }

    /// Simulate a server reply with the given one-way delays and server
    /// clock ahead by `server_ahead_ms`.
    fn reply_for(req: &[u8], fwd_ms: u32, back_ms: u32, server_ahead_ms: u32) -> (Vec<u8>, NtpTimestamp) {
        let request = NtpPacket::parse(req).unwrap();
        // Client t1 = request.transmit_ts (client clock). True send time:
        // pretend client clock == true time for simplicity here.
        let t1 = request.transmit_ts;
        let t2 = t1 + NtpDuration::from_millis((fwd_ms + server_ahead_ms) as i64);
        let t3 = t2 + NtpDuration::from_millis(1);
        let reply = sntp_profile::server_reply(&request, t2, t3, 2, RefId::ipv4(1, 2, 3, 4), t2);
        // t4 on the client clock: true elapsed = fwd + 1 + back.
        let t4 = t1 + NtpDuration::from_millis((fwd_ms + 1 + back_ms) as i64);
        (reply.serialize(), t4)
    }

    #[test]
    fn symmetric_exchange_recovers_server_offset() {
        let mut c = SntpClient::new();
        let req = c.make_request(ts(100, 0));
        let (reply, t4) = reply_for(&req, 40, 40, 250);
        let s = c.on_reply(&reply, t4).unwrap();
        assert!((s.offset.as_millis_f64() - 250.0).abs() < 0.01, "offset={}", s.offset);
        assert!((s.delay.as_millis_f64() - 80.0).abs() < 0.01);
        assert_eq!(s.stratum, 2);
        assert_eq!(c.accepted(), 1);
        assert!(!c.has_outstanding());
    }

    #[test]
    fn asymmetric_exchange_is_biased() {
        let mut c = SntpClient::new();
        let req = c.make_request(ts(100, 0));
        let (reply, t4) = reply_for(&req, 400, 20, 0);
        let s = c.on_reply(&reply, t4).unwrap();
        // Bias = (fwd − back)/2 = 190 ms: this is the whole SNTP problem.
        assert!((s.offset.as_millis_f64() - 190.0).abs() < 0.01);
    }

    #[test]
    fn reply_without_request_rejected() {
        let mut c = SntpClient::new();
        let mut other = SntpClient::new();
        let req = other.make_request(ts(5, 0));
        let (reply, t4) = reply_for(&req, 10, 10, 0);
        assert!(c.on_reply(&reply, t4).is_err());
    }

    #[test]
    fn mismatched_origin_rejected_and_counted() {
        let mut c = SntpClient::new();
        let _req = c.make_request(ts(100, 0));
        let mut other = SntpClient::new();
        let stale = other.make_request(ts(99, 0));
        let (reply, t4) = reply_for(&stale, 10, 10, 0);
        assert!(c.on_reply(&reply, t4).is_err());
        assert_eq!(c.rejected(), 1);
        // Request still outstanding — a forged reply must not clear it.
        assert!(c.has_outstanding());
    }

    #[test]
    fn garbage_bytes_rejected() {
        let mut c = SntpClient::new();
        let _ = c.make_request(ts(1, 0));
        assert!(c.on_reply(&[0u8; 10], ts(2, 0)).is_err());
        assert_eq!(c.rejected(), 1);
    }

    #[test]
    fn abandon_clears_outstanding() {
        let mut c = SntpClient::new();
        let _ = c.make_request(ts(1, 0));
        c.abandon();
        assert!(!c.has_outstanding());
    }

    #[test]
    fn new_request_replaces_old() {
        let mut c = SntpClient::new();
        let _old = c.make_request(ts(1, 0));
        let new = c.make_request(ts(2, 0));
        // Reply to the *new* request is accepted…
        let (reply, t4) = reply_for(&new, 10, 10, 0);
        assert!(c.on_reply(&reply, t4).is_ok());
    }

    #[test]
    fn request_bytes_are_sntp_shaped() {
        let mut c = SntpClient::new();
        let req = c.make_request(ts(7, 0));
        let p = NtpPacket::parse(&req).unwrap();
        assert!(p.is_sntp_client_shape());
    }
}
