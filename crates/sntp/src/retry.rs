//! Retry pacing: capped exponential backoff with deterministic jitter.
//!
//! SNTP clients that re-poll on a fixed short timer are exactly what
//! public pool operators rate-limit against (and what melts servers
//! during outages — every client in a region retrying in lock-step the
//! moment connectivity returns). The standard remedy is exponential
//! backoff with jitter; the wrinkle here is that *all* randomness in
//! this workspace must replay bit-identically, so the jitter comes from
//! a private [`SimRng`] stream seeded by the caller rather than from
//! entropy. Two runs with the same seed back off identically; two
//! clients with different seeds desynchronize, which is the whole point
//! of jitter.

use clocksim::rng::SimRng;

/// Backoff shape parameters.
#[derive(Clone, Copy, Debug)]
pub struct BackoffConfig {
    /// Delay after the first failure, seconds.
    pub base_secs: f64,
    /// Multiplier applied per further failure.
    pub factor: f64,
    /// Upper bound on the deterministic part of the delay, seconds.
    pub max_secs: f64,
    /// Jitter amplitude as a fraction of the delay: the delay is drawn
    /// uniformly from `[d·(1−j), d·(1+j)]`. Zero disables jitter.
    pub jitter_frac: f64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig { base_secs: 2.0, factor: 2.0, max_secs: 120.0, jitter_frac: 0.25 }
    }
}

/// Exponential backoff state for one retry loop.
#[derive(Clone, Debug)]
pub struct Backoff {
    cfg: BackoffConfig,
    attempt: u32,
    rng: SimRng,
}

impl Backoff {
    /// Fresh backoff; `seed` fixes the jitter stream.
    pub fn new(cfg: BackoffConfig, seed: u64) -> Self {
        Backoff { cfg, attempt: 0, rng: SimRng::new(seed) }
    }

    /// Failures recorded since the last [`Backoff::reset`].
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Record a failure and return how long to wait before the next
    /// try, seconds.
    pub fn next_delay_secs(&mut self) -> f64 {
        let exp = self.cfg.factor.powi(self.attempt.min(30) as i32);
        self.attempt = self.attempt.saturating_add(1);
        let d = (self.cfg.base_secs * exp).min(self.cfg.max_secs);
        if self.cfg.jitter_frac > 0.0 {
            let j = self.cfg.jitter_frac;
            d * self.rng.uniform_range(1.0 - j, 1.0 + j)
        } else {
            d
        }
    }

    /// A success: the next failure starts the ladder from the bottom.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_jitter() -> BackoffConfig {
        BackoffConfig { base_secs: 1.0, factor: 2.0, max_secs: 16.0, jitter_frac: 0.0 }
    }

    #[test]
    fn doubles_until_the_cap() {
        let mut b = Backoff::new(no_jitter(), 1);
        let delays: Vec<f64> = (0..7).map(|_| b.next_delay_secs()).collect();
        assert_eq!(delays, vec![1.0, 2.0, 4.0, 8.0, 16.0, 16.0, 16.0]);
    }

    #[test]
    fn reset_restarts_the_ladder() {
        let mut b = Backoff::new(no_jitter(), 2);
        b.next_delay_secs();
        b.next_delay_secs();
        b.reset();
        assert_eq!(b.attempt(), 0);
        assert_eq!(b.next_delay_secs(), 1.0);
    }

    #[test]
    fn jitter_stays_within_band_and_varies() {
        let cfg = BackoffConfig { base_secs: 10.0, factor: 1.0, max_secs: 10.0, jitter_frac: 0.3 };
        let mut b = Backoff::new(cfg, 3);
        let delays: Vec<f64> = (0..200).map(|_| b.next_delay_secs()).collect();
        for d in &delays {
            assert!((7.0..=13.0).contains(d), "delay {d} outside jitter band");
        }
        let distinct = delays.iter().map(|d| d.to_bits()).collect::<std::collections::BTreeSet<_>>();
        assert!(distinct.len() > 100, "jitter not actually varying");
    }

    #[test]
    fn deterministic_per_seed_divergent_across_seeds() {
        let run = |seed| {
            let mut b = Backoff::new(BackoffConfig::default(), seed);
            (0..20).map(|_| b.next_delay_secs().to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let mut b = Backoff::new(no_jitter(), 4);
        for _ in 0..1000 {
            let d = b.next_delay_secs();
            assert!(d.is_finite() && d <= 16.0);
        }
    }
}
