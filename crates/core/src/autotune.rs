//! Online self-tuning of MNTP's regular-phase pacing — the paper's §7
//! future work ("we also plan to investigate self-tuning of parameter
//! settings").
//!
//! The tuner (§5.3) searches parameters *offline* against a recorded
//! trace. This module closes the loop *online*: the regular-phase wait
//! time adapts to what the filter observes, using the classic
//! additive-increase / multiplicative-decrease shape —
//!
//! * every **accepted** sample is evidence the trend is tracking well →
//!   stretch the wait additively (fewer requests, less energy; the
//!   paper's efficiency goal);
//! * a **rejected** sample or a **failed** round is evidence the channel
//!   or the drift estimate is misbehaving → halve the wait (re-verify
//!   the trend quickly), bounded below.
//!
//! The controller only touches `regularWaitTime`; the warmup parameters
//! stay fixed (warmup is a one-off cost, and adapting it online would
//! require the very trend the warmup exists to build).

use crate::engine::SampleVerdict;

/// AIMD controller configuration.
#[derive(Clone, Debug)]
pub struct AutoTuneConfig {
    /// Lower bound on the regular wait, seconds.
    pub min_wait_secs: f64,
    /// Upper bound on the regular wait, seconds.
    pub max_wait_secs: f64,
    /// Additive increase per accepted sample, seconds.
    pub increase_secs: f64,
    /// Multiplicative decrease factor on rejection/failure.
    pub decrease_factor: f64,
}

impl Default for AutoTuneConfig {
    fn default() -> Self {
        AutoTuneConfig {
            min_wait_secs: 15.0,
            max_wait_secs: 1800.0,
            increase_secs: 30.0,
            decrease_factor: 0.5,
        }
    }
}

/// The AIMD pacing controller.
#[derive(Clone, Debug)]
pub struct AutoTuner {
    cfg: AutoTuneConfig,
    wait_secs: f64,
    /// Adjustments made (diagnostics).
    pub increases: u64,
    /// Backoffs made (diagnostics).
    pub decreases: u64,
}

impl AutoTuner {
    /// Start at the configured minimum (sample eagerly until the trend
    /// earns trust).
    pub fn new(cfg: AutoTuneConfig) -> Self {
        let wait = cfg.min_wait_secs;
        AutoTuner { cfg, wait_secs: wait, increases: 0, decreases: 0 }
    }

    /// The wait the engine should currently use.
    pub fn wait_secs(&self) -> f64 {
        self.wait_secs
    }

    /// Feed a regular-phase verdict; returns the new wait.
    pub fn on_verdict(&mut self, verdict: &SampleVerdict) -> f64 {
        match verdict {
            SampleVerdict::Accepted { .. } => {
                self.wait_secs =
                    (self.wait_secs + self.cfg.increase_secs).min(self.cfg.max_wait_secs);
                self.increases += 1;
            }
            SampleVerdict::Rejected { .. } => self.backoff(),
            // Just back from an outage: sample eagerly while the fresh
            // warmup rebuilds trust in the trend.
            SampleVerdict::Recovered { .. } => self.backoff(),
        }
        self.wait_secs
    }

    /// Feed a failed query round (all losses).
    pub fn on_failure(&mut self) -> f64 {
        self.backoff();
        self.wait_secs
    }

    fn backoff(&mut self) {
        self.wait_secs =
            (self.wait_secs * self.cfg.decrease_factor).max(self.cfg.min_wait_secs);
        self.decreases += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc() -> SampleVerdict {
        SampleVerdict::Accepted { offset_ms: 1.0 }
    }

    fn rej() -> SampleVerdict {
        SampleVerdict::Rejected { offset_ms: 200.0 }
    }

    #[test]
    fn acceptance_stretches_wait_to_cap() {
        let mut at = AutoTuner::new(AutoTuneConfig::default());
        assert_eq!(at.wait_secs(), 15.0);
        for _ in 0..100 {
            at.on_verdict(&acc());
        }
        assert_eq!(at.wait_secs(), 1800.0);
        assert!(at.increases >= 60);
    }

    #[test]
    fn rejection_halves_wait_to_floor() {
        let mut at = AutoTuner::new(AutoTuneConfig::default());
        for _ in 0..20 {
            at.on_verdict(&acc());
        }
        let stretched = at.wait_secs();
        assert!(stretched > 500.0);
        at.on_verdict(&rej());
        assert!((at.wait_secs() - stretched / 2.0).abs() < 1e-9);
        for _ in 0..20 {
            at.on_verdict(&rej());
        }
        assert_eq!(at.wait_secs(), 15.0);
    }

    #[test]
    fn failures_also_back_off() {
        let mut at = AutoTuner::new(AutoTuneConfig::default());
        for _ in 0..10 {
            at.on_verdict(&acc());
        }
        let before = at.wait_secs();
        at.on_failure();
        assert!(at.wait_secs() < before);
    }

    #[test]
    fn sawtooth_converges_between_bounds() {
        // A 1-in-5 rejection pattern: the wait settles into a sawtooth
        // strictly inside the bounds.
        let mut at = AutoTuner::new(AutoTuneConfig::default());
        let mut waits = Vec::new();
        for i in 0..200 {
            if i % 5 == 4 {
                at.on_verdict(&rej());
            } else {
                at.on_verdict(&acc());
            }
            waits.push(at.wait_secs());
        }
        let late = &waits[100..];
        let min = late.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = late.iter().cloned().fold(0.0f64, f64::max);
        assert!(min >= 15.0 && max <= 1800.0);
        assert!(max < 600.0, "sawtooth ceiling {max}");
        assert!(max > min, "should oscillate");
    }
}
