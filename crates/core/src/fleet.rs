//! Fleet runner: drive N independent clients against a shared world.
//!
//! The single-client [`crate::drive`] loop pairs one [`Discipline`] with
//! one [`netsim::Testbed`]. This runner scales that out: every client
//! owns its discipline, its clock, its server-selection lane, and one
//! channel lane of a shared [`FleetNet`]; all of them contend for the
//! same access point and the same capacity-limited servers. One trial
//! therefore observes the full feedback loop the paper measures from
//! both ends — client offset error under contention, and the
//! server-side arrival/KoD process (Figures 11/12) that emerges from
//! thousands of independent pollers.
//!
//! # Epoch-barrier phases
//!
//! The world is partitioned into `K` kernel shards
//! ([`netsim::fleet::FleetShard`]); each driver tick is an epoch of
//! three phases:
//!
//! 1. **Phase A (shard-parallel):** advance the shard kernel, poll every
//!    client, stamp `t1` and pay the wireless uplink for each query
//!    ([`begin_fleet_exchange`]). Touches only shard-private state.
//! 2. **Phase B (serial barrier):** deliver every in-flight request to
//!    the shared server models *in global client-id order*
//!    ([`serve_fleet_exchange`]) — the one place cross-shard state
//!    meets, so its order is fixed regardless of worker count.
//! 3. **Phase C (shard-parallel):** pay the wireless downlink, stamp
//!    `t4`, classify replies ([`complete_fleet_exchange`]), complete the
//!    round, apply clock commands, sample ground truth.
//!
//! Every source of randomness is private to a shard (channel lanes,
//! clocks, selection lanes) or touched only in the serial phase (server
//! RNGs), so a trial is **byte-reproducible at any `--jobs` level and
//! any shard count** — `tests/parallel_equivalence.rs` pins this.
//!
//! The id-order barrier delivers same-tick arrivals to the server model
//! slightly out of true-time order; the model clamps them monotonically
//! (documented approximation, see DESIGN.md §10).

use clocksim::time::{SimDuration, SimTime};
use clocksim::SimClock;
use devtools::par::Pool;
use netsim::fleet::{FleetNet, FleetShard};
use sntp::fleet::{
    begin_fleet_exchange, complete_fleet_exchange, serve_fleet_exchange, FleetArrival,
    FleetReplyInFlight, FleetRequestInFlight, RequestShape,
};
use sntp::{ExchangeError, PickLane, ServerPool};

use crate::discipline::{Directive, Discipline, ExchangeResult};

/// One fleet member: a discipline, its own clock, its own
/// server-selection lane, and a wire shape.
pub struct FleetClient {
    /// The client stack (naive SNTP, MNTP, or ntpd).
    pub discipline: Box<dyn Discipline>,
    /// The client's local clock.
    pub clock: SimClock,
    /// Private server-selection RNG lane (see [`sntp::ServerSelect`]):
    /// fleet clients must not share the pool's selection RNG, or the
    /// draw order would couple every client through one mutable stream.
    pub select: PickLane,
    /// Header shape of this client's requests.
    pub shape: RequestShape,
}

/// Fleet trial parameters.
#[derive(Clone, Debug)]
pub struct FleetRunConfig {
    /// Trial length, seconds.
    pub duration_secs: u64,
    /// Driver tick, seconds.
    pub tick_secs: f64,
    /// Ground-truth sampling cadence, seconds.
    pub sample_period_secs: f64,
    /// Keep the full server-side arrival log (request bytes included).
    /// Costly at large N; rate counters are always collected.
    pub collect_arrivals: bool,
    /// When set, ground-truth sampling switches to the compact
    /// steady-state form: per-client `|error|` as `f32`, only for
    /// `t ≥` this cutoff, in [`FleetRun::steady_abs_ms`] (the
    /// timestamped [`FleetRun::true_error_ms`] series stays empty).
    /// At 1M clients the full `(f64, f64)` series is ~1 GB per
    /// half-hour; the steady-state percentiles the experiments report
    /// need none of it.
    pub steady_cutoff_secs: Option<f64>,
}

impl Default for FleetRunConfig {
    fn default() -> Self {
        FleetRunConfig {
            duration_secs: 600,
            tick_secs: 1.0,
            sample_period_secs: 30.0,
            collect_arrivals: false,
            steady_cutoff_secs: None,
        }
    }
}

/// Everything a fleet trial produced.
#[derive(Default)]
pub struct FleetRun {
    /// Per-client ground-truth clock error `(t_secs, err_ms)` samples,
    /// indexed by client id (empty in steady-state mode).
    pub true_error_ms: Vec<Vec<(f64, f64)>>,
    /// Per-client steady-state `|error|` samples, ms, indexed by client
    /// id (only in steady-state mode, see
    /// [`FleetRunConfig::steady_cutoff_secs`]).
    pub steady_abs_ms: Vec<Vec<f32>>,
    /// Server-side arrival log (only when
    /// [`FleetRunConfig::collect_arrivals`] is set).
    pub arrivals: Vec<FleetArrival>,
    /// Requests reaching any server, bucketed per second of true time.
    pub arrivals_per_sec: Vec<u64>,
    /// Client-side polls attempted.
    pub polls_sent: u64,
    /// Idle ticks the disciplines chose to record as deferrals.
    pub deferrals: u64,
}

/// One queued exchange of one client's round, moving through the tick's
/// three phases.
enum Entry {
    /// Failed before (or at) the server; carries the client-side error.
    Fail(usize, ExchangeError),
    /// Uplink paid, awaiting the serial server phase.
    Sent(usize, FleetRequestInFlight),
    /// Served, awaiting the downlink/completion phase.
    Reply(usize, FleetRequestInFlight, FleetReplyInFlight),
}

/// One client's query round in flight across the epoch barrier.
struct PendingRound {
    /// Global client id.
    ci: usize,
    entries: Vec<Entry>,
}

/// What one shard's Phase A produced this tick.
#[derive(Default)]
struct TickOut {
    deferrals: u64,
    polls: u64,
    rounds: Vec<PendingRound>,
}

/// Split `items` into consecutive chunks of the given lengths (the
/// shards' client ranges).
fn chunk_by<'a, T>(mut rest: &'a mut [T], lens: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(lens.len());
    for &len in lens {
        let (head, tail) = rest.split_at_mut(len);
        out.push(head);
        rest = tail;
    }
    out
}

/// Post-round bookkeeping for one client: apply clock commands, sample
/// ground truth if due.
fn finish_client(
    client: &mut FleetClient,
    t: SimTime,
    sample_due: bool,
    cfg: &FleetRunConfig,
    series: &mut Vec<(f64, f64)>,
    steady: &mut Vec<f32>,
) {
    for cmd in client.discipline.take_commands() {
        cmd.apply(&mut client.clock, t);
    }
    if sample_due {
        let err_ms = client.clock.true_error(t).as_millis_f64();
        match cfg.steady_cutoff_secs {
            Some(cutoff) => {
                if t.as_secs_f64() >= cutoff {
                    steady.push(err_ms.abs() as f32);
                }
            }
            None => series.push((t.as_secs_f64(), err_ms)),
        }
    }
}

/// Phase A for one shard: advance the kernel, poll clients, transmit
/// uplinks. Idle clients finish their tick here; querying clients park a
/// [`PendingRound`] for the barrier.
#[allow(clippy::too_many_arguments)]
fn shard_poll_phase(
    shard: &mut FleetShard,
    clients: &mut [FleetClient],
    series: &mut [Vec<(f64, f64)>],
    steady: &mut [Vec<f32>],
    t: SimTime,
    sample_due: bool,
    cfg: &FleetRunConfig,
    server_count: usize,
) -> TickOut {
    shard.advance_to(t);
    let lo = shard.client_lo();
    let mut out = TickOut::default();
    for (local, client) in clients.iter_mut().enumerate() {
        let ci = lo + local;
        let hints = if client.discipline.wants_hints() {
            shard.lane(ci).map(|mut lane| lane.hints(t))
        } else {
            None
        };
        match client.discipline.poll(t, &mut client.clock, hints.as_ref(), &mut client.select) {
            Directive::Idle { record_deferred } => {
                if record_deferred {
                    out.deferrals += 1;
                }
                if let (Some(se), Some(st)) = (series.get_mut(local), steady.get_mut(local)) {
                    finish_client(client, t, sample_due, cfg, se, st);
                }
            }
            Directive::Query(ids) => {
                let mut entries = Vec::with_capacity(ids.len());
                for id in ids {
                    out.polls += 1;
                    if id >= server_count {
                        entries.push(Entry::Fail(id, ExchangeError::Blackholed));
                        continue;
                    }
                    let Some(mut lane) = shard.lane(ci) else {
                        entries.push(Entry::Fail(id, ExchangeError::Blackholed));
                        continue;
                    };
                    match begin_fleet_exchange(&mut lane, &mut client.clock, ci as u32, t, client.shape)
                    {
                        Ok(inflight) => entries.push(Entry::Sent(id, inflight)),
                        Err(e) => entries.push(Entry::Fail(id, e)),
                    }
                }
                out.rounds.push(PendingRound { ci, entries });
            }
        }
    }
    out
}

/// Phase C for one shard: pay downlinks, classify replies, complete each
/// parked round, then run the same per-client bookkeeping Phase A ran
/// for idle clients.
fn shard_complete_phase(
    shard: &mut FleetShard,
    clients: &mut [FleetClient],
    series: &mut [Vec<(f64, f64)>],
    steady: &mut [Vec<f32>],
    rounds: Vec<PendingRound>,
    t: SimTime,
    sample_due: bool,
    cfg: &FleetRunConfig,
) {
    let lo = shard.client_lo();
    for round in rounds {
        let ci = round.ci;
        let Some(local) = ci.checked_sub(lo) else { continue };
        let Some(client) = clients.get_mut(local) else { continue };
        let mut results = Vec::with_capacity(round.entries.len());
        for entry in round.entries {
            let result = match entry {
                Entry::Fail(id, e) => ExchangeResult { server_id: id, outcome: Err(e) },
                // Unreachable: the barrier resolves every Sent entry.
                Entry::Sent(id, _) => {
                    ExchangeResult { server_id: id, outcome: Err(ExchangeError::Blackholed) }
                }
                Entry::Reply(id, mut inflight, reply) => {
                    let outcome = match shard.lane(ci) {
                        Some(mut lane) => complete_fleet_exchange(
                            &mut lane,
                            &mut client.clock,
                            &mut inflight.client,
                            &reply,
                            id,
                        ),
                        None => Err(ExchangeError::Blackholed),
                    };
                    ExchangeResult { server_id: id, outcome }
                }
            };
            results.push(result);
        }
        let _ = client.discipline.complete(t, &mut client.clock, &results);
        if let (Some(se), Some(st)) = (series.get_mut(local), steady.get_mut(local)) {
            finish_client(client, t, sample_due, cfg, se, st);
        }
    }
}

/// Step every client through `cfg.duration_secs` of shared-world time,
/// ticking shards on `par`'s workers.
///
/// `pool.len()` must equal `net.server_count()`: the pool holds the
/// protocol side (clocks, packet codec) and the fleet world holds the
/// capacity side of the same servers, joined by index.
pub fn run_fleet_on(
    par: &Pool,
    clients: &mut [FleetClient],
    net: &mut FleetNet,
    pool: &mut ServerPool,
    cfg: &FleetRunConfig,
) -> FleetRun {
    let ticks = (cfg.duration_secs as f64 / cfg.tick_secs).ceil() as u64;
    let server_count = net.server_count();
    let mut run = FleetRun {
        true_error_ms: clients.iter().map(|_| Vec::new()).collect(),
        steady_abs_ms: clients.iter().map(|_| Vec::new()).collect(),
        arrivals_per_sec: vec![0; cfg.duration_secs as usize + 2],
        ..FleetRun::default()
    };
    let (shards, models) = net.parts();
    let lens: Vec<usize> = shards.iter().map(FleetShard::client_count).collect();
    for i in 0..=ticks {
        let tick_offset_secs = i as f64 * cfg.tick_secs;
        let t = SimTime::ZERO + SimDuration::from_secs_f64(tick_offset_secs);
        let sample_due = tick_offset_secs % cfg.sample_period_secs < cfg.tick_secs;

        // Phase A: shard-parallel polling and uplinks.
        let mut outs: Vec<TickOut> = {
            let client_chunks = chunk_by(clients, &lens);
            let series_chunks = chunk_by(&mut run.true_error_ms, &lens);
            let steady_chunks = chunk_by(&mut run.steady_abs_ms, &lens);
            let tasks: Vec<Box<dyn FnOnce() -> TickOut + Send + '_>> = shards
                .iter_mut()
                .zip(client_chunks)
                .zip(series_chunks.into_iter().zip(steady_chunks))
                .map(|((shard, cl), (se, st))| {
                    let cfg = &*cfg;
                    Box::new(move || {
                        shard_poll_phase(shard, cl, se, st, t, sample_due, cfg, server_count)
                    }) as Box<dyn FnOnce() -> TickOut + Send + '_>
                })
                .collect();
            par.invoke(tasks)
        };

        // Phase B: the epoch barrier. Every in-flight request meets the
        // shared server state here, serially, in global client-id order
        // (shards are ordered by id range, rounds by id within a shard).
        for out in &mut outs {
            run.deferrals += out.deferrals;
            run.polls_sent += out.polls;
            for round in &mut out.rounds {
                for entry in &mut round.entries {
                    let taken =
                        std::mem::replace(entry, Entry::Fail(0, ExchangeError::Blackholed));
                    *entry = match taken {
                        Entry::Sent(id, inflight) => {
                            let Some(model) = models.get_mut(id) else {
                                continue;
                            };
                            let (arrival, reply) = serve_fleet_exchange(
                                &inflight,
                                pool.server_mut(id),
                                model,
                                round.ci as u32,
                            );
                            if let Some(arrival) = arrival {
                                let sec = arrival.at.as_secs_f64() as usize;
                                if let Some(bucket) = run.arrivals_per_sec.get_mut(sec) {
                                    *bucket += 1;
                                }
                                if cfg.collect_arrivals {
                                    run.arrivals.push(arrival);
                                }
                            }
                            match reply {
                                Ok(r) => Entry::Reply(id, inflight, r),
                                Err(e) => Entry::Fail(id, e),
                            }
                        }
                        other => other,
                    };
                }
            }
        }

        // Phase C: shard-parallel downlinks, completion, bookkeeping.
        {
            let client_chunks = chunk_by(clients, &lens);
            let series_chunks = chunk_by(&mut run.true_error_ms, &lens);
            let steady_chunks = chunk_by(&mut run.steady_abs_ms, &lens);
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = shards
                .iter_mut()
                .zip(client_chunks)
                .zip(series_chunks.into_iter().zip(steady_chunks))
                .zip(outs)
                .map(|(((shard, cl), (se, st)), out)| {
                    let cfg = &*cfg;
                    Box::new(move || {
                        shard_complete_phase(
                            shard, cl, se, st, out.rounds, t, sample_due, cfg,
                        );
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            par.invoke(tasks);
        }
    }
    run
}

/// Serial [`run_fleet_on`]: the historical single-threaded entry point.
pub fn run_fleet(
    clients: &mut [FleetClient],
    net: &mut FleetNet,
    pool: &mut ServerPool,
    cfg: &FleetRunConfig,
) -> FleetRun {
    run_fleet_on(&Pool::with_jobs(1), clients, net, pool, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discipline::{MntpDiscipline, SntpDiscipline};
    use crate::MntpConfig;
    use clocksim::rng::SimRng;
    use clocksim::OscillatorConfig;
    use netsim::fleet::FleetConfig;
    use sntp::PoolConfig;

    fn clock(seed: u64) -> SimClock {
        let osc = OscillatorConfig::laptop().with_skew_ppm(30.0).build(SimRng::new(seed));
        SimClock::new(osc, SimTime::ZERO)
    }

    fn small_fleet(n: usize, seed: u64, shards: usize) -> (Vec<FleetClient>, FleetNet, ServerPool) {
        let fcfg = FleetConfig { clients: n, servers: 2, shards, ..FleetConfig::default() };
        let net = FleetNet::new(&fcfg, seed);
        let pool = ServerPool::new(
            PoolConfig { size: 2, false_ticker_fraction: 0.0, ..PoolConfig::default() },
            seed ^ 0x5eed,
        );
        let clients = (0..n)
            .map(|i| FleetClient {
                discipline: if i % 2 == 0 {
                    Box::new(SntpDiscipline::naive().self_paced(5.0))
                        as Box<dyn Discipline>
                } else {
                    Box::new(MntpDiscipline::full(MntpConfig::default()))
                },
                clock: clock(1000 + i as u64),
                select: PickLane::new(2, seed ^ (0x30_000 + i as u64)),
                shape: if i % 2 == 0 { RequestShape::Sntp } else { RequestShape::Ntpd },
            })
            .collect();
        (clients, net, pool)
    }

    #[test]
    fn fleet_run_produces_per_client_series_and_arrivals() {
        let (mut clients, mut net, mut pool) = small_fleet(4, 3, 1);
        let cfg = FleetRunConfig {
            duration_secs: 120,
            collect_arrivals: true,
            ..FleetRunConfig::default()
        };
        let run = run_fleet(&mut clients, &mut net, &mut pool, &cfg);
        assert_eq!(run.true_error_ms.len(), 4);
        assert!(run.true_error_ms.iter().all(|s| !s.is_empty()));
        assert!(run.polls_sent > 0);
        assert!(!run.arrivals.is_empty());
        let counted: u64 = run.arrivals_per_sec.iter().sum();
        assert_eq!(counted, run.arrivals.len() as u64);
    }

    #[test]
    fn fleet_run_is_deterministic() {
        let cfg = FleetRunConfig { duration_secs: 90, ..FleetRunConfig::default() };
        let (mut c1, mut n1, mut p1) = small_fleet(3, 7, 1);
        let (mut c2, mut n2, mut p2) = small_fleet(3, 7, 1);
        let r1 = run_fleet(&mut c1, &mut n1, &mut p1, &cfg);
        let r2 = run_fleet(&mut c2, &mut n2, &mut p2, &cfg);
        assert_eq!(r1.true_error_ms, r2.true_error_ms);
        assert_eq!(r1.arrivals_per_sec, r2.arrivals_per_sec);
        assert_eq!(r1.polls_sent, r2.polls_sent);
    }

    /// The sharding/jobs contract end to end at the runner level: any
    /// (shard count, worker count) combination must reproduce the
    /// single-kernel serial run bit for bit.
    #[test]
    fn sharded_parallel_run_matches_serial() {
        let cfg = FleetRunConfig {
            duration_secs: 90,
            collect_arrivals: true,
            ..FleetRunConfig::default()
        };
        let fingerprint = |shards: usize, jobs: usize| {
            let (mut c, mut n, mut p) = small_fleet(5, 17, shards);
            let run = run_fleet_on(&Pool::with_jobs(jobs), &mut c, &mut n, &mut p, &cfg);
            let err_bits: Vec<Vec<(u64, u64)>> = run
                .true_error_ms
                .iter()
                .map(|s| s.iter().map(|(t, e)| (t.to_bits(), e.to_bits())).collect())
                .collect();
            let arrivals: Vec<(u32, usize, i64, bool, bool)> = run
                .arrivals
                .iter()
                .map(|a| (a.client_id, a.server_id, a.at.as_nanos(), a.dropped, a.kod))
                .collect();
            (err_bits, arrivals, run.arrivals_per_sec.clone(), run.polls_sent, run.deferrals)
        };
        let reference = fingerprint(1, 1);
        assert_eq!(fingerprint(3, 1), reference, "3 shards serial diverged");
        assert_eq!(fingerprint(3, 4), reference, "3 shards x 4 jobs diverged");
        assert_eq!(fingerprint(5, 2), reference, "one shard per client diverged");
    }

    /// Steady-state collection mode: same trial, compact samples.
    #[test]
    fn steady_state_mode_matches_series_tail() {
        let mk = || small_fleet(3, 23, 2);
        let full_cfg = FleetRunConfig { duration_secs: 120, ..FleetRunConfig::default() };
        let steady_cfg =
            FleetRunConfig { steady_cutoff_secs: Some(60.0), ..full_cfg.clone() };
        let (mut c1, mut n1, mut p1) = mk();
        let full = run_fleet(&mut c1, &mut n1, &mut p1, &full_cfg);
        let (mut c2, mut n2, mut p2) = mk();
        let steady = run_fleet(&mut c2, &mut n2, &mut p2, &steady_cfg);
        assert!(steady.true_error_ms.iter().all(Vec::is_empty));
        for (ci, samples) in steady.steady_abs_ms.iter().enumerate() {
            let expect: Vec<f32> = full.true_error_ms[ci]
                .iter()
                .filter(|(t, _)| *t >= 60.0)
                .map(|(_, e)| e.abs() as f32)
                .collect();
            assert_eq!(samples, &expect, "client {ci} steady samples diverged");
        }
    }
}
