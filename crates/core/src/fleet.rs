//! Fleet runner: drive N independent clients against a shared world.
//!
//! The single-client [`crate::drive`] loop pairs one [`Discipline`] with
//! one [`netsim::Testbed`]. This runner scales that out: every client
//! owns its discipline, its clock, its server-selection lane, and one
//! channel lane of a shared [`FleetNet`]; all of them contend for the
//! same access point and the same capacity-limited servers. One trial
//! therefore observes the full feedback loop the paper measures from
//! both ends — client offset error under contention, and the
//! server-side arrival/KoD process (Figures 11/12) that emerges from
//! thousands of independent pollers.
//!
//! # Epoch-barrier phases
//!
//! The world is partitioned into `K` kernel shards
//! ([`netsim::fleet::FleetShard`]); each driver tick is an epoch of
//! three phases:
//!
//! 1. **Phase A (shard-parallel):** advance the shard kernel, poll every
//!    client, stamp `t1` and pay the wireless uplink for each query
//!    ([`begin_fleet_exchange`]). Touches only shard-private state.
//! 2. **Phase B (serial barrier):** deliver every in-flight request to
//!    the shared server models *in global client-id order*
//!    ([`serve_fleet_exchange`]) — the one place cross-shard state
//!    meets, so its order is fixed regardless of worker count.
//! 3. **Phase C (shard-parallel):** pay the wireless downlink, stamp
//!    `t4`, classify replies ([`complete_fleet_exchange`]), complete the
//!    round, apply clock commands, sample ground truth.
//!
//! Every source of randomness is private to a shard (channel lanes,
//! clocks, selection lanes) or touched only in the serial phase (server
//! RNGs), so a trial is **byte-reproducible at any `--jobs` level and
//! any shard count** — `tests/parallel_equivalence.rs` pins this.
//!
//! The id-order barrier delivers same-tick arrivals to the server model
//! slightly out of true-time order; the model clamps them monotonically
//! (documented approximation, see DESIGN.md §10).

use clocksim::time::{SimDuration, SimTime};
use clocksim::{ClockCommand, ClockControl, SimClock};
use devtools::par::Pool;
use netsim::chaos::{ClientChaosLatch, FleetFaultPlan, ServerChaosLatch};
use netsim::fleet::{FleetNet, FleetShard};
use ntp_wire::NtpDuration;
use sntp::fleet::{
    begin_fleet_exchange, complete_fleet_exchange, serve_fleet_exchange, FleetArrival,
    FleetReplyInFlight, FleetRequestInFlight, RequestShape,
};
use sntp::{ExchangeError, PickLane, ServerPool};

use crate::discipline::{Directive, Discipline, ExchangeResult};

/// One fleet member: a discipline, its own clock, its own
/// server-selection lane, and a wire shape.
pub struct FleetClient {
    /// The client stack (naive SNTP, MNTP, or ntpd).
    pub discipline: Box<dyn Discipline>,
    /// The client's local clock.
    pub clock: SimClock,
    /// Private server-selection RNG lane (see [`sntp::ServerSelect`]):
    /// fleet clients must not share the pool's selection RNG, or the
    /// draw order would couple every client through one mutable stream.
    pub select: PickLane,
    /// Header shape of this client's requests.
    pub shape: RequestShape,
}

/// Fleet trial parameters.
#[derive(Clone, Debug)]
pub struct FleetRunConfig {
    /// True-time offset of the trial's first tick, seconds. Zero for a
    /// standalone trial; a later segment of a chained timeline (see
    /// [`run_fleet_chaos_on`]) sets this to where the previous segment
    /// stopped, so absolute-time fault windows and sampling cadences
    /// line up across segments. When nonzero, the boundary tick itself
    /// is skipped (the previous segment already ran it).
    pub start_secs: f64,
    /// Trial length, seconds.
    pub duration_secs: u64,
    /// Driver tick, seconds.
    pub tick_secs: f64,
    /// Ground-truth sampling cadence, seconds.
    pub sample_period_secs: f64,
    /// Keep the full server-side arrival log (request bytes included).
    /// Costly at large N; rate counters are always collected.
    pub collect_arrivals: bool,
    /// When set, ground-truth sampling switches to the compact
    /// steady-state form: per-client `|error|` as `f32`, only for
    /// `t ≥` this cutoff, in [`FleetRun::steady_abs_ms`] (the
    /// timestamped [`FleetRun::true_error_ms`] series stays empty).
    /// At 1M clients the full `(f64, f64)` series is ~1 GB per
    /// half-hour; the steady-state percentiles the experiments report
    /// need none of it.
    pub steady_cutoff_secs: Option<f64>,
}

impl Default for FleetRunConfig {
    fn default() -> Self {
        FleetRunConfig {
            start_secs: 0.0,
            duration_secs: 600,
            tick_secs: 1.0,
            sample_period_secs: 30.0,
            collect_arrivals: false,
            steady_cutoff_secs: None,
        }
    }
}

/// Everything a fleet trial produced.
#[derive(Default)]
pub struct FleetRun {
    /// Per-client ground-truth clock error `(t_secs, err_ms)` samples,
    /// indexed by client id (empty in steady-state mode).
    pub true_error_ms: Vec<Vec<(f64, f64)>>,
    /// Per-client steady-state `|error|` samples, ms, indexed by client
    /// id (only in steady-state mode, see
    /// [`FleetRunConfig::steady_cutoff_secs`]).
    pub steady_abs_ms: Vec<Vec<f32>>,
    /// Server-side arrival log (only when
    /// [`FleetRunConfig::collect_arrivals`] is set).
    pub arrivals: Vec<FleetArrival>,
    /// Requests reaching any server, bucketed per second of true time.
    pub arrivals_per_sec: Vec<u64>,
    /// Client-side polls attempted.
    pub polls_sent: u64,
    /// Idle ticks the disciplines chose to record as deferrals.
    pub deferrals: u64,
    /// Requests destroyed by the chaos plan before reaching a server
    /// (uplink storms and server outages).
    pub chaos_dropped_up: u64,
    /// Replies destroyed by the chaos plan on the way back.
    pub chaos_dropped_down: u64,
    /// Per-group error quantiles over time, indexed by group id (only
    /// in chaos runs with a grouped [`ChaosSession`]).
    pub group_quantiles: Vec<Vec<GroupSample>>,
}

/// One ground-truth quantile snapshot of a client group.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroupSample {
    /// Sample instant, seconds of true time.
    pub t_secs: f64,
    /// Median `|error|` across the group, ms.
    pub p50_ms: f64,
    /// 99th-percentile `|error|` across the group, ms.
    pub p99_ms: f64,
    /// Worst `|error|` across the group, ms.
    pub max_ms: f64,
}

/// Nearest-rank quantile of an ascending-sorted slice (0 when empty).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted.get(idx).or(sorted.last()).copied().unwrap_or(0.0)
}

/// One queued exchange of one client's round, moving through the tick's
/// three phases.
enum Entry {
    /// Failed before (or at) the server; carries the client-side error.
    Fail(usize, ExchangeError),
    /// Uplink paid, awaiting the serial server phase.
    Sent(usize, FleetRequestInFlight),
    /// Served, awaiting the downlink/completion phase.
    Reply(usize, FleetRequestInFlight, FleetReplyInFlight),
}

/// One client's query round in flight across the epoch barrier.
struct PendingRound {
    /// Global client id.
    ci: usize,
    entries: Vec<Entry>,
}

/// What one shard's Phase A produced this tick.
#[derive(Default)]
struct TickOut {
    deferrals: u64,
    polls: u64,
    chaos_dropped_up: u64,
    rounds: Vec<PendingRound>,
}

/// Split `items` into consecutive chunks of the given lengths (the
/// shards' client ranges).
fn chunk_by<'a, T>(mut rest: &'a mut [T], lens: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(lens.len());
    for &len in lens {
        let (head, tail) = rest.split_at_mut(len);
        out.push(head);
        rest = tail;
    }
    out
}

/// Post-round bookkeeping for one client: apply clock commands, sample
/// ground truth if due.
fn finish_client(
    client: &mut FleetClient,
    t: SimTime,
    sample_due: bool,
    cfg: &FleetRunConfig,
    series: &mut Vec<(f64, f64)>,
    steady: &mut Vec<f32>,
) {
    for cmd in client.discipline.take_commands() {
        cmd.apply(&mut client.clock, t);
    }
    if sample_due {
        let err_ms = client.clock.true_error(t).as_millis_f64();
        match cfg.steady_cutoff_secs {
            Some(cutoff) => {
                if t.as_secs_f64() >= cutoff {
                    steady.push(err_ms.abs() as f32);
                }
            }
            None => series.push((t.as_secs_f64(), err_ms)),
        }
    }
}

/// Phase A for one shard: advance the kernel, poll clients, transmit
/// uplinks. Idle clients finish their tick here; querying clients park a
/// [`PendingRound`] for the barrier.
#[allow(clippy::too_many_arguments)]
fn shard_poll_phase(
    shard: &mut FleetShard,
    clients: &mut [FleetClient],
    series: &mut [Vec<(f64, f64)>],
    steady: &mut [Vec<f32>],
    t: SimTime,
    sample_due: bool,
    cfg: &FleetRunConfig,
    server_count: usize,
    plan: Option<&FleetFaultPlan>,
    mut latch: Option<&mut ClientChaosLatch>,
) -> TickOut {
    shard.advance_to(t);
    let lo = shard.client_lo();
    let mut out = TickOut::default();
    for (local, client) in clients.iter_mut().enumerate() {
        let ci = lo + local;
        // Chaos clock-step waves fire before the poll, so the
        // discipline sees (and gets to repair) the stepped clock.
        if let (Some(plan), Some(latch)) = (plan, latch.as_deref_mut()) {
            if let Some(step_ms) = plan.take_client_steps(latch, local, ci as u32, t) {
                ClockCommand::Step(NtpDuration::from_seconds_f64(step_ms / 1e3))
                    .apply(&mut client.clock, t);
            }
        }
        let hints = if client.discipline.wants_hints() {
            shard.lane(ci).map(|mut lane| lane.hints(t))
        } else {
            None
        };
        match client.discipline.poll(t, &mut client.clock, hints.as_ref(), &mut client.select) {
            Directive::Idle { record_deferred } => {
                if record_deferred {
                    out.deferrals += 1;
                }
                if let (Some(se), Some(st)) = (series.get_mut(local), steady.get_mut(local)) {
                    finish_client(client, t, sample_due, cfg, se, st);
                }
            }
            Directive::Query(ids) => {
                let mut entries = Vec::with_capacity(ids.len());
                for id in ids {
                    out.polls += 1;
                    if id >= server_count {
                        entries.push(Entry::Fail(id, ExchangeError::Blackholed));
                        continue;
                    }
                    let Some(mut lane) = shard.lane(ci) else {
                        entries.push(Entry::Fail(id, ExchangeError::Blackholed));
                        continue;
                    };
                    match begin_fleet_exchange(&mut lane, &mut client.clock, ci as u32, t, client.shape)
                    {
                        Ok(mut inflight) => {
                            if let Some(plan) = plan {
                                if plan.drop_uplink(ci as u32, id, inflight.t_eff) {
                                    out.chaos_dropped_up += 1;
                                    entries.push(Entry::Fail(id, ExchangeError::Blackholed));
                                    continue;
                                }
                                inflight.hop_up =
                                    inflight.hop_up + plan.extra_delay_up(ci as u32, inflight.t_eff);
                            }
                            entries.push(Entry::Sent(id, inflight));
                        }
                        Err(e) => entries.push(Entry::Fail(id, e)),
                    }
                }
                out.rounds.push(PendingRound { ci, entries });
            }
        }
    }
    out
}

/// Phase C for one shard: pay downlinks, classify replies, complete each
/// parked round, then run the same per-client bookkeeping Phase A ran
/// for idle clients. Returns the number of replies the chaos plan
/// destroyed on the downlink.
#[allow(clippy::too_many_arguments)]
fn shard_complete_phase(
    shard: &mut FleetShard,
    clients: &mut [FleetClient],
    series: &mut [Vec<(f64, f64)>],
    steady: &mut [Vec<f32>],
    rounds: Vec<PendingRound>,
    t: SimTime,
    sample_due: bool,
    cfg: &FleetRunConfig,
    plan: Option<&FleetFaultPlan>,
) -> u64 {
    let lo = shard.client_lo();
    let mut chaos_dropped_down = 0;
    for round in rounds {
        let ci = round.ci;
        let Some(local) = ci.checked_sub(lo) else { continue };
        let Some(client) = clients.get_mut(local) else { continue };
        let mut results = Vec::with_capacity(round.entries.len());
        for entry in round.entries {
            let result = match entry {
                Entry::Fail(id, e) => ExchangeResult { server_id: id, outcome: Err(e) },
                // Unreachable: the barrier resolves every Sent entry.
                Entry::Sent(id, _) => {
                    ExchangeResult { server_id: id, outcome: Err(ExchangeError::Blackholed) }
                }
                Entry::Reply(id, mut inflight, mut reply) => {
                    let chaos_fate = match plan {
                        Some(plan) if plan.drop_downlink(ci as u32, id, reply.departure) => {
                            chaos_dropped_down += 1;
                            Some(Err(ExchangeError::Blackholed))
                        }
                        Some(plan) => {
                            let extra = plan.extra_delay_down(ci as u32, reply.departure);
                            reply.bb_down = reply.bb_down + extra;
                            reply.at_wap = reply.at_wap + extra;
                            None
                        }
                        None => None,
                    };
                    let outcome = match chaos_fate {
                        Some(fate) => fate,
                        None => match shard.lane(ci) {
                            Some(mut lane) => complete_fleet_exchange(
                                &mut lane,
                                &mut client.clock,
                                &mut inflight.client,
                                &reply,
                                id,
                            ),
                            None => Err(ExchangeError::Blackholed),
                        },
                    };
                    ExchangeResult { server_id: id, outcome }
                }
            };
            results.push(result);
        }
        let _ = client.discipline.complete(t, &mut client.clock, &results);
        if let (Some(se), Some(st)) = (series.get_mut(local), steady.get_mut(local)) {
            finish_client(client, t, sample_due, cfg, se, st);
        }
    }
    chaos_dropped_down
}

/// Per-trial chaos state: a [`FleetFaultPlan`] plus the one-shot
/// latches and the group map for per-group quantile collection.
///
/// The session owns the latches so a timeline can be run as chained
/// segments (each with its own [`FleetRunConfig::start_secs`]) without
/// refiring one-shot events: the latches persist across
/// [`run_fleet_chaos_on`] calls.
pub struct ChaosSession {
    plan: FleetFaultPlan,
    /// Group id per client (for quantile collection only; the plan's
    /// fault domains are independent of this map).
    groups: Vec<u8>,
    group_count: usize,
    /// One latch chunk per shard, local indexing.
    client_latches: Vec<ClientChaosLatch>,
    server_latch: ServerChaosLatch,
}

impl ChaosSession {
    /// Build a session for `plan` over `net`'s shard layout. `groups`
    /// maps each client id to a reporting group in `0..group_count`;
    /// pass an empty map to skip group quantile collection.
    pub fn new(plan: FleetFaultPlan, net: &mut FleetNet, groups: Vec<u8>, group_count: usize) -> Self {
        let (shards, _) = net.parts();
        let client_latches =
            shards.iter().map(|s| ClientChaosLatch::new(&plan, s.client_count())).collect();
        let server_latch = ServerChaosLatch::new(&plan);
        ChaosSession { plan, groups, group_count, client_latches, server_latch }
    }

    /// The fault plan this session replays.
    pub fn plan(&self) -> &FleetFaultPlan {
        &self.plan
    }
}

/// The shared tick loop behind [`run_fleet_on`] (no chaos) and
/// [`run_fleet_chaos_on`] (fault plan active).
fn run_fleet_impl(
    par: &Pool,
    clients: &mut [FleetClient],
    net: &mut FleetNet,
    pool: &mut ServerPool,
    cfg: &FleetRunConfig,
    session: Option<&mut ChaosSession>,
) -> FleetRun {
    let ticks = (cfg.duration_secs as f64 / cfg.tick_secs).ceil() as u64;
    let server_count = net.server_count();
    let start_secs = cfg.start_secs.max(0.0);
    let (plan, client_latches, mut server_latch, groups, group_count) = match session {
        Some(s) => (
            Some(&s.plan),
            s.client_latches.as_mut_slice(),
            Some(&mut s.server_latch),
            s.groups.as_slice(),
            s.group_count,
        ),
        None => (None, &mut [] as &mut [ClientChaosLatch], None, &[] as &[u8], 0),
    };
    let mut run = FleetRun {
        true_error_ms: clients.iter().map(|_| Vec::new()).collect(),
        steady_abs_ms: clients.iter().map(|_| Vec::new()).collect(),
        arrivals_per_sec: vec![0; (start_secs + cfg.duration_secs as f64) as usize + 2],
        group_quantiles: vec![Vec::new(); group_count],
        ..FleetRun::default()
    };
    let (shards, models) = net.parts();
    let lens: Vec<usize> = shards.iter().map(FleetShard::client_count).collect();
    // A chained segment skips its boundary tick: the previous segment
    // already ran the world at `start_secs`.
    let first_tick = if start_secs > 0.0 { 1 } else { 0 };
    for i in first_tick..=ticks {
        let tick_offset_secs = start_secs + i as f64 * cfg.tick_secs;
        let t = SimTime::ZERO + SimDuration::from_secs_f64(tick_offset_secs);
        let sample_due = tick_offset_secs % cfg.sample_period_secs < cfg.tick_secs;

        // Phase A: shard-parallel polling and uplinks.
        let mut outs: Vec<TickOut> = {
            let client_chunks = chunk_by(clients, &lens);
            let series_chunks = chunk_by(&mut run.true_error_ms, &lens);
            let steady_chunks = chunk_by(&mut run.steady_abs_ms, &lens);
            let mut latch_iter = client_latches.iter_mut();
            let tasks: Vec<Box<dyn FnOnce() -> TickOut + Send + '_>> = shards
                .iter_mut()
                .zip(client_chunks)
                .zip(series_chunks.into_iter().zip(steady_chunks))
                .map(|((shard, cl), (se, st))| {
                    let cfg = &*cfg;
                    let latch = latch_iter.next();
                    Box::new(move || {
                        shard_poll_phase(
                            shard, cl, se, st, t, sample_due, cfg, server_count, plan, latch,
                        )
                    }) as Box<dyn FnOnce() -> TickOut + Send + '_>
                })
                .collect();
            par.invoke(tasks)
        };

        // Chaos server events for this tick, serially by server id:
        // restarts (outage windows that just ended) re-warm rate state,
        // falseticker onsets step reference clocks. Both must land
        // before any of this tick's requests are served.
        if let (Some(plan), Some(latch)) = (plan, server_latch.as_deref_mut()) {
            for sid in 0..server_count {
                if plan.take_restarts(latch, sid, t) {
                    if let Some(model) = models.get_mut(sid) {
                        model.restart(t);
                    }
                }
                if let Some(err_ms) = plan.take_falseticker_onsets(latch, sid, t) {
                    pool.server_mut(sid)
                        .clock
                        .step(t, NtpDuration::from_seconds_f64(err_ms / 1e3));
                }
            }
        }

        // Phase B: the epoch barrier. Every in-flight request meets the
        // shared server state here, serially, in global client-id order
        // (shards are ordered by id range, rounds by id within a shard).
        for out in &mut outs {
            run.deferrals += out.deferrals;
            run.polls_sent += out.polls;
            run.chaos_dropped_up += out.chaos_dropped_up;
            for round in &mut out.rounds {
                for entry in &mut round.entries {
                    let taken =
                        std::mem::replace(entry, Entry::Fail(0, ExchangeError::Blackholed));
                    *entry = match taken {
                        Entry::Sent(id, inflight) => {
                            let Some(model) = models.get_mut(id) else {
                                continue;
                            };
                            // An outage swallows the request at the WAP→
                            // backbone boundary: the server model never
                            // sees it (no arrival, no KoD accounting).
                            if plan
                                .is_some_and(|p| p.server_down(id, inflight.t_eff + inflight.hop_up))
                            {
                                run.chaos_dropped_up += 1;
                                *entry = Entry::Fail(id, ExchangeError::Blackholed);
                                continue;
                            }
                            let (arrival, reply) = serve_fleet_exchange(
                                &inflight,
                                pool.server_mut(id),
                                model,
                                round.ci as u32,
                            );
                            if let Some(arrival) = arrival {
                                let sec = arrival.at.as_secs_f64() as usize;
                                if let Some(bucket) = run.arrivals_per_sec.get_mut(sec) {
                                    *bucket += 1;
                                }
                                if cfg.collect_arrivals {
                                    run.arrivals.push(arrival);
                                }
                            }
                            match reply {
                                Ok(r) => Entry::Reply(id, inflight, r),
                                Err(e) => Entry::Fail(id, e),
                            }
                        }
                        other => other,
                    };
                }
            }
        }

        // Phase C: shard-parallel downlinks, completion, bookkeeping.
        {
            let client_chunks = chunk_by(clients, &lens);
            let series_chunks = chunk_by(&mut run.true_error_ms, &lens);
            let steady_chunks = chunk_by(&mut run.steady_abs_ms, &lens);
            let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = shards
                .iter_mut()
                .zip(client_chunks)
                .zip(series_chunks.into_iter().zip(steady_chunks))
                .zip(outs)
                .map(|(((shard, cl), (se, st)), out)| {
                    let cfg = &*cfg;
                    Box::new(move || {
                        shard_complete_phase(
                            shard, cl, se, st, out.rounds, t, sample_due, cfg, plan,
                        )
                    }) as Box<dyn FnOnce() -> u64 + Send + '_>
                })
                .collect();
            run.chaos_dropped_down += par.invoke(tasks).into_iter().sum::<u64>();
        }

        // Group quantiles: a serial pass in global client-id order, so
        // any (shards, jobs) collects identical series. `true_error` is
        // idempotent at the tick instant the bookkeeping above already
        // advanced every clock to.
        if group_count > 0 && sample_due {
            let mut per_group: Vec<Vec<f64>> = vec![Vec::new(); group_count];
            for (ci, client) in clients.iter_mut().enumerate() {
                let g = groups.get(ci).copied().unwrap_or(0) as usize;
                let err_ms = client.clock.true_error(t).as_millis_f64().abs();
                if let Some(bucket) = per_group.get_mut(g) {
                    bucket.push(err_ms);
                }
            }
            for (g, mut vals) in per_group.into_iter().enumerate() {
                vals.sort_by(|a, b| a.total_cmp(b));
                let sample = GroupSample {
                    t_secs: t.as_secs_f64(),
                    p50_ms: quantile(&vals, 0.50),
                    p99_ms: quantile(&vals, 0.99),
                    max_ms: vals.last().copied().unwrap_or(0.0),
                };
                if let Some(series) = run.group_quantiles.get_mut(g) {
                    series.push(sample);
                }
            }
        }
    }
    run
}

/// Step every client through `cfg.duration_secs` of shared-world time,
/// ticking shards on `par`'s workers.
///
/// `pool.len()` must equal `net.server_count()`: the pool holds the
/// protocol side (clocks, packet codec) and the fleet world holds the
/// capacity side of the same servers, joined by index.
pub fn run_fleet_on(
    par: &Pool,
    clients: &mut [FleetClient],
    net: &mut FleetNet,
    pool: &mut ServerPool,
    cfg: &FleetRunConfig,
) -> FleetRun {
    run_fleet_impl(par, clients, net, pool, cfg, None)
}

/// [`run_fleet_on`] under a population fault plan: the session's
/// [`FleetFaultPlan`] drops/delays packets, blackholes and restarts
/// servers, turns pool members into falsetickers, and steps client
/// clocks in waves — all seed-deterministically at any (shards, jobs).
/// With an empty plan this is byte-identical to [`run_fleet_on`].
pub fn run_fleet_chaos_on(
    par: &Pool,
    clients: &mut [FleetClient],
    net: &mut FleetNet,
    pool: &mut ServerPool,
    cfg: &FleetRunConfig,
    session: &mut ChaosSession,
) -> FleetRun {
    run_fleet_impl(par, clients, net, pool, cfg, Some(session))
}

/// Serial [`run_fleet_on`]: the historical single-threaded entry point.
pub fn run_fleet(
    clients: &mut [FleetClient],
    net: &mut FleetNet,
    pool: &mut ServerPool,
    cfg: &FleetRunConfig,
) -> FleetRun {
    run_fleet_on(&Pool::with_jobs(1), clients, net, pool, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discipline::{MntpDiscipline, SntpDiscipline};
    use crate::MntpConfig;
    use clocksim::rng::SimRng;
    use clocksim::OscillatorConfig;
    use netsim::fleet::FleetConfig;
    use sntp::PoolConfig;

    fn clock(seed: u64) -> SimClock {
        let osc = OscillatorConfig::laptop().with_skew_ppm(30.0).build(SimRng::new(seed));
        SimClock::new(osc, SimTime::ZERO)
    }

    fn small_fleet(n: usize, seed: u64, shards: usize) -> (Vec<FleetClient>, FleetNet, ServerPool) {
        let fcfg = FleetConfig { clients: n, servers: 2, shards, ..FleetConfig::default() };
        let net = FleetNet::new(&fcfg, seed);
        let pool = ServerPool::new(
            PoolConfig { size: 2, false_ticker_fraction: 0.0, ..PoolConfig::default() },
            seed ^ 0x5eed,
        );
        let clients = (0..n)
            .map(|i| FleetClient {
                discipline: if i % 2 == 0 {
                    Box::new(SntpDiscipline::naive().self_paced(5.0))
                        as Box<dyn Discipline>
                } else {
                    Box::new(MntpDiscipline::full(MntpConfig::default()))
                },
                clock: clock(1000 + i as u64),
                select: PickLane::new(2, seed ^ (0x30_000 + i as u64)),
                shape: if i % 2 == 0 { RequestShape::Sntp } else { RequestShape::Ntpd },
            })
            .collect();
        (clients, net, pool)
    }

    #[test]
    fn fleet_run_produces_per_client_series_and_arrivals() {
        let (mut clients, mut net, mut pool) = small_fleet(4, 3, 1);
        let cfg = FleetRunConfig {
            duration_secs: 120,
            collect_arrivals: true,
            ..FleetRunConfig::default()
        };
        let run = run_fleet(&mut clients, &mut net, &mut pool, &cfg);
        assert_eq!(run.true_error_ms.len(), 4);
        assert!(run.true_error_ms.iter().all(|s| !s.is_empty()));
        assert!(run.polls_sent > 0);
        assert!(!run.arrivals.is_empty());
        let counted: u64 = run.arrivals_per_sec.iter().sum();
        assert_eq!(counted, run.arrivals.len() as u64);
    }

    #[test]
    fn fleet_run_is_deterministic() {
        let cfg = FleetRunConfig { duration_secs: 90, ..FleetRunConfig::default() };
        let (mut c1, mut n1, mut p1) = small_fleet(3, 7, 1);
        let (mut c2, mut n2, mut p2) = small_fleet(3, 7, 1);
        let r1 = run_fleet(&mut c1, &mut n1, &mut p1, &cfg);
        let r2 = run_fleet(&mut c2, &mut n2, &mut p2, &cfg);
        assert_eq!(r1.true_error_ms, r2.true_error_ms);
        assert_eq!(r1.arrivals_per_sec, r2.arrivals_per_sec);
        assert_eq!(r1.polls_sent, r2.polls_sent);
    }

    /// The sharding/jobs contract end to end at the runner level: any
    /// (shard count, worker count) combination must reproduce the
    /// single-kernel serial run bit for bit.
    #[test]
    fn sharded_parallel_run_matches_serial() {
        let cfg = FleetRunConfig {
            duration_secs: 90,
            collect_arrivals: true,
            ..FleetRunConfig::default()
        };
        let fingerprint = |shards: usize, jobs: usize| {
            let (mut c, mut n, mut p) = small_fleet(5, 17, shards);
            let run = run_fleet_on(&Pool::with_jobs(jobs), &mut c, &mut n, &mut p, &cfg);
            let err_bits: Vec<Vec<(u64, u64)>> = run
                .true_error_ms
                .iter()
                .map(|s| s.iter().map(|(t, e)| (t.to_bits(), e.to_bits())).collect())
                .collect();
            let arrivals: Vec<(u32, usize, i64, bool, bool)> = run
                .arrivals
                .iter()
                .map(|a| (a.client_id, a.server_id, a.at.as_nanos(), a.dropped, a.kod))
                .collect();
            (err_bits, arrivals, run.arrivals_per_sec.clone(), run.polls_sent, run.deferrals)
        };
        let reference = fingerprint(1, 1);
        assert_eq!(fingerprint(3, 1), reference, "3 shards serial diverged");
        assert_eq!(fingerprint(3, 4), reference, "3 shards x 4 jobs diverged");
        assert_eq!(fingerprint(5, 2), reference, "one shard per client diverged");
    }

    /// An empty chaos plan is the identity: the chaos entry point must
    /// reproduce the plain runner byte for byte.
    #[test]
    fn chaos_run_with_empty_plan_matches_plain_run() {
        let cfg = FleetRunConfig {
            duration_secs: 90,
            collect_arrivals: true,
            ..FleetRunConfig::default()
        };
        let (mut c1, mut n1, mut p1) = small_fleet(4, 31, 2);
        let plain = run_fleet_on(&Pool::with_jobs(1), &mut c1, &mut n1, &mut p1, &cfg);
        let (mut c2, mut n2, mut p2) = small_fleet(4, 31, 2);
        let mut session = ChaosSession::new(FleetFaultPlan::none(), &mut n2, Vec::new(), 0);
        let chaos =
            run_fleet_chaos_on(&Pool::with_jobs(1), &mut c2, &mut n2, &mut p2, &cfg, &mut session);
        assert_eq!(plain.true_error_ms, chaos.true_error_ms);
        assert_eq!(plain.arrivals_per_sec, chaos.arrivals_per_sec);
        assert_eq!(plain.polls_sent, chaos.polls_sent);
        assert_eq!(plain.deferrals, chaos.deferrals);
        assert_eq!(chaos.chaos_dropped_up, 0);
        assert_eq!(chaos.chaos_dropped_down, 0);
    }

    fn stormy_plan(clients: u32) -> FleetFaultPlan {
        use netsim::chaos::{ChaosEvent, ClientRange};
        use netsim::ServerSet;
        FleetFaultPlan::new(0xC0FFEE)
            .window(
                20.0,
                50.0,
                ChaosEvent::RegionalLossStorm {
                    region: ClientRange::new(0, clients / 2),
                    loss_prob: 0.5,
                },
            )
            .window(30.0, 60.0, ChaosEvent::ServerOutage { servers: ServerSet::One(0) })
            .at(40.0, ChaosEvent::FalsetickerOnset { server: 1, error_ms: 150.0 })
            .window(
                60.0,
                80.0,
                ChaosEvent::ClockStepWave {
                    region: ClientRange::all(clients),
                    offset_ms: -40.0,
                },
            )
    }

    /// The chaos runner keeps the fleet contract: any (shards, jobs)
    /// reproduces the serial run bit for bit, fault plan and all.
    #[test]
    fn chaos_run_serial_matches_sharded() {
        let n = 6usize;
        let cfg = FleetRunConfig { duration_secs: 120, ..FleetRunConfig::default() };
        let fingerprint = |shards: usize, jobs: usize| {
            let (mut c, mut net, mut pool) = small_fleet(n, 41, shards);
            let groups: Vec<u8> = (0..n).map(|i| u8::from(i < n / 2)).collect();
            let mut session = ChaosSession::new(stormy_plan(n as u32), &mut net, groups, 2);
            let run = run_fleet_chaos_on(
                &Pool::with_jobs(jobs),
                &mut c,
                &mut net,
                &mut pool,
                &cfg,
                &mut session,
            );
            let err_bits: Vec<Vec<(u64, u64)>> = run
                .true_error_ms
                .iter()
                .map(|s| s.iter().map(|(t, e)| (t.to_bits(), e.to_bits())).collect())
                .collect();
            let quant_bits: Vec<Vec<(u64, u64, u64, u64)>> = run
                .group_quantiles
                .iter()
                .map(|s| {
                    s.iter()
                        .map(|q| {
                            (
                                q.t_secs.to_bits(),
                                q.p50_ms.to_bits(),
                                q.p99_ms.to_bits(),
                                q.max_ms.to_bits(),
                            )
                        })
                        .collect()
                })
                .collect();
            (
                err_bits,
                quant_bits,
                run.arrivals_per_sec.clone(),
                run.polls_sent,
                run.chaos_dropped_up,
                run.chaos_dropped_down,
            )
        };
        let reference = fingerprint(1, 1);
        assert!(reference.4 + reference.5 > 0, "plan never dropped anything — test is vacuous");
        assert_eq!(fingerprint(3, 1), reference, "3 shards serial diverged");
        assert_eq!(fingerprint(3, 4), reference, "3 shards x 4 jobs diverged");
        assert_eq!(fingerprint(6, 2), reference, "one shard per client diverged");
    }

    /// A timeline run as chained segments (via `start_secs`) replays
    /// the single uninterrupted run exactly: same world, same latches,
    /// same samples.
    #[test]
    fn chained_segments_match_single_run() {
        let n = 4usize;
        let whole_cfg = FleetRunConfig { duration_secs: 120, ..FleetRunConfig::default() };
        let (mut c1, mut n1, mut p1) = small_fleet(n, 53, 2);
        let groups: Vec<u8> = vec![0, 0, 1, 1];
        let mut s1 = ChaosSession::new(stormy_plan(n as u32), &mut n1, groups.clone(), 2);
        let whole =
            run_fleet_chaos_on(&Pool::with_jobs(1), &mut c1, &mut n1, &mut p1, &whole_cfg, &mut s1);

        let (mut c2, mut n2, mut p2) = small_fleet(n, 53, 2);
        let mut s2 = ChaosSession::new(stormy_plan(n as u32), &mut n2, groups, 2);
        let seg_a = FleetRunConfig { duration_secs: 60, ..FleetRunConfig::default() };
        let seg_b = FleetRunConfig { start_secs: 60.0, duration_secs: 60, ..FleetRunConfig::default() };
        let first =
            run_fleet_chaos_on(&Pool::with_jobs(1), &mut c2, &mut n2, &mut p2, &seg_a, &mut s2);
        let second =
            run_fleet_chaos_on(&Pool::with_jobs(1), &mut c2, &mut n2, &mut p2, &seg_b, &mut s2);

        for ci in 0..n {
            let mut joined = first.true_error_ms[ci].clone();
            joined.extend(second.true_error_ms[ci].iter().copied());
            assert_eq!(joined, whole.true_error_ms[ci], "client {ci} series diverged");
        }
        for g in 0..2 {
            let mut joined = first.group_quantiles[g].clone();
            joined.extend(second.group_quantiles[g].iter().copied());
            assert_eq!(joined, whole.group_quantiles[g], "group {g} quantiles diverged");
        }
        let mut joined_arrivals = vec![0u64; whole.arrivals_per_sec.len()];
        for (sec, count) in first
            .arrivals_per_sec
            .iter()
            .enumerate()
            .chain(second.arrivals_per_sec.iter().enumerate())
        {
            joined_arrivals[sec] += count;
        }
        assert_eq!(joined_arrivals, whole.arrivals_per_sec);
        assert_eq!(first.polls_sent + second.polls_sent, whole.polls_sent);
        assert_eq!(
            first.chaos_dropped_up + second.chaos_dropped_up,
            whole.chaos_dropped_up,
            "uplink drop counts diverged across the segment boundary"
        );
    }

    /// Steady-state collection mode: same trial, compact samples.
    #[test]
    fn steady_state_mode_matches_series_tail() {
        let mk = || small_fleet(3, 23, 2);
        let full_cfg = FleetRunConfig { duration_secs: 120, ..FleetRunConfig::default() };
        let steady_cfg =
            FleetRunConfig { steady_cutoff_secs: Some(60.0), ..full_cfg.clone() };
        let (mut c1, mut n1, mut p1) = mk();
        let full = run_fleet(&mut c1, &mut n1, &mut p1, &full_cfg);
        let (mut c2, mut n2, mut p2) = mk();
        let steady = run_fleet(&mut c2, &mut n2, &mut p2, &steady_cfg);
        assert!(steady.true_error_ms.iter().all(Vec::is_empty));
        for (ci, samples) in steady.steady_abs_ms.iter().enumerate() {
            let expect: Vec<f32> = full.true_error_ms[ci]
                .iter()
                .filter(|(t, _)| *t >= 60.0)
                .map(|(_, e)| e.abs() as f32)
                .collect();
            assert_eq!(samples, &expect, "client {ci} steady samples diverged");
        }
    }
}
