//! Fleet runner: drive N independent clients against a shared world.
//!
//! The single-client [`crate::drive`] loop pairs one [`Discipline`] with
//! one [`netsim::Testbed`]. This runner scales that out: every client
//! owns its discipline, its clock, and one channel lane of a shared
//! [`FleetNet`]; all of them contend for the same access point and the
//! same capacity-limited servers. One trial therefore observes the full
//! feedback loop the paper measures from both ends — client offset error
//! under contention, and the server-side arrival/KoD process (Figures
//! 11/12) that emerges from thousands of independent pollers.
//!
//! Determinism: clients are stepped in id order within each tick, and
//! every client's randomness lives in its own pre-forked lanes (channel,
//! clock, discipline health), so a trial is byte-reproducible at any
//! `--jobs` level. The id-order stepping delivers same-tick arrivals to
//! the server model slightly out of true-time order; the model clamps
//! them monotonically (documented approximation, see DESIGN.md).

use clocksim::time::{SimDuration, SimTime};
use clocksim::SimClock;
use netsim::fleet::FleetNet;
use sntp::fleet::{perform_fleet_exchange, FleetArrival, RequestShape};
use sntp::ServerPool;

use crate::discipline::{Directive, Discipline, ExchangeResult};

/// One fleet member: a discipline, its own clock, and a wire shape.
pub struct FleetClient {
    /// The client stack (naive SNTP, MNTP, or ntpd).
    pub discipline: Box<dyn Discipline>,
    /// The client's local clock.
    pub clock: SimClock,
    /// Header shape of this client's requests.
    pub shape: RequestShape,
}

/// Fleet trial parameters.
#[derive(Clone, Debug)]
pub struct FleetRunConfig {
    /// Trial length, seconds.
    pub duration_secs: u64,
    /// Driver tick, seconds.
    pub tick_secs: f64,
    /// Ground-truth sampling cadence, seconds.
    pub sample_period_secs: f64,
    /// Keep the full server-side arrival log (request bytes included).
    /// Costly at large N; rate counters are always collected.
    pub collect_arrivals: bool,
}

impl Default for FleetRunConfig {
    fn default() -> Self {
        FleetRunConfig {
            duration_secs: 600,
            tick_secs: 1.0,
            sample_period_secs: 30.0,
            collect_arrivals: false,
        }
    }
}

/// Everything a fleet trial produced.
#[derive(Default)]
pub struct FleetRun {
    /// Per-client ground-truth clock error `(t_secs, err_ms)` samples,
    /// indexed by client id.
    pub true_error_ms: Vec<Vec<(f64, f64)>>,
    /// Server-side arrival log (only when
    /// [`FleetRunConfig::collect_arrivals`] is set).
    pub arrivals: Vec<FleetArrival>,
    /// Requests reaching any server, bucketed per second of true time.
    pub arrivals_per_sec: Vec<u64>,
    /// Client-side polls attempted.
    pub polls_sent: u64,
    /// Idle ticks the disciplines chose to record as deferrals.
    pub deferrals: u64,
}

/// Step every client through `cfg.duration_secs` of shared-world time.
///
/// `pool.len()` must equal `net.server_count()`: the pool holds the
/// protocol side (clocks, packet codec) and the fleet world holds the
/// capacity side of the same servers, joined by index.
pub fn run_fleet(
    clients: &mut [FleetClient],
    net: &mut FleetNet,
    pool: &mut ServerPool,
    cfg: &FleetRunConfig,
) -> FleetRun {
    let ticks = (cfg.duration_secs as f64 / cfg.tick_secs).ceil() as u64;
    let mut run = FleetRun {
        true_error_ms: clients.iter().map(|_| Vec::new()).collect(),
        arrivals_per_sec: vec![0; cfg.duration_secs as usize + 2],
        ..FleetRun::default()
    };
    for i in 0..=ticks {
        let tick_offset_secs = i as f64 * cfg.tick_secs;
        let t = SimTime::ZERO + SimDuration::from_secs_f64(tick_offset_secs);
        net.advance_to(t);
        let sample_due = tick_offset_secs % cfg.sample_period_secs < cfg.tick_secs;
        for (ci, client) in clients.iter_mut().enumerate() {
            let hints =
                if client.discipline.wants_hints() { net.hints(ci, t) } else { None };
            match client.discipline.poll(t, &mut client.clock, hints.as_ref(), pool) {
                Directive::Idle { record_deferred } => {
                    if record_deferred {
                        run.deferrals += 1;
                    }
                }
                Directive::Query(ids) => {
                    let mut round = Vec::with_capacity(ids.len());
                    for id in ids {
                        run.polls_sent += 1;
                        let Some((chan, model)) = net.lanes(ci, id) else {
                            round.push(ExchangeResult {
                                server_id: id,
                                outcome: Err(sntp::ExchangeError::Blackholed),
                            });
                            continue;
                        };
                        let (arrival, outcome) = perform_fleet_exchange(
                            chan,
                            pool.server_mut(id),
                            model,
                            &mut client.clock,
                            ci as u32,
                            t,
                            client.shape,
                        );
                        if let Some(arrival) = arrival {
                            let sec = arrival.at.as_secs_f64() as usize;
                            if let Some(bucket) = run.arrivals_per_sec.get_mut(sec) {
                                *bucket += 1;
                            }
                            if cfg.collect_arrivals {
                                run.arrivals.push(arrival);
                            }
                        }
                        round.push(ExchangeResult { server_id: id, outcome });
                    }
                    let _ = client.discipline.complete(t, &mut client.clock, &round);
                }
            }
            for cmd in client.discipline.take_commands() {
                cmd.apply(&mut client.clock, t);
            }
            if sample_due {
                let err_ms = client.clock.true_error(t).as_millis_f64();
                if let Some(series) = run.true_error_ms.get_mut(ci) {
                    series.push((t.as_secs_f64(), err_ms));
                }
            }
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discipline::{MntpDiscipline, SntpDiscipline};
    use crate::MntpConfig;
    use clocksim::rng::SimRng;
    use clocksim::OscillatorConfig;
    use netsim::fleet::FleetConfig;
    use sntp::PoolConfig;

    fn clock(seed: u64) -> SimClock {
        let osc = OscillatorConfig::laptop().with_skew_ppm(30.0).build(SimRng::new(seed));
        SimClock::new(osc, SimTime::ZERO)
    }

    fn small_fleet(n: usize, seed: u64) -> (Vec<FleetClient>, FleetNet, ServerPool) {
        let fcfg = FleetConfig { clients: n, servers: 2, ..FleetConfig::default() };
        let net = FleetNet::new(&fcfg, seed);
        let pool = ServerPool::new(
            PoolConfig { size: 2, false_ticker_fraction: 0.0, ..PoolConfig::default() },
            seed ^ 0x5eed,
        );
        let clients = (0..n)
            .map(|i| FleetClient {
                discipline: if i % 2 == 0 {
                    Box::new(SntpDiscipline::naive().self_paced(5.0))
                        as Box<dyn Discipline>
                } else {
                    Box::new(MntpDiscipline::full(MntpConfig::default()))
                },
                clock: clock(1000 + i as u64),
                shape: if i % 2 == 0 { RequestShape::Sntp } else { RequestShape::Ntpd },
            })
            .collect();
        (clients, net, pool)
    }

    #[test]
    fn fleet_run_produces_per_client_series_and_arrivals() {
        let (mut clients, mut net, mut pool) = small_fleet(4, 3);
        let cfg = FleetRunConfig {
            duration_secs: 120,
            collect_arrivals: true,
            ..FleetRunConfig::default()
        };
        let run = run_fleet(&mut clients, &mut net, &mut pool, &cfg);
        assert_eq!(run.true_error_ms.len(), 4);
        assert!(run.true_error_ms.iter().all(|s| !s.is_empty()));
        assert!(run.polls_sent > 0);
        assert!(!run.arrivals.is_empty());
        let counted: u64 = run.arrivals_per_sec.iter().sum();
        assert_eq!(counted, run.arrivals.len() as u64);
    }

    #[test]
    fn fleet_run_is_deterministic() {
        let cfg = FleetRunConfig { duration_secs: 90, ..FleetRunConfig::default() };
        let (mut c1, mut n1, mut p1) = small_fleet(3, 7);
        let (mut c2, mut n2, mut p2) = small_fleet(3, 7);
        let r1 = run_fleet(&mut c1, &mut n1, &mut p1, &cfg);
        let r2 = run_fleet(&mut c2, &mut n2, &mut p2, &cfg);
        assert_eq!(r1.true_error_ms, r2.true_error_ms);
        assert_eq!(r1.arrivals_per_sec, r2.arrivals_per_sec);
        assert_eq!(r1.polls_sent, r2.polls_sent);
    }
}
