//! Falseticker-resilient round selection for multi-server MNTP clients.
//!
//! The paper's MNTP regular phase trusts one server per round; its only
//! defence against a lying source is the warmup-phase deviation test
//! and the trend filter's outlier rejection — both of which a server
//! that goes bad *mid-run* can defeat (the trend line calmly follows a
//! slowly wrong source, and a stepped source produces samples the
//! filter sees as a genuine clock step). The resilient discipline
//! (see [`crate::discipline::MntpDiscipline::resilient`]) instead
//! queries a small fan-out of distinct servers each round and runs the
//! answers through the same intersection + cluster + combine machinery
//! the ntpd model uses ([`sntp::select`]): a majority clique of
//! mutually-consistent offsets survives, falsetickers are discarded,
//! and the survivors' offsets are folded into one combined sample.
//!
//! This module is the pure per-round kernel: exchange results in,
//! verdict out. It is structurally panic-free (it sits on the
//! `lint.toml` `[panic]` hot-path list).

use sntp::select::{cluster, combine, select_survivors, PeerCandidate};

use crate::discipline::ExchangeResult;

/// Floor on a candidate's root distance, seconds. A round-trip can
/// simulate arbitrarily small delay; the dispersion floor keeps every
/// correctness interval wide enough that honest servers with ordinary
/// network asymmetry still intersect.
const DISPERSION_FLOOR_SECS: f64 = 0.010;

/// Maximum round-trip delay for a sample to contribute a correctness
/// interval, seconds. A sample's offset error is bounded by half its
/// round trip, so a congested-wifi answer (hundreds of ms of queueing)
/// carries an interval so wide it overlaps *everything* — including a
/// falseticker a quarter second out — and folding it into the combine
/// step pulls the round toward whatever junk it covers. Past this
/// budget an answer still proves the server is alive; it just casts no
/// vote on what time it is.
const DELAY_BUDGET_SECS: f64 = 0.100;

/// What one round of fan-out queries distilled to.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundSelection {
    /// The combined (inverse-root-distance-weighted) offset, ms.
    pub offset_ms: f64,
    /// Servers whose samples survived intersection + cluster.
    pub survivors: Vec<usize>,
    /// Servers that answered but were rejected as falsetickers or
    /// cluster outliers.
    pub discarded: Vec<usize>,
}

/// Run intersection + cluster + combine over one round's completed
/// exchanges. Failed exchanges and answers over the delay budget are
/// ignored (the caller accounts for failures via its health tracker);
/// `None` means no majority clique existed among the remaining answers
/// — the round yields no sample.
pub fn select_round(results: &[ExchangeResult]) -> Option<RoundSelection> {
    let mut cands: Vec<PeerCandidate> = Vec::with_capacity(results.len());
    let mut answered = 0usize;
    for r in results {
        if let Ok(done) = &r.outcome {
            answered += 1;
            let delay = done.sample.delay.as_seconds_f64().abs();
            if delay > DELAY_BUDGET_SECS {
                continue;
            }
            cands.push(PeerCandidate {
                peer_id: r.server_id,
                offset: done.sample.offset.as_seconds_f64(),
                root_distance: delay / 2.0 + DISPERSION_FLOOR_SECS,
                // The fleet round has one sample per server — no jitter
                // history; the error bound stands in for it.
                jitter: delay / 2.0 + DISPERSION_FLOOR_SECS,
            });
        }
    }
    if cands.is_empty() {
        return None;
    }
    let survivor_ids = select_survivors(&cands);
    // The clique must be a majority of the servers that *answered*, not
    // just of those crisp enough to vote. A lone in-budget candidate
    // among congested answers is uncorroborated — if it happens to be a
    // falseticker, nothing in this round can contradict it, and one
    // such accepted sample in slew-mode-with-step-threshold moves the
    // clock by the full lie. (When the others genuinely failed to
    // answer, a lone reply is still the round's best evidence and
    // passes: majority of one.)
    if survivor_ids.len() * 2 <= answered {
        return None;
    }
    let survivors: Vec<PeerCandidate> =
        cands.iter().filter(|c| survivor_ids.contains(&c.peer_id)).copied().collect();
    let clustered = cluster(survivors);
    let offset = combine(&clustered)?;
    let kept: Vec<usize> = clustered.iter().map(|c| c.peer_id).collect();
    let discarded: Vec<usize> =
        cands.iter().map(|c| c.peer_id).filter(|id| !kept.contains(id)).collect();
    Some(RoundSelection { offset_ms: offset * 1e3, survivors: kept, discarded })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksim::time::{SimDuration, SimTime};
    use ntp_wire::NtpDuration;
    use sntp::exchange::CompletedExchange;
    use sntp::{ExchangeError, OffsetSample};

    fn ok(server_id: usize, offset_ms: f64, delay_ms: f64) -> ExchangeResult {
        let sample = OffsetSample {
            offset: NtpDuration::from_seconds_f64(offset_ms / 1e3),
            delay: NtpDuration::from_seconds_f64(delay_ms / 1e3),
            t1: ntp_wire::NtpTimestamp::from_parts(0, 0),
            t4: ntp_wire::NtpTimestamp::from_parts(0, 0),
            stratum: 2,
        };
        ExchangeResult {
            server_id,
            outcome: Ok(CompletedExchange {
                sample,
                true_fwd: SimDuration::from_millis(10),
                true_back: SimDuration::from_millis(10),
                completed_at: SimTime::ZERO,
                server_id,
            }),
        }
    }

    fn fail(server_id: usize) -> ExchangeResult {
        ExchangeResult { server_id, outcome: Err(ExchangeError::Blackholed) }
    }

    #[test]
    fn agreeing_round_combines_all() {
        let round = [ok(0, 5.0, 20.0), ok(1, 6.0, 20.0), ok(2, 4.5, 20.0)];
        let sel = select_round(&round).expect("majority exists");
        assert_eq!(sel.survivors.len(), 3);
        assert!(sel.discarded.is_empty());
        assert!((sel.offset_ms - 5.0).abs() < 1.5, "offset {}", sel.offset_ms);
    }

    #[test]
    fn falseticker_discarded_and_does_not_pollute_offset() {
        let round = [ok(0, 5.0, 20.0), ok(1, 6.0, 20.0), ok(2, 500.0, 20.0)];
        let sel = select_round(&round).expect("two honest servers outvote one");
        assert!(!sel.survivors.contains(&2));
        assert!(sel.discarded.contains(&2));
        assert!((sel.offset_ms - 5.5).abs() < 1.0, "offset {}", sel.offset_ms);
    }

    #[test]
    fn failed_exchanges_are_ignored() {
        let round = [ok(0, 3.0, 20.0), fail(1), ok(2, 3.5, 20.0)];
        let sel = select_round(&round).expect("failures don't break the clique");
        assert_eq!(sel.survivors.len(), 2);
    }

    #[test]
    fn all_failed_yields_none() {
        assert_eq!(select_round(&[fail(0), fail(1)]), None);
        assert_eq!(select_round(&[]), None);
    }

    #[test]
    fn split_vote_yields_none() {
        // Two pairs half a second apart: no majority clique.
        let round = [ok(0, 0.0, 5.0), ok(1, 1.0, 5.0), ok(2, 500.0, 5.0), ok(3, 501.0, 5.0)];
        assert_eq!(select_round(&round), None);
    }

    #[test]
    fn over_budget_answers_cast_no_vote() {
        // A congested answer's interval covers everything; budgeted out,
        // the two crisp servers decide the round alone.
        let round = [ok(0, 5.0, 20.0), ok(1, 6.0, 20.0), ok(2, 130.0, 900.0)];
        let sel = select_round(&round).expect("crisp majority survives");
        assert!(!sel.survivors.contains(&2));
        assert!((sel.offset_ms - 5.5).abs() < 1.0, "offset {}", sel.offset_ms);
        // A round of nothing but congested answers yields no sample.
        assert_eq!(select_round(&[ok(0, 5.0, 500.0), ok(1, 6.0, 700.0)]), None);
    }

    #[test]
    fn single_answer_survives_trivially() {
        let sel = select_round(&[ok(4, 12.0, 30.0)]).expect("lone answer is the sample");
        assert_eq!(sel.survivors, vec![4]);
        assert!((sel.offset_ms - 12.0).abs() < 1e-3);
        // A lone answer among genuine *failures* still passes: it is
        // the round's only evidence, not a minority report.
        let sel = select_round(&[fail(0), ok(4, 12.0, 30.0), fail(2)]).expect("majority of one");
        assert_eq!(sel.survivors, vec![4]);
    }

    #[test]
    fn uncorroborated_lone_vote_among_congested_answers_yields_none() {
        // Three servers answered, but only one crisply — and it is the
        // falseticker. The congested pair can't vote, so nothing this
        // round can contradict the lie; the clique (1) is not a
        // majority of the answers (3) and the round yields no sample.
        let round = [ok(0, 255.0, 20.0), ok(1, 3.0, 700.0), ok(2, 2.0, 900.0)];
        assert_eq!(select_round(&round), None);
    }
}
