//! The one generic driver that runs every client stack against a
//! simulated testbed.
//!
//! Historically this module held four hand-rolled loops (`run_full`,
//! `run_full_autotuned`, `run_full_faulted`, `run_baseline`) and
//! `ntpd-sim` carried two more — six copies of the same tick/exchange/
//! apply/sample skeleton. They are now thin wrappers over [`drive`],
//! which ticks a [`crate::discipline::Discipline`] through simulated
//! time: ask the discipline what to do, carry each requested exchange
//! across the (possibly fault-injected) network, hand the round back,
//! apply emitted clock commands, and sample ground-truth clock error.
//!
//! Every wrapper reproduces its historical loop *byte-identically* —
//! same RNG consumption order, same clock reads, same record stream —
//! which is what keeps all committed `results/*.txt` artifacts stable
//! across the refactor (re-proved by full regeneration and by
//! `tests/parallel_equivalence.rs`).

use clocksim::time::{SimDuration, SimTime};
use clocksim::SimClock;
use netsim::{FaultInjector, Testbed, WirelessHints};
use sntp::{perform_exchange, perform_exchange_faulted, HealthConfig, ServerPool};

use crate::config::MntpConfig;
use crate::discipline::{Directive, Discipline, ExchangeResult, MntpDiscipline, SntpDiscipline};

/// What happened at one query instant.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutcome {
    /// The hint gate deferred the request.
    Deferred,
    /// The query was sent but every packet was lost.
    Failed,
    /// A warmup round completed with these per-source offsets (ms) and
    /// this many of them rejected as false tickers.
    WarmupRound {
        /// Offset reported by each responding source, ms.
        offsets_ms: Vec<f64>,
        /// How many of them the mean+1σ test rejected.
        false_tickers: usize,
    },
    /// A sample was accepted by the filter.
    Accepted {
        /// The accepted offset, ms.
        offset_ms: f64,
    },
    /// A sample was rejected by the filter.
    Rejected {
        /// The rejected offset, ms.
        offset_ms: f64,
    },
    /// First successful sample after a holdover outage: the engine
    /// corrected the clock and restarted warmup.
    Recovered {
        /// The offset observed at recovery, ms.
        offset_ms: f64,
    },
    /// A holdover-phase probe failed; the engine keeps freewheeling on
    /// the fitted drift.
    HoldoverFailed {
        /// The trend model's offset prediction at the failed probe, ms
        /// (`None` if no trend was ever fitted).
        predicted_ms: Option<f64>,
    },
    /// The selected server answered with a kiss-o'-death packet.
    KissODeath {
        /// The ASCII kiss code (e.g. `*b"RATE"`).
        code: [u8; 4],
    },
}

/// One record of an MNTP run.
#[derive(Clone, Debug)]
pub struct MntpRunRecord {
    /// True time of the event, seconds since run start.
    pub t_secs: f64,
    /// Wireless hints at the event (None on wired/cellular hops).
    pub hints: Option<WirelessHints>,
    /// What happened.
    pub outcome: QueryOutcome,
}

/// A completed run: per-event records plus ground-truth clock error.
///
/// Accepted/rejected offsets are cached as records are
/// [`push`](MntpRun::push)ed, so the accessors return slices instead of
/// re-scanning (and re-allocating from) the record stream per call.
#[derive(Clone, Debug, Default)]
pub struct MntpRun {
    /// Per-query-instant records. Push through [`MntpRun::push`] so the
    /// offset caches stay coherent.
    pub records: Vec<MntpRunRecord>,
    /// `(t_secs, clock true error ms)` sampled every few seconds —
    /// evaluation-only.
    pub true_error_ms: Vec<(f64, f64)>,
    /// Total exchanges attempted (one per server actually queried).
    pub polls_sent: u64,
    accepted: Vec<f64>,
    rejected: Vec<f64>,
}

impl MntpRun {
    /// Append a record, maintaining the accepted/rejected offset caches.
    pub fn push(&mut self, rec: MntpRunRecord) {
        match rec.outcome {
            QueryOutcome::Accepted { offset_ms } => self.accepted.push(offset_ms),
            QueryOutcome::Rejected { offset_ms } => self.rejected.push(offset_ms),
            _ => {}
        }
        self.records.push(rec);
    }

    /// All accepted offsets, ms, in record order.
    pub fn accepted_offsets(&self) -> &[f64] {
        &self.accepted
    }

    /// All rejected offsets, ms, in record order.
    pub fn rejected_offsets(&self) -> &[f64] {
        &self.rejected
    }

    /// Count of deferred query instants.
    pub fn deferrals(&self) -> usize {
        self.records.iter().filter(|r| r.outcome == QueryOutcome::Deferred).count()
    }

    /// Count of kiss-o'-death replies received.
    pub fn kod_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, QueryOutcome::KissODeath { .. }))
            .count()
    }

    /// Count of failed holdover probes.
    pub fn holdover_failures(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, QueryOutcome::HoldoverFailed { .. }))
            .count()
    }

    /// `(t_secs, offset_ms)` of every post-outage recovery.
    pub fn recoveries(&self) -> Vec<(f64, f64)> {
        self.records
            .iter()
            .filter_map(|r| match r.outcome {
                QueryOutcome::Recovered { offset_ms } => Some((r.t_secs, offset_ms)),
                _ => None,
            })
            .collect()
    }
}

/// Tick/exchange policy for one [`drive`] run.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Inclusive tick count: the loop runs `0..=ticks`.
    pub ticks: u64,
    /// Seconds of simulated time per tick.
    pub tick_secs: f64,
    /// `true`: sample ground-truth clock error on every tick (the
    /// baseline loops); `false`: sample every ~5 s of simulated time.
    pub sample_every_tick: bool,
    /// Per-exchange round-trip budget; only consulted on the faulted
    /// path.
    pub timeout: Option<SimDuration>,
}

/// Run a [`Discipline`] against the testbed for `cfg.ticks` ticks.
///
/// This is the *single* driver loop in the workspace. Per tick:
///
/// 1. sample wireless hints, iff the discipline wants them (sampling
///    advances the testbed's background processes, so hint-blind
///    clients must not trigger it);
/// 2. [`Discipline::poll`] — the discipline reads its clock and decides;
/// 3. one exchange per requested server, through
///    [`perform_exchange_faulted`] when a fault injector is supplied
///    and [`perform_exchange`] otherwise (the two are *not* equivalent
///    even with an empty schedule: the faulted path consults the
///    injector's RNG);
/// 4. [`Discipline::complete`] digests the round and optionally yields
///    a record;
/// 5. emitted clock commands are applied at the tick instant;
/// 6. ground-truth clock error is sampled per `cfg.sample_every_tick`.
pub fn drive(
    discipline: &mut dyn Discipline,
    testbed: &mut Testbed,
    pool: &mut ServerPool,
    clock: &mut SimClock,
    mut faults: Option<&mut FaultInjector>,
    cfg: &DriverConfig,
) -> MntpRun {
    let mut run = MntpRun::default();
    for i in 0..=cfg.ticks {
        let t = SimTime::ZERO + SimDuration::from_secs_f64(i as f64 * cfg.tick_secs);
        let hints = if discipline.wants_hints() { testbed.hints(t) } else { None };
        match discipline.poll(t, clock, hints.as_ref(), pool) {
            Directive::Idle { record_deferred } => {
                if record_deferred {
                    run.push(MntpRunRecord {
                        t_secs: t.as_secs_f64(),
                        hints,
                        outcome: QueryOutcome::Deferred,
                    });
                }
            }
            Directive::Query(ids) => {
                let mut round = Vec::with_capacity(ids.len());
                for id in ids {
                    run.polls_sent += 1;
                    let outcome = match faults.as_deref_mut() {
                        Some(f) => perform_exchange_faulted(
                            testbed,
                            pool.server_mut(id),
                            clock,
                            t,
                            f,
                            cfg.timeout,
                        ),
                        None => perform_exchange(testbed, pool.server_mut(id), clock, t),
                    };
                    round.push(ExchangeResult { server_id: id, outcome });
                }
                if let Some(outcome) = discipline.complete(t, clock, &round) {
                    run.push(MntpRunRecord { t_secs: t.as_secs_f64(), hints, outcome });
                }
            }
        }
        for cmd in discipline.take_commands() {
            cmd.apply(clock, t);
        }
        let sample_due =
            cfg.sample_every_tick || (i as f64 * cfg.tick_secs) % 5.0 < cfg.tick_secs;
        if sample_due {
            run.true_error_ms.push((t.as_secs_f64(), clock.true_error(t).as_millis_f64()));
        }
    }
    run
}

/// Run the full Algorithm 1 engine for `duration_secs` of simulated time.
///
/// The engine is ticked once per `tick_secs` (1 s is the paper-faithful
/// choice: `wait(favorableSNRCondition())` re-checks the channel each
/// second). Clock commands are applied to `clock` as they are emitted.
pub fn run_full(
    cfg: MntpConfig,
    testbed: &mut Testbed,
    pool: &mut ServerPool,
    clock: &mut SimClock,
    duration_secs: u64,
    tick_secs: f64,
) -> MntpRun {
    let mut d = MntpDiscipline::full(cfg);
    let dcfg = DriverConfig {
        ticks: (duration_secs as f64 / tick_secs).ceil() as u64,
        tick_secs,
        sample_every_tick: false,
        timeout: None,
    };
    drive(&mut d, testbed, pool, clock, None, &dcfg)
}

/// Run the full engine with the AIMD self-tuner adjusting the
/// regular-phase wait online (the paper's §7 future work). Identical to
/// [`run_full`] otherwise.
pub fn run_full_autotuned(
    cfg: MntpConfig,
    tune: crate::autotune::AutoTuneConfig,
    testbed: &mut Testbed,
    pool: &mut ServerPool,
    clock: &mut SimClock,
    duration_secs: u64,
    tick_secs: f64,
) -> (MntpRun, crate::autotune::AutoTuner) {
    let mut d = MntpDiscipline::autotuned(cfg, tune.clone());
    let dcfg = DriverConfig {
        ticks: (duration_secs as f64 / tick_secs).ceil() as u64,
        tick_secs,
        sample_every_tick: false,
        timeout: None,
    };
    let run = drive(&mut d, testbed, pool, clock, None, &dcfg);
    let tuner = d.into_tuner().unwrap_or_else(|| crate::autotune::AutoTuner::new(tune));
    (run, tuner)
}

/// Configuration of the hardened, fault-aware driver.
#[derive(Clone, Debug)]
pub struct RobustConfig {
    /// Per-query round-trip budget, seconds; replies arriving later are
    /// abandoned and the query counts as failed.
    pub timeout_secs: f64,
    /// Per-server health policy (reachability register, demotion bans,
    /// kiss-o'-death honoring).
    pub health: HealthConfig,
    /// Seed for the health tracker's selection RNG.
    pub health_seed: u64,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig { timeout_secs: 1.0, health: HealthConfig::default(), health_seed: 0x4d4e5450 }
    }
}

/// Run the full engine through the hardened client stack against a
/// fault-injecting network.
///
/// Identical tick structure to [`run_full`], with three changes:
///
/// * server selection goes through a [`sntp::HealthTracker`] instead of
///   the pool's uniform pick, so blackholed / rate-limiting servers are
///   demoted and traffic fails over;
/// * every exchange runs under [`perform_exchange_faulted`] with a
///   per-query timeout, so the injected faults (§ fault model in
///   DESIGN.md) actually bite;
/// * kiss-o'-death replies ban the offending server and are recorded as
///   [`QueryOutcome::KissODeath`]; failed holdover probes are recorded
///   as [`QueryOutcome::HoldoverFailed`] with the freewheel prediction.
#[allow(clippy::too_many_arguments)]
pub fn run_full_faulted(
    cfg: MntpConfig,
    rcfg: RobustConfig,
    testbed: &mut Testbed,
    pool: &mut ServerPool,
    clock: &mut SimClock,
    faults: &mut FaultInjector,
    duration_secs: u64,
    tick_secs: f64,
) -> MntpRun {
    let timeout = Some(SimDuration::from_secs_f64(rcfg.timeout_secs));
    let mut d = MntpDiscipline::hardened(cfg, &rcfg, pool.len());
    let dcfg = DriverConfig {
        ticks: (duration_secs as f64 / tick_secs).ceil() as u64,
        tick_secs,
        sample_every_tick: false,
        timeout,
    };
    drive(&mut d, testbed, pool, clock, Some(faults), &dcfg)
}

/// Run the §5.1 baseline: poll every `poll_secs`, gate + filter only, no
/// phases, no drift correction, clock untouched.
pub fn run_baseline(
    cfg: MntpConfig,
    testbed: &mut Testbed,
    pool: &mut ServerPool,
    clock: &mut SimClock,
    duration_secs: u64,
    poll_secs: f64,
) -> MntpRun {
    let mut d = SntpDiscipline::baseline(&cfg);
    let dcfg = DriverConfig {
        ticks: (duration_secs as f64 / poll_secs).floor() as u64,
        tick_secs: poll_secs,
        sample_every_tick: true,
        timeout: None,
    };
    drive(&mut d, testbed, pool, clock, None, &dcfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocksim::{OscillatorConfig, SimRng};
    use netsim::testbed::TestbedConfig;
    use sntp::PoolConfig;

    fn clock(skew_ppm: f64, seed: u64) -> SimClock {
        let osc = OscillatorConfig::laptop().with_skew_ppm(skew_ppm).build(SimRng::new(seed));
        SimClock::new(osc, SimTime::ZERO)
    }

    #[test]
    fn baseline_run_on_wireless_rejects_spikes() {
        let mut tb = Testbed::wireless(TestbedConfig::default(), 1);
        let mut pool = ServerPool::new(PoolConfig::default(), 2);
        let mut c = clock(0.0, 3);
        let cfg = MntpConfig::baseline(5.0);
        let run = run_baseline(cfg, &mut tb, &mut pool, &mut c, 1800, 5.0);
        let accepted = run.accepted_offsets();
        let rejected = run.rejected_offsets();
        assert!(!accepted.is_empty());
        assert!(run.deferrals() > 0, "gate should defer sometimes");
        // Accepted spread must be far tighter than what rejection removed.
        if !rejected.is_empty() {
            let max_acc = accepted.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
            let max_rej = rejected.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
            assert!(max_rej > max_acc, "rejected {max_rej} vs accepted {max_acc}");
        }
    }

    #[test]
    fn offset_caches_match_record_scan() {
        let mut tb = Testbed::wireless(TestbedConfig::default(), 1);
        let mut pool = ServerPool::new(PoolConfig::default(), 2);
        let mut c = clock(0.0, 3);
        let run = run_baseline(MntpConfig::baseline(5.0), &mut tb, &mut pool, &mut c, 900, 5.0);
        let scanned: Vec<f64> = run
            .records
            .iter()
            .filter_map(|r| match r.outcome {
                QueryOutcome::Accepted { offset_ms } => Some(offset_ms),
                _ => None,
            })
            .collect();
        assert_eq!(run.accepted_offsets(), scanned.as_slice());
        assert!(run.polls_sent > 0);
    }

    #[test]
    fn full_run_reaches_regular_phase_and_records() {
        let mut tb = Testbed::wireless(TestbedConfig::default(), 4);
        let mut pool = ServerPool::new(PoolConfig::default(), 5);
        let mut c = clock(10.0, 6);
        let cfg = MntpConfig {
            warmup_period_secs: 300.0,
            warmup_wait_secs: 15.0,
            regular_wait_secs: 60.0,
            reset_period_secs: 100_000.0,
            ..Default::default()
        };
        let run = run_full(cfg, &mut tb, &mut pool, &mut c, 3600, 1.0);
        let warmup_rounds = run
            .records
            .iter()
            .filter(|r| matches!(r.outcome, QueryOutcome::WarmupRound { .. }))
            .count();
        assert!(warmup_rounds >= 10, "warmup rounds {warmup_rounds}");
        let regular = run
            .records
            .iter()
            .filter(|r| {
                matches!(
                    r.outcome,
                    QueryOutcome::Accepted { .. } | QueryOutcome::Rejected { .. }
                )
            })
            .count();
        assert!(regular >= 10, "regular samples {regular}");
        assert!(!run.true_error_ms.is_empty());
    }

    #[test]
    fn autotuned_driver_stretches_pacing_and_still_tracks() {
        let mut tb = Testbed::wireless(netsim::testbed::TestbedConfig::default(), 21);
        let mut pool = ServerPool::new(sntp::PoolConfig::default(), 22);
        let osc =
            clocksim::OscillatorConfig::laptop().with_skew_ppm(25.0).build(SimRng::new(23));
        let mut c = SimClock::new(osc, SimTime::ZERO);
        let cfg = MntpConfig {
            warmup_period_secs: 300.0,
            warmup_wait_secs: 10.0,
            regular_wait_secs: 30.0,
            reset_period_secs: 1e9,
            apply_mode: crate::config::ApplyMode::Step,
            ..Default::default()
        };
        let (run, tuner) = run_full_autotuned(
            cfg,
            crate::autotune::AutoTuneConfig::default(),
            &mut tb,
            &mut pool,
            &mut c,
            3600,
            1.0,
        );
        // The tuner must have stretched the wait beyond its floor…
        assert!(tuner.wait_secs() > 15.0, "wait {}", tuner.wait_secs());
        assert!(tuner.increases > 0);
        // …while the clock stays disciplined after warmup.
        let late: Vec<f64> = run
            .true_error_ms
            .iter()
            .filter(|(t, _)| *t > 1200.0)
            .map(|(_, e)| e.abs())
            .collect();
        let worst = late.iter().cloned().fold(0.0, f64::max);
        assert!(worst < 120.0, "worst disciplined error {worst}");
    }

    #[test]
    fn faulted_run_survives_total_outage_and_recovers() {
        use netsim::{FaultKind, FaultSchedule, ServerSet};
        let go = || {
            let mut tb = Testbed::wireless(TestbedConfig::default(), 31);
            let mut pool = ServerPool::new(PoolConfig::default(), 32);
            let mut c = clock(25.0, 33);
            let cfg = MntpConfig {
                warmup_period_secs: 300.0,
                warmup_wait_secs: 10.0,
                regular_wait_secs: 30.0,
                reset_period_secs: 1e9,
                apply_mode: crate::config::ApplyMode::Step,
                ..Default::default()
            };
            let schedule = FaultSchedule::none().window(
                1800.0,
                3000.0,
                FaultKind::ServerOutage { servers: ServerSet::All },
            );
            let mut faults = FaultInjector::new(schedule, 34);
            run_full_faulted(
                cfg,
                RobustConfig::default(),
                &mut tb,
                &mut pool,
                &mut c,
                &mut faults,
                5400,
                1.0,
            )
        };
        let run = go();
        assert!(run.holdover_failures() > 0, "outage should force holdover probes");
        let recs = run.recoveries();
        assert!(!recs.is_empty(), "engine must recover after the outage");
        assert!(recs[0].0 > 3000.0, "recovery only after the window ends, got {}", recs[0].0);
        // Bit-identical replay: same seeds, same run.
        let again = go();
        assert_eq!(run.records.len(), again.records.len());
        assert_eq!(run.true_error_ms, again.true_error_ms);
    }

    #[test]
    fn faulted_run_records_kiss_o_death() {
        use netsim::{FaultKind, FaultSchedule, ServerSet};
        let mut tb = Testbed::wireless(TestbedConfig::default(), 41);
        let mut pool = ServerPool::new(PoolConfig::default(), 42);
        let mut c = clock(10.0, 43);
        let cfg = MntpConfig {
            warmup_period_secs: 120.0,
            warmup_wait_secs: 10.0,
            regular_wait_secs: 20.0,
            reset_period_secs: 1e9,
            ..Default::default()
        };
        // Every server rate-limits hard during the regular phase.
        let schedule = FaultSchedule::none().window(
            300.0,
            600.0,
            FaultKind::KissODeath { servers: ServerSet::All, min_poll_secs: 3600.0 },
        );
        let mut faults = FaultInjector::new(schedule, 44);
        let run = run_full_faulted(
            cfg,
            RobustConfig::default(),
            &mut tb,
            &mut pool,
            &mut c,
            &mut faults,
            900,
            1.0,
        );
        assert!(run.kod_count() > 0, "KoD replies should be recorded");
    }

    #[test]
    fn deterministic_given_seeds() {
        let go = || {
            let mut tb = Testbed::wireless(TestbedConfig::default(), 7);
            let mut pool = ServerPool::new(PoolConfig::default(), 8);
            let mut c = clock(5.0, 9);
            let run =
                run_baseline(MntpConfig::baseline(5.0), &mut tb, &mut pool, &mut c, 600, 5.0);
            run.accepted_offsets().to_vec()
        };
        assert_eq!(go(), go());
    }
}
